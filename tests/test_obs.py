"""The observability battery: tracing, metrics, profiling, invariance.

The hard contract under test is that telemetry is strictly out of band:
canonical sweep reports are byte-identical whether observability is on
or off, and the deterministic metric view (counter totals + histogram
observation counts) is identical for any ``jobs`` value and for any
shard/resume decomposition of the same grid.
"""

from __future__ import annotations

import json
import sqlite3
import warnings

import pytest

from repro.experiments.parallel import (
    pool_available,
    resolve_jobs,
    run_tasks,
)
from repro.experiments.report import report_json
from repro.experiments.scenarios import run_scenario_sweep
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    load_trace,
    observability,
    render_metrics,
    render_trace_summary,
    summarize_spans,
)
from repro.obs.profile import PROFILE_ENV, maybe_profile
from repro.obs.session import (
    absorb,
    active,
    capture,
    capture_config,
    event,
    inc,
    observe,
    trace_span,
)
from repro.store.backend import MemoryStore, SQLiteStore


SWEEP_KW = dict(
    topologies=["mesh"], sizes=["3x3"], ccrs=[10.0], apps=["random-8"],
    replicates=2, seed=1,
)


def needs_pool():
    if not pool_available():  # pragma: no cover - sandboxed CI
        pytest.skip("process pools unavailable in this environment")


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.set_gauge("g", 1.5)
        reg.set_gauge("g", 2.5)
        assert reg.counters["a"] == 3
        assert reg.gauges["g"] == 2.5

    def test_histogram_bucketing(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, +inf
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0

    def test_histogram_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_histogram_merge_requires_same_buckets(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_observe_fixes_buckets(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5, buckets=(1.0,))
        reg.observe("h", 2.0)  # omitting buckets is fine
        with pytest.raises(ValueError):
            reg.observe("h", 3.0, buckets=(5.0,))

    def test_merge_payload_roundtrip(self):
        a = MetricsRegistry()
        a.inc("c", 2)
        a.observe("h", 0.25)
        b = MetricsRegistry()
        b.inc("c", 3)
        b.observe("h", 4.0)
        a.merge_payload(b.to_payload())
        assert a.counters["c"] == 5
        assert a.histograms["h"].count == 2
        again = MetricsRegistry.from_payload(a.to_payload())
        assert again.counts() == a.counts()

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_render_metrics(self):
        reg = MetricsRegistry()
        assert "no events" in render_metrics(reg)
        reg.inc("store.hits", 7)
        reg.set_gauge("pool.workers", 4)
        reg.observe("solver.duration_s", 0.5)
        table = render_metrics(reg)
        for needle in ("store.hits", "pool.workers", "solver.duration_s",
                       "counter", "gauge", "histogram"):
            assert needle in table


# ----------------------------------------------------------------------
# Trace primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_status(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    pass
                raise RuntimeError("boom")
        inner, outer = tr.spans
        assert inner.kind == "inner" and outer.kind == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.status == "ok" and outer.status == "error"

    def test_event_is_instantaneous(self):
        tr = Tracer()
        with tr.span("work"):
            ev = tr.event("warning.jobs_fallback", {"requested": 4})
        assert ev.status == "event"
        assert ev.duration_s == 0.0
        assert ev.parent_id == tr.spans[-1].span_id or ev.parent_id == 1

    def test_jsonl_roundtrip(self, tmp_path):
        tr = Tracer()
        with tr.span("a", {"x": 1}):
            with tr.span("b"):
                pass
            tr.event("e")
        path = tmp_path / "t.jsonl"
        tr.write_jsonl(path)
        meta, spans = load_trace(path)
        assert meta["trace_schema"] == 1
        assert meta["spans"] == 3
        assert [s.kind for s in spans] == ["b", "e", "a"]
        assert spans[0].parent_id == spans[2].span_id
        assert spans[2].attrs == {"x": 1}

    def test_load_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace(bad)
        bad.write_text('{"span": 1}\n')
        with pytest.raises(ValueError, match="not a span record"):
            load_trace(bad)

    def test_absorb_reparents_under_open_span(self):
        worker = Tracer()
        with worker.span("sweep.cell"):
            with worker.span("solver.run"):
                pass
        parent = Tracer()
        with parent.span("sweep.run"):
            parent.absorb(worker.export())
        by_kind = {s.kind: s for s in parent.spans}
        root = by_kind["sweep.run"]
        cell = by_kind["sweep.cell"]
        solver = by_kind["solver.run"]
        assert cell.parent_id == root.span_id
        # solver.run's parent was a forward reference within the batch
        # (children are buffered before parents) — it must resolve to
        # the remapped cell id, not leak a negative placeholder.
        assert solver.parent_id == cell.span_id
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Sessions and the worker capture path
# ----------------------------------------------------------------------
class TestSession:
    def test_front_doors_are_noops_when_disabled(self):
        assert active() is None
        # None of these may raise or record anything.
        with trace_span("x", y=1):
            pass
        event("e")
        inc("c")
        observe("h", 1.0)
        assert capture_config() is None

    def test_sessions_nest_and_restore(self):
        with observability(metrics=True) as outer:
            inc("n", 1)
            with observability(metrics=True) as nested:
                inc("n", 5)
            assert active() is outer
            inc("n", 1)
        assert active() is None
        assert outer.metrics.counters["n"] == 2
        assert nested.metrics.counters["n"] == 5

    def test_trace_written_even_on_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with observability(trace=path):
                with trace_span("doomed"):
                    raise RuntimeError("boom")
        meta, spans = load_trace(path)
        assert [s.status for s in spans] == ["error"]

    def test_capture_and_absorb_match_direct_recording(self):
        with observability(trace=True, metrics=True) as direct:
            with trace_span("task"):
                inc("c")
                observe("h", 0.5)
        cfg_session = observability(trace=True, metrics=True)
        with cfg_session as routed:
            cfg = capture_config()
            with capture(cfg) as cap:
                with trace_span("task"):
                    inc("c")
                    observe("h", 0.5)
            blob = cap.export()
            # The buffering session must not have touched the parent.
            assert not routed.metrics.counters
            absorb(blob)
        assert routed.metrics.counts() == direct.metrics.counts()
        assert (
            [s.kind for s in routed.tracer.spans]
            == [s.kind for s in direct.tracer.spans]
        )

    def test_absorb_without_session_is_noop(self):
        absorb({"spans": [], "metrics": None})
        absorb(None)


# ----------------------------------------------------------------------
# Engine integration: jobs invariance, retry overwrite, fallback
# ----------------------------------------------------------------------
def _counting_task(x):
    inc("task.calls")
    observe("task.value", float(x))
    return x * x


class TestEngineTelemetry:
    def test_pool_results_unchanged_with_session(self):
        needs_pool()
        with observability(metrics=True):
            out = run_tasks(_counting_task, list(range(12)), jobs=2)
        assert out == [x * x for x in range(12)]

    def test_counts_invariant_across_jobs(self):
        needs_pool()
        views = []
        for jobs in (1, 2, 4):
            with observability(metrics=True) as s:
                run_tasks(_counting_task, list(range(12)), jobs=jobs)
            views.append(s.metrics.counts())
        assert views[0] == views[1] == views[2]
        assert views[0]["counters"]["task.calls"] == 12

    def test_resolve_jobs_fallback_counted(self, monkeypatch):
        import repro.experiments.parallel as par

        monkeypatch.setattr(par, "_POOL_OK", False)
        with observability(trace=True, metrics=True) as s:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert resolve_jobs(4) == 1
        assert s.metrics.counters["engine.jobs_fallback"] == 1
        ev = [sp for sp in s.tracer.spans
              if sp.kind == "warning.jobs_fallback"]
        assert len(ev) == 1 and ev[0].status == "event"
        assert ev[0].attrs == {"requested": 4}
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )


# ----------------------------------------------------------------------
# Sweep-level invariance and byte-identity
# ----------------------------------------------------------------------
def _sweep_counts(**kw) -> dict:
    with observability(metrics=True) as s:
        run_scenario_sweep(**SWEEP_KW, **kw)
    return s.metrics.counts()


class TestSweepInvariance:
    def test_report_bytes_identical_with_tracing(self, tmp_path):
        plain = report_json(run_scenario_sweep(**SWEEP_KW))
        with observability(trace=tmp_path / "t.jsonl", metrics=True):
            traced = report_json(run_scenario_sweep(**SWEEP_KW))
        assert plain == traced

    def test_counts_invariant_across_jobs(self):
        needs_pool()
        serial = _sweep_counts(jobs=1)
        assert serial["counters"]["sweep.cells_computed"] == 2
        assert serial["counters"]["solver.runs"] > 0
        assert _sweep_counts(jobs=2) == serial
        assert _sweep_counts(jobs=4) == serial

    def test_counts_invariant_across_shard_resume(self, tmp_path):
        db = tmp_path / "cells.sqlite"
        cold = _sweep_counts(store=db)
        # Recompute into two fresh shards of a second store, then merge.
        db2 = tmp_path / "cells2.sqlite"
        shard0 = _sweep_counts(store=db2, shard="0/2")
        shard1 = _sweep_counts(store=db2, shard="1/2")
        merged_counters: dict = {}
        for view in (shard0, shard1):
            for name, val in view["counters"].items():
                merged_counters[name] = merged_counters.get(name, 0) + val
        assert merged_counters == cold["counters"]
        # The final resume pass answers everything from the store.
        resumed = _sweep_counts(store=db2, resume=True)
        assert resumed["counters"]["sweep.cells_resumed"] == 2
        assert resumed["counters"]["store.hits"] == 2
        assert "sweep.cells_computed" not in resumed["counters"]

    def test_summarize_sweep_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with observability(trace=path):
            run_scenario_sweep(**SWEEP_KW)
        rendered = render_trace_summary(path)
        for kind in ("sweep.run", "sweep.cell", "solver.run"):
            assert kind in rendered


# ----------------------------------------------------------------------
# Trace summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_percentiles_and_sorting(self):
        spans = [
            Span(i, None, "slow", 0.0, d)
            for i, d in enumerate((0.1, 0.2, 0.3, 0.4), start=1)
        ] + [Span(9, None, "fast", 0.0, 0.01)]
        rows = summarize_spans(spans)
        assert [r["kind"] for r in rows] == ["slow", "fast"]
        slow = rows[0]
        assert slow["count"] == 4
        assert slow["p50_s"] == 0.2
        assert slow["p99_s"] == 0.4
        assert slow["max_s"] == 0.4

    def test_empty_trace_notice(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with observability(trace=path):
            pass
        assert "empty trace" in render_trace_summary(path)


# ----------------------------------------------------------------------
# Store access accounting
# ----------------------------------------------------------------------
class TestStoreAccounting:
    def test_memory_store_counts_hits_and_misses(self):
        st = MemoryStore()
        st.put("k", {"v": 1})
        assert st.get("k") == {"v": 1}
        assert st.get("k") == {"v": 1}
        assert st.get("absent") is None
        acc = st.access_stats()
        assert acc["hits"] == 2 and acc["misses"] == 1
        assert acc["rows_never_hit"] == 0
        assert acc["last_hit_at"] is not None
        assert st.stats()["access"] == acc

    def test_sqlite_accounting_persists(self, tmp_path):
        db = tmp_path / "s.sqlite"
        st = SQLiteStore(db)
        st.put("k", {"v": 1})
        st.get("k")
        st.get("gone")
        st.close()
        st2 = SQLiteStore(db)
        acc = st2.access_stats()
        assert acc["hits"] == 1 and acc["misses"] == 1
        assert acc["rows_never_hit"] == 0
        st2.close()

    def test_legacy_store_migrates_in_place(self, tmp_path):
        db = tmp_path / "old.sqlite"
        conn = sqlite3.connect(db)
        with conn:
            conn.execute(
                "CREATE TABLE results (key TEXT PRIMARY KEY, kind TEXT "
                "NOT NULL, schema INTEGER NOT NULL, version TEXT NOT "
                "NULL, created_at REAL NOT NULL, payload TEXT NOT NULL)"
            )
            conn.execute(
                "INSERT INTO results VALUES ('k', 'result', 1, '0', "
                "0.0, ?)", (json.dumps({"v": 1}, sort_keys=True),)
            )
        conn.close()
        st = SQLiteStore(db)
        assert st.get("k") == {"v": 1}
        acc = st.access_stats()
        assert acc["hits"] == 1 and acc["misses"] == 0
        st.close()

    def test_export_excludes_accounting(self, tmp_path):
        a = SQLiteStore(tmp_path / "a.sqlite")
        b = SQLiteStore(tmp_path / "b.sqlite")
        for st in (a, b):
            st.put("k", {"v": 1})
        a.get("k")  # only a records a hit
        assert json.dumps(a.export(), sort_keys=True) == json.dumps(
            b.export(), sort_keys=True
        )
        a.close()
        b.close()

    def test_store_metrics_counters(self):
        with observability(metrics=True) as s:
            st = MemoryStore()
            st.put("k", {"v": 1})
            st.get("k")
            st.get("nope")
        assert s.metrics.counters["store.puts"] == 1
        assert s.metrics.counters["store.hits"] == 1
        assert s.metrics.counters["store.misses"] == 1


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfiling:
    def test_unarmed_is_transparent(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        with maybe_profile("tag") as prof:
            assert prof is None

    def test_armed_dumps_pstats(self, tmp_path, monkeypatch):
        import pstats

        target = tmp_path / "prof"
        monkeypatch.setenv(PROFILE_ENV, str(target))
        with maybe_profile("cli"):
            sum(range(1000))
        dumps = list(target.glob("cli-*.pstats"))
        assert len(dumps) == 1
        pstats.Stats(str(dumps[0]))  # parses
