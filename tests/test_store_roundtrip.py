"""The store's cache-correctness contract.

Two halves:

* **Losslessness** — ``SolverResult -> payload -> JSON text -> payload
  -> SolverResult`` preserves everything (allocation, speeds, every
  routed path, the exact energy floats, failure strings, stats);
* **Hit == cold compute** — a result rebuilt from a stored payload is
  bit-identical (same serialised payload, same energy floats) to a
  fresh compute of the same fingerprinted request, for **every
  registered topology** and a sample of solver specs including a
  refine pipeline and a portfolio.
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from helpers import loose_period

from repro.core.problem import ProblemInstance
from repro.platform.topology import get_topology, topology_names
from repro.solvers import SolverResult, solve
from repro.spg.random_gen import random_spg
from repro.store import (
    MemoryStore,
    mapping_from_payload,
    mapping_to_payload,
    request_fingerprint,
    result_to_payload,
    solver_result_from_payload,
)
from repro.util.rng import as_rng

#: The solver-spec sample of the contract: a plain heuristic, the
#: 1D line-embedding DP (non-default paths), a refine pipeline and a
#: portfolio (nested member stats).
SPECS = ("Greedy", "DPA1D", "dpa2d1d+refine", "greedy|dpa1d")


def tiny_problem(topology: str, seed: int = 3) -> ProblemInstance:
    spg = random_spg(10, rng=seed, ccr=10.0)
    grid = get_topology(topology, 2, 2)
    return ProblemInstance(spg, grid, loose_period(spg))


def json_roundtrip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


def assert_bit_identical(a: SolverResult, b: SolverResult) -> None:
    """The equality the store guarantees: everything reports consume.

    Wall-clock ``stats`` legitimately differ between two computes, so
    they are outside the contract.
    """
    assert a.ok == b.ok
    assert a.solver == b.solver
    assert a.failure == b.failure
    if a.ok:
        assert a.mapping.alloc == b.mapping.alloc
        assert a.mapping.speeds == b.mapping.speeds
        assert a.mapping.paths == b.mapping.paths
        assert a.energy == b.energy  # exact float equality, all four terms
        assert repr(a.energy.total) == repr(b.energy.total)


@pytest.mark.parametrize("topology", topology_names())
@pytest.mark.parametrize("spec", SPECS)
def test_hit_equals_cold_compute(topology, spec):
    prob = tiny_problem(topology)
    store = MemoryStore()
    key = request_fingerprint(
        prob.spg, prob.grid, spec, None, 3, prob.period
    )

    cold = solve(spec, prob, rng=as_rng(3))
    store.put(key, result_to_payload(cold), kind="solve")

    # An independent process would rebuild from the JSON text:
    hit = solver_result_from_payload(
        json_roundtrip(store.get(key)), prob.spg, prob.grid
    )
    fresh = solve(spec, prob, rng=as_rng(3))
    assert_bit_identical(hit, fresh)
    assert_bit_identical(hit, cold)
    if hit.ok:
        hit.mapping.check_structure()  # stored routes still validate


@pytest.mark.parametrize("topology", topology_names())
def test_result_payload_lossless(topology):
    prob = tiny_problem(topology)
    res = solve("dpa2d1d+refine", prob, rng=as_rng(0))
    payload = result_to_payload(res)
    back = solver_result_from_payload(
        json_roundtrip(payload), prob.spg, prob.grid
    )
    # payload -> result -> payload is the identity (stats included).
    assert result_to_payload(back) == payload
    assert back.stats == res.stats


def test_solver_result_methods_roundtrip():
    prob = tiny_problem("mesh")
    res = solve("Greedy", prob, rng=as_rng(1))
    back = SolverResult.from_payload(
        json_roundtrip(res.to_payload()), prob.spg, prob.grid
    )
    assert_bit_identical(back, res)
    assert back.stats == res.stats


def test_failure_roundtrip():
    spg = random_spg(10, rng=3, ccr=10.0)
    grid = get_topology("mesh", 2, 2)
    prob = ProblemInstance(spg, grid, 1e-9)  # hopeless period
    res = solve("Greedy", prob, rng=as_rng(0))
    assert not res.ok
    back = solver_result_from_payload(
        json_roundtrip(result_to_payload(res)), spg, grid
    )
    assert not back.ok
    assert back.failure == res.failure
    assert back.energy is None and back.mapping is None
    assert back.total_energy == float("inf")


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=4, max_value=24),
    topology=st.sampled_from(sorted(topology_names())),
)
def test_mapping_payload_roundtrip_property(seed, n, topology):
    """Any solver-produced mapping survives payload round-trips exactly."""
    spg = random_spg(n, rng=seed, ccr=10.0)
    grid = get_topology(topology, 2, 2)
    prob = ProblemInstance(spg, grid, loose_period(spg))
    res = solve("Greedy", prob, rng=as_rng(seed))
    if not res.ok:
        return
    payload = json_roundtrip(mapping_to_payload(res.mapping))
    back = mapping_from_payload(payload, spg, grid)
    assert back.alloc == res.mapping.alloc
    assert back.speeds == res.mapping.speeds
    assert back.paths == res.mapping.paths
    assert mapping_to_payload(back) == payload
    back.check_structure()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_energy_floats_roundtrip_exactly(seed):
    """The four energy terms survive JSON text exactly (repr round-trip)."""
    prob = tiny_problem("mesh", seed=seed % 100)
    res = solve("Greedy", prob, rng=as_rng(seed))
    if not res.ok:
        return
    back = solver_result_from_payload(
        json_roundtrip(result_to_payload(res)), prob.spg, prob.grid
    )
    for term in ("comp_leak", "comp_dyn", "comm_leak", "comm_dyn"):
        assert repr(getattr(back.energy, term)) == repr(
            getattr(res.energy, term)
        )
    assert back.energy.total == res.energy.total
