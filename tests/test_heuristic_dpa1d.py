"""Tests for DPA1D: optimality on uni-lines, budgets, snake mapping."""

import pytest

from repro.core.errors import BudgetExceeded, HeuristicFailure
from repro.core.evaluate import energy, validate
from repro.core.problem import ProblemInstance
from repro.exact.brute_force import brute_force_optimal
from repro.heuristics.dpa1d import dpa1d_mapping, solve_uniline
from repro.platform.cmp import CMPGrid
from repro.spg.build import chain, diamond, split_join
from repro.spg.random_gen import random_spg


class TestOptimalityOnUniline:
    """Theorem 1: the DP is optimal on a uni-directional uni-line CMP."""

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_chain_matches_brute_force(self, small_chain, r):
        prob = ProblemInstance(
            small_chain, CMPGrid.uni_line(r, uni_directional=True), 0.8
        )
        try:
            _bf, bf_e = brute_force_optimal(prob)
        except HeuristicFailure:
            with pytest.raises(HeuristicFailure):
                solve_uniline(prob, r)
            return
        e, _cl, _sp = solve_uniline(prob, r)
        assert e == pytest.approx(bf_e, rel=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_spg_matches_brute_force(self, seed):
        g = random_spg(6, rng=seed, ccr=1.0)
        T = 2.0 * g.total_work / 1e9 / 3
        prob = ProblemInstance(
            g, CMPGrid.uni_line(3, uni_directional=True), T
        )
        try:
            _bf, bf_e = brute_force_optimal(prob)
        except HeuristicFailure:
            bf_e = None
        try:
            e, _cl, _sp = solve_uniline(prob, 3)
        except HeuristicFailure:
            e = None
        if bf_e is None:
            assert e is None
        else:
            assert e is not None
            assert e == pytest.approx(bf_e, rel=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_never_beats_bidirectional_brute_force(self, seed):
        """On a bi-directional line the DP is only an upper bound."""
        g = random_spg(6, rng=seed, ccr=1.0)
        T = 2.0 * g.total_work / 1e9 / 3
        prob = ProblemInstance(g, CMPGrid.uni_line(3), T)
        try:
            _bf, bf_e = brute_force_optimal(prob)
        except HeuristicFailure:
            return
        try:
            e, _cl, _sp = solve_uniline(prob, 3)
        except HeuristicFailure:
            return
        assert e >= bf_e * (1 - 1e-9)

    def test_diamond_tight_period(self, small_diamond):
        # A period forcing the two branches apart.
        prob = ProblemInstance(
            small_diamond, CMPGrid.uni_line(4, uni_directional=True), 0.45
        )
        e, clusters, _ = solve_uniline(prob, 4)
        _bf, bf_e = brute_force_optimal(prob)
        assert e == pytest.approx(bf_e, rel=1e-9)
        # Each cluster meets the period at top speed.
        for cl in clusters:
            assert sum(small_diamond.weights[i] for i in cl) <= 0.45 * 1e9 * (1 + 1e-9)


class TestMappingProperties:
    def test_mapping_is_valid(self, small_chain, grid_2x2):
        prob = ProblemInstance(small_chain, grid_2x2, 0.8)
        m = dpa1d_mapping(prob)
        validate(m, prob.period)  # does not raise

    def test_clusters_in_snake_order(self, small_chain, grid_2x2):
        prob = ProblemInstance(small_chain, grid_2x2, 0.8)
        m = dpa1d_mapping(prob)
        # Snake order on 2x2: (0,0), (0,1), (1,1), (1,0).
        order = [(0, 0), (0, 1), (1, 1), (1, 0)]
        pos = {c: k for k, c in enumerate(order)}
        for (i, j) in small_chain.edges:
            assert pos[m.alloc[i]] <= pos[m.alloc[j]]

    def test_paths_follow_snake(self, small_chain, grid_4x4):
        prob = ProblemInstance(small_chain, grid_4x4, 0.5)
        m = dpa1d_mapping(prob)
        for (i, j), path in m.paths.items():
            grid_4x4.validate_path(path)

    def test_energy_matches_evaluator(self, small_chain, grid_2x2):
        """The DP's internal energy must equal the evaluator's energy."""
        prob = ProblemInstance(small_chain, grid_2x2, 0.8)
        e, _cl, _sp = solve_uniline(prob, 4)
        m = dpa1d_mapping(prob)
        assert energy(m, prob.period).total == pytest.approx(e, rel=1e-9)


class TestFailureModes:
    def test_budget_failure_on_high_elevation(self):
        g = split_join([1] * 14, w_source=1e8, w_sink=1e8, w_branch=1e8,
                       comm=1e4)
        prob = ProblemInstance(g, CMPGrid(4, 4), 1.0)
        with pytest.raises(BudgetExceeded):
            dpa1d_mapping(prob, ideal_budget=1000)

    def test_transition_budget(self, small_chain, grid_4x4):
        prob = ProblemInstance(small_chain, grid_4x4, 0.8)
        with pytest.raises(BudgetExceeded):
            dpa1d_mapping(prob, transition_budget=2)

    def test_infeasible_period(self, small_chain, grid_2x2):
        # Largest stage is 4e8 cycles: needs T >= 0.4 at 1 GHz.
        prob = ProblemInstance(small_chain, grid_2x2, 0.1)
        with pytest.raises(HeuristicFailure):
            dpa1d_mapping(prob)

    def test_bandwidth_infeasible(self, grid_2x2):
        # One edge bigger than BW * T must cross a link on a 2-core need.
        g = chain(2, [5e8, 5e8], [1e12])
        prob = ProblemInstance(g, grid_2x2, 0.6)
        with pytest.raises(HeuristicFailure):
            dpa1d_mapping(prob)

    def test_single_core_when_it_fits(self, grid_2x2):
        # Loose period: everything on one core at low speed is optimal.
        g = chain(3, [1e7, 1e7, 1e7], [1e3, 1e3])
        prob = ProblemInstance(g, grid_2x2, 1.0)
        m = dpa1d_mapping(prob)
        assert len(m.active_cores()) == 1


class TestDiamondClustering:
    def test_loose_period_single_cluster(self, small_diamond):
        prob = ProblemInstance(small_diamond, CMPGrid.uni_line(4), 10.0)
        _e, clusters, speeds = solve_uniline(prob, 4)
        assert len(clusters) == 1
        assert speeds[0] == 0.4e9  # best_feasible beats 0.15 GHz here

    def test_speeds_feasible(self, small_diamond):
        prob = ProblemInstance(small_diamond, CMPGrid.uni_line(4), 0.45)
        _e, clusters, speeds = solve_uniline(prob, 4)
        for cl, s in zip(clusters, speeds):
            work = sum(small_diamond.weights[i] for i in cl)
            assert work / s <= 0.45 * (1 + 1e-9)
