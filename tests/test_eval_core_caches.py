"""Tests for the array-backed evaluation core: SPG derived-data caches,
Mapping memoisation, routing lru-caches, partial-allocation clusters, and
additional ``evaluate.latency`` cases."""

from __future__ import annotations

import pickle

import pytest

from repro.core.evaluate import cycle_times, energy, latency, max_cycle_time
from repro.core.mapping import Mapping
from repro.platform.cmp import CMPGrid
from repro.platform.routing import (
    _snake_order_cached,
    _xy_path_cached,
    snake_order,
    snake_path,
    xy_path,
)
from repro.spg.analysis import ancestor_masks, descendant_masks
from repro.spg.graph import SPG, parallel, series, sp_edge
from repro.spg.random_gen import random_spg

GHZ = 1e9


def diamond() -> SPG:
    """source -> {a, b} -> sink with distinct weights and volumes."""
    def branch(w_mid: float, d1: float, d2: float) -> SPG:
        return series(
            sp_edge(1 * GHZ, w_mid, d1), sp_edge(0.0, 1 * GHZ, d2)
        )

    return parallel(
        branch(2 * GHZ, 100.0, 150.0),
        branch(3 * GHZ, 200.0, 250.0),
        merge="first",
    )


class TestSPGDerivedCaches:
    def test_cached_scalars_match_recomputation(self):
        g = random_spg(24, rng=3, ccr=1.0)
        assert g.xmax == max(x for x, _ in g.labels)
        assert g.ymax == max(y for _, y in g.labels)
        assert g.total_work == sum(g.weights)
        assert g.total_comm == sum(g.edges.values())
        # Second access returns the identical cached object/value.
        assert g.xmax == g.xmax
        assert g.edge_list is g.edge_list

    def test_edge_list_preserves_dict_order(self):
        g = random_spg(16, rng=1, ccr=1.0)
        assert list(g.edge_list) == [
            (i, j, d) for (i, j), d in g.edges.items()
        ]

    def test_in_out_edges_match_adjacency(self):
        g = random_spg(16, rng=2, ccr=1.0)
        for v in range(g.n):
            assert g.in_edges(v) == tuple(
                (u, g.edges[(u, v)]) for u in g.preds(v)
            )
            assert g.out_edges(v) == tuple(
                (w, g.edges[(v, w)]) for w in g.succs(v)
            )

    def test_reachability_masks_cached_and_consistent(self):
        g = random_spg(20, rng=5, ccr=1.0)
        desc = descendant_masks(g)
        anc = ancestor_masks(g)
        assert descendant_masks(g) is desc  # cached on the SPG
        for i in range(g.n):
            for j in g.succs(i):
                assert (desc[i] >> j) & 1
                assert (anc[j] >> i) & 1

    def test_pickle_roundtrip_drops_caches(self):
        g = random_spg(12, rng=7, ccr=1.0)
        _ = g.edge_list, g.xmax, descendant_masks(g)  # populate caches
        h = pickle.loads(pickle.dumps(g))
        assert h == g
        assert h._derived == {}
        assert h.topological_order() == g.topological_order()

    def test_lazy_toposort_still_detects_cycles_on_validate(self):
        with pytest.raises(ValueError, match="cycle"):
            SPG([1, 1], [(1, 1), (2, 1)], {(0, 1): 1, (1, 0): 1})


class TestMappingMemoisation:
    def grid_mapping(self) -> Mapping:
        g = diamond()
        grid = CMPGrid(2, 2)
        alloc = {0: (0, 0), 1: (0, 1), 2: (1, 0), 3: (1, 1)}
        speeds = {c: 1 * GHZ for c in alloc.values()}
        return Mapping(g, grid, alloc, speeds)

    def test_views_are_memoised(self):
        m = self.grid_mapping()
        assert m.remote_edges() is m.remote_edges()
        assert m.clusters() is m.clusters()
        assert m.core_work() is m.core_work()
        assert m.link_traffic() is m.link_traffic()
        assert m.active_cores() is m.active_cores()
        assert cycle_times(m) is cycle_times(m)

    def test_views_match_direct_computation(self):
        m = self.grid_mapping()
        g = m.spg
        assert sorted(m.remote_edges()) == sorted(g.edges)
        assert m.core_work() == {
            c: g.weights[i] for i, c in m.alloc.items()
        }
        assert max_cycle_time(m) == max(cycle_times(m).values())

    def test_clusters_tolerates_partial_allocation(self):
        """Regression: clusters() used to KeyError on partial allocations
        (remote_edges deliberately tolerates them), breaking ascii()."""
        g = diamond()
        grid = CMPGrid(2, 2)
        m = Mapping(g, grid, {0: (0, 0), 2: (0, 1)}, {(0, 0): GHZ, (0, 1): GHZ})
        assert m.clusters() == {(0, 0): [0], (0, 1): [2]}
        assert isinstance(m.ascii(), str)  # renders without raising

    def test_partial_allocation_still_fails_validation(self):
        g = diamond()
        grid = CMPGrid(2, 2)
        m = Mapping(g, grid, {0: (0, 0)}, {(0, 0): GHZ})
        assert not m.is_valid_structure()


class TestRoutingCaches:
    def test_xy_path_cache_returns_equal_fresh_lists(self):
        a = xy_path((0, 0), (2, 3))
        b = xy_path((0, 0), (2, 3))
        assert a == b and a is not b
        a.append(("corrupted",))  # mutating a copy must not poison the cache
        assert xy_path((0, 0), (2, 3)) == b

    def test_xy_path_cache_hits(self):
        _xy_path_cached.cache_clear()
        xy_path((1, 1), (3, 0))
        before = _xy_path_cached.cache_info().hits
        xy_path((1, 1), (3, 0))
        assert _xy_path_cached.cache_info().hits == before + 1

    def test_xy_path_shape(self):
        assert xy_path((0, 0), (0, 0)) == [(0, 0)]
        assert xy_path((1, 2), (3, 0)) == [
            (1, 2), (1, 1), (1, 0), (2, 0), (3, 0)
        ]

    def test_snake_order_cache_returns_fresh_lists(self):
        a = snake_order(3, 3)
        b = snake_order(3, 3)
        assert a == b and a is not b
        a.reverse()
        assert snake_order(3, 3) == b

    def test_snake_order_cached_values_correct(self):
        _snake_order_cached.cache_clear()
        assert snake_order(2, 3) == [
            (0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)
        ]
        grid = CMPGrid(2, 3)
        # snake_path slices the cached order; neighbours throughout.
        path = snake_path(grid, 1, 4)
        assert path == [(0, 1), (0, 2), (1, 2), (1, 1)]


class TestLatency:
    def test_two_stage_chain_with_hops(self):
        g = sp_edge(1 * GHZ, 2 * GHZ, 1000.0)
        grid = CMPGrid(1, 3)
        bw = grid.model.bandwidth
        m = Mapping(
            g, grid, {0: (0, 0), 1: (0, 2)},
            {(0, 0): GHZ, (0, 2): GHZ},
        )
        # Two hops: the edge pays delta/BW once per hop.
        assert latency(m) == pytest.approx(1.0 + 2 * 1000.0 / bw + 2.0)

    def test_same_core_has_no_comm_latency(self):
        g = sp_edge(1 * GHZ, 2 * GHZ, 1e12)
        grid = CMPGrid(1, 2)
        m = Mapping(g, grid, {0: (0, 0), 1: (0, 0)}, {(0, 0): GHZ})
        assert latency(m) == pytest.approx(3.0)

    def test_parallel_branches_take_critical_path(self):
        g = diamond()
        grid = CMPGrid(1, 4)
        m = Mapping(
            g, grid,
            {g.source: (0, 0), 1: (0, 1), 2: (0, 1), g.sink: (0, 0)},
            {(0, 0): GHZ, (0, 1): GHZ},
        )
        bw = grid.model.bandwidth
        comm = {e: d / bw for e, d in g.edges.items()}
        finish = {}
        for i in g.topological_order():
            start = 0.0
            for p in g.preds(i):
                t = finish[p]
                if m.alloc[p] != m.alloc[i]:
                    t += (len(m.paths[(p, i)]) - 1) * comm[(p, i)]
                start = max(start, t)
            finish[i] = start + g.weights[i] / GHZ
        assert latency(m) == pytest.approx(finish[g.sink])

    def test_latency_lower_bounded_by_critical_compute_path(self):
        g = series(sp_edge(GHZ, GHZ, 10.0), sp_edge(GHZ, GHZ, 10.0))
        grid = CMPGrid(2, 2)
        m = Mapping(
            g, grid,
            {i: (0, 0) for i in range(g.n)},
            {(0, 0): GHZ},
        )
        assert latency(m) >= sum(g.weights) / GHZ - 1e-9
