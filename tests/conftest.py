"""Shared fixtures: small graphs, grids and fast power models."""

from __future__ import annotations

import pytest

from repro.platform.cmp import CMPGrid
from repro.platform.speeds import GHZ, PowerModel, xscale_model
from repro.spg.build import chain, diamond, split_join
from repro.spg.graph import SPG


@pytest.fixture
def xscale() -> PowerModel:
    return xscale_model()


@pytest.fixture
def two_speed_model() -> PowerModel:
    """A reduced DVFS set for exact solvers (keeps the ILP tiny)."""
    return PowerModel(
        speeds=(0.5 * GHZ, 1.0 * GHZ),
        dyn_power=(0.2, 1.6),
        comp_leak=0.08,
        comm_leak=0.0,
        e_bit=6e-12,
        bandwidth=16 * 1.2 * GHZ,
    )


@pytest.fixture
def grid_2x2(xscale) -> CMPGrid:
    return CMPGrid(2, 2, xscale)


@pytest.fixture
def grid_4x4(xscale) -> CMPGrid:
    return CMPGrid(4, 4, xscale)


@pytest.fixture
def grid_6x6(xscale) -> CMPGrid:
    return CMPGrid(6, 6, xscale)


@pytest.fixture
def line_4(xscale) -> CMPGrid:
    return CMPGrid.uni_line(4, xscale)


@pytest.fixture
def small_diamond() -> SPG:
    """Diamond with weights sized for sub-second periods on the XScale."""
    return diamond((4e8, 2e8, 3e8, 1e8), (1e7, 2e7, 3e7, 4e7))


@pytest.fixture
def small_chain() -> SPG:
    return chain(5, [3e8, 1e8, 2e8, 4e8, 2e8], [1e7] * 4)


@pytest.fixture
def small_splitjoin() -> SPG:
    return split_join(
        [2, 1, 1], w_source=1e8, w_sink=1e8, w_branch=2e8, comm=1e7
    )
