"""White-box tests for the DPA2D solver internals."""

import pytest

from repro.core.problem import ProblemInstance
from repro.heuristics.dpa2d import _Dpa2dSolver
from repro.platform.cmp import CMPGrid
from repro.spg.build import chain, diamond, split_join


@pytest.fixture
def solver(grid_4x4):
    g = split_join([2, 2, 2], w_source=1e8, w_sink=1e8, w_branch=3e8,
                   comm=1e6)
    prob = ProblemInstance(g, grid_4x4, 0.8)
    return _Dpa2dSolver(prob, 4, 4), g


class TestBlocks:
    def test_block_stage_partition(self, solver):
        s, g = solver
        all_stages = []
        for x in range(1, g.xmax + 1):
            all_stages.extend(s.block(x, x).stages)
        assert sorted(all_stages) == list(range(g.n))

    def test_block_caching(self, solver):
        s, _g = solver
        assert s.block(1, 2) is s.block(1, 2)

    def test_block_rows(self, solver):
        s, g = solver
        blk = s.block(1, g.xmax)
        assert blk.ymax == g.ymax
        assert sorted(i for r in blk.rows.values() for i in r) == list(
            range(g.n)
        )

    def test_out_edges_leave_block(self, solver):
        s, g = solver
        blk = s.block(1, 2)
        for (i, j, _d) in blk.out_edges:
            assert g.labels[i][0] <= 2 < g.labels[j][0]

    def test_v_edges_are_cross_row(self, solver):
        s, _g = solver
        blk = s.block(1, 3)
        for (ys, yd, _d) in blk.v_edges:
            assert ys != yd


class TestClusterCosts:
    def test_empty_cluster_free(self, solver):
        s, g = solver
        blk = s.block(2, 2)
        # Rows above the block's ymax are empty.
        e = blk.cluster(blk.ymax, blk.ymax)
        assert e == (0.0, 0.0)

    def test_overweight_cluster_infeasible(self, grid_4x4):
        g = split_join([1, 1], w_source=1e6, w_sink=1e6, w_branch=6e8,
                       comm=1e3)
        prob = ProblemInstance(g, grid_4x4, 0.7)
        s = _Dpa2dSolver(prob, 4, 4)
        blk = s.block(2, 2)  # both 6e8 branches share level 2
        assert blk.cluster(0, 2) is None  # 1.2e9 cycles > 0.7 s at 1 GHz
        assert blk.cluster(0, 1) is not None

    def test_nonconvex_cluster_infeasible(self, grid_4x4):
        # Fork at row 1 feeding a row-2 branch that rejoins row 1: taking
        # rows {1} of the whole x-range without row 2 is non-convex.
        g = diamond((1e8, 1e8, 1e8, 1e8), (1e3, 1e3, 1e3, 1e3))
        prob = ProblemInstance(g, grid_4x4, 1.0)
        s = _Dpa2dSolver(prob, 4, 4)
        blk = s.block(1, g.xmax)
        assert blk.cluster(0, 1) is None  # source+mid1+sink without mid2
        assert blk.cluster(0, 2) is not None


class TestHorizontalCost:
    def test_empty_distribution_free(self, solver):
        s, _g = solver
        assert s.h_cost(()) == 0.0

    def test_energy_per_byte(self, solver):
        s, _g = solver
        d = ((0, 5, 1000.0),)
        assert s.h_cost(d) == pytest.approx(
            s.model.comm_energy(1000.0)
        )

    def test_bandwidth_violation(self, solver):
        s, _g = solver
        too_much = s.cap_bytes * 1.01
        assert s.h_cost(((0, 5, too_much),)) == float("inf")

    def test_rows_checked_separately(self, solver):
        s, _g = solver
        half = s.cap_bytes * 0.6
        # Same row: 1.2x capacity -> infeasible.
        assert s.h_cost(((0, 5, half), (0, 6, half))) == float("inf")
        # Different rows: each fits.
        assert s.h_cost(((0, 5, half), (1, 6, half))) < float("inf")


class TestColumnResults:
    def test_splitjoin_cannot_share_one_column(self, solver):
        """Fork and join sit on row 1: a row-range cluster containing them
        must contain every branch row (convexity), and the whole graph
        exceeds one core's capacity -- so a single column is infeasible.
        This is the structural reason DPA2D spreads levels over columns."""
        s, g = solver
        assert s.column(1, g.xmax, ()) is None

    def test_full_graph_single_column_when_light(self, grid_4x4):
        from repro.core.problem import ProblemInstance as PI

        g = chain(4, [1e7] * 4, [1e3] * 3)
        s = _Dpa2dSolver(PI(g, grid_4x4, 1.0), 4, 4)
        res = s.column(1, g.xmax, ())
        assert res is not None
        placed = [
            i
            for entry in res.plan.cores
            if entry is not None
            for i in entry[0]
        ]
        assert sorted(placed) == list(range(g.n))
        assert res.dout == ()

    def test_dout_points_beyond_block(self, solver):
        s, g = solver
        res = s.column(1, 2, ())
        assert res is not None
        for (_row, dest, _b) in res.dout:
            assert g.labels[dest][0] > 2

    def test_empty_block_is_none(self, grid_4x4):
        g = chain(3, [1e8] * 3, [1e3] * 2)
        prob = ProblemInstance(g, grid_4x4, 1.0)
        s = _Dpa2dSolver(prob, 4, 4)
        # x range beyond the graph has no stages.
        assert s.column(4, 4, ()) is None

    def test_delivery_repositions_cluster_to_entry_row(self, grid_4x4):
        """An over-capacity delivery is fine if the inner DP can park the
        destination cluster *on* the entry row (empty cores below)."""
        g = split_join([1, 1], w_source=1e6, w_sink=1e6, w_branch=1e8,
                       comm=1e3)
        prob = ProblemInstance(g, grid_4x4, 0.5)
        s = _Dpa2dSolver(prob, 4, 4)
        big = s.cap_bytes * 1.5
        res = s.column(3, 3, ((3, g.sink, big),))
        assert res is not None
        # The sink must have been pushed up to physical row 3.
        assert res.plan.cores[3] is not None
        assert res.plan.cores[0] is None

    def test_conflicting_deliveries_infeasible(self, grid_4x4):
        """Two over-capacity deliveries entering at opposite rows cannot
        both reach the sink without one of them crossing a vertical link."""
        g = split_join([1, 1], w_source=1e6, w_sink=1e6, w_branch=1e8,
                       comm=1e3)
        prob = ProblemInstance(g, grid_4x4, 0.5)
        s = _Dpa2dSolver(prob, 4, 4)
        big = s.cap_bytes * 1.5
        din = ((0, g.sink, big), (3, g.sink, big))
        assert s.column(3, 3, din) is None

    def test_delivery_on_same_row_is_fine(self, grid_4x4):
        g = split_join([1, 1], w_source=1e6, w_sink=1e6, w_branch=1e8,
                       comm=1e3)
        prob = ProblemInstance(g, grid_4x4, 0.5)
        s = _Dpa2dSolver(prob, 4, 4)
        big = s.cap_bytes * 1.5
        # Entering at physical row 0 where the sink lives: no vertical hop,
        # the (over-)wide horizontal entry was charged at the boundary.
        din = ((0, g.sink, big),)
        assert s.column(3, 3, din) is not None


class TestSolvePruning:
    def test_chain_uses_expected_columns(self, grid_4x4):
        g = chain(8, [4e8] * 8, [1e3] * 7)
        prob = ProblemInstance(g, grid_4x4, 0.9)
        s = _Dpa2dSolver(prob, 4, 4)
        _e, plans = s.solve()
        assert 2 <= len(plans) <= 4

    def test_single_column_when_loose(self, grid_4x4):
        g = chain(4, [1e7] * 4, [1e3] * 3)
        prob = ProblemInstance(g, grid_4x4, 1.0)
        s = _Dpa2dSolver(prob, 4, 4)
        _e, plans = s.solve()
        assert len(plans) == 1
