"""Tests for the transcribed paper reference tables."""

import pytest

from repro.experiments.paper_reference import (
    PAPER_TABLE2_FAILURES,
    PAPER_TABLE3_FAILURES,
    PAPER_TABLE3_INSTANCES,
    table2_row,
    table3_row,
)
from repro.heuristics.base import PAPER_ORDER


class TestTable2:
    def test_rows_cover_both_grids(self):
        assert set(PAPER_TABLE2_FAILURES) == {"4x4", "6x6"}

    def test_dpa1d_worst_on_both(self):
        for grid in ("4x4", "6x6"):
            row = PAPER_TABLE2_FAILURES[grid]
            assert row["DPA1D"] == max(row.values())

    def test_random_greedy_never_fail_on_6x6(self):
        row = PAPER_TABLE2_FAILURES["6x6"]
        assert row["Random"] == 0 and row["Greedy"] == 0

    def test_row_accessor_order(self):
        assert table2_row("4x4") == [5, 4, 16, 20, 16]

    def test_unknown_grid(self):
        with pytest.raises(KeyError):
            table2_row("8x8")


class TestTable3:
    def test_ccrs(self):
        assert set(PAPER_TABLE3_FAILURES) == {10.0, 1.0, 0.1}

    def test_counts_within_instance_bound(self):
        for row in PAPER_TABLE3_FAILURES.values():
            assert all(0 <= v <= PAPER_TABLE3_INSTANCES for v in row.values())

    def test_dpa1d_dominates_failures(self):
        for row in PAPER_TABLE3_FAILURES.values():
            assert row["DPA1D"] == max(row.values())

    def test_comm_heavy_hurts_dpa2d1d(self):
        assert (
            PAPER_TABLE3_FAILURES[0.1]["DPA2D1D"]
            > 100 * PAPER_TABLE3_FAILURES[10.0]["DPA2D1D"]
        )

    def test_row_accessor(self):
        assert table3_row(1.0) == [58, 56, 156, 1520, 4]

    def test_order_matches_registry(self):
        for row in PAPER_TABLE3_FAILURES.values():
            assert tuple(row) == PAPER_ORDER
