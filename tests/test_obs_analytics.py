"""Telemetry analytics, export, bench sentinel and live progress.

Covers the post-processing layers above the recorders: percentile
exactness, self-time/critical-path attribution, trace diff and its
budget gate, Chrome/collapsed export (including absorbed multi-worker
traces), profile merging, the ``BENCH_history.jsonl`` sentinel, the
sweep progress heartbeat, and the CLI entry points for all of them —
plus the out-of-band contract: reports stay byte-identical with
progress/tracing on.
"""

from __future__ import annotations

import cProfile
import io
import json

import pytest

from repro.cli import main
from repro.experiments.parallel import run_tasks
from repro.experiments.report import report_json
from repro.experiments.scenarios import run_scenario_sweep
from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    load_trace,
    observability,
    render_metrics,
)
from repro.obs.analyze import (
    critical_path,
    diff_regressions,
    diff_traces,
    hotspots,
    render_critical_path,
    render_diff,
    render_hotspots,
    self_times,
    span_tree,
)
from repro.obs.export import (
    export_trace,
    pstats_to_collapsed,
    to_chrome_trace,
    to_collapsed_stacks,
    write_chrome_trace,
)
from repro.obs.history import (
    METRICS,
    append_history,
    check_bench,
    extract_metrics,
    load_history,
    render_check,
    render_history,
)
from repro.obs.profile import (
    PROFILE_ENV,
    find_profile_dumps,
    maybe_profile,
    merge_profiles,
    render_merged_profile,
)
from repro.obs.progress import SweepProgress, as_progress
from repro.obs.summarize import percentile
from repro.resilience import ExecutionStats, RetryPolicy


SWEEP_KW = dict(
    topologies=["mesh"], sizes=["3x3"], ccrs=[10.0], apps=["random-8"],
    replicates=2, seed=1,
)


def _span(sid, parent, kind, dur, status="ok", **attrs):
    return Span(span_id=sid, parent_id=parent, kind=kind, ts=0.0,
                duration_s=dur, status=status, attrs=attrs)


def _tree():
    """root(10) -> [stage.a(6) -> leaf(2), stage.b(3)] — self times:
    root 1, stage.a 4, leaf 2, stage.b 3."""
    return [
        _span(1, None, "root", 10.0),
        _span(2, 1, "stage.a", 6.0),
        _span(3, 2, "leaf", 2.0),
        _span(4, 1, "stage.b", 3.0),
    ]


# ----------------------------------------------------------------------
# Shared percentile helper (the p99.9 truncation fix)
# ----------------------------------------------------------------------
class TestPercentile:
    def test_nearest_rank_basics(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 0.0) == 1.0
        assert percentile(vals, 1.0) == 4.0
        assert percentile(vals, 0.5) == 2.0
        assert percentile([], 0.5) == 0.0

    def test_p999_does_not_collapse_to_p99(self):
        # 2000 samples: rank(p99) = 1980, rank(p99.9) = 1998.  The old
        # int(q*100) truncation computed both from the integer 99.
        vals = [float(i) for i in range(1, 2001)]
        assert percentile(vals, 0.99) == 1980.0
        assert percentile(vals, 0.999) == 1998.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="q must be in"):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="q must be in"):
            percentile([1.0], -0.1)


# ----------------------------------------------------------------------
# Analytics: tree, self time, hotspots, critical path
# ----------------------------------------------------------------------
class TestAnalytics:
    def test_span_tree_and_self_times(self):
        spans = _tree()
        by_id, children = span_tree(spans)
        assert [s.kind for s in children[None]] == ["root"]
        assert [s.kind for s in children[1]] == ["stage.a", "stage.b"]
        selfs = self_times(spans)
        assert selfs == {1: 1.0, 2: 4.0, 3: 2.0, 4: 3.0}

    def test_self_time_clamped_at_zero(self):
        spans = [
            _span(1, None, "root", 1.0),
            _span(2, 1, "child", 1.5),  # clock noise: child > parent
        ]
        assert self_times(spans)[1] == 0.0

    def test_dangling_parent_becomes_root(self):
        spans = [_span(7, 99, "orphan", 2.0)]
        _, children = span_tree(spans)
        assert [s.kind for s in children[None]] == ["orphan"]
        assert critical_path(spans)[0]["kind"] == "orphan"

    def test_hotspots_sorted_by_self_time(self):
        rows = hotspots(_tree())
        assert [r["kind"] for r in rows] == [
            "stage.a", "stage.b", "leaf", "root"
        ]
        a = rows[0]
        assert a["total_s"] == 6.0 and a["self_s"] == 4.0
        assert a["child_s"] == 2.0
        assert a["self_share"] == pytest.approx(0.4)

    def test_critical_path_descends_slowest_child(self):
        path = critical_path(_tree())
        assert [p["kind"] for p in path] == ["root", "stage.a", "leaf"]
        assert [p["depth"] for p in path] == [0, 1, 2]
        assert path[0]["share_of_root"] == 1.0
        assert path[2]["share_of_root"] == pytest.approx(0.2)
        assert critical_path([]) == []

    def test_renderers(self, tmp_path):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        p = tmp_path / "t.jsonl"
        tr.write_jsonl(p)
        text = render_hotspots(p)
        assert "Hotspots" in text and "Critical path" in text
        assert "outer" in text and "inner" in text
        assert "no spans" in render_critical_path([])


# ----------------------------------------------------------------------
# Trace diff + budget gate
# ----------------------------------------------------------------------
class TestTraceDiff:
    def test_self_diff_is_all_zero(self, tmp_path):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        p = tmp_path / "t.jsonl"
        tr.write_jsonl(p)
        diff = diff_traces(p, p)
        assert diff["new"] == [] and diff["vanished"] == []
        for row in diff["kinds"]:
            assert row["total_delta_s"] == 0.0
            assert row["total_delta_frac"] == 0.0
            assert row["count_delta"] == 0
        assert diff_regressions(diff, 0.0) == []

    def test_regression_and_budget_gate(self):
        a = [_span(1, None, "work", 1.0)]
        b = [_span(1, None, "work", 1.3)]
        diff = diff_traces(a, b)
        row = diff["kinds"][0]
        assert row["total_delta_s"] == pytest.approx(0.3)
        assert row["total_delta_frac"] == pytest.approx(0.3)
        assert diff_regressions(diff, 40.0) == []
        assert [r["kind"] for r in diff_regressions(diff, 20.0)] == [
            "work"
        ]

    def test_new_and_vanished_kinds(self):
        a = [_span(1, None, "old", 1.0)]
        b = [_span(1, None, "new", 1.0)]
        diff = diff_traces(a, b)
        assert diff["new"] == ["new"] and diff["vanished"] == ["old"]
        new_row = next(r for r in diff["kinds"] if r["kind"] == "new")
        assert new_row["total_delta_frac"] == float("inf")
        # A brand-new kind blows any finite budget.
        assert diff_regressions(diff, 1e9) == [new_row]

    def test_tiny_deltas_below_absolute_floor_ignored(self):
        a = [_span(1, None, "work", 0.0001)]
        b = [_span(1, None, "work", 0.0008)]
        # 700% growth but < 1ms absolute: clock noise, not a regression.
        assert diff_regressions(diff_traces(a, b), 10.0) == []

    def test_budget_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            diff_regressions(diff_traces([], []), -1.0)

    def test_render_diff_mentions_verdict(self):
        a = [_span(1, None, "work", 1.0)]
        b = [_span(1, None, "work", 2.0)]
        diff = diff_traces(a, b)
        text = render_diff(diff, diff_regressions(diff, 10.0))
        assert "REGRESSION" in text
        ok = render_diff(diff_traces(a, a), [])
        assert "within budget" in ok


# ----------------------------------------------------------------------
# Export: Chrome trace events + collapsed stacks
# ----------------------------------------------------------------------
class TestChromeExport:
    def _absorbed_trace(self):
        """A parent trace with two absorbed worker blobs (the
        multi-worker shape: unrelated wall clocks, negative-parent
        remapping exercised)."""
        parent = Tracer()
        with parent.span("sweep.run"):
            for _ in range(2):
                worker = Tracer()
                with worker.span("sweep.cell"):
                    with worker.span("solver.run"):
                        pass
                    worker.event("cache.hit", {"key": "k"})
                parent.absorb(worker.export())
        return parent

    def test_event_document_shape(self):
        tr = self._absorbed_trace()
        doc = to_chrome_trace({"trace_schema": 1}, tr.spans)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(xs) == {"sweep.run", "sweep.cell", "solver.run"}
        assert doc["otherData"]["spans"] == len(tr.spans)

    def test_children_nest_inside_parents(self):
        tr = self._absorbed_trace()
        doc = to_chrome_trace({}, tr.spans)
        by_span = {
            e["args"]["span"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        for e in by_span.values():
            pid = e["args"]["parent"]
            if pid is None:
                continue
            parent = by_span[pid]
            assert e["ts"] >= parent["ts"]
            assert e["ts"] + e["dur"] <= (
                parent["ts"] + parent["dur"] + 1e-6
            )

    def test_durations_preserved_exactly(self):
        spans = _tree()
        doc = to_chrome_trace({}, spans)
        durs = {
            e["name"]: e["dur"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert durs == {
            "root": 10e6, "stage.a": 6e6, "leaf": 2e6, "stage.b": 3e6
        }

    def test_error_status_marked(self):
        spans = [_span(1, None, "boom", 1.0, status="error")]
        doc = to_chrome_trace({}, spans)
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert x["args"]["error"] is True

    def test_file_roundtrip(self, tmp_path):
        tr = self._absorbed_trace()
        src = tmp_path / "t.jsonl"
        tr.write_jsonl(src)
        dst = tmp_path / "t.chrome.json"
        write_chrome_trace(src, dst)
        doc = json.loads(dst.read_text())
        meta, spans = load_trace(src)
        assert doc["otherData"]["spans"] == len(spans)
        assert doc["otherData"]["trace_schema"] == meta["trace_schema"]

    def test_export_trace_dispatcher(self, tmp_path):
        tr = self._absorbed_trace()
        src = tmp_path / "t.jsonl"
        tr.write_jsonl(src)
        chrome = export_trace(src, "chrome")
        assert json.loads(chrome)["traceEvents"]
        collapsed = export_trace(src, "collapsed")
        assert "sweep.run;sweep.cell" in collapsed
        out = tmp_path / "c.txt"
        export_trace(src, "collapsed", target=out)
        assert out.read_text() == collapsed
        with pytest.raises(ValueError, match="unknown export format"):
            export_trace(src, "svg")


class TestCollapsedStacks:
    def test_span_stacks_aggregate_self_time(self):
        lines = to_collapsed_stacks(_tree()).splitlines()
        got = dict(ln.rsplit(" ", 1) for ln in lines)
        assert got == {
            "root": "1000000",
            "root;stage.a": "4000000",
            "root;stage.a;leaf": "2000000",
            "root;stage.b": "3000000",
        }
        assert to_collapsed_stacks([]) == ""

    def test_pstats_conversion(self, tmp_path):
        def inner():
            return sum(i * i for i in range(20000))

        def outer():
            return inner() + inner()

        prof = cProfile.Profile()
        prof.enable()
        outer()
        prof.disable()
        dump = tmp_path / "x.pstats"
        prof.dump_stats(dump)
        text = pstats_to_collapsed(dump)
        assert text
        for line in text.splitlines():
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            frames = stack.split(";")
            assert len(frames) == len(set(frames))  # cycle guard held
        assert any("outer" in ln and "inner" in ln
                   for ln in text.splitlines())


# ----------------------------------------------------------------------
# Profile merging (repro profile merge DIR)
# ----------------------------------------------------------------------
class TestProfileMerge:
    def _dumps(self, tmp_path, monkeypatch, n=2):
        monkeypatch.setenv(PROFILE_ENV, str(tmp_path))
        for _ in range(n):
            with maybe_profile("worker"):
                sum(i for i in range(5000))
        return find_profile_dumps(tmp_path)

    def test_merge_aggregates_all_dumps(self, tmp_path, monkeypatch):
        files = self._dumps(tmp_path, monkeypatch)
        assert len(files) == 2
        merged = merge_profiles(tmp_path)
        single = merge_profiles([files[0]])
        assert merged.total_calls >= single.total_calls

    def test_render_names_the_dumps(self, tmp_path, monkeypatch):
        self._dumps(tmp_path, monkeypatch)
        text = render_merged_profile(tmp_path, top=5)
        assert "Merged profile: 2 dump(s)" in text
        assert "cumulative" in text

    def test_missing_inputs_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a directory"):
            find_profile_dumps(tmp_path / "nope")
        with pytest.raises(FileNotFoundError, match="no \\*.pstats"):
            merge_profiles(tmp_path)


# ----------------------------------------------------------------------
# Bench history + regression sentinel
# ----------------------------------------------------------------------
def _sections(fig10=3.8, refine=8.0, store=40.0, dpa1d=3.9):
    return {
        "fig10_panel": {"speedup_vs_seed": fig10},
        "refine": {"speedup": refine},
        "store": {"speedup": store},
        "dpa1d": {"speedup_geomean": dpa1d},
    }


class TestBenchHistory:
    def test_append_load_roundtrip(self, tmp_path):
        p = tmp_path / "h.jsonl"
        append_history(_sections(), p, commit="abc", timestamp=1.5)
        append_history(_sections(refine=9.0), p, commit="def",
                       timestamp=2.5)
        hist = load_history(p)
        assert len(hist) == 2
        assert hist[0]["commit"] == "abc" and hist[0]["ts"] == 1.5
        assert hist[1]["history_schema"] == 1
        assert extract_metrics(hist[1]["sections"])["refine"] == 9.0

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []

    def test_malformed_lines_raise_with_lineno(self, tmp_path):
        p = tmp_path / "h.jsonl"
        p.write_text("not json\n")
        with pytest.raises(ValueError, match="1: not valid JSON"):
            load_history(p)
        p.write_text('{"ok": true}\n')
        with pytest.raises(ValueError, match="not a bench-history"):
            load_history(p)

    def test_metric_extraction_handles_missing(self):
        got = extract_metrics({"refine": {"speedup": "bogus"}})
        assert got["refine"] is None and got["fig10"] is None
        assert set(got) == {m.name for m in METRICS}


class TestBenchCheck:
    def _hist(self, tmp_path, *sections_list):
        p = tmp_path / "h.jsonl"
        for i, s in enumerate(sections_list):
            append_history(s, p, commit=f"c{i}", timestamp=float(i))
        return load_history(p)

    def test_clean_run_passes(self, tmp_path):
        hist = self._hist(tmp_path, _sections())
        result = check_bench(_sections(), hist)
        assert result["ok"] and result["regressions"] == []
        assert "OK: speedup trajectory holds" in render_check(result)

    def test_ratio_floor_is_absolute(self, tmp_path):
        bench = _sections(refine=4.0)  # floor 5.0
        result = check_bench(bench, [])
        assert not result["ok"]
        assert result["regressions"] == ["refine"]
        row = next(r for r in result["metrics"]
                   if r["metric"] == "refine")
        assert not row["floor_ok"] and "below floor" in row["note"]

    def test_band_gate_vs_last_distinct_run(self, tmp_path):
        # A run appends itself before checking: the newest identical
        # entry must not mask a fall versus the *previous* run.
        current = _sections(store=20.0)
        hist = self._hist(tmp_path, _sections(store=40.0), current)
        result = check_bench(current, hist)
        assert result["regressions"] == ["store"]
        row = next(r for r in result["metrics"]
                   if r["metric"] == "store")
        assert row["last"] == 40.0 and not row["band_ok"]
        # Within the 20% band: fine.
        ok = check_bench(_sections(store=33.0),
                         self._hist(tmp_path / "b", _sections(store=40.0)))
        assert ok["ok"]

    def test_baseline_floor_is_trajectory_gated(self, tmp_path):
        # fig10 below floor, history never met the floor: a slower host,
        # not a regression — band is the binding gate.
        slow_host = _sections(fig10=1.03)
        result = check_bench(slow_host,
                             self._hist(tmp_path, slow_host))
        assert result["ok"]
        row = result["metrics"][0]
        assert row["floor_ok"] and "host slower" in row["note"]
        # History met 3.7x and the current run fell below it: genuine.
        bad = _sections(fig10=3.0)
        result = check_bench(
            bad, self._hist(tmp_path / "b", _sections(fig10=3.8), bad)
        )
        assert result["regressions"] == ["fig10"]
        assert "previously-met floor" in result["metrics"][0]["note"]

    def test_missing_section_fails_outright(self):
        bench = _sections()
        del bench["dpa1d"]
        result = check_bench(bench, [])
        assert "dpa1d" in result["regressions"]
        row = next(r for r in result["metrics"]
                   if r["metric"] == "dpa1d")
        assert "missing" in row["note"]

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            check_bench(_sections(), [], tolerance=1.5)

    def test_render_history(self, tmp_path):
        hist = self._hist(tmp_path, _sections(), _sections(refine=9.0))
        text = render_history(hist)
        assert "2 of 2 recorded run(s)" in text and "c1" in text
        assert "1 of 2" in render_history(hist, last=1)
        assert "no recorded runs" in render_history([])


# ----------------------------------------------------------------------
# Live sweep progress
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSweepProgress:
    def _tracker(self, **kw):
        import io

        clock = FakeClock()
        buf = io.StringIO()
        kw.setdefault("use_thread", False)
        kw.setdefault("interval_s", 1.0)
        tracker = SweepProgress(stream=buf, clock=clock, **kw)
        return tracker, clock, buf

    def test_heartbeat_counts_and_eta(self):
        tracker, clock, buf = self._tracker()
        tracker.start(4)
        for _ in range(2):
            clock.t += 2.0
            tracker.cell_done()
        line = tracker.render_line()
        assert "[sweep 2/4" in line and "eta 4s" in line
        tracker.finish()
        out = buf.getvalue()
        assert "started" in out and "finished" in out

    def test_hit_rate_and_failures_reported(self):
        tracker, clock, _ = self._tracker()
        tracker.start(4)
        clock.t += 1.0
        tracker.cell_done(resumed=True)
        clock.t += 1.0
        tracker.cell_done(failed=True)
        line = tracker.render_line()
        assert "hits 1 (50.0%)" in line and "failed 1" in line

    def test_heartbeat_rate_limited(self):
        tracker, clock, buf = self._tracker(interval_s=10.0)
        tracker.start(100)
        for _ in range(5):
            clock.t += 0.1
            tracker.cell_done()
        # start line only: every beat inside the 10s window suppressed.
        assert len(buf.getvalue().splitlines()) == 1
        clock.t += 20.0
        assert tracker.heartbeat()

    def test_stall_detection_fires_once_per_gap(self):
        tracker, clock, buf = self._tracker(min_samples=3,
                                            stall_factor=4.0)
        tracker.start(10)
        for _ in range(5):
            clock.t += 1.0
            tracker.cell_done()
        clock.t += 2.0
        assert not tracker.check_stall()  # within 4 x p99 (= 4s)
        clock.t += 3.0
        assert tracker.check_stall()  # 5s silent > 4s threshold
        assert tracker.stalls == 1
        assert not tracker.check_stall()  # flagged: no re-fire
        clock.t += 1.0
        tracker.cell_done()  # rearms
        clock.t += 50.0
        assert tracker.check_stall()
        assert "STALL" in buf.getvalue()

    def test_stall_needs_min_samples(self):
        tracker, clock, _ = self._tracker(min_samples=5)
        tracker.start(10)
        clock.t += 1.0
        tracker.cell_done()
        clock.t += 1000.0
        assert not tracker.check_stall()

    def test_engine_stats_in_heartbeat(self):
        stats = ExecutionStats()
        stats.retries = 2
        tracker, clock, _ = self._tracker(stats=stats)
        tracker.start(2)
        clock.t += 1.0
        tracker.cell_done()
        assert "retries 2" in tracker.render_line()

    def test_as_progress_normalisation(self):
        assert as_progress(None) is None
        assert as_progress(False) is None
        stats = ExecutionStats()
        built = as_progress(True, stats=stats)
        assert isinstance(built, SweepProgress)
        assert built.stats is stats
        tracker, _, _ = self._tracker()
        assert as_progress(tracker, stats=stats) is tracker
        assert tracker.stats is stats
        with pytest.raises(TypeError):
            as_progress("yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepProgress(interval_s=0)
        with pytest.raises(ValueError):
            SweepProgress(stall_factor=0)
        # finish before start is a no-op
        SweepProgress(use_thread=False).finish()

    def test_run_tasks_fires_progress_per_terminal_result(self):
        seen = []
        run_tasks(
            lambda x: x * 2, [1, 2, 3],
            progress=lambda i, r: seen.append((i, r)),
        )
        assert seen == [(0, 2), (1, 4), (2, 6)]

    def test_run_tasks_progress_on_recorded_failure(self):
        from repro.resilience import TaskFailure

        def flaky(x):
            if x == 1:
                raise RuntimeError("boom")
            return x

        seen = []
        run_tasks(
            flaky, [0, 1, 2], failures="record",
            policy=RetryPolicy(max_attempts=1, backoff_s=0.0),
            progress=lambda i, r: seen.append((i, r)),
        )
        assert [i for i, _ in seen] == [0, 1, 2]
        assert isinstance(seen[1][1], TaskFailure)

    def test_sweep_report_byte_identical_with_progress(self):
        plain = run_scenario_sweep(**SWEEP_KW)
        tracker, clock, buf = self._tracker()
        with observability(trace=True):
            live = run_scenario_sweep(**SWEEP_KW, progress=tracker)
        assert report_json(live) == report_json(plain)
        out = buf.getvalue()
        assert "started" in out and "finished" in out
        assert "[sweep 2/2" in out

    def test_sweep_progress_counts_store_hits(self, tmp_path):
        store = tmp_path / "s.sqlite"
        run_scenario_sweep(**SWEEP_KW, store=store)
        tracker, _, buf = self._tracker()
        resumed = run_scenario_sweep(
            **SWEEP_KW, store=store, resume=True, progress=tracker
        )
        assert tracker.resumed == 2 and tracker.done == 2
        assert report_json(resumed) == report_json(
            run_scenario_sweep(**SWEEP_KW)
        )
        assert "hits 2 (100.0%)" in buf.getvalue()


# ----------------------------------------------------------------------
# Engine resilience counters in metrics (engine.*)
# ----------------------------------------------------------------------
class TestEngineMetrics:
    def test_clean_run_records_no_engine_counters(self):
        with observability() as session:
            run_tasks(lambda x: x, [1, 2, 3])
        counters = session.metrics.counts()["counters"]
        assert not any(k.startswith("engine.") for k in counters)

    def test_serial_faults_mirrored_into_metrics(self):
        with observability() as session:
            run_tasks(
                lambda x: x, [0, 1, 2],
                policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
                faults="crash@task:1",
            )
        counters = session.metrics.counts()["counters"]
        assert counters["engine.crashes"] == 1
        assert counters["engine.retries"] == 1
        assert "engine.timeouts" not in counters

    def test_terminal_failure_still_counted(self):
        with observability() as session:
            with pytest.raises(Exception):
                run_tasks(
                    lambda x: x, [0, 1],
                    policy=RetryPolicy(max_attempts=1, backoff_s=0.0),
                    faults="crash@task:0",
                )
        counters = session.metrics.counts()["counters"]
        assert counters["engine.crashes"] == 1


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------
def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCLI:
    def _trace_file(self, tmp_path, scale=1.0):
        tr = Tracer()
        spans = [
            _span(1, None, "sweep.run", 10.0 * scale),
            _span(2, 1, "solver.run", 6.0 * scale),
        ]
        tr.spans.extend(spans)
        p = tmp_path / f"t{scale}.jsonl"
        tr.write_jsonl(p)
        return p

    def test_trace_critical_path(self, tmp_path):
        p = self._trace_file(tmp_path)
        code, out = run_cli("trace", "critical-path", str(p))
        assert code == 0
        assert "Hotspots" in out and "Critical path" in out

    def test_trace_export_chrome_stdout_and_file(self, tmp_path):
        p = self._trace_file(tmp_path)
        code, out = run_cli("trace", "export", str(p))
        assert code == 0
        assert json.loads(out)["traceEvents"]
        out_file = tmp_path / "o.json"
        code, _ = run_cli("trace", "export", str(p), "--format",
                          "chrome", "--out", str(out_file))
        assert code == 0
        assert json.loads(out_file.read_text())["traceEvents"]

    def test_trace_export_collapsed(self, tmp_path):
        p = self._trace_file(tmp_path)
        code, out = run_cli("trace", "export", str(p), "--format",
                            "collapsed")
        assert code == 0
        assert "sweep.run;solver.run" in out

    def test_trace_diff_self_zero_and_budget_exit(self, tmp_path):
        a = self._trace_file(tmp_path, scale=1.0)
        b = self._trace_file(tmp_path, scale=1.5)
        code, out = run_cli("trace", "diff", str(a), str(a),
                            "--budget-pct", "0")
        assert code == 0 and "within budget" in out
        code, out = run_cli("trace", "diff", str(a), str(b),
                            "--budget-pct", "20")
        assert code == 1 and "REGRESSION" in out
        # No budget: informational, exit 0 even on growth.
        assert run_cli("trace", "diff", str(a), str(b))[0] == 0

    def test_trace_diff_needs_two_files(self, tmp_path):
        a = self._trace_file(tmp_path)
        code, out = run_cli("trace", "diff", str(a))
        assert code == 2 and "two trace files" in out

    def test_trace_bad_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        for action in ("summarize", "critical-path"):
            code, out = run_cli("trace", action, str(bad))
            assert code == 2 and "bad trace file" in out

    def test_profile_merge_and_flame(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, str(tmp_path))
        with maybe_profile("worker"):
            sum(i for i in range(10000))
        monkeypatch.delenv(PROFILE_ENV)
        code, out = run_cli("profile", "merge", str(tmp_path),
                            "--top", "5")
        assert code == 0 and "Merged profile" in out
        out_file = tmp_path / "flame.txt"
        code, _ = run_cli("profile", "flame", str(tmp_path), "--out",
                          str(out_file))
        assert code == 0 and out_file.read_text()

    def test_profile_merge_empty_dir_exits_2(self, tmp_path):
        code, out = run_cli("profile", "merge", str(tmp_path))
        assert code == 2 and "profile error" in out

    def test_bench_check_and_history(self, tmp_path):
        hist = tmp_path / "h.jsonl"
        bench = tmp_path / "b.json"
        append_history(_sections(), hist, commit="abc", timestamp=1.0)
        bench.write_text(json.dumps(_sections()))
        code, out = run_cli("bench", "check", "--bench", str(bench),
                            "--history", str(hist))
        assert code == 0 and "OK: speedup trajectory holds" in out
        code, out = run_cli("bench", "history", "--history", str(hist))
        assert code == 0 and "abc" in out

    def test_bench_check_regression_exits_1(self, tmp_path):
        hist = tmp_path / "h.jsonl"
        bench = tmp_path / "b.json"
        append_history(_sections(), hist, commit="abc", timestamp=1.0)
        bench.write_text(json.dumps(_sections(refine=4.0)))
        code, out = run_cli("bench", "check", "--bench", str(bench),
                            "--history", str(hist))
        assert code == 1 and "REGRESSION: refine" in out

    def test_bench_check_missing_report_exits_2(self, tmp_path):
        code, out = run_cli("bench", "check", "--bench",
                            str(tmp_path / "none.json"), "--history",
                            str(tmp_path / "h.jsonl"))
        assert code == 2 and "no bench report" in out

    def test_sweep_progress_flag(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        code, out = run_cli(
            "sweep", "--apps", "random-8", "--sizes", "3x3",
            "--topologies", "mesh", "--replicates", "2", "--seed", "1",
            "--out", str(report), "--progress",
        )
        assert code == 0
        assert "Scenario sweep" in out
        assert "finished in" in capsys.readouterr().err
        assert json.loads(report.read_text())["meta"]["seed"] == 1
