"""Tests for the SP decomposition tree."""

import pytest

from repro.spg.build import chain, diamond, split_join
from repro.spg.decompose import decompose, sp_depth
from repro.spg.graph import SPG, sp_edge
from repro.spg.random_gen import random_spg


class TestDecompose:
    def test_edge(self):
        t = decompose(sp_edge(1, 1, 1))
        assert t.kind == "edge"
        assert t.edge == (0, 1)

    def test_chain_is_nested_series(self):
        t = decompose(chain(4))
        assert t.kind == "series"
        assert t.count("parallel") == 0
        assert t.count("series") == 2  # 3 edges need 2 series nodes

    def test_diamond(self):
        t = decompose(diamond())
        assert t.kind == "parallel"
        assert t.count("series") == 2

    def test_leaves_cover_all_edges(self):
        g = split_join([2, 1, 3])
        t = decompose(g)
        assert sorted(t.leaves()) == sorted(g.edges)

    def test_leaves_cover_random(self):
        g = random_spg(25, rng=11)
        t = decompose(g)
        assert sorted(t.leaves()) == sorted(g.edges)

    def test_endpoints(self):
        g = split_join([1, 1])
        t = decompose(g)
        assert t.source == g.source
        assert t.sink == g.sink

    def test_non_sp_rejected(self):
        # The N-graph is not series-parallel.
        g = SPG(
            [1.0] * 6,
            None,
            {
                (0, 1): 1, (0, 2): 1, (1, 3): 1, (2, 3): 1,
                (2, 4): 1, (3, 5): 1, (4, 5): 1,
            },
        )
        with pytest.raises(ValueError, match="not two-terminal"):
            decompose(g)

    def test_single_stage_rejected(self):
        with pytest.raises(ValueError):
            decompose(SPG([1.0], [(1, 1)], {}))

    def test_render_smoke(self):
        text = decompose(diamond()).render()
        assert "parallel" in text and "edge" in text


class TestSpDepth:
    def test_edge_depth(self):
        assert sp_depth(decompose(sp_edge(1, 1, 1))) == 0

    def test_chain_depth_grows(self):
        assert sp_depth(decompose(chain(3))) == 1
        assert sp_depth(decompose(chain(5))) >= 2

    def test_splitjoin_depth(self):
        t = decompose(split_join([2, 2]))
        assert sp_depth(t) >= 2
