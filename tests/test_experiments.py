"""Tests for the experiment harness: period chooser, runners, aggregation."""

import pytest

from repro.core.problem import ProblemInstance
from repro.experiments.period import choose_period, run_all
from repro.experiments.random_experiments import run_random_experiment
from repro.experiments.runner import (
    FailureCounter,
    InstanceRecord,
    normalized_energy,
    normalized_inverse_energy,
)
from repro.experiments.streamit_experiments import run_streamit_experiment
from repro.heuristics.base import PAPER_ORDER, HeuristicResult
from repro.platform.cmp import CMPGrid
from repro.spg.build import chain
from repro.spg.streamit import streamit_workflow


class TestRunAll:
    def test_all_heuristics_reported(self, grid_4x4):
        g = chain(6, [2e8] * 6, [1e5] * 5)
        res = run_all(ProblemInstance(g, grid_4x4, 0.9), rng=0)
        assert set(res) == set(PAPER_ORDER)

    def test_subset(self, grid_4x4):
        g = chain(6, [2e8] * 6, [1e5] * 5)
        res = run_all(
            ProblemInstance(g, grid_4x4, 0.9), heuristics=("Greedy",), rng=0
        )
        assert set(res) == {"Greedy"}

    def test_results_validated(self, grid_4x4):
        g = chain(6, [2e8] * 6, [1e5] * 5)
        res = run_all(ProblemInstance(g, grid_4x4, 0.9), rng=0)
        for r in res.values():
            if r.ok:
                assert r.energy.total > 0
            else:
                assert r.failure


class TestChoosePeriod:
    def test_penultimate_rule(self, grid_4x4):
        """T is feasible for someone; T/10 fails for everyone."""
        g = chain(6, [2e8] * 6, [1e5] * 5)
        choice = choose_period(g, grid_4x4, rng=0)
        assert choice.successes >= 1
        tighter = run_all(
            ProblemInstance(g, grid_4x4, choice.period / 10.0), rng=0
        )
        assert not any(r.ok for r in tighter.values())

    def test_wmax_bound(self, grid_4x4):
        """The chosen T can never be below w_max / s_max (nothing fits)."""
        g = chain(6, [2e8] * 6, [1e5] * 5)
        choice = choose_period(g, grid_4x4, rng=0)
        assert choice.period >= max(g.weights) / 1e9

    def test_walks_up_when_needed(self, grid_4x4):
        # Stage weights so heavy that T=1 fails: chooser must walk up.
        g = chain(3, [5e9, 5e9, 5e9], [1e5] * 2)
        choice = choose_period(g, grid_4x4, start=1.0, rng=0)
        assert choice.period >= 5.0
        assert choice.successes >= 1

    def test_deterministic(self, grid_4x4):
        g = chain(6, [2e8] * 6, [1e5] * 5)
        a = choose_period(g, grid_4x4, rng=3)
        b = choose_period(g, grid_4x4, rng=3)
        assert a.period == b.period

    def test_raises_when_hopeless(self, grid_2x2):
        g = chain(2, [1e30, 1e30], [1e35])  # even huge periods fail on comm
        with pytest.raises(RuntimeError):
            choose_period(g, grid_2x2, max_steps=3, rng=0)


def _fake_record(energies: dict[str, float | None]) -> InstanceRecord:
    results = {}
    for name, e in energies.items():
        if e is None:
            results[name] = HeuristicResult(name, None, None, "failed")
        else:
            from repro.core.evaluate import EnergyBreakdown

            results[name] = HeuristicResult(
                name, "dummy", EnergyBreakdown(e, 0.0, 0.0, 0.0)
            )
    return InstanceRecord("test", 1.0, results)


class TestAggregation:
    def test_normalized_energy(self):
        rec = _fake_record({"A": 2.0, "B": 4.0, "C": None})
        norm = normalized_energy(rec)
        assert norm["A"] == pytest.approx(1.0)
        assert norm["B"] == pytest.approx(2.0)
        assert norm["C"] == float("inf")

    def test_normalized_inverse_energy(self):
        rec = _fake_record({"A": 2.0, "B": 4.0, "C": None})
        inv = normalized_inverse_energy(rec)
        assert inv["A"] == pytest.approx(1.0)
        assert inv["B"] == pytest.approx(0.5)
        assert inv["C"] == 0.0

    def test_failure_counter(self):
        counter = FailureCounter(("A", "B"))
        counter.add(_fake_record({"A": 1.0, "B": None}))
        counter.add(_fake_record({"A": None, "B": None}))
        assert counter.total == 2
        assert counter.row() == [1, 2]


class TestStreamItExperiment:
    @pytest.fixture(scope="class")
    def small_experiment(self):
        return run_streamit_experiment(
            CMPGrid(4, 4), ccrs=(None, 1.0), workflows=(7, 12), seed=0
        )

    def test_record_keys(self, small_experiment):
        assert set(small_experiment.records) == {
            (7, None), (7, 1.0), (12, None), (12, 1.0),
        }

    def test_every_instance_has_a_winner(self, small_experiment):
        for rec in small_experiment.records.values():
            assert rec.best_energy() < float("inf")

    def test_normalized_table_shape(self, small_experiment):
        rows = small_experiment.normalized_table(None)
        assert len(rows) == 2
        assert len(rows[0]) == 2 + len(PAPER_ORDER)

    def test_render_contains_workflows(self, small_experiment):
        text = small_experiment.render()
        assert "DCT" in text and "TDE" in text
        assert "Failures" in text

    def test_failure_table_total(self, small_experiment):
        assert small_experiment.failure_table().total == 4


class TestRandomExperiment:
    @pytest.fixture(scope="class")
    def small_experiment(self):
        return run_random_experiment(
            n=12,
            grid=CMPGrid(4, 4),
            ccr=10.0,
            elevations=(1, 2),
            replicates=2,
            seed=0,
        )

    def test_bins_present(self, small_experiment):
        assert set(small_experiment.records) == {1, 2}

    def test_replicate_count(self, small_experiment):
        assert all(len(v) == 2 for v in small_experiment.records.values())

    def test_mean_inverse_energy_in_unit_interval(self, small_experiment):
        series = small_experiment.mean_inverse_energy()
        for per_h in series.values():
            for v in per_h.values():
                assert 0.0 <= v <= 1.0 + 1e-9

    def test_best_heuristic_is_one_somewhere(self, small_experiment):
        series = small_experiment.mean_inverse_energy()
        best = max(
            v for per_h in series.values() for v in per_h.values()
        )
        assert best > 0.5

    def test_render(self, small_experiment):
        text = small_experiment.render()
        assert "elevation" in text
        assert "CCR=10" in text

    def test_unreachable_elevations_skipped(self):
        exp = run_random_experiment(
            n=6, grid=CMPGrid(2, 2), ccr=10.0,
            elevations=(1, 5), replicates=1, seed=0,
        )
        assert set(exp.records) == {1}
