"""Tests for the enumeration-kernel layer and cross-cell lattice reuse.

Covers the kernel registry and ambient selection, the vector kernel's
byte-exact equivalence to the reference DFS (hypothesis battery over
random SPGs x caps x budgets, including ``BudgetExceeded`` parity), the
keep-loosest ``suffix_arrays``/``suffix_table`` caches, the bounded
per-worker :class:`LatticeCache`, and the ``--kernel`` CLI plumbing.
"""

from __future__ import annotations

import io
import os

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.errors import BudgetExceeded
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNELS,
    EnumerationKernel,
    LatticeCache,
    get_kernel,
    kernel_names,
    register_kernel,
    reset_worker_cache,
    resolve_kernel,
    set_default_kernel,
    use_kernel,
    worker_lattice_cache,
)
from repro.core.partition import IdealLattice
from repro.spg import chain, fork_join
from repro.spg.random_gen import random_spg, random_spg_with_elevation


def lattice(spg, kernel, budget=1 << 20):
    return IdealLattice(spg, budget=budget, kernel=kernel)


# ---------------------------------------------------------------------------
# Registry + ambient selection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert "python" in kernel_names()
        assert "vector" in kernel_names()
        assert DEFAULT_KERNEL in kernel_names()

    def test_get_kernel_singleton(self):
        assert get_kernel("vector") is get_kernel("vector")
        assert get_kernel("vector").name == "vector"

    def test_unknown_kernel_names_available(self):
        with pytest.raises(KeyError) as exc:
            get_kernel("fortran")
        msg = str(exc.value)
        assert "fortran" in msg and "python" in msg and "vector" in msg

    def test_register_and_unregister(self):
        @register_kernel("test-null", "test-only kernel")
        class NullKernel(EnumerationKernel):
            def enumerate_lists(self, lat, ideal, max_weight,
                                max_clusters=None):
                return [], []

        try:
            assert get_kernel("test-null").enumerate_lists(
                None, 3, 1.0
            ) == ([], [])
        finally:
            KERNELS.pop("test-null")

    def test_set_default_kernel_exports_env(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        set_default_kernel("python")
        try:
            assert os.environ[KERNEL_ENV] == "python"
            assert resolve_kernel().name == "python"
        finally:
            set_default_kernel(None)
        assert KERNEL_ENV not in os.environ
        assert resolve_kernel().name == DEFAULT_KERNEL

    def test_set_default_kernel_validates(self):
        with pytest.raises(KeyError):
            set_default_kernel("no-such-kernel")

    def test_use_kernel_scopes_and_restores(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "vector")
        with use_kernel("python"):
            assert resolve_kernel().name == "python"
            assert os.environ[KERNEL_ENV] == "python"
        assert os.environ[KERNEL_ENV] == "vector"
        assert resolve_kernel().name == "vector"

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        assert resolve_kernel().name == "python"  # env beats built-in
        assert resolve_kernel("vector").name == "vector"  # explicit wins
        k = get_kernel("python")
        assert resolve_kernel(k) is k  # instances pass through

    def test_lattice_records_kernel(self):
        lat = lattice(random_spg(6, rng=0), "python")
        assert lat.kernel.name == "python"


# ---------------------------------------------------------------------------
# Hypothesis battery: vector == python, byte for byte
# ---------------------------------------------------------------------------
class TestKernelParity:
    @given(
        n=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        cap_frac=st.floats(min_value=0.1, max_value=1.2),
    )
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_per_ideal_arrays_identical(self, n, seed, cap_frac):
        spg = random_spg(n, rng=seed)
        cap = sum(spg.weights) * cap_frac
        lp = lattice(spg, "python")
        lv = lattice(spg, "vector")
        for ideal in lp.ideals():
            if not ideal:
                continue
            mp, wp = lp.suffix_arrays(ideal, cap)
            mv, wv = lv.suffix_arrays(ideal, cap)
            # Same masks, same works, same (DFS preorder) order.
            assert mp.dtype == mv.dtype == np.uint64
            assert np.array_equal(mp, mv)
            assert wp.tobytes() == wv.tobytes()

    @given(
        n=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        cap_frac=st.floats(min_value=0.2, max_value=1.1),
    )
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_suffix_table_identical(self, n, seed, cap_frac):
        spg = random_spg(n, rng=seed)
        cap = sum(spg.weights) * cap_frac
        tp = lattice(spg, "python").suffix_table(cap)
        tv = lattice(spg, "vector").suffix_table(cap)
        for a, b in zip(tp, tv):
            if isinstance(a, np.ndarray):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)
            else:
                assert a == b

    @given(budget=st.integers(min_value=1, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_cluster_budget_parity(self, budget):
        spg = random_spg(10, rng=3)
        cap = sum(spg.weights)
        lp = lattice(spg, "python")
        lv = lattice(spg, "vector")
        for ideal in lp.ideals():
            if not ideal:
                continue
            rp = rv = None
            try:
                got_p = lp.suffix_clusters_weighted(ideal, cap, budget)
            except BudgetExceeded as exc:
                rp = str(exc)
            try:
                got_v = lv.suffix_clusters_weighted(ideal, cap, budget)
            except BudgetExceeded as exc:
                rv = str(exc)
            # Raise at the same cumulative count, same message.
            assert rp == rv
            if rp is None:
                assert got_p == got_v

    @given(budget=st.integers(min_value=1, max_value=3000))
    @settings(max_examples=25, deadline=None)
    def test_transition_budget_parity(self, budget):
        spg = random_spg(12, rng=7)
        cap = sum(spg.weights) * 0.8
        rp = rv = None
        try:
            lattice(spg, "python").suffix_table(cap, budget)
        except BudgetExceeded as exc:
            rp = str(exc)
        try:
            lattice(spg, "vector").suffix_table(cap, budget)
        except BudgetExceeded as exc:
            rv = str(exc)
        assert rp == rv
        if rp is not None:
            assert f"{budget} DP transitions" in rp

    def test_multi_chunk_bulk_build(self):
        # > 1024 nonzero ideals exercises the chunked bulk path.
        spg = fork_join(12)
        lp = lattice(spg, "python")
        lv = lattice(spg, "vector")
        assert len(lv.ideals()) > 1024
        cap = sum(spg.weights) * 0.6
        tp = lp.suffix_table(cap)
        tv = lv.suffix_table(cap)
        assert tp[5] == tv[5] > 0
        for a, b in zip(tp[:5], tv[:5]):
            assert np.array_equal(a, b)

    def test_root_candidates_fallback_without_init_mask(self):
        spg = random_spg(9, rng=11)
        lv = lattice(spg, "vector")
        cap = sum(spg.weights)
        want = lv.suffix_table(cap)
        lv2 = lattice(spg, "vector")
        lv2.ideals()
        lv2._init_mask = {}  # force the _init_list fallback
        got = lv2.suffix_table(cap)
        for a, b in zip(want[:5], got[:5]):
            assert np.array_equal(a, b)

    def test_large_graph_falls_back_to_python(self):
        spg = chain(70)
        lv = lattice(spg, "vector")
        lp = lattice(spg, "python")
        cap = sum(spg.weights)
        ideal = next(i for i in lv.ideals() if i)
        assert lv.suffix_clusters_weighted(
            ideal, cap
        ) == lp.suffix_clusters_weighted(ideal, cap)

    def test_solver_outputs_identical_under_kernels(self):
        from repro.core.problem import ProblemInstance
        from repro.experiments import choose_period
        from repro.heuristics.dpa1d import dpa1d_mapping
        from repro.platform.cmp import CMPGrid

        spg = random_spg(20, rng=4, ccr=10.0)
        grid = CMPGrid(3, 3)
        T = choose_period(spg, grid, heuristics=("Greedy",), rng=4).period
        prob = ProblemInstance(spg, grid, T)
        maps = {}
        for kernel in kernel_names():
            m = dpa1d_mapping(prob, rng=4, kernel=kernel)
            maps[kernel] = (m.alloc, m.speeds)
        assert maps["python"] == maps["vector"]


# ---------------------------------------------------------------------------
# Keep-loosest caches (satellite: loose -> tight -> loose regression)
# ---------------------------------------------------------------------------
class TestSuffixCaches:
    def test_loosest_arrays_survive_tightening(self):
        spg = random_spg(10, rng=1)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        ideal = max(lat.ideals())
        loose_m, loose_w = lat.suffix_arrays(ideal, total)
        tight_m, tight_w = lat.suffix_arrays(ideal, total * 0.3)
        assert tight_m.size <= loose_m.size
        # The loose-cap query after tightening returns the *same* kept
        # arrays — the regression was overwriting them with the view.
        again_m, again_w = lat.suffix_arrays(ideal, total)
        assert again_m is loose_m and again_w is loose_w

    def test_filtered_view_memoised_per_cap(self):
        spg = random_spg(10, rng=1)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        ideal = max(lat.ideals())
        lat.suffix_arrays(ideal, total)
        a1, _ = lat.suffix_arrays(ideal, total * 0.4)
        a2, _ = lat.suffix_arrays(ideal, total * 0.4)
        assert a1 is a2  # memoised view for the current solve cap
        b1, _ = lat.suffix_arrays(ideal, total * 0.2)
        assert b1 is not a1  # a new cap derives (and memoises) a new view

    def test_filtered_view_matches_fresh_enumeration(self):
        spg = random_spg(11, rng=6)
        total = sum(spg.weights)
        warm = lattice(spg, "vector")
        cold = lattice(spg, "vector")
        for ideal in warm.ideals():
            if not ideal:
                continue
            warm.suffix_arrays(ideal, total)  # loosest first
            vm, vw = warm.suffix_arrays(ideal, total * 0.35)
            cm, cw = cold.suffix_arrays(ideal, total * 0.35)
            assert np.array_equal(vm, cm)
            assert vw.tobytes() == cw.tobytes()

    def test_looser_cap_reenumerates_and_replaces(self):
        spg = random_spg(9, rng=2)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        ideal = max(lat.ideals())
        tight_m, _ = lat.suffix_arrays(ideal, total * 0.3)
        loose_m, _ = lat.suffix_arrays(ideal, total)
        assert loose_m.size >= tight_m.size
        again, _ = lat.suffix_arrays(ideal, total)
        assert again is loose_m  # the looser cap became the kept one

    def test_suffix_table_cached_and_filtered(self):
        spg = random_spg(12, rng=9)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        t1 = lat.suffix_table(total)
        assert lat.suffix_table(total) is t1  # exact-cap hit
        t2 = lat.suffix_table(total * 0.5)  # filtered derivation
        fresh = lattice(spg, "vector").suffix_table(total * 0.5)
        for a, b in zip(t2, fresh):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
            else:
                assert a == b

    def test_cached_table_rechecks_budget(self):
        spg = random_spg(12, rng=9)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        tbl = lat.suffix_table(total)
        assert tbl[5] > 10
        with pytest.raises(BudgetExceeded, match="10 DP transitions"):
            lat.suffix_table(total, 10)  # same cap, tighter budget

    def test_warm_reports_and_prefills(self):
        spg = random_spg(12, rng=9)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        stats = lat.warm(total * 0.8)
        assert stats["ideals"] == len(lat.ideals())
        assert stats["transitions"] == lat.suffix_table(total * 0.8)[5]

    def test_scratch_stats_and_clear(self):
        spg = random_spg(10, rng=4)
        lat = lattice(spg, "vector")
        total = sum(spg.weights)
        before = lat.suffix_table(total)
        stats = lat.scratch_stats()
        assert stats["nodes"] > 0 and stats["bytes"] > 0
        assert stats["tables"] == 1
        lat.clear_scratch()
        empty = lat.scratch_stats()
        assert empty["nodes"] == 0 and empty["tables"] == 0
        # Rebuild after clearing is byte-identical.
        after = lat.suffix_table(total)
        for a, b in zip(before, after):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
            else:
                assert a == b


# ---------------------------------------------------------------------------
# LatticeCache: the per-worker cross-cell reuse
# ---------------------------------------------------------------------------
class TestLatticeCache:
    def test_adopt_then_seed_rebinds(self):
        spg = random_spg(8, rng=0)
        lat = IdealLattice.for_spg(spg, budget=1 << 16)
        lat.ideals()
        cache = LatticeCache()
        assert cache.adopt(spg) == 1
        spg._derived.clear()
        clone = random_spg(8, rng=0)  # same content, fresh object
        assert cache.seed(clone) is True
        lat2 = IdealLattice.for_spg(clone, budget=1 << 16)
        assert lat2 is lat and lat2.spg is clone

    def test_seed_miss_on_different_content(self):
        cache = LatticeCache()
        spg = random_spg(8, rng=0)
        IdealLattice.for_spg(spg, budget=1 << 16).ideals()
        cache.adopt(spg)
        other = random_spg(8, rng=1)
        assert cache.seed(other) is False
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = LatticeCache(max_entries=2)
        graphs = [random_spg(6, rng=r) for r in range(3)]
        for g in graphs:
            IdealLattice.for_spg(g, budget=1 << 16).ideals()
            cache.adopt(g)
            g._derived.clear()
        assert len(cache) == 2 and cache.evicted == 1
        assert cache.seed(random_spg(6, rng=0)) is False  # oldest gone
        assert cache.seed(random_spg(6, rng=2)) is True

    def test_scratch_trim_on_adopt(self):
        cache = LatticeCache(max_scratch_nodes=0)
        spg = random_spg(8, rng=3)
        lat = IdealLattice.for_spg(spg, budget=1 << 16)
        lat.warm(sum(spg.weights))
        assert lat.scratch_stats()["nodes"] > 0
        cache.adopt(spg)
        assert cache.trimmed == 1
        assert lat.scratch_stats()["nodes"] == 0

    def test_stats_shape(self):
        cache = LatticeCache()
        s = cache.stats()
        assert s["entries"] == 0 and s["hits"] == 0
        spg = random_spg(6, rng=0)
        IdealLattice.for_spg(spg, budget=1 << 16).ideals()
        cache.adopt(spg)
        s = cache.stats()
        assert s["entries"] == 1 and s["lattices"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_worker_cache_reset(self):
        c1 = worker_lattice_cache()
        assert worker_lattice_cache() is c1
        reset_worker_cache()
        assert worker_lattice_cache() is not c1

    def test_run_tasks_shares_lattices_across_cells(self):
        from repro.experiments.parallel import random_panel_task, run_tasks
        from repro.platform.cmp import CMPGrid

        spg = random_spg(10, rng=5, ccr=10.0)
        grid = CMPGrid(2, 2)
        task = (spg, grid, ("DPA1D",), 5, None)
        first, second = run_tasks(random_panel_task, [task, task], jobs=1)
        assert first.period == second.period
        assert first.results["DPA1D"].ok == second.results["DPA1D"].ok
        cache = worker_lattice_cache()
        # The second cell found the first cell's lattice by content.
        assert cache.stats()["hits"] >= 1

    def test_run_tasks_resets_cache_per_run(self):
        from repro.experiments.parallel import random_panel_task, run_tasks
        from repro.platform.cmp import CMPGrid

        spg = random_spg(10, rng=5, ccr=10.0)
        task = (spg, CMPGrid(2, 2), ("DPA1D",), 5, None)
        run_tasks(random_panel_task, [task], jobs=1)
        seeded = worker_lattice_cache()
        assert seeded.stats()["entries"] >= 1
        run_tasks(random_panel_task, [task], jobs=1)
        # A fresh engine run starts cold: its first cell is a miss again,
        # so repeated identical runs report identical telemetry.
        assert worker_lattice_cache() is not seeded
        assert worker_lattice_cache().stats()["misses"] >= 1


# ---------------------------------------------------------------------------
# CLI / sweep plumbing
# ---------------------------------------------------------------------------
class TestKernelPlumbing:
    def run_cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_cli_kernel_outputs_identical(self):
        base = ("map", "-w", "DCT", "-H", "DPA1D", "--seed", "1")
        _, want = self.run_cli(*base)
        for kernel in kernel_names():
            code, got = self.run_cli(*base, "--kernel", kernel)
            assert code == 0
            assert got == want

    def test_cli_kernel_restores_ambient(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        code, _ = self.run_cli(
            "map", "-w", "DCT", "-H", "DPA1D", "--kernel", "python"
        )
        assert code == 0
        assert KERNEL_ENV not in os.environ
        assert resolve_kernel().name == DEFAULT_KERNEL

    def test_cli_rejects_unknown_kernel(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["map", "-w", "DCT", "--kernel", "numba"],
                 out=io.StringIO())
        assert "invalid choice" in capsys.readouterr().err

    def test_env_var_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        lat = IdealLattice(random_spg(6, rng=0), budget=1 << 16)
        assert lat.kernel.name == "python"

    def test_sweep_kernel_param_identical_report(self):
        from repro.experiments.scenarios import run_scenario_sweep

        kw = dict(
            topologies=["mesh"], sizes=[(2, 2)], ccrs=[10.0],
            apps=["random-8"], replicates=1, seed=1,
        )
        reports = {
            k: run_scenario_sweep(kernel=k, **kw) for k in kernel_names()
        }
        assert reports["python"] == reports["vector"]
