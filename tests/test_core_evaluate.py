"""Unit tests for period and energy evaluation (Sections 3.4-3.5)."""

import pytest

from repro.core.evaluate import (
    cycle_times,
    energy,
    is_period_feasible,
    max_cycle_time,
    validate,
)
from repro.core.errors import MappingError
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.platform.speeds import GHZ
from repro.spg.build import chain


@pytest.fixture
def two_core_mapping(grid_2x2):
    """chain(2) split over two adjacent cores with explicit numbers."""
    g = chain(2, [4e8, 6e8], [9.6e9])  # 9.6e9 bytes = 0.5 s on the link
    return g, Mapping(
        g, grid_2x2,
        {0: (0, 0), 1: (0, 1)},
        {(0, 0): 0.8 * GHZ, (0, 1): 1.0 * GHZ},
    )


class TestCycleTimes:
    def test_core_cycle_times(self, two_core_mapping):
        _g, m = two_core_mapping
        ct = cycle_times(m)
        assert ct[(0, 0)] == pytest.approx(0.5)   # 4e8 / 0.8 GHz
        assert ct[(0, 1)] == pytest.approx(0.6)   # 6e8 / 1.0 GHz

    def test_link_cycle_time(self, two_core_mapping):
        _g, m = two_core_mapping
        ct = cycle_times(m)
        assert ct[((0, 0), (0, 1))] == pytest.approx(0.5)  # 9.6e9 / 19.2e9

    def test_max_cycle_time(self, two_core_mapping):
        _g, m = two_core_mapping
        assert max_cycle_time(m) == pytest.approx(0.6)

    def test_feasibility_boundary(self, two_core_mapping):
        _g, m = two_core_mapping
        assert is_period_feasible(m, 0.6)
        assert is_period_feasible(m, 1.0)
        assert not is_period_feasible(m, 0.59)


class TestEnergy:
    def test_breakdown_by_hand(self, two_core_mapping):
        _g, m = two_core_mapping
        b = energy(m, period=1.0)
        # Two active cores leak 0.08 W for 1 s each.
        assert b.comp_leak == pytest.approx(0.16)
        # 0.5 s at 0.9 W plus 0.6 s at 1.6 W.
        assert b.comp_dyn == pytest.approx(0.5 * 0.9 + 0.6 * 1.6)
        assert b.comm_leak == 0.0
        # 9.6e9 bytes * 8 bits * 6 pJ over one hop.
        assert b.comm_dyn == pytest.approx(9.6e9 * 8 * 6e-12)
        assert b.total == pytest.approx(
            b.comp_leak + b.comp_dyn + b.comm_dyn
        )

    def test_convenience_sums(self, two_core_mapping):
        _g, m = two_core_mapping
        b = energy(m, period=1.0)
        assert b.comp == pytest.approx(b.comp_leak + b.comp_dyn)
        assert b.comm == pytest.approx(b.comm_leak + b.comm_dyn)

    def test_leak_scales_with_period(self, two_core_mapping):
        _g, m = two_core_mapping
        assert energy(m, 2.0).comp_leak == pytest.approx(0.32)

    def test_single_core_no_comm(self, grid_2x2):
        g = chain(2, [1e8, 1e8], [1e9])
        m = Mapping(g, grid_2x2, {0: (0, 0), 1: (0, 0)}, {(0, 0): 0.4 * GHZ})
        b = energy(m, 1.0)
        assert b.comm_dyn == 0.0
        assert b.comp_leak == pytest.approx(0.08)

    def test_multi_hop_pays_per_link(self, grid_2x2):
        g = chain(2, [1e8, 1e8], [1e6])
        m1 = Mapping(
            g, grid_2x2, {0: (0, 0), 1: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
        )
        m2 = Mapping(
            g, grid_2x2, {0: (0, 0), 1: (1, 1)},
            {(0, 0): 1.0 * GHZ, (1, 1): 1.0 * GHZ},
        )
        assert energy(m2, 1.0).comm_dyn == pytest.approx(
            2 * energy(m1, 1.0).comm_dyn
        )


class TestValidate:
    def test_ok(self, two_core_mapping):
        _g, m = two_core_mapping
        b = validate(m, 1.0)
        assert b.total > 0

    def test_period_violation(self, two_core_mapping):
        _g, m = two_core_mapping
        with pytest.raises(MappingError, match="period exceeded"):
            validate(m, 0.55)

    def test_structure_violation(self, grid_2x2):
        g = chain(2, [1e8, 1e8], [1e6])
        m = Mapping(
            g, grid_2x2, {0: (0, 0), 1: (0, 1)},
            {(0, 0): 1.0 * GHZ},  # missing speed for (0,1)
        )
        with pytest.raises(MappingError):
            validate(m, 1.0)


class TestProblemInstance:
    def test_evaluate(self, two_core_mapping, grid_2x2):
        g, m = two_core_mapping
        prob = ProblemInstance(g, grid_2x2, 1.0)
        assert prob.evaluate(m).total > 0

    def test_scaled(self, small_diamond, grid_2x2):
        prob = ProblemInstance(small_diamond, grid_2x2, 1.0)
        assert prob.scaled(0.5).period == 0.5
        assert prob.scaled(0.5).spg is prob.spg

    def test_bad_period(self, small_diamond, grid_2x2):
        with pytest.raises(ValueError):
            ProblemInstance(small_diamond, grid_2x2, 0.0)
