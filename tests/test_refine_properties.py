"""Cross-topology property battery for the refinement engine.

For every registered platform topology and a mix of random / StreamIt
SPGs, the refiner must preserve the contract that makes it safe to bolt
onto any experiment: never worse than its input, period-feasible,
structurally valid for the requested ``allow_general`` setting, and
deterministic per seed — for every acceptance schedule.
"""

from __future__ import annotations

import pytest

from tests.helpers import loose_period

from repro.core.evaluate import energy, is_period_feasible, validate
from repro.core.problem import ProblemInstance
from repro.heuristics.base import run
from repro.heuristics.refine import SCHEDULES, refine_mapping
from repro.platform.topology import get_topology, topology_names
from repro.spg.random_gen import random_spg
from repro.spg.streamit import streamit_workflow

#: (label, SPG factory) pairs: one random, one StreamIt-style workload.
APPS = (
    ("random16", lambda: random_spg(16, rng=5, ccr=5.0)),
    ("streamit-DCT", lambda: streamit_workflow("DCT", ccr=1.0, seed=0)),
)


def _base_mapping(problem, seed=0):
    """A valid starting mapping, or None if no heuristic succeeds."""
    for name in ("Greedy", "Random", "DPA2D"):
        res = run(name, problem, rng=seed)
        if res.ok:
            return res.mapping
    return None


def _problem(topo: str, factory):
    spg = factory()
    grid = get_topology(topo, 3, 3)
    return ProblemInstance(spg, grid, loose_period(spg, parallelism=4.0))


@pytest.mark.parametrize("topo", topology_names())
@pytest.mark.parametrize("label,factory", APPS, ids=[a[0] for a in APPS])
class TestRefineInvariantsAcrossTopologies:
    def test_energy_and_feasibility_and_structure(
        self, topo, label, factory
    ):
        problem = _problem(topo, factory)
        base = _base_mapping(problem)
        if base is None:
            pytest.skip(f"no heuristic succeeds on {topo}/{label}")
        base_e = energy(base, problem.period).total
        for allow_general in (False, True):
            out = refine_mapping(
                problem, base, rng=0, sweeps=2,
                allow_general=allow_general,
            )
            assert (
                energy(out, problem.period).total <= base_e * (1 + 1e-12)
            )
            assert is_period_feasible(out, problem.period)
            # Full structural validation: in-bounds allocation, per-core
            # (possibly heterogeneous) speed sets, topology-valid routes,
            # and the DAG-partition rule unless general mappings are on.
            validate(
                out, problem.period,
                require_dag_partition=not allow_general,
            )

    def test_deterministic_per_seed(self, topo, label, factory):
        problem = _problem(topo, factory)
        base = _base_mapping(problem)
        if base is None:
            pytest.skip(f"no heuristic succeeds on {topo}/{label}")
        a = refine_mapping(problem, base, rng=11, sweeps=2)
        b = refine_mapping(problem, base, rng=11, sweeps=2)
        assert a.alloc == b.alloc
        assert a.speeds == b.speeds
        assert a.paths == b.paths


@pytest.mark.parametrize("schedule", SCHEDULES)
class TestSchedules:
    @pytest.fixture
    def problem(self, grid_4x4):
        g = random_spg(18, rng=3, ccr=5.0)
        return ProblemInstance(g, grid_4x4, loose_period(g))

    def test_contract_holds_for_every_schedule(self, schedule, problem):
        base = run("Random", problem, rng=0).mapping
        base_e = energy(base, problem.period).total
        out = refine_mapping(
            problem, base, rng=0, sweeps=3, schedule=schedule
        )
        assert energy(out, problem.period).total <= base_e * (1 + 1e-12)
        validate(out, problem.period)

    def test_schedule_deterministic(self, schedule, problem):
        base = run("Random", problem, rng=1).mapping
        a = refine_mapping(problem, base, rng=9, sweeps=2, schedule=schedule)
        b = refine_mapping(problem, base, rng=9, sweeps=2, schedule=schedule)
        assert a.alloc == b.alloc and a.speeds == b.speeds


class TestRefineThreading:
    """Refinement threaded through run() and the experiment runners."""

    @pytest.fixture
    def problem(self, grid_2x2):
        g = random_spg(12, rng=6, ccr=5.0)
        return ProblemInstance(g, grid_2x2, loose_period(g, parallelism=3.0))

    def test_run_refine_never_worse_and_validated(self, problem):
        raw = run("Random", problem, rng=0)
        ref = run("Random", problem, rng=0, refine=True, refine_sweeps=2)
        assert raw.ok and ref.ok
        assert ref.total_energy <= raw.total_energy * (1 + 1e-12)
        validate(ref.mapping, problem.period)

    def test_run_refine_schedule_option(self, problem):
        ref = run(
            "Random", problem, rng=0, refine=True, refine_sweeps=2,
            refine_schedule="best",
        )
        assert ref.ok
        validate(ref.mapping, problem.period)

    def test_random_experiment_refine_never_worse(self):
        from repro.experiments import run_random_experiment
        from repro.platform.cmp import CMPGrid

        kwargs = dict(n=12, grid=CMPGrid(2, 2), ccr=1.0,
                      elevations=(2,), replicates=2, seed=3)
        raw = run_random_experiment(**kwargs)
        ref = run_random_experiment(**kwargs, refine=True, refine_sweeps=2)
        for elev, recs in raw.records.items():
            for a, b in zip(recs, ref.records[elev]):
                assert a.period == b.period
                for h, ra in a.results.items():
                    rb = b.results[h]
                    if ra.ok and rb.ok:
                        assert (
                            rb.total_energy
                            <= ra.total_energy * (1 + 1e-12)
                        )

    def test_refine_options_merging(self):
        from repro.experiments import refine_options

        assert refine_options(None, ("A",), refine=False) is None
        merged = refine_options(
            {"A": {"trials": 3}}, ("A", "B"), refine=True,
            sweeps=2, schedule="best",
        )
        assert merged["A"] == {
            "trials": 3, "refine": True, "refine_sweeps": 2,
            "refine_schedule": "best",
        }
        assert merged["B"]["refine"] is True
        # Explicit per-heuristic settings win over the runner flags.
        kept = refine_options(
            {"A": {"refine_sweeps": 9}}, ("A",), refine=True, sweeps=2
        )
        assert kept["A"]["refine_sweeps"] == 9


class TestTopologyAwareness:
    """Regression: the refiner honours routes and speeds of the platform
    it runs on (it used to hardwire XY-mesh assumptions)."""

    def test_torus_routes_respected(self):
        """Every path of a torus-refined mapping is a torus link chain —
        including wraparound hops a mesh would reject."""
        g = random_spg(16, rng=5, ccr=5.0)
        grid = get_topology("torus", 3, 3)
        problem = ProblemInstance(g, grid, loose_period(g, parallelism=4.0))
        base = _base_mapping(problem)
        assert base is not None
        out = refine_mapping(problem, base, rng=0, sweeps=2)
        for path in out.paths.values():
            grid.validate_path(path)

    def test_hetmesh_scaled_speed_sets_respected(self):
        """On a heterogeneous mesh the refined speeds must be members of
        each core's *scaled* DVFS set, and LITTLE-core assignments must
        use the scaled model's speeds (not the base model's)."""
        g = random_spg(16, rng=7, ccr=5.0)
        grid = get_topology("hetmesh", 3, 3)
        problem = ProblemInstance(g, grid, loose_period(g, parallelism=3.0))
        base = _base_mapping(problem)
        if base is None:
            pytest.skip("no heuristic succeeds on this hetmesh instance")
        out = refine_mapping(problem, base, rng=0, sweeps=2)
        validate(out, problem.period)
        assert grid.heterogeneous
        for core, speed in out.speeds.items():
            assert speed in grid.speed_set(core)
            assert speed in grid.core_model(core).speeds

    def test_uni_directional_routes_never_accepted(self):
        """On the uni-directional line, XY backward hops are invalid;
        the refiner must never accept a move that needs one."""
        g = random_spg(12, rng=4, ccr=5.0)
        grid = get_topology("uniline", 2, 2)  # 1x4 uni-directional
        problem = ProblemInstance(g, grid, loose_period(g, parallelism=3.0))
        base = _base_mapping(problem)
        if base is None:
            pytest.skip("no heuristic succeeds on this uniline instance")
        out = refine_mapping(problem, base, rng=0, sweeps=3)
        validate(out, problem.period)
        for path in out.paths.values():
            grid.validate_path(path)
