"""Tests for the scenario sweep engine and its CLI surface."""

import json

from repro.experiments import (
    ScenarioSpec,
    build_scenarios,
    run_scenario_sweep,
    sweep_summary,
)
from repro.experiments.scenarios import parse_size


class TestSpecs:
    def test_parse_size(self):
        assert parse_size("4x4") == (4, 4)
        assert parse_size((2, 3)) == (2, 3)

    def test_parse_size_rejects_garbage(self):
        import pytest

        with pytest.raises(ValueError):
            parse_size("4by4")

    def test_cross_product_order(self):
        specs = build_scenarios(
            topologies=("mesh", "torus"), sizes=("2x2",), ccrs=(1.0,),
            apps=("random-8", "random-10"),
        )
        assert len(specs) == 4
        assert specs[0] == ScenarioSpec("mesh", 2, 2, 1.0, "random-8")
        assert specs[-1] == ScenarioSpec("torus", 2, 2, 1.0, "random-10")

    def test_label(self):
        spec = ScenarioSpec("benes", 2, 2, None, "FMRadio")
        assert spec.label() == "benes/2x2/ccr=orig/FMRadio"


class TestSweep:
    def test_small_sweep_report(self):
        report = run_scenario_sweep(
            topologies=("mesh", "torus", "hetmesh"),
            sizes=("2x2",),
            ccrs=(1.0,),
            apps=("random-10",),
            replicates=2,
            seed=3,
        )
        meta = report["meta"]
        assert meta["scenario_count"] == 3
        assert meta["instance_count"] == 6
        assert len(report["scenarios"]) == 3
        for sc in report["scenarios"]:
            assert sc["instances"] == 2
            assert len(sc["records"]) == 2
            for rec in sc["records"]:
                assert rec["period"] > 0
                # At least one heuristic succeeded at the chosen period.
                assert any(r["ok"] for r in rec["results"].values())
        het = [s for s in report["scenarios"] if s["heterogeneous"]]
        assert [s["topology"] for s in het] == ["hetmesh"]

    def test_report_is_json_serialisable(self):
        report = run_scenario_sweep(
            topologies=("ring",), sizes=("1x4",), ccrs=(1.0,),
            apps=("random-8",), replicates=1, seed=0,
        )
        text = json.dumps(report)
        assert json.loads(text) == report

    def test_summary_renders(self):
        report = run_scenario_sweep(
            topologies=("mesh",), sizes=("2x2",), ccrs=(1.0,),
            apps=("random-8",), replicates=1, seed=0,
        )
        text = sweep_summary(report)
        assert "mesh" in text
        assert "Random" in text

    def test_streamit_app_class(self):
        report = run_scenario_sweep(
            topologies=("mesh",), sizes=("4x4",), ccrs=(1.0,),
            apps=("DCT",), replicates=1, seed=0,
        )
        sc = report["scenarios"][0]
        assert sc["app"] == "DCT"
        assert sc["instances"] == 1

    def test_seed_determinism(self):
        kw = dict(
            topologies=("torus",), sizes=("2x2",), ccrs=(10.0,),
            apps=("random-10",), replicates=2, seed=11,
        )
        a = run_scenario_sweep(**kw)
        b = run_scenario_sweep(**kw)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestSweepCli:
    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_sweep_command(self, tmp_path):
        out_path = tmp_path / "report.json"
        code, text = self.run_cli(
            "sweep", "--topologies", "mesh", "ring", "--sizes", "2x2",
            "--ccr", "1.0", "--apps", "random-8", "--out", str(out_path),
        )
        assert code == 0
        assert "Scenario sweep" in text
        report = json.loads(out_path.read_text())
        assert report["meta"]["scenario_count"] == 2

    def test_platform_list(self):
        code, text = self.run_cli("platform", "list")
        assert code == 0
        for name in ("mesh", "torus", "ring", "benes", "hetmesh"):
            assert name in text

    def test_platform_describe(self):
        code, text = self.run_cli("platform", "describe", "torus")
        assert code == 0
        assert "torus" in text and "sample route" in text

    def test_platform_describe_unknown(self):
        code, text = self.run_cli("platform", "describe", "hypercube")
        assert code == 2
        assert "unknown topology" in text

    def test_map_with_topology(self):
        code, text = self.run_cli(
            "map", "-w", "DCT", "-H", "DPA1D", "--topology", "torus",
            "--seed", "1",
        )
        assert code == 0
        assert "energy:" in text

    def test_compare_on_benes(self):
        code, text = self.run_cli(
            "compare", "--random", "10", "--topology", "benes",
            "--grid", "2x2", "--seed", "2",
        )
        assert code == 0
        assert "Greedy" in text
