"""Tests for the batch mapping service (repro serve --batch)."""

from __future__ import annotations

import json

import pytest

from repro.store import (
    BatchRequest,
    MemoryStore,
    load_requests,
    serve_batch,
)
from repro.store.service import serve_summary

REQS = [
    {"solver": "greedy", "app": "random-10", "size": "2x2", "seed": 0},
    {"solver": "dpa2d1d+refine", "app": "random-10", "topology": "torus",
     "size": "2x2", "ccr": 10.0, "seed": 1},
    {"solver": "greedy|dpa1d", "app": "DCT", "size": "2x2", "seed": 2},
    # An explicit, hopeless period: a deterministic failure answer.
    {"solver": "greedy", "app": "random-10", "size": "2x2", "seed": 0,
     "period": 1e-9},
]


def strip_cached(report: dict) -> list[dict]:
    return [
        {k: v for k, v in r.items() if k != "cached"}
        for r in report["responses"]
    ]


class TestLoadRequests:
    def test_bare_list_and_wrapped(self, tmp_path):
        p1 = tmp_path / "bare.json"
        p1.write_text(json.dumps(REQS))
        p2 = tmp_path / "wrapped.json"
        p2.write_text(json.dumps({"requests": REQS}))
        assert load_requests(str(p1)) == load_requests(str(p2))
        assert len(load_requests(str(p1))) == 4

    def test_defaults(self):
        (req,) = load_requests([{"solver": "greedy"}])
        assert req == BatchRequest(solver="greedy")
        assert req.app == "FMRadio" and req.size == "4x4"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            load_requests([{"solver": "greedy", "sovler_typo": 1}])

    def test_non_list_rejected(self):
        with pytest.raises(ValueError):
            load_requests({"not_requests": []})


class TestServeBatch:
    def test_cold_then_warm_hits_and_equality(self):
        store = MemoryStore()
        reqs = load_requests(REQS)
        cold = serve_batch(reqs, store=store)
        assert cold["meta"]["hits"] == 0
        assert cold["meta"]["misses"] == 4
        assert store.stats()["by_kind"] == {"solve": 4}

        warm = serve_batch(reqs, store=store)
        assert warm["meta"]["hits"] == 4
        assert warm["meta"]["misses"] == 0
        assert all(r["cached"] for r in warm["responses"])
        # Everything except the cached flag is bit-identical.
        assert strip_cached(cold) == strip_cached(warm)

    def test_jobs_invariance(self):
        reqs = load_requests(REQS)
        serial = serve_batch(reqs, store=MemoryStore(), jobs=1)
        pooled = serve_batch(reqs, store=MemoryStore(), jobs=2)
        assert strip_cached(serial) == strip_cached(pooled)

    def test_response_shape(self):
        reqs = load_requests(REQS)
        report = serve_batch(reqs, store=MemoryStore())
        ok = report["responses"][0]
        assert ok["ok"] and ok["failure"] is None
        assert ok["total_energy"] == sum(ok["energy"].values())
        assert ok["period"] > 0
        assert len(ok["key"]) == 64
        assert ok["request"]["solver"] == "greedy"
        fail = report["responses"][3]
        assert not fail["ok"]
        assert fail["energy"] is None and fail["total_energy"] is None
        assert "no speed" in fail["failure"] or fail["failure"]

    def test_identical_requests_share_one_key(self):
        # Two identical requests: the second is answered by the first's
        # freshly-stored result within the same batch... or computed in
        # the same miss fan-out; either way the keys and answers match.
        store = MemoryStore()
        reqs = load_requests([REQS[0], dict(REQS[0])])
        report = serve_batch(reqs, store=store)
        a, b = report["responses"]
        assert a["key"] == b["key"]
        assert len(store) == 1
        assert {k: v for k, v in a.items() if k not in ("index", "cached")} \
            == {k: v for k, v in b.items() if k not in ("index", "cached")}

    def test_seed_changes_key(self):
        reqs = load_requests([
            dict(REQS[0], seed=0), dict(REQS[0], seed=1),
        ])
        report = serve_batch(reqs, store=MemoryStore())
        a, b = report["responses"]
        assert a["key"] != b["key"]

    def test_ccr_none_means_natural_ccr(self):
        # ccr=null passes through to the app builder (the sweep's
        # semantics), so it is a different instance than ccr=10.
        natural, rescaled = load_requests([
            dict(REQS[0], ccr=None), dict(REQS[0], ccr=10.0),
        ])
        assert natural.build_app().ccr != rescaled.build_app().ccr
        report = serve_batch(
            [natural, rescaled], store=MemoryStore()
        )
        a, b = report["responses"]
        assert a["key"] != b["key"]
        assert a["total_energy"] != b["total_energy"]

    def test_streamit_index_app(self):
        (req,) = load_requests([
            {"solver": "greedy", "app": "3", "size": "4x4", "seed": 0}
        ])
        report = serve_batch([req], store=MemoryStore())
        assert report["responses"][0]["ok"]

    def test_summary_renders(self):
        reqs = load_requests(REQS)
        report = serve_batch(reqs, store=MemoryStore())
        text = serve_summary(report)
        assert "4 requests" in text
        assert "miss" in text
        assert "FAILED" in text
