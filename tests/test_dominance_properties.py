"""Cross-heuristic dominance properties.

These encode the *provable* relationships between the heuristics, which
must hold on every instance (unlike the statistical shapes of Section 6):

* DPA1D is optimal over snake clusterings, and DPA2D1D optimises over a
  strict subset of those (whole-level clusterings), so whenever both
  complete, ``E(DPA1D) <= E(DPA2D1D)``.
* No heuristic beats the brute-force optimum (tested at small scale).
* Refinement never increases energy.
"""

import pytest

from tests.helpers import loose_period

from repro.core.errors import BudgetExceeded, HeuristicFailure
from repro.core.evaluate import energy
from repro.core.problem import ProblemInstance
from repro.heuristics.dpa1d import dpa1d_mapping
from repro.heuristics.dpa2d import dpa2d1d_mapping
from repro.heuristics.refine import refine_mapping
from repro.platform.cmp import CMPGrid
from repro.spg.random_gen import random_spg, random_spg_with_elevation


class TestDpa1dDominatesDpa2d1d:
    @pytest.mark.parametrize("seed", range(6))
    def test_dominance_random(self, seed, grid_4x4):
        g = random_spg(16, rng=seed, ccr=5.0)
        prob = ProblemInstance(g, grid_4x4, loose_period(g))
        try:
            m1 = dpa1d_mapping(prob)
        except (HeuristicFailure, BudgetExceeded):
            pytest.skip("DPA1D budget/feasibility")
        try:
            m2 = dpa2d1d_mapping(prob)
        except HeuristicFailure:
            return  # DPA2D1D failing while DPA1D succeeds is consistent
        e1 = energy(m1, prob.period).total
        e2 = energy(m2, prob.period).total
        assert e1 <= e2 * (1 + 1e-9)

    @pytest.mark.parametrize("elev", [2, 3, 4])
    def test_dominance_by_elevation(self, elev, grid_4x4):
        g = random_spg_with_elevation(14, elev, rng=elev, ccr=5.0)
        prob = ProblemInstance(g, grid_4x4, loose_period(g))
        try:
            e1 = energy(dpa1d_mapping(prob), prob.period).total
            e2 = energy(dpa2d1d_mapping(prob), prob.period).total
        except (HeuristicFailure, BudgetExceeded):
            pytest.skip("instance infeasible for one of the DPs")
        assert e1 <= e2 * (1 + 1e-9)


class TestRefinementDominance:
    @pytest.mark.parametrize("name", ["Random", "Greedy", "DPA2D1D"])
    def test_refine_never_hurts(self, name, grid_4x4):
        from repro.heuristics.base import REGISTRY

        g = random_spg(15, rng=2, ccr=5.0)
        prob = ProblemInstance(g, grid_4x4, loose_period(g))
        try:
            base = REGISTRY[name](prob, rng=0)
        except HeuristicFailure:
            pytest.skip(f"{name} failed")
        out = refine_mapping(prob, base, rng=0, sweeps=2)
        assert (
            energy(out, prob.period).total
            <= energy(base, prob.period).total * (1 + 1e-12)
        )

    def test_refining_dpa1d_on_uniline_gains_nothing(self):
        """DPA1D is optimal on the uni-directional line: moving any single
        stage or swapping any clusters cannot reduce energy further when
        restricted to the same platform."""
        g = random_spg(10, rng=4, ccr=5.0)
        grid = CMPGrid.uni_line(4, uni_directional=True)
        prob = ProblemInstance(g, grid, loose_period(g, parallelism=3))
        try:
            base = dpa1d_mapping(prob)
        except HeuristicFailure:
            pytest.skip("infeasible")
        out = refine_mapping(prob, base, rng=0, sweeps=3)
        assert energy(out, prob.period).total == pytest.approx(
            energy(base, prob.period).total, rel=1e-9
        )


class TestGridMonotonicity:
    def test_bigger_grid_never_worse_for_dpa1d(self):
        """More snake cores can only help the 1D DP (same budgets)."""
        g = random_spg(12, rng=7, ccr=5.0)
        T = loose_period(g, parallelism=4)
        energies = []
        for r in (2, 4, 8):
            prob = ProblemInstance(g, CMPGrid(1, r), T)
            try:
                energies.append(energy(dpa1d_mapping(prob), T).total)
            except HeuristicFailure:
                energies.append(float("inf"))
        assert energies[0] >= energies[1] * (1 - 1e-9)
        assert energies[1] >= energies[2] * (1 - 1e-9)
