"""Tests for the unified solver registry, spec parsing and composites.

The load-bearing assertions are the *golden-equivalence* ones: every
registry-routed solver must match the legacy direct call path it wraps
bit for bit (same allocation, same speeds, same repr-exact energy), and
portfolio winners must be identical for any ``jobs`` value.
"""

from __future__ import annotations

import pytest

from repro.core.errors import HeuristicFailure, MappingError
from repro.core.evaluate import validate
from repro.core.problem import ProblemInstance
from repro.experiments import choose_period
from repro.experiments.parallel import pool_available
from repro.heuristics.base import PAPER_ORDER, REGISTRY, run
from repro.platform.cmp import CMPGrid
from repro.solvers import (
    HEURISTIC_KEYS,
    SOLVERS,
    PipelineSolver,
    PortfolioSolver,
    RefineStage,
    get_solver,
    merge_solver_options,
    parse_solver_spec,
    solve,
    solver_names,
)
from repro.spg.random_gen import random_spg
from repro.util.rng import as_rng


@pytest.fixture(scope="module")
def instance():
    """One fixed, feasible mesh instance shared by the module."""
    spg = random_spg(20, rng=3, ccr=10.0)
    grid = CMPGrid(3, 3)
    T = choose_period(spg, grid, rng=7).period
    return ProblemInstance(spg, grid, T)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_expected_solvers_registered(self):
        expected = {
            "random", "greedy", "dpa2d", "dpa1d", "dpa2d1d",
            "bruteforce", "ilp", "bnb",
            "refine", "refine-best", "refine-anneal",
            "portfolio",
        }
        assert expected <= set(solver_names())

    def test_kinds(self):
        assert SOLVERS["greedy"].kind == "producer"
        assert SOLVERS["refine"].kind == "transform"
        assert SOLVERS["portfolio"].kind == "composite"

    def test_every_paper_heuristic_is_wrapped(self):
        assert set(HEURISTIC_KEYS.values()) == set(PAPER_ORDER)

    def test_unknown_name_raises_keyerror_with_names(self):
        with pytest.raises(KeyError, match="available"):
            get_solver("no-such-solver")

    def test_lookup_is_case_insensitive(self):
        assert get_solver("DPA2D1D").spec == "dpa2d1d"


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_single_name(self):
        s = parse_solver_spec("greedy")
        assert s.kind == "producer" and s.spec == "greedy"

    def test_pipeline_spec(self):
        s = parse_solver_spec("dpa2d1d+refine")
        assert isinstance(s, PipelineSolver)
        assert [st.spec for st in s.stages] == ["dpa2d1d", "refine"]

    def test_portfolio_spec(self):
        s = parse_solver_spec("greedy|dpa2d1d+refine")
        assert isinstance(s, PortfolioSolver)
        assert s.members == ["greedy", "dpa2d1d+refine"]

    def test_unknown_member_raises(self):
        with pytest.raises(KeyError):
            parse_solver_spec("greedy|nope")

    def test_transform_cannot_start(self):
        with pytest.raises(ValueError, match="transform"):
            parse_solver_spec("refine")
        with pytest.raises(ValueError, match="transform"):
            parse_solver_spec("refine+greedy")

    def test_producer_cannot_follow(self):
        with pytest.raises(ValueError, match="pipeline"):
            parse_solver_spec("greedy+dpa1d")

    def test_empty_spec(self):
        with pytest.raises(ValueError):
            parse_solver_spec("   ")

    def test_portfolio_rejects_producer_options(self):
        with pytest.raises(ValueError, match="portfolio"):
            parse_solver_spec("greedy|dpa1d", options={"trials": 2})

    def test_solver_passthrough(self):
        s = get_solver("greedy")
        assert parse_solver_spec(s) is s


# ----------------------------------------------------------------------
# Golden equivalence against the legacy direct call paths
# ----------------------------------------------------------------------
def legacy_run(name, problem, rng=None, refine=False, sweeps=4,
               schedule="first", allow_general=False, **options):
    """The pre-registry ``heuristics.base.run`` body, verbatim."""
    fn = REGISTRY[name]
    try:
        mapping = fn(problem, rng=rng, **options)
    except HeuristicFailure as exc:
        return None, None, str(exc) or "failed"
    if refine:
        from repro.heuristics.refine import refine_mapping

        try:
            validate(mapping, problem.period)
        except MappingError as exc:
            return None, None, f"INVALID OUTPUT: {exc}"
        mapping = refine_mapping(
            problem, mapping, rng=rng, sweeps=sweeps,
            allow_general=allow_general, schedule=schedule,
        )
    try:
        breakdown = validate(
            mapping, problem.period,
            require_dag_partition=not (refine and allow_general),
        )
    except MappingError as exc:
        return None, None, f"INVALID OUTPUT: {exc}"
    return mapping, breakdown, None


def assert_same_outcome(res, mapping, breakdown, failure):
    assert res.ok == (mapping is not None)
    if mapping is None:
        assert res.failure == failure
        return
    assert res.mapping.alloc == mapping.alloc
    assert res.mapping.speeds == mapping.speeds
    assert res.mapping.paths == mapping.paths
    assert repr(res.total_energy) == repr(breakdown.total)


class TestLegacyEquivalence:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    @pytest.mark.parametrize("seed", [0, 11])
    def test_registry_matches_direct_call(self, instance, name, seed):
        res = solve(name.lower(), instance, rng=as_rng(seed))
        expected = legacy_run(name, instance, rng=as_rng(seed))
        assert_same_outcome(res, *expected)

    @pytest.mark.parametrize("name", ["Random", "Greedy", "DPA2D1D"])
    @pytest.mark.parametrize("schedule", ["first", "best"])
    def test_refine_pipeline_matches_refine_kwargs(
        self, instance, name, schedule
    ):
        stage = "refine" if schedule == "first" else f"refine-{schedule}"
        res = solve(f"{name.lower()}+{stage}", instance, rng=as_rng(5))
        expected = legacy_run(
            name, instance, rng=as_rng(5), refine=True, schedule=schedule
        )
        assert_same_outcome(res, *expected)

    def test_run_wrapper_refine_kwargs_alias_the_spec(self, instance):
        a = run("DPA2D1D", instance, rng=as_rng(9), refine=True)
        b = run("dpa2d1d+refine", instance, rng=as_rng(9))
        assert repr(a.total_energy) == repr(b.total_energy)
        assert a.mapping.alloc == b.mapping.alloc

    def test_refine_kwarg_on_refined_spec_never_refines_twice(
        self, instance
    ):
        """refine=True on a spec already ending in +refine is a no-op,
        not a second refinement pass."""
        a = run("dpa2d1d+refine", instance, rng=as_rng(9), refine=True)
        b = run("dpa2d1d+refine", instance, rng=as_rng(9))
        assert repr(a.total_energy) == repr(b.total_energy)
        assert a.mapping.alloc == b.mapping.alloc
        assert [s["solver"] for s in a.stats["stages"]] == [
            "dpa2d1d", "refine"
        ]

    def test_conflicting_refine_options_raise(self, instance):
        """Non-default refine_* settings on an already-refined spec are
        a conflict, not a silent drop."""
        with pytest.raises(ValueError, match="already pipelines"):
            run("dpa2d1d+refine", instance, rng=as_rng(9),
                refine=True, refine_schedule="anneal")
        with pytest.raises(ValueError, match="already pipelines"):
            run("dpa2d1d+refine-best", instance, rng=as_rng(9),
                refine=True, refine_allow_general=True)

    def test_run_results_carry_solver_stats(self, instance):
        """Portfolio metadata survives the HeuristicResult conversion
        (so experiment records can say which member won)."""
        res = run("portfolio", instance, rng=as_rng(5))
        assert res.stats["winner"] is not None
        assert len(res.stats["members"]) == 5
        assert res.stats["seconds"] >= 0

    def test_run_wrapper_failure_contract_unchanged(self, instance):
        tight = instance.scaled(1e-9)
        res = run("Greedy", tight, rng=0)
        assert not res.ok and res.failure

    def test_run_rejects_unknown_spec(self, instance):
        with pytest.raises(KeyError):
            run("NoSuchSolver+refine", instance)


class TestExactAdapters:
    @pytest.fixture(scope="class")
    def tiny(self):
        spg = random_spg(6, rng=1, ccr=1.0)
        grid = CMPGrid(2, 2)
        T = choose_period(spg, grid, rng=1).period
        return ProblemInstance(spg, grid, T)

    def test_bruteforce_matches_direct_call(self, tiny):
        from repro.exact import brute_force_optimal

        mapping, obj = brute_force_optimal(tiny)
        res = solve("bruteforce", tiny)
        assert res.ok
        assert res.mapping.alloc == mapping.alloc
        assert repr(res.total_energy) == repr(obj)
        assert res.stats["objective"] == obj

    def test_bruteforce_failure_is_recorded(self, tiny):
        res = solve("bruteforce", tiny.scaled(1e-9))
        assert not res.ok and "brute force" in res.failure

    def test_ilp_unsupported_platform_is_a_recorded_failure(self, tiny):
        """Off the mesh the ilp adapter fails like any other solver —
        with the loud message intact — instead of aborting the whole
        run/sweep; the direct exact/ entry point still raises."""
        from repro.platform.topology import get_topology

        torus = ProblemInstance(
            tiny.spg, get_topology("torus", 2, 2), tiny.period
        )
        res = solve("ilp", torus)
        assert not res.ok
        assert res.failure.startswith("UnsupportedPlatform")
        assert "mesh" in res.failure
        hres = run("ilp", torus)
        assert not hres.ok and "UnsupportedPlatform" in hres.failure

    def test_sweep_survives_unsupported_exact_column(self, tiny):
        from repro.experiments import run_scenario_sweep

        report = run_scenario_sweep(
            topologies=("mesh", "torus"), sizes=("2x2",), ccrs=(1.0,),
            apps=("random-6",), replicates=1, seed=0,
            solvers=("Greedy", "ilp"),
        )
        by_topo = {sc["topology"]: sc for sc in report["scenarios"]}
        assert by_topo["torus"]["failures"]["ilp"] == 1
        assert by_topo["torus"]["failures"]["Greedy"] == 0
        assert by_topo["mesh"]["failures"]["ilp"] == 0

    def test_ilp_and_bnb_match_direct_call(self, two_speed_model):
        from repro.exact import ilp_optimal
        from repro.spg.build import diamond

        g = diamond((4e8, 2e8, 3e8, 1e8), (1e7, 2e7, 3e7, 4e7))
        prob = ProblemInstance(g, CMPGrid(2, 2, two_speed_model), 0.6)
        mapping, obj = ilp_optimal(prob)
        for spec in ("ilp", "bnb"):
            res = solve(spec, prob)
            assert res.ok and res.solver == spec
            assert res.mapping.alloc == mapping.alloc
            assert res.stats["objective"] == pytest.approx(obj)


# ----------------------------------------------------------------------
# Portfolio determinism
# ----------------------------------------------------------------------
class TestPortfolio:
    def test_winner_is_best_feasible_member(self, instance):
        res = solve("portfolio", instance, rng=as_rng(5))
        assert res.ok
        members = res.stats["members"]
        best = min(
            (m["energy"] for m in members if m["ok"]), default=None
        )
        assert res.total_energy == best
        assert res.stats["winner"] is not None

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_jobs_invariance(self, instance, jobs):
        if jobs > 1 and not pool_available():  # pragma: no cover
            pytest.skip("process pools unavailable in this environment")
        baseline = get_solver("portfolio", jobs=1).solve(
            instance, rng=as_rng(5)
        )
        res = get_solver("portfolio", jobs=jobs).solve(
            instance, rng=as_rng(5)
        )
        assert repr(res.total_energy) == repr(baseline.total_energy)
        assert res.stats["winner"] == baseline.stats["winner"]
        assert res.mapping.alloc == baseline.mapping.alloc

    def test_tie_breaks_toward_earliest_member(self, instance):
        res = PortfolioSolver(["greedy", "greedy"]).solve(
            instance, rng=as_rng(5)
        )
        assert res.ok
        members = res.stats["members"]
        assert members[0]["energy"] == members[1]["energy"]
        assert res.stats["winner"] == "greedy"

    def test_all_members_failing(self, instance):
        res = solve("portfolio", instance.scaled(1e-9), rng=as_rng(0))
        assert not res.ok
        assert "every member failed" in res.failure
        assert all(not m["ok"] for m in res.stats["members"])

    def test_member_seeds_are_independent_draws(self, instance):
        """Adding a member must not change earlier members' seeds."""
        a = PortfolioSolver(["random"]).solve(instance, rng=as_rng(3))
        b = PortfolioSolver(["random", "greedy"]).solve(
            instance, rng=as_rng(3)
        )
        assert (
            a.stats["members"][0]["energy"]
            == b.stats["members"][0]["energy"]
        )

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            PortfolioSolver([])

    def test_member_library_errors_become_member_failures(self, instance):
        """A member failing loudly (ILP off the mesh) must not abort the
        portfolio: the best-feasible-member contract wins."""
        from repro.platform.topology import get_topology

        torus = ProblemInstance(
            instance.spg, get_topology("torus", 3, 3), instance.period
        )
        res = PortfolioSolver(["greedy", "ilp"]).solve(torus, rng=as_rng(0))
        assert res.ok
        assert res.stats["winner"] == "greedy"
        ilp_member = res.stats["members"][1]
        assert not ilp_member["ok"]
        assert "UnsupportedPlatform" in ilp_member["failure"]

    def test_configured_member_options_survive_dispatch(self, instance):
        """Solver-object members keep their options; a worker must not
        re-parse them back to defaults."""
        pf = PortfolioSolver([get_solver("random", trials=1), "greedy"])
        assert pf._solvers[0].options == {"trials": 1}
        res = pf.solve(instance, rng=as_rng(3))
        seed0 = int(as_rng(3).integers(0, 2**63 - 1))
        direct = get_solver("random", trials=1).solve(
            instance, rng=as_rng(seed0)
        )
        assert (
            res.stats["members"][0]["energy"]
            == (direct.total_energy if direct.ok else None)
        )
        if pool_available():  # pragma: no branch
            pooled = PortfolioSolver(
                [get_solver("random", trials=1), "greedy"], jobs=2
            ).solve(instance, rng=as_rng(3))
            assert (
                pooled.stats["members"][0]["energy"]
                == res.stats["members"][0]["energy"]
            )

    def test_invalid_member_rejected_at_construction(self):
        with pytest.raises(KeyError):
            PortfolioSolver(["greedy", "nope"])

    def test_pipeline_over_portfolio(self, instance):
        res = solve("portfolio+refine", instance, rng=as_rng(5))
        base = solve("portfolio", instance, rng=as_rng(5))
        assert res.ok
        assert res.total_energy <= base.total_energy


# ----------------------------------------------------------------------
# Transform-stage contract and option plumbing
# ----------------------------------------------------------------------
class TestStageContract:
    def test_refine_stage_requires_upstream(self, instance):
        with pytest.raises(ValueError, match="upstream"):
            RefineStage().solve(instance, rng=0)

    def test_pipeline_short_circuits_on_failure(self, instance):
        res = solve("greedy+refine", instance.scaled(1e-9), rng=as_rng(0))
        assert not res.ok
        assert [st["solver"] for st in res.stats["stages"]] == ["greedy"]

    def test_stats_carry_timings(self, instance):
        res = solve("dpa2d1d+refine", instance, rng=as_rng(0))
        assert res.stats["seconds"] >= 0
        assert all(st["seconds"] >= 0 for st in res.stats["stages"])


class TestOptionPlumbing:
    def test_merge_solver_options_untouched_without_refine(self):
        assert merge_solver_options(None, ("A",), refine=False) is None

    def test_merge_solver_options_applies_to_specs(self):
        merged = merge_solver_options(
            None, ("Greedy", "dpa1d"), refine=True,
            refine_sweeps=2, refine_schedule="best",
        )
        assert merged["dpa1d"]["refine"] is True
        assert merged["Greedy"]["refine_sweeps"] == 2
        assert merged["Greedy"]["refine_schedule"] == "best"

    def test_merge_skips_specs_with_refine_stage(self):
        """--refine combined with a +refine spec must not refine twice."""
        merged = merge_solver_options(
            None, ("Greedy", "dpa2d1d+refine", "greedy|dpa1d+refine-best"),
            refine=True,
        )
        assert merged["Greedy"]["refine"] is True
        assert "dpa2d1d+refine" not in merged
        assert "greedy|dpa1d+refine-best" not in merged
        # Case-insensitive, like get_solver's key lookup.
        assert "DPA2D1D+Refine" not in merge_solver_options(
            None, ("DPA2D1D+Refine",), refine=True
        )

    def test_producer_options_forwarded_through_spec(self, instance):
        res = solve("random", instance, rng=as_rng(1), trials=1)
        assert res.ok or res.failure


# ----------------------------------------------------------------------
# Experiment runners on the solver axis
# ----------------------------------------------------------------------
class TestSolverAxisExperiments:
    def test_random_experiment_solvers_axis_matches_refine_kwargs(self):
        from repro.experiments import run_random_experiment

        grid = CMPGrid(2, 2)
        legacy = run_random_experiment(
            12, grid, 1.0, elevations=(2,), replicates=1, seed=5,
            heuristics=("DPA2D1D",), refine=True,
        )
        spec = run_random_experiment(
            12, grid, 1.0, elevations=(2,), replicates=1, seed=5,
            solvers=("dpa2d1d+refine",),
        )
        rec_a = legacy.records[2][0]
        rec_b = spec.records[2][0]
        assert rec_a.period == rec_b.period
        ea = rec_a.results["DPA2D1D"].total_energy
        eb = rec_b.results["dpa2d1d+refine"].total_energy
        assert repr(ea) == repr(eb)

    def test_scenario_sweep_solvers_axis(self):
        from repro.experiments import run_scenario_sweep, sweep_summary

        report = run_scenario_sweep(
            topologies=("mesh",), sizes=("2x2",), ccrs=(1.0,),
            apps=("random-12",), replicates=1, seed=0,
            solvers=("Greedy", "dpa2d1d+refine"),
        )
        assert report["meta"]["solvers"] == ["Greedy", "dpa2d1d+refine"]
        assert report["meta"]["solver_axis"] is True
        sc = report["scenarios"][0]
        assert set(sc["failures"]) == {"Greedy", "dpa2d1d+refine"}
        assert "dpa2d1d+refine" in sweep_summary(report)
