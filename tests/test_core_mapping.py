"""Unit tests for the Mapping object and its structural validation."""

import pytest

from repro.core.errors import MappingError
from repro.core.mapping import Mapping
from repro.platform.speeds import GHZ
from repro.spg.build import chain, diamond


def make(spg, grid, alloc, speeds, paths=None):
    return Mapping(spg, grid, alloc, speeds, paths or {})


class TestViews:
    def test_clusters(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 1), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
        )
        assert m.clusters() == {(0, 0): [0, 1], (0, 1): [2, 3]}

    def test_active_cores(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {i: (0, 0) for i in range(4)},
            {(0, 0): 1.0 * GHZ},
        )
        assert m.active_cores() == {(0, 0)}

    def test_core_work(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 1), 2: (0, 1), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
        )
        w = m.core_work()
        assert w[(0, 0)] == pytest.approx(4e8)
        assert w[(0, 1)] == pytest.approx(6e8)

    def test_remote_edges(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
        )
        assert set(m.remote_edges()) == {(1, 3), (2, 3)}

    def test_default_xy_paths(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (1, 1), 2: (0, 0), 3: (1, 1)},
            {(0, 0): 1.0 * GHZ, (1, 1): 1.0 * GHZ},
        )
        assert m.paths[(0, 1)] == [(0, 0), (0, 1), (1, 1)]

    def test_link_traffic_accumulates(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
        )
        # edges (1,3)=3e7 and (2,3)=4e7 both cross ((0,0),(0,1)).
        assert m.link_traffic() == {((0, 0), (0, 1)): pytest.approx(7e7)}

    def test_hops(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (1, 1), 2: (0, 0), 3: (1, 1)},
            {(0, 0): 1.0 * GHZ, (1, 1): 1.0 * GHZ},
        )
        # (0,1): 2 hops of 1e7; (2,3): 2 hops of 4e7; (0,2),(1,3) local.
        assert m.hops() == pytest.approx(2e7 + 8e7)

    def test_ascii(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (1, 1)},
            {(0, 0): 1.0 * GHZ, (1, 1): 1.0 * GHZ},
        )
        assert m.ascii() == "3 .\n. 1"


class TestStructureValidation:
    def test_valid(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 0.15 * GHZ},
        )
        m.check_structure()
        assert m.is_valid_structure()

    def test_missing_stage(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0)},
            {(0, 0): 1.0 * GHZ},
        )
        with pytest.raises(MappingError, match="cover every stage"):
            m.check_structure()

    def test_out_of_bounds_core(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (5, 5)},
            {(0, 0): 1.0 * GHZ, (5, 5): 1.0 * GHZ},
        )
        with pytest.raises(MappingError, match="outside the grid"):
            m.check_structure()

    def test_missing_speed(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {i: (0, 0) for i in range(4)},
            {},
        )
        with pytest.raises(MappingError, match="no speed"):
            m.check_structure()

    def test_bad_speed_value(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {i: (0, 0) for i in range(4)},
            {(0, 0): 0.5 * GHZ},  # not an XScale speed
        )
        with pytest.raises(MappingError, match="not in the DVFS set"):
            m.check_structure()

    def test_path_wrong_endpoints(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
            paths={
                (1, 3): [(0, 0), (0, 1)],
                (2, 3): [(1, 0), (1, 1)],  # does not start at alloc[2]
            },
        )
        with pytest.raises(MappingError, match="does not connect"):
            m.check_structure()

    def test_path_invalid_link(self, small_diamond, grid_2x2):
        m = make(
            small_diamond, grid_2x2,
            {0: (0, 0), 1: (0, 0), 2: (0, 0), 3: (1, 1)},
            {(0, 0): 1.0 * GHZ, (1, 1): 1.0 * GHZ},
            paths={(1, 3): [(0, 0), (1, 1)], (2, 3): [(0, 0), (0, 1), (1, 1)]},
        )
        with pytest.raises(MappingError):
            m.check_structure()

    def test_cyclic_partition_rejected(self, grid_2x2):
        g = chain(4, [1e8] * 4, [1e6] * 3)
        m = make(
            g, grid_2x2,
            {0: (0, 0), 1: (0, 1), 2: (0, 0), 3: (0, 1)},
            {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ},
        )
        with pytest.raises(MappingError, match="not a DAG-partition"):
            m.check_structure()


class TestFromClusters:
    def test_assigns_slowest_feasible(self, grid_2x2):
        g = chain(3, [3e8, 1e8, 1e8], [1e6, 1e6])
        m = Mapping.from_clusters(
            g, grid_2x2, {(0, 0): [0], (0, 1): [1, 2]}, period=1.0
        )
        assert m.speeds[(0, 0)] == 0.4 * GHZ
        assert m.speeds[(0, 1)] == 0.4 * GHZ

    def test_duplicate_stage_rejected(self, grid_2x2, small_diamond):
        with pytest.raises(MappingError, match="two clusters"):
            Mapping.from_clusters(
                small_diamond, grid_2x2,
                {(0, 0): [0, 1], (0, 1): [1, 2, 3]}, period=1.0,
            )

    def test_infeasible_cluster_rejected(self, grid_2x2):
        g = chain(3, [3e9, 1e8, 1e8], [1e6, 1e6])  # 3e9 cycles > 1s at 1GHz
        with pytest.raises(MappingError, match="cannot meet"):
            Mapping.from_clusters(
                g, grid_2x2, {(0, 0): [0, 1, 2]}, period=1.0
            )
