"""Tests for the extensions: local-search refinement, latency, visualisation,
and report exporters."""

import pytest

from tests.helpers import loose_period

from repro.core.evaluate import energy, latency, validate
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.core.visualize import (
    render_label_grid,
    render_link_utilisation,
    render_mapping,
    summarize,
)
from repro.experiments.report import (
    random_csv,
    random_markdown,
    streamit_csv,
    streamit_markdown,
)
from repro.heuristics.greedy import greedy_mapping
from repro.heuristics.random_heuristic import random_mapping
from repro.heuristics.refine import refine_mapping, refined
from repro.platform.cmp import CMPGrid
from repro.platform.speeds import GHZ
from repro.spg.build import chain, diamond
from repro.spg.random_gen import random_spg


@pytest.fixture
def problem(grid_4x4):
    g = random_spg(18, rng=3, ccr=5.0)
    return ProblemInstance(g, grid_4x4, loose_period(g))


class TestRefine:
    def test_never_worse(self, problem):
        base = random_mapping(problem, rng=0)
        out = refine_mapping(problem, base, rng=0)
        assert (
            energy(out, problem.period).total
            <= energy(base, problem.period).total * (1 + 1e-12)
        )

    def test_output_valid(self, problem):
        base = random_mapping(problem, rng=1)
        out = refine_mapping(problem, base, rng=1)
        validate(out, problem.period)

    def test_improves_a_bad_mapping(self, problem):
        """A deliberately scattered mapping should be consolidated."""
        base = random_mapping(problem, rng=2)
        out = refine_mapping(problem, base, rng=2, sweeps=6)
        assert (
            energy(out, problem.period).total
            < energy(base, problem.period).total
        )

    def test_general_mode_never_worse_than_restricted(self, problem):
        base = greedy_mapping(problem)
        dag = refine_mapping(problem, base, rng=0)
        general = refine_mapping(problem, base, rng=0, allow_general=True)
        assert (
            energy(general, problem.period).total
            <= energy(dag, problem.period).total * (1 + 1e-12)
        )

    def test_general_output_structurally_sound(self, problem):
        base = greedy_mapping(problem)
        out = refine_mapping(problem, base, rng=0, allow_general=True)
        # May violate the DAG-partition rule, but nothing else.
        validate(out, problem.period, require_dag_partition=False)

    def test_refined_wrapper(self, problem):
        m = refined("Greedy", problem, rng=0)
        validate(m, problem.period)

    def test_deterministic(self, problem):
        base = greedy_mapping(problem)
        a = refine_mapping(problem, base, rng=7)
        b = refine_mapping(problem, base, rng=7)
        assert a.alloc == b.alloc


class TestLatency:
    def test_single_core_chain(self, grid_2x2):
        g = chain(3, [1e8, 2e8, 1e8], [1e6, 1e6])
        m = Mapping(g, grid_2x2, {0: (0, 0), 1: (0, 0), 2: (0, 0)},
                    {(0, 0): 1.0 * GHZ})
        assert latency(m) == pytest.approx(0.4)

    def test_comm_adds_hop_time(self, grid_2x2):
        g = chain(2, [1e8, 1e8], [19.2e9])  # one full second on a link
        m = Mapping(g, grid_2x2, {0: (0, 0), 1: (0, 1)},
                    {(0, 0): 1.0 * GHZ, (0, 1): 1.0 * GHZ})
        assert latency(m) == pytest.approx(0.1 + 1.0 + 0.1)

    def test_two_hops_double_transfer(self, grid_2x2):
        g = chain(2, [0.0, 0.0], [19.2e9])
        m = Mapping(g, grid_2x2, {0: (0, 0), 1: (1, 1)},
                    {(0, 0): 1.0 * GHZ, (1, 1): 1.0 * GHZ})
        assert latency(m) == pytest.approx(2.0)

    def test_parallel_branches_take_max(self, grid_2x2):
        g = diamond((0.0, 3e8, 1e8, 0.0), (0.0, 0.0, 0.0, 0.0))
        m = Mapping(g, grid_2x2, {i: (0, 0) for i in range(4)},
                    {(0, 0): 1.0 * GHZ})
        # Branches run per data set on the critical path: max(0.3, 0.1).
        assert latency(m) == pytest.approx(0.3)

    def test_latency_at_least_period_lower_bound(self, problem):
        m = greedy_mapping(problem)
        # One data set cannot finish faster than its heaviest stage.
        assert latency(m) >= max(problem.spg.weights) / 1e9


class TestVisualize:
    def test_label_grid(self):
        g = diamond()
        text = render_label_grid(g)
        lines = text.splitlines()
        assert len(lines) == g.ymax
        assert "0" in text and "3" in text

    def test_render_mapping(self, problem):
        m = greedy_mapping(problem)
        text = render_mapping(m, problem.period)
        assert "stages per core" in text
        assert "GHz" in text
        assert "%" in text

    def test_link_utilisation(self, problem):
        m = random_mapping(problem, rng=0)
        text = render_link_utilisation(m, problem.period)
        if m.remote_edges():
            assert "link" in text
        else:
            assert "no inter-core" in text

    def test_link_utilisation_empty(self, grid_2x2):
        g = chain(2, [1e8, 1e8], [1e3])
        m = Mapping(g, grid_2x2, {0: (0, 0), 1: (0, 0)}, {(0, 0): 1.0 * GHZ})
        assert render_link_utilisation(m, 1.0) == "no inter-core communication"

    def test_summarize(self, problem):
        m = greedy_mapping(problem)
        text = summarize(m, problem.period)
        assert "active cores" in text
        assert "max cycle-time" in text


class TestReports:
    @pytest.fixture(scope="class")
    def streamit_exp(self):
        from repro.experiments import run_streamit_experiment

        return run_streamit_experiment(
            CMPGrid(4, 4), ccrs=(None,), workflows=(7,), seed=0
        )

    @pytest.fixture(scope="class")
    def random_exp(self):
        from repro.experiments import run_random_experiment

        return run_random_experiment(
            n=10, grid=CMPGrid(2, 2), ccr=10.0,
            elevations=(1,), replicates=1, seed=0,
        )

    def test_streamit_csv(self, streamit_exp):
        text = streamit_csv(streamit_exp)
        lines = text.strip().splitlines()
        assert lines[0].startswith("workflow,ccr")
        assert len(lines) == 1 + 5  # header + 5 heuristics x 1 instance
        assert "DCT" in text

    def test_random_csv(self, random_exp):
        text = random_csv(random_exp)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 5
        assert lines[1].startswith("10,10")

    def test_streamit_markdown(self, streamit_exp):
        md = streamit_markdown(streamit_exp)
        assert md.startswith("###")
        assert "| idx |" in md or "| idx " in md

    def test_random_markdown(self, random_exp):
        md = random_markdown(random_exp)
        assert "elevation" in md
        assert "|---" in md
