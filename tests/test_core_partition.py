"""Unit tests for DAG-partitions and order-ideal enumeration."""

from itertools import combinations

import pytest

from repro.core.errors import BudgetExceeded
from repro.core.partition import (
    IdealLattice,
    is_acyclic_quotient,
    is_dag_partition,
    quotient_edges,
)
from repro.spg.build import chain, diamond, split_join
from repro.spg.graph import SPG
from repro.spg.random_gen import random_spg
from repro.util.bitset import mask_of


def brute_force_ideals(spg: SPG) -> set[int]:
    """All predecessor-closed subsets, by direct enumeration (n <= ~12)."""
    out = set()
    for r in range(spg.n + 1):
        for combo in combinations(range(spg.n), r):
            s = set(combo)
            if all(set(spg.preds(i)) <= s for i in s):
                out.add(mask_of(combo))
    return out


class TestQuotient:
    def test_quotient_edges(self):
        g = diamond()
        cluster_of = {0: "a", 1: "a", 2: "b", 3: "b"}
        assert quotient_edges(g, cluster_of) == {("a", "b")}

    def test_acyclic_quotient_true(self):
        g = chain(4)
        assert is_acyclic_quotient(g, {0: 0, 1: 0, 2: 1, 3: 1})

    def test_acyclic_quotient_false(self):
        # 0 -> 1 -> 2 -> 3, clusters {0, 2} and {1, 3} form a 2-cycle.
        g = chain(4)
        assert not is_acyclic_quotient(g, {0: "a", 1: "b", 2: "a", 3: "b"})

    def test_diamond_fork_join_same_cluster_needs_branches(self):
        g = diamond()
        # {0, 3} together, branches separate: quotient has a cycle
        # a -> b -> a (0->1, 1->3) so this is not a DAG-partition.
        assert not is_dag_partition(g, {0: "a", 1: "b", 2: "c", 3: "a"})

    def test_diamond_valid_partition(self):
        g = diamond()
        assert is_dag_partition(g, {0: "a", 1: "a", 2: "a", 3: "b"})

    def test_partial_map_rejected(self):
        g = chain(3)
        assert not is_dag_partition(g, {0: "a", 1: "a"})

    def test_singletons_always_valid(self):
        g = split_join([2, 2])
        assert is_dag_partition(g, {i: i for i in range(g.n)})


class TestIdealLattice:
    @pytest.mark.parametrize(
        "g",
        [chain(5), diamond(), split_join([2, 1, 2]), random_spg(10, rng=3)],
        ids=["chain", "diamond", "splitjoin", "random10"],
    )
    def test_matches_brute_force(self, g):
        lat = IdealLattice(g)
        assert set(lat.ideals()) == brute_force_ideals(g)

    def test_chain_count(self):
        # A chain of n has exactly n + 1 ideals (the prefixes).
        lat = IdealLattice(chain(7))
        assert len(lat.ideals()) == 8

    def test_fork_join_count(self):
        # fork-join with k branches: ideals = 2 + 2^k (empty, {src},
        # {src}+any branch subset, full).
        g = split_join([1, 1, 1])
        lat = IdealLattice(g)
        assert len(lat.ideals()) == 2 + 2**3

    def test_budget_exceeded(self):
        g = split_join([1] * 10)  # 2^10 + 2 ideals
        with pytest.raises(BudgetExceeded):
            IdealLattice(g, budget=100).ideals()

    def test_ideals_sorted_by_size(self):
        lat = IdealLattice(diamond())
        sizes = [m.bit_count() for m in lat.ideals()]
        assert sizes == sorted(sizes)

    def test_is_ideal(self):
        lat = IdealLattice(diamond())
        assert lat.is_ideal(mask_of([0, 1]))
        assert not lat.is_ideal(mask_of([1]))

    def test_weight(self):
        g = diamond((1, 2, 3, 4), (0, 0, 0, 0))
        lat = IdealLattice(g)
        assert lat.weight(mask_of([0, 2])) == 4.0

    def test_addable(self):
        lat = IdealLattice(diamond())
        assert list(lat.addable(0)) == [0]
        assert sorted(lat.addable(mask_of([0]))) == [1, 2]


class TestSuffixClusters:
    def brute_suffixes(self, g: SPG, ideal: int, cap: float) -> set[int]:
        lat = IdealLattice(g)
        all_ideals = [m for m in lat.ideals() if m & ~ideal == 0]
        out = set()
        for sub in all_ideals:
            h = ideal & ~sub
            if h and lat.weight(h) <= cap:
                out.add(h)
        return out

    @pytest.mark.parametrize(
        "g",
        [chain(6), diamond(), split_join([2, 2]), random_spg(9, rng=5)],
        ids=["chain", "diamond", "splitjoin", "random9"],
    )
    def test_matches_brute_force_full(self, g):
        lat = IdealLattice(g)
        full = lat.full
        got = set(lat.suffix_clusters(full, float("inf")))
        assert got == self.brute_suffixes(g, full, float("inf"))

    def test_matches_brute_force_partial_ideal(self):
        g = split_join([2, 1])
        lat = IdealLattice(g)
        for ideal in lat.ideals():
            if ideal == 0:
                continue
            got = set(lat.suffix_clusters(ideal, float("inf")))
            assert got == self.brute_suffixes(g, ideal, float("inf"))

    def test_weight_cap_prunes(self):
        g = chain(4, [1, 1, 1, 1], 0.0)
        lat = IdealLattice(g)
        got = set(lat.suffix_clusters(lat.full, 2.0))
        assert got == self.brute_suffixes(g, lat.full, 2.0)

    def test_no_duplicates(self):
        g = split_join([2, 2, 1])
        lat = IdealLattice(g)
        clusters = lat.suffix_clusters(lat.full, float("inf"))
        assert len(clusters) == len(set(clusters))

    def test_cluster_budget(self):
        g = split_join([1] * 8)
        lat = IdealLattice(g, budget=10**6)
        with pytest.raises(BudgetExceeded):
            lat.suffix_clusters(lat.full, float("inf"), max_clusters=5)
