"""Unit tests for the util helpers (bitsets, formatting, RNG)."""

import numpy as np
import pytest

from repro.util.bitset import bit, bits_of, iter_bits, mask_of, popcount
from repro.util.fmt import format_grid, format_table
from repro.util.rng import as_rng, spawn_rng


class TestBitset:
    def test_bit(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_mask_of(self):
        assert mask_of([0, 2, 3]) == 0b1101
        assert mask_of([]) == 0

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_iter_bits_order(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]

    def test_bits_roundtrip(self):
        items = [1, 5, 9, 63, 100]
        assert bits_of(mask_of(items)) == items

    def test_large_masks(self):
        m = mask_of(range(0, 200, 7))
        assert popcount(m) == len(range(0, 200, 7))


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789]])
        assert "1.235" in out

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert len(out.splitlines()) == 2


class TestFormatGrid:
    def test_full_grid(self):
        out = format_grid(2, 2, {(0, 0): "a", (0, 1): "b", (1, 0): "c", (1, 1): "d"})
        assert out == "a b\nc d"

    def test_missing_cells(self):
        out = format_grid(1, 3, {(0, 1): "x"})
        assert out == ". x ."

    def test_width_padding(self):
        out = format_grid(1, 2, {(0, 0): "long", (0, 1): "s"})
        assert out == "long    s"


class TestRng:
    def test_int_seed(self):
        a = as_rng(42)
        b = as_rng(42)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_independent(self):
        children = spawn_rng(as_rng(0), 3)
        assert len(children) == 3
        vals = [c.integers(0, 2**32) for c in children]
        assert len(set(vals)) == 3

    def test_spawn_deterministic(self):
        a = [g.integers(0, 100) for g in spawn_rng(as_rng(5), 4)]
        b = [g.integers(0, 100) for g in spawn_rng(as_rng(5), 4)]
        assert a == b
