"""Resumable and sharded sweeps through the result store.

The acceptance contract: a sweep interrupted at any cell boundary and
resumed from the store — or partitioned into shards filling one shared
store — produces a consolidated report **bit-identical** (byte-equal
canonical JSON) to a cold single-process run, for any ``jobs`` value.
"""

from __future__ import annotations

import pytest

import repro.experiments.scenarios as scenarios_mod
from repro.experiments import (
    parse_shard,
    report_json,
    run_scenario_sweep,
)
from repro.store import MemoryStore, SQLiteStore, open_store

#: A small but heterogeneous grid: 3 topologies x 2 replicates = 6 cells.
SWEEP = dict(
    topologies=("mesh", "torus", "hetmesh"),
    sizes=("2x2",),
    ccrs=(1.0,),
    apps=("random-10",),
    replicates=2,
    seed=3,
)


@pytest.fixture(scope="module")
def cold_text() -> str:
    return report_json(run_scenario_sweep(**SWEEP))


class TestParseShard:
    def test_parse(self):
        assert parse_shard(None) is None
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        assert parse_shard((1, 2)) == (1, 2)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_shard("2")
        with pytest.raises(ValueError):
            parse_shard("2/2")  # 0-based: i must be < N
        with pytest.raises(ValueError):
            parse_shard("-1/2")
        with pytest.raises(ValueError):
            parse_shard("0/0")


class TestResume:
    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            run_scenario_sweep(**SWEEP, resume=True)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            run_scenario_sweep(**SWEEP, limit=-1)

    @pytest.mark.parametrize("cut", [1, 3, 5])
    def test_interrupt_any_boundary_then_resume(self, cut, cold_text):
        store = MemoryStore()
        partial = run_scenario_sweep(**SWEEP, store=store, limit=cut)
        assert partial["meta"]["processed_instances"] == cut
        assert partial["meta"]["limit"] == cut
        assert len(store) == cut
        full = run_scenario_sweep(**SWEEP, store=store, resume=True)
        assert report_json(full) == cold_text

    def test_resume_with_jobs_bit_identical(self, cold_text):
        store = MemoryStore()
        run_scenario_sweep(**SWEEP, store=store, limit=2, checkpoint=1)
        full = run_scenario_sweep(**SWEEP, store=store, resume=True, jobs=2)
        assert report_json(full) == cold_text

    def test_full_resume_computes_nothing(self, monkeypatch, cold_text):
        store = MemoryStore()
        run_scenario_sweep(**SWEEP, store=store)
        assert len(store) == 6

        def no_compute(fn, tasks, jobs=1, **kw):
            assert not list(tasks), "resume recomputed stored cells"
            return []

        monkeypatch.setattr(scenarios_mod, "run_tasks", no_compute)
        full = run_scenario_sweep(**SWEEP, store=store, resume=True)
        assert report_json(full) == cold_text

    def test_store_without_resume_recomputes(self, monkeypatch):
        store = MemoryStore()
        run_scenario_sweep(**SWEEP, store=store, limit=2)
        calls = []
        real = scenarios_mod.run_tasks

        def counting(fn, tasks, jobs=1, **kw):
            tasks = list(tasks)
            calls.append(len(tasks))
            return real(fn, tasks, jobs=jobs, **kw)

        monkeypatch.setattr(scenarios_mod, "run_tasks", counting)
        run_scenario_sweep(**SWEEP, store=store, limit=2)
        assert sum(calls) == 2  # refresh semantics: hits are not consulted

    def test_cell_payloads_are_kind_tagged(self):
        store = MemoryStore()
        run_scenario_sweep(**SWEEP, store=store, limit=1)
        assert store.stats()["by_kind"] == {"sweep-cell": 1}


class TestShards:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_shard_partition_covers_grid_once(self, n_shards, cold_text):
        store = MemoryStore()
        seen = 0
        for i in range(n_shards):
            part = run_scenario_sweep(
                **SWEEP, store=store, shard=f"{i}/{n_shards}"
            )
            assert part["meta"]["shard"] == f"{i}/{n_shards}"
            seen += part["meta"]["processed_instances"]
        assert seen == 6
        assert len(store) == 6
        merged = run_scenario_sweep(**SWEEP, store=store, resume=True)
        assert report_json(merged) == cold_text

    def test_shards_into_shared_sqlite_file(self, tmp_path, cold_text):
        # The multi-invocation story: independent runs (as separate
        # store connections) fill one SQLite file, then a resume pass
        # merges it.
        path = tmp_path / "shards.sqlite"
        for i in range(2):
            store = SQLiteStore(path)
            run_scenario_sweep(**SWEEP, store=store, shard=f"{i}/2", jobs=1)
            store.close()
        merge_store = open_store(path)
        merged = run_scenario_sweep(
            **SWEEP, store=merge_store, resume=True, jobs=2
        )
        merge_store.close()
        assert report_json(merged) == cold_text

    def test_shard_reports_are_disjoint(self):
        a = run_scenario_sweep(**SWEEP, shard="0/2")
        b = run_scenario_sweep(**SWEEP, shard="1/2")
        labels = lambda rep: {
            r["label"] for sc in rep["scenarios"] for r in sc["records"]
        }
        assert labels(a) & labels(b) == set()
        assert len(labels(a) | labels(b)) == 6

    def test_checkpointed_shard(self, cold_text):
        store = MemoryStore()
        run_scenario_sweep(**SWEEP, store=store, shard="0/2", checkpoint=1)
        run_scenario_sweep(**SWEEP, store=store, shard="1/2", checkpoint=2)
        merged = run_scenario_sweep(**SWEEP, store=store, resume=True)
        assert report_json(merged) == cold_text
