"""End-to-end integration tests across the whole pipeline.

These exercise the public API exactly the way the experiment harness and a
downstream user would: build a workflow, choose a period, run every
heuristic, and independently re-validate everything.
"""

import pytest

from repro import (
    CMPGrid,
    PAPER_ORDER,
    ProblemInstance,
    choose_period,
    random_spg_with_elevation,
    run_all,
    streamit_workflow,
    validate,
)
from repro.exact import brute_force_optimal
from repro.experiments.runner import InstanceRecord, normalized_energy


class TestStreamItEndToEnd:
    @pytest.fixture(scope="class", params=[7, 10, 12], ids=["DCT", "MPEG2", "TDE"])
    def instance(self, request):
        app = streamit_workflow(request.param)
        grid = CMPGrid(4, 4)
        choice = choose_period(app, grid, rng=0)
        return app, grid, choice

    def test_at_least_one_heuristic_succeeds(self, instance):
        _app, _grid, choice = instance
        assert choice.successes >= 1

    def test_all_successful_mappings_valid(self, instance):
        _app, _grid, choice = instance
        for res in choice.results.values():
            if res.ok:
                validate(res.mapping, choice.period)

    def test_every_stage_mapped_once(self, instance):
        app, _grid, choice = instance
        for res in choice.results.values():
            if res.ok:
                assert sorted(res.mapping.alloc) == list(range(app.n))

    def test_energies_reported_consistently(self, instance):
        _app, _grid, choice = instance
        for res in choice.results.values():
            if res.ok:
                again = validate(res.mapping, choice.period)
                assert again.total == pytest.approx(res.energy.total)

    def test_normalization(self, instance):
        _app, _grid, choice = instance
        rec = InstanceRecord("x", choice.period, choice.results)
        norm = normalized_energy(rec)
        finite = [v for v in norm.values() if v != float("inf")]
        assert min(finite) == pytest.approx(1.0)


class TestCrossHeuristicConsistency:
    def test_dpa1d_at_least_as_good_on_chains(self):
        """For pipeline graphs DPA1D is optimal among the heuristics."""
        app = streamit_workflow("TDE")  # pure chain
        grid = CMPGrid(4, 4)
        choice = choose_period(app, grid, rng=0)
        res = choice.results
        if not res["DPA1D"].ok:
            pytest.skip("DPA1D failed at the chosen period")
        best_other = min(
            (r.total_energy for n, r in res.items() if n != "DPA1D"),
            default=float("inf"),
        )
        assert res["DPA1D"].total_energy <= best_other * (1 + 1e-9)

    def test_heuristics_never_beat_brute_force(self, grid_2x2):
        g = random_spg_with_elevation(6, 2, rng=1, ccr=5.0)
        T = max(1.5 * max(g.weights) / 1e9, g.total_work / 1e9 / 3)
        prob = ProblemInstance(g, grid_2x2, T)
        _m, best = brute_force_optimal(prob)
        for name, res in run_all(prob, rng=0).items():
            if res.ok:
                assert res.total_energy >= best * (1 - 1e-9), name


class TestElevationShape:
    """The paper's headline qualitative result on specialisation."""

    def test_dpa2d_succeeds_and_beats_random_on_fat_graph(self):
        g = random_spg_with_elevation(30, 8, rng=4, ccr=10.0)
        grid = CMPGrid(4, 4)
        choice = choose_period(g, grid, rng=0)
        res = choice.results
        assert res["DPA2D"].ok
        if res["Random"].ok:
            assert res["DPA2D"].total_energy <= res["Random"].total_energy

    def test_dpa1d_wins_when_it_completes(self):
        """When the ideal lattice fits the budget, DPA1D's snake optimum is
        hard to beat (the paper: best or near-best wherever it finishes)."""
        g = random_spg_with_elevation(30, 8, rng=4, ccr=10.0)
        grid = CMPGrid(4, 4)
        choice = choose_period(g, grid, rng=0)
        res = choice.results
        if not res["DPA1D"].ok:
            pytest.skip("budget exhausted on this seed")
        others = [r.total_energy for n, r in res.items() if n != "DPA1D" and r.ok]
        assert res["DPA1D"].total_energy <= min(others) * 1.05

    def test_pipeline_dpa2d_uses_at_most_q_cores(self):
        app = streamit_workflow("FFT")  # chain of 17
        grid = CMPGrid(4, 4)
        choice = choose_period(app, grid, rng=0)
        res = choice.results["DPA2D"]
        if res.ok:
            assert len(res.mapping.active_cores()) <= grid.q
