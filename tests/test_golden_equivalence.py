"""Golden-equivalence guard for the fast evaluation core.

``tests/data/golden_seed_outputs.json`` records periods, per-heuristic
energies (as ``repr`` strings, i.e. byte-exact doubles) and failure
patterns produced by the *seed* implementation on fixed seeds, captured
before the array-backed caches, the prefix-sum DP rewrites and the
parallel experiment engine landed.  These tests re-run the same sweeps and
require bit-identical outputs, serially and through the process pool.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import run_random_experiment, run_streamit_experiment
from repro.platform.cmp import CMPGrid

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_seed_outputs.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _snap_records(records) -> dict:
    out = {}
    for rec in records:
        out[rec.label] = {
            "period": rec.period,
            "energies": {
                name: (repr(r.total_energy) if r.ok else None)
                for name, r in rec.results.items()
            },
        }
    return out


def _run_random(jobs: int):
    exp = run_random_experiment(
        n=30, grid=CMPGrid(3, 3), ccr=1.0,
        elevations=(2, 4), replicates=2, seed=7, jobs=jobs,
    )
    return _snap_records(r for recs in exp.records.values() for r in recs)


def _run_streamit(jobs: int):
    exp = run_streamit_experiment(
        CMPGrid(4, 4), ccrs=(None, 1.0), workflows=(1, 5), seed=3, jobs=jobs,
    )
    return _snap_records(exp.records.values())


class TestRandomPanelGolden:
    def test_serial_matches_seed_bit_for_bit(self, golden):
        want = golden["random_n30_3x3_ccr1_seed7"]
        got = _run_random(jobs=1)
        assert got == want

    def test_parallel_matches_seed_bit_for_bit(self, golden):
        want = golden["random_n30_3x3_ccr1_seed7"]
        got = _run_random(jobs=2)
        assert got == want


class TestStreamItGolden:
    def test_serial_matches_seed_bit_for_bit(self, golden):
        want = golden["streamit_w1_w5_4x4_seed3"]
        got = _run_streamit(jobs=1)
        assert got == want


class TestSuccessCounts:
    def test_failure_pattern_matches_seed(self, golden):
        """Success/failure per heuristic is part of the golden contract."""
        want = golden["random_n30_3x3_ccr1_seed7"]
        got = _run_random(jobs=1)
        for label, rec in want.items():
            for name, energy_repr in rec["energies"].items():
                assert (got[label]["energies"][name] is None) == (
                    energy_repr is None
                )
