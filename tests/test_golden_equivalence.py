"""Golden-equivalence guard for the fast evaluation core and the refiner.

``tests/data/golden_seed_outputs.json`` records periods, per-heuristic
energies (as ``repr`` strings, i.e. byte-exact doubles) and failure
patterns produced by the *seed* implementation on fixed seeds, captured
before the array-backed caches, the prefix-sum DP rewrites and the
parallel experiment engine landed.  These tests re-run the same sweeps and
require bit-identical outputs, serially and through the process pool.

``tests/data/golden_refine_outputs.json`` pins the refinement engine the
same way on fixed mesh scenarios: periods, base/refined energies, final
allocations and the accepted-move sequences.  Future PRs touching the
delta layer or the refiner cannot silently drift refinement results.
Regenerate deliberately with::

    PYTHONPATH=src:. python tests/test_golden_equivalence.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import run_random_experiment, run_streamit_experiment
from repro.platform.cmp import CMPGrid

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_seed_outputs.json"
REFINE_GOLDEN_PATH = (
    Path(__file__).parent / "data" / "golden_refine_outputs.json"
)


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _snap_records(records) -> dict:
    out = {}
    for rec in records:
        out[rec.label] = {
            "period": rec.period,
            "energies": {
                name: (repr(r.total_energy) if r.ok else None)
                for name, r in rec.results.items()
            },
        }
    return out


def _run_random(jobs: int):
    exp = run_random_experiment(
        n=30, grid=CMPGrid(3, 3), ccr=1.0,
        elevations=(2, 4), replicates=2, seed=7, jobs=jobs,
    )
    return _snap_records(r for recs in exp.records.values() for r in recs)


def _run_streamit(jobs: int):
    exp = run_streamit_experiment(
        CMPGrid(4, 4), ccrs=(None, 1.0), workflows=(1, 5), seed=3, jobs=jobs,
    )
    return _snap_records(exp.records.values())


class TestRandomPanelGolden:
    def test_serial_matches_seed_bit_for_bit(self, golden):
        want = golden["random_n30_3x3_ccr1_seed7"]
        got = _run_random(jobs=1)
        assert got == want

    def test_parallel_matches_seed_bit_for_bit(self, golden):
        want = golden["random_n30_3x3_ccr1_seed7"]
        got = _run_random(jobs=2)
        assert got == want


class TestStreamItGolden:
    def test_serial_matches_seed_bit_for_bit(self, golden):
        want = golden["streamit_w1_w5_4x4_seed3"]
        got = _run_streamit(jobs=1)
        assert got == want


class TestSuccessCounts:
    def test_failure_pattern_matches_seed(self, golden):
        """Success/failure per heuristic is part of the golden contract."""
        want = golden["random_n30_3x3_ccr1_seed7"]
        got = _run_random(jobs=1)
        for label, rec in want.items():
            for name, energy_repr in rec["energies"].items():
                assert (got[label]["energies"][name] is None) == (
                    energy_repr is None
                )


# ----------------------------------------------------------------------
# Refinement-engine golden fixtures (seed mesh scenarios)
# ----------------------------------------------------------------------
def _refine_snapshots() -> dict:
    """Refiner outputs on fixed mesh scenarios, JSON-serialisable."""
    from tests.helpers import loose_period

    from repro.core.evaluate import energy
    from repro.core.problem import ProblemInstance
    from repro.heuristics.base import run as run_heuristic
    from repro.heuristics.refine import refine_mapping
    from repro.spg.random_gen import random_spg
    from repro.spg.streamit import streamit_workflow

    scenarios = {
        # label: (SPG, grid size, base heuristic, seed, schedule, general)
        "random18_3x3_greedy_first": (
            random_spg(18, rng=3, ccr=5.0), (3, 3), "Greedy", 0,
            "first", False,
        ),
        "random24_4x4_random_first": (
            random_spg(24, rng=8, ccr=10.0), (4, 4), "Random", 1,
            "first", False,
        ),
        "random18_3x3_greedy_general": (
            random_spg(18, rng=3, ccr=5.0), (3, 3), "Greedy", 0,
            "first", True,
        ),
        "dct_4x4_greedy_best": (
            streamit_workflow("DCT", ccr=1.0, seed=0), (4, 4), "Greedy", 0,
            "best", False,
        ),
    }
    out: dict = {}
    for label, (spg, (p, q), heur, seed, schedule, general) in (
        scenarios.items()
    ):
        problem = ProblemInstance(
            spg, CMPGrid(p, q), loose_period(spg, parallelism=4.0)
        )
        res = run_heuristic(heur, problem, rng=seed)
        assert res.ok, f"{heur} must succeed on {label}"
        log: list = []
        refined = refine_mapping(
            problem, res.mapping, rng=seed, sweeps=4, schedule=schedule,
            allow_general=general, log=log,
        )
        out[label] = {
            "period": repr(problem.period),
            "base_energy": repr(res.energy.total),
            "refined_energy": repr(energy(refined, problem.period).total),
            "alloc": {str(i): list(refined.alloc[i]) for i in range(spg.n)},
            "accepted_moves": [str(m) for m in log],
        }
    return out


@pytest.fixture(scope="module")
def refine_golden() -> dict:
    with open(REFINE_GOLDEN_PATH) as fh:
        return json.load(fh)


class TestRefineGolden:
    def test_refiner_outputs_match_recorded(self, refine_golden):
        """Energies, allocations and accepted-move sequences must all be
        byte-identical to the recorded fixtures."""
        got = _refine_snapshots()
        assert set(got) == set(refine_golden)
        for label, want in refine_golden.items():
            assert got[label] == want, f"refinement drifted on {label}"

    def test_refinement_actually_improves(self, refine_golden):
        """The pinned scenarios all contain real improvements (guards the
        fixtures themselves against accidental no-op regeneration)."""
        for label, rec in refine_golden.items():
            assert float(rec["refined_energy"]) < float(rec["base_energy"])
            assert len(rec["accepted_moves"]) > 0


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    with open(REFINE_GOLDEN_PATH, "w") as fh:
        json.dump(_refine_snapshots(), fh, indent=1, sort_keys=True)
    print(f"refinement fixtures written to {REFINE_GOLDEN_PATH}")
