"""Unit tests for the SPG shape builders."""

import pytest

from repro.spg.build import chain, diamond, fork_join, pipeline_of, split_join
from repro.spg.graph import sp_edge


class TestChain:
    def test_dims(self):
        g = chain(7)
        assert (g.n, g.xmax, g.ymax) == (7, 7, 1)

    def test_min_length(self):
        with pytest.raises(ValueError):
            chain(1)

    def test_explicit_weights(self):
        g = chain(3, [1, 2, 3], [10, 20])
        assert g.weights == (1.0, 2.0, 3.0)
        assert g.comm(0, 1) == 10.0
        assert g.comm(1, 2) == 20.0

    def test_constant_weights(self):
        g = chain(4, 5.0, 2.0)
        assert all(w == 5.0 for w in g.weights)
        assert all(d == 2.0 for d in g.edges.values())

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            chain(3, [1, 2], [1, 1])

    def test_edges_form_a_path(self):
        g = chain(5)
        assert sorted(g.edges) == [(0, 1), (1, 2), (2, 3), (3, 4)]


class TestSplitJoin:
    def test_dims(self):
        g = split_join([3, 2, 1])
        assert g.n == 2 + 6
        assert g.ymax == 3
        assert g.xmax == 2 + 3

    def test_single_branch(self):
        g = split_join([4])
        assert (g.n, g.ymax, g.xmax) == (6, 1, 6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            split_join([])

    def test_rejects_zero_length_branch(self):
        with pytest.raises(ValueError):
            split_join([2, 0])

    def test_endpoint_weights(self):
        g = split_join([1, 1], w_source=5.0, w_sink=7.0, w_branch=2.0)
        assert g.weights[g.source] == 5.0
        assert g.weights[g.sink] == 7.0
        assert g.weights[1] == 2.0

    def test_branch_rows_distinct(self):
        g = split_join([2, 2, 2])
        inner_ys = {g.labels[i][1] for i in range(g.n)
                    if i not in (g.source, g.sink)}
        assert inner_ys == {1, 2, 3}


class TestForkJoin:
    def test_proposition1_gadget(self):
        g = fork_join(4, [3.0, 1.0, 4.0, 1.0])
        assert g.n == 6
        assert g.ymax == 4
        assert g.weights[g.source] == 0.0
        assert g.weights[g.sink] == 0.0
        assert sorted(g.weights[1:5]) == [1.0, 1.0, 3.0, 4.0]

    def test_scalar_weights(self):
        g = fork_join(3, 2.0)
        assert g.weights[1:4] == (2.0, 2.0, 2.0)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            fork_join(3, [1.0, 2.0])

    def test_zero_comm_default(self):
        g = fork_join(2)
        assert g.total_comm == 0.0


class TestDiamond:
    def test_dims(self):
        g = diamond()
        assert (g.n, g.xmax, g.ymax) == (4, 3, 2)

    def test_weights_placement(self):
        g = diamond((4, 2, 3, 1), (10, 20, 30, 40))
        assert g.weights[g.source] == 4.0
        assert g.weights[g.sink] == 1.0
        assert sorted([g.weights[1], g.weights[2]]) == [2.0, 3.0]

    def test_edge_count(self):
        assert len(diamond().edges) == 4


class TestPipelineOf:
    def test_series_chain(self):
        g = pipeline_of([chain(3), chain(4), chain(2)])
        assert g.n == 3 + 4 + 2 - 2
        assert g.xmax == 3 + 4 + 2 - 2
        assert g.ymax == 1

    def test_single_segment(self):
        g = pipeline_of([chain(3)])
        assert g.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pipeline_of([])

    def test_mixed_segments(self):
        g = pipeline_of([split_join([1, 1]), chain(3)])
        assert g.ymax == 2
        assert g.xmax == 3 + 3 - 1

    def test_junction_weight_uses_first(self):
        left = sp_edge(1.0, 9.0, 1.0)
        right = sp_edge(5.0, 1.0, 1.0)
        g = pipeline_of([left, right])
        assert g.weights[1] == 9.0
