"""Tests for the content-addressed result store: fingerprints, backends."""

from __future__ import annotations

import json

import pytest

from repro.platform.topology import get_topology, topology_names
from repro.spg.random_gen import random_spg
from repro.store import (
    MemoryStore,
    SQLiteStore,
    canonical_json,
    cell_fingerprint,
    fingerprint,
    open_store,
    platform_payload,
    request_fingerprint,
    spg_payload,
)
from repro.store.serialize import PAYLOAD_SCHEMA_VERSION


class TestCanonicalJson:
    def test_key_order_invariance(self):
        a = {"b": 1, "a": [1, 2, {"y": 0.5, "x": 1.5}]}
        b = {"a": [1, 2, {"x": 1.5, "y": 0.5}], "b": 1}
        assert canonical_json(a) == canonical_json(b)
        assert fingerprint(a) == fingerprint(b)

    def test_floats_exact(self):
        x = 0.1 + 0.2  # not representable as "0.3"
        assert json.loads(canonical_json({"x": x}))["x"] == x

    def test_tuples_and_numpy_scalars(self):
        import numpy as np

        assert canonical_json((1, 2)) == canonical_json([1, 2])
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json(np.float64(0.5)) == canonical_json(0.5)

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError):
            canonical_json({(0, 1): "core-keyed"})

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
        with pytest.raises(ValueError):
            canonical_json({"x": float("inf")})

    def test_rejects_exotic_types(self):
        with pytest.raises(TypeError):
            canonical_json({"x": {1, 2}})


class TestComponentPayloads:
    def test_spg_fingerprint_reconstruction_stable(self):
        a = random_spg(12, rng=7, ccr=10.0)
        b = random_spg(12, rng=7, ccr=10.0)
        assert a is not b
        assert fingerprint(spg_payload(a)) == fingerprint(spg_payload(b))

    def test_spg_fingerprint_sensitive(self):
        a = random_spg(12, rng=7, ccr=10.0)
        b = random_spg(12, rng=8, ccr=10.0)
        c = random_spg(12, rng=7, ccr=1.0)
        fps = {fingerprint(spg_payload(s)) for s in (a, b, c)}
        assert len(fps) == 3

    def test_platform_payloads_distinguish_fabrics(self):
        # Same nominal size, different fabric/heterogeneity must never
        # collide (mesh vs torus share the field names p/q).
        payloads = [
            canonical_json(platform_payload(get_topology(name, 2, 2)))
            for name in topology_names()
        ]
        assert len(set(payloads)) == len(payloads)

    def test_platform_payload_stable_across_instances(self):
        a = get_topology("hetmesh", 3, 3)
        b = get_topology("hetmesh", 3, 3)
        assert platform_payload(a) == platform_payload(b)

    def test_uni_directional_distinguished(self):
        bi = get_topology("ring", 1, 4)
        uni = get_topology("uniring", 1, 4)
        assert platform_payload(bi) != platform_payload(uni)

    def test_non_dataclass_topology_fallback(self):
        # Third-party fabrics need not be dataclasses; the payload falls
        # back to the bounding box + speed scales + model identity.
        from repro.platform.speeds import XSCALE
        from repro.platform.topology import Topology

        class LineTopology(Topology):
            name = "testline"

            def __init__(self):
                self.p, self.q = 1, 3
                self.model = XSCALE
                self.speed_scales = (((0, 0), 0.5),)
                self._cache = {}

            def cores(self):
                return [(0, v) for v in range(self.q)]

            def neighbors(self, core):
                _u, v = core
                return [
                    (0, w) for w in (v - 1, v + 1) if 0 <= w < self.q
                ]

            def route(self, src, dst):
                step = 1 if dst[1] >= src[1] else -1
                return [
                    (0, v) for v in range(src[1], dst[1] + step, step)
                ]

        payload = platform_payload(LineTopology())
        assert payload["name"] == "testline"
        assert payload["p"] == 1 and payload["q"] == 3
        assert payload["speed_scales"] == [[[0, 0], 0.5]]
        assert canonical_json(payload)  # fully canonicalisable


class TestRequestKeys:
    def setup_method(self):
        self.spg = random_spg(10, rng=3, ccr=10.0)
        self.grid = get_topology("mesh", 2, 2)

    def test_cell_key_deterministic(self):
        k1 = cell_fingerprint(self.spg, self.grid, ("Greedy",), 5, None)
        k2 = cell_fingerprint(self.spg, self.grid, ("Greedy",), 5, {})
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_cell_key_sensitive_to_every_input(self):
        base = cell_fingerprint(self.spg, self.grid, ("Greedy",), 5, None)
        assert base != cell_fingerprint(
            self.spg, self.grid, ("Greedy",), 6, None
        )
        assert base != cell_fingerprint(
            self.spg, self.grid, ("Greedy", "DPA1D"), 5, None
        )
        assert base != cell_fingerprint(
            self.spg, get_topology("torus", 2, 2), ("Greedy",), 5, None
        )
        assert base != cell_fingerprint(
            self.spg, self.grid, ("Greedy",), 5,
            {"Greedy": {"refine": True}},
        )
        other = random_spg(10, rng=4, ccr=10.0)
        assert base != cell_fingerprint(other, self.grid, ("Greedy",), 5, None)

    def test_request_key_period_modes(self):
        auto = request_fingerprint(
            self.spg, self.grid, "greedy", None, 0, None
        )
        fixed = request_fingerprint(
            self.spg, self.grid, "greedy", None, 0, 1.0
        )
        assert auto != fixed

    def test_options_ignored_for_other_columns(self):
        # Options for solvers that are not sweep columns cannot change
        # the key of a cell that never reads them.
        a = cell_fingerprint(
            self.spg, self.grid, ("Greedy",), 5, {"DPA1D": {"x": 1}}
        )
        b = cell_fingerprint(self.spg, self.grid, ("Greedy",), 5, None)
        assert a == b


PAYLOAD = {"schema": PAYLOAD_SCHEMA_VERSION, "period": 1.0, "results": {}}


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryStore()
    else:
        s = SQLiteStore(tmp_path / "test.sqlite")
    yield s
    s.close()


class TestBackends:
    def test_put_get_contains_len(self, store):
        assert store.get("k1") is None
        assert "k1" not in store
        store.put("k1", PAYLOAD, kind="sweep-cell")
        assert store.get("k1") == PAYLOAD
        assert "k1" in store
        assert len(store) == 1
        assert store.keys() == ["k1"]

    def test_replace(self, store):
        store.put("k", PAYLOAD)
        updated = dict(PAYLOAD, period=2.0)
        store.put("k", updated)
        assert store.get("k")["period"] == 2.0
        assert len(store) == 1

    def test_delete(self, store):
        store.put("a", PAYLOAD)
        store.put("b", PAYLOAD)
        assert store.delete(["a", "missing"]) == 1
        assert store.keys() == ["b"]

    def test_rows_without_payload(self, store):
        store.put("k", PAYLOAD, kind="solve")
        (row,) = store.rows(with_payload=False)
        assert row["payload"] is None
        assert row["kind"] == "solve"
        assert row["schema"] == PAYLOAD_SCHEMA_VERSION
        # ... and the metadata-only consumers still work on top of it.
        assert store.keys() == ["k"]
        assert store.stats()["entries"] == 1

    def test_rows_sorted_and_typed(self, store):
        store.put("z", PAYLOAD, kind="solve")
        store.put("a", PAYLOAD, kind="sweep-cell")
        rows = list(store.rows())
        assert [r["key"] for r in rows] == ["a", "z"]
        assert rows[0]["kind"] == "sweep-cell"
        assert rows[0]["schema"] == PAYLOAD_SCHEMA_VERSION
        assert rows[0]["payload"] == PAYLOAD
        assert isinstance(rows[0]["version"], str)

    def test_no_aliasing(self, store):
        store.put("k", PAYLOAD)
        out = store.get("k")
        out["period"] = 99.0
        assert store.get("k")["period"] == 1.0

    def test_stats(self, store):
        store.put("a", PAYLOAD, kind="sweep-cell")
        store.put("b", dict(PAYLOAD, schema=0), kind="solve")
        st = store.stats()
        assert st["entries"] == 2
        assert st["by_kind"] == {"sweep-cell": 1, "solve": 1}
        assert st["by_schema"] == {str(PAYLOAD_SCHEMA_VERSION): 1, "0": 1}
        assert st["stale"] == 1
        assert st["current_schema"] == PAYLOAD_SCHEMA_VERSION

    def test_gc_stale_default(self, store):
        store.put("cur", PAYLOAD)
        store.put("old", dict(PAYLOAD, schema=0))
        assert store.gc() == 1
        assert store.keys() == ["cur"]

    def test_gc_kind(self, store):
        store.put("a", PAYLOAD, kind="solve")
        store.put("b", PAYLOAD, kind="sweep-cell")
        assert store.gc(kind="solve") == 1
        assert store.keys() == ["b"]

    def test_gc_drop_all(self, store):
        store.put("a", PAYLOAD)
        store.put("b", PAYLOAD, kind="solve")
        assert store.gc(drop_all=True) == 2
        assert len(store) == 0

    def test_export_deterministic_across_fill_order(self, tmp_path):
        a, b = MemoryStore(), SQLiteStore(tmp_path / "b.sqlite")
        a.put("x", PAYLOAD, kind="solve")
        a.put("y", dict(PAYLOAD, period=2.0))
        b.put("y", dict(PAYLOAD, period=2.0))
        b.put("x", PAYLOAD, kind="solve")
        assert json.dumps(a.export(), sort_keys=True) == json.dumps(
            b.export(), sort_keys=True
        )
        b.close()


class TestSQLitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "persist.sqlite"
        s1 = SQLiteStore(path)
        s1.put("k", PAYLOAD, kind="sweep-cell")
        s1.close()
        s2 = SQLiteStore(path)
        assert s2.get("k") == PAYLOAD
        assert s2.stats()["entries"] == 1
        s2.close()


class TestOpenStore:
    def test_none_and_memory(self):
        assert isinstance(open_store(None), MemoryStore)
        assert isinstance(open_store(":memory:"), MemoryStore)

    def test_passthrough(self):
        s = MemoryStore()
        assert open_store(s) is s

    def test_path(self, tmp_path):
        s = open_store(tmp_path / "x.sqlite")
        assert isinstance(s, SQLiteStore)
        s.close()
