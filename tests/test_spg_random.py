"""Unit tests for the random SPG generator."""

import numpy as np
import pytest

from repro.spg.analysis import is_series_parallel
from repro.spg.random_gen import (
    random_spg,
    random_spg_with_elevation,
    random_weights,
)
from repro.spg.build import diamond


class TestRandomSpg:
    @pytest.mark.parametrize("n", [2, 3, 5, 10, 25, 50])
    def test_exact_size(self, n):
        g = random_spg(n, rng=0)
        assert g.n == n

    @pytest.mark.parametrize("seed", range(8))
    def test_is_series_parallel(self, seed):
        g = random_spg(30, rng=seed)
        assert is_series_parallel(g)

    def test_deterministic_under_seed(self):
        a = random_spg(20, rng=1234)
        b = random_spg(20, rng=1234)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_spg(20, rng=1) != random_spg(20, rng=2)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_spg(1, rng=0)

    def test_ccr_target(self):
        g = random_spg(20, rng=0, ccr=10.0)
        assert g.ccr == pytest.approx(10.0)

    def test_pure_series_is_chain(self):
        g = random_spg(10, rng=0, p_parallel=0.0)
        assert g.ymax == 1
        assert g.xmax == 10

    def test_weight_ranges(self):
        g = random_spg(30, rng=0, w_range=(10.0, 20.0), d_range=(1.0, 2.0))
        assert all(10.0 <= w <= 20.0 for w in g.weights)
        assert all(1.0 <= d <= 2.0 for d in g.edges.values())


class TestElevationTargeting:
    @pytest.mark.parametrize("elev", [1, 2, 4, 6])
    def test_hits_target(self, elev):
        g = random_spg_with_elevation(40, elev, rng=0)
        assert g.ymax == elev

    def test_elevation_one_is_chain(self):
        g = random_spg_with_elevation(15, 1, rng=0)
        assert g.ymax == 1
        assert g.n == 15

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            random_spg_with_elevation(10, 0, rng=0)

    def test_size_preserved(self):
        g = random_spg_with_elevation(33, 4, rng=0)
        assert g.n == 33

    def test_ccr_applied(self):
        g = random_spg_with_elevation(30, 3, rng=0, ccr=1.0)
        assert g.ccr == pytest.approx(1.0)


class TestRandomWeights:
    def test_structure_preserved(self):
        base = diamond()
        g = random_weights(base, rng=0)
        assert g.labels == base.labels
        assert set(g.edges) == set(base.edges)

    def test_ccr(self):
        g = random_weights(diamond(), rng=0, ccr=5.0)
        assert g.ccr == pytest.approx(5.0)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(7)
        a = random_weights(diamond(), rng=rng)
        b = random_weights(diamond(), rng=np.random.default_rng(7))
        assert a == b
