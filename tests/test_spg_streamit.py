"""The synthetic StreamIt suite must match Table 1 of the paper exactly."""

import pytest

from repro.spg.analysis import is_series_parallel
from repro.spg.streamit import (
    STREAMIT_TABLE1,
    streamit_names,
    streamit_suite,
    streamit_workflow,
)


@pytest.mark.parametrize("spec", STREAMIT_TABLE1, ids=lambda s: s.name)
class TestTable1:
    def test_size(self, spec):
        assert streamit_workflow(spec.index).n == spec.n

    def test_elevation(self, spec):
        assert streamit_workflow(spec.index).ymax == spec.ymax

    def test_length(self, spec):
        assert streamit_workflow(spec.index).xmax == spec.xmax

    def test_ccr(self, spec):
        assert streamit_workflow(spec.index).ccr == pytest.approx(spec.ccr)

    def test_is_series_parallel(self, spec):
        assert is_series_parallel(streamit_workflow(spec.index))


class TestApi:
    def test_lookup_by_name(self):
        assert streamit_workflow("fmradio").n == 43

    def test_lookup_case_insensitive(self):
        a = streamit_workflow("DCT")
        b = streamit_workflow("dct")
        assert a == b

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            streamit_workflow("nosuchapp")

    def test_unknown_index(self):
        with pytest.raises(KeyError):
            streamit_workflow(13)

    def test_ccr_override(self):
        g = streamit_workflow(1, ccr=0.1)
        assert g.ccr == pytest.approx(0.1)

    def test_ccr_override_preserves_structure(self):
        a = streamit_workflow(3)
        b = streamit_workflow(3, ccr=1.0)
        assert a.labels == b.labels
        assert a.weights == b.weights

    def test_seed_changes_weights(self):
        a = streamit_workflow(5, seed=0)
        b = streamit_workflow(5, seed=1)
        assert a != b
        assert a.labels == b.labels

    def test_deterministic(self):
        assert streamit_workflow(2) == streamit_workflow(2)

    def test_suite_order(self):
        suite = streamit_suite()
        assert len(suite) == 12
        assert [g.n for g in suite] == [s.n for s in STREAMIT_TABLE1]

    def test_names(self):
        names = streamit_names()
        assert names[0] == "Beamformer"
        assert names[-1] == "TDE"

    def test_distinct_workflows_distinct_weights(self):
        # Same seed, different apps: the per-app RNG stream must differ.
        a = streamit_workflow(7, seed=0)   # DCT, chain of 8
        b = streamit_workflow(9, seed=0)   # FFT, chain of 17
        assert a.weights[:2] != b.weights[:2]
