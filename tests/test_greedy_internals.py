"""White-box tests for the Greedy heuristic's construction rules."""

import pytest

from repro.core.problem import ProblemInstance
from repro.heuristics.greedy import _downgrade, _greedy_at_speed
from repro.spg.build import chain, split_join
from repro.spg.graph import sp_edge, series, parallel


class TestGreedyAtSpeed:
    def test_source_starts_at_origin(self, grid_4x4):
        # Speed levels index the DVFS set: 4 is the top (1 GHz) XScale speed.
        g = chain(5, [2e8] * 5, [1e5] * 4)
        m = _greedy_at_speed(ProblemInstance(g, grid_4x4, 1.0), 4)
        assert m is not None
        assert m.alloc[0] == (0, 0)

    def test_absorbs_until_capacity(self, grid_4x4):
        g = chain(5, [2e8] * 5, [1e5] * 4)
        m = _greedy_at_speed(ProblemInstance(g, grid_4x4, 1.0), 4)
        # 5 stages of 2e8 at 1 GHz, T=1: all five fit on one core.
        assert len(m.active_cores()) == 1

    def test_spills_to_neighbours(self, grid_4x4):
        g = chain(6, [4e8] * 6, [1e5] * 5)
        m = _greedy_at_speed(ProblemInstance(g, grid_4x4, 1.0), 4)
        assert m is not None
        # 2 stages per core at most: at least 3 cores.
        assert len(m.active_cores()) >= 3
        # All cores on a monotone right/down frontier from (0, 0).
        for core in m.active_cores():
            assert core[0] + core[1] <= 6

    def test_infeasible_speed_returns_none(self, grid_4x4):
        g = chain(3, [5e8] * 3, [1e5] * 2)
        # At 0.15 GHz a 5e8-cycle stage takes 3.3s > T=1: nothing fits.
        assert _greedy_at_speed(
            ProblemInstance(g, grid_4x4, 1.0), 0
        ) is None

    def test_forward_balances_comm(self, grid_4x4):
        # A fork with four heavy branches: the two frontier neighbours
        # should each receive some of them.
        g = split_join([1] * 4, w_source=1e8, w_sink=1e8, w_branch=8e8,
                       comm=1e6)
        m = _greedy_at_speed(ProblemInstance(g, grid_4x4, 0.9), 4)
        assert m is not None
        branch_cores = {m.alloc[i] for i in (1, 2, 3, 4)}
        assert len(branch_cores) >= 4  # one heavy branch per core

    def test_all_stages_assigned(self, grid_4x4):
        g = split_join([2, 3, 1], w_source=1e8, w_sink=1e8, w_branch=2e8,
                       comm=1e6)
        m = _greedy_at_speed(ProblemInstance(g, grid_4x4, 1.0), 4)
        assert m is not None
        assert sorted(m.alloc) == list(range(g.n))

    def test_quotient_stays_acyclic(self, grid_4x4):
        # Nested split-joins exercise the partial-quotient check.
        inner = split_join([1, 1], w_branch=1e8)
        g = parallel(series(inner, sp_edge(1e8, 1e8, 1e5)),
                     series(sp_edge(1e8, 1e8, 1e5), sp_edge(0, 1e8, 1e5)),
                     merge="first")
        m = _greedy_at_speed(ProblemInstance(g, grid_4x4, 1.0), 4)
        if m is not None:
            assert m.is_valid_structure()


class TestDowngrade:
    def test_downgrade_lowers_speeds(self, grid_4x4):
        g = chain(4, [1e8] * 4, [1e5] * 3)
        prob = ProblemInstance(g, grid_4x4, 1.0)
        m = _greedy_at_speed(prob, 4)
        # _greedy_at_speed already downgrades; verify the invariant.
        for core, work in m.core_work().items():
            s = m.speeds[core]
            assert s == prob.grid.model.best_feasible(work, 1.0)

    def test_downgrade_preserves_alloc(self, grid_4x4):
        g = chain(4, [1e8] * 4, [1e5] * 3)
        prob = ProblemInstance(g, grid_4x4, 1.0)
        m = _greedy_at_speed(prob, 4)
        again = _downgrade(prob, m)
        assert again.alloc == m.alloc
