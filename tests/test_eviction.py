"""Tests for the pluggable store-eviction subsystem.

Covers the registry, per-policy victim ordering (LRU vs FIFO vs the
RRIP family), row/byte cap enforcement on the put path, PSEL
set-dueling convergence on a synthetic skewed workload, the injectable
clock, the store accounting fixes riding along (gc ``drop_all``
quarantine purge, SQLite aggregate stats), and the cache-correctness
contract: an evicted (bounded) sweep resumes to a report byte-identical
to a cold unbounded run.
"""

from __future__ import annotations

import pytest

from repro.experiments import report_json, run_scenario_sweep
from repro.store import (
    EVICTION_POLICIES,
    EvictionConfig,
    LogicalClock,
    MemoryStore,
    SQLiteStore,
    eviction_policy_names,
    get_eviction_policy,
    register_eviction_policy,
)
from repro.store.eviction import (
    BIP_MAX,
    PSEL_INIT,
    RRPV_LONG,
    RRPV_MAX,
    duel_region,
)
from repro.store.serialize import PAYLOAD_SCHEMA_VERSION


def payload(i: int, pad: int = 0) -> dict:
    return {
        "schema": PAYLOAD_SCHEMA_VERSION,
        "value": i,
        "pad": "x" * pad,
    }


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryStore(clock=LogicalClock())
    else:
        s = SQLiteStore(tmp_path / "evict.sqlite", clock=LogicalClock())
    yield s
    s.close()


class TestRegistry:
    def test_builtin_policies_registered(self):
        assert eviction_policy_names() == [
            "brrip", "drrip", "fifo", "lru", "rrip",
        ]

    def test_get_builds_and_passes_instances_through(self):
        lru = get_eviction_policy("lru")
        assert lru.name == "lru"
        assert get_eviction_policy(lru) is lru

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="brrip.*drrip.*fifo"):
            get_eviction_policy("clairvoyant")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_eviction_policy("lru", "dup")(type("X", (), {}))

    def test_custom_policy_registers_and_unregisters(self):
        from repro.store import EvictionPolicy

        @register_eviction_policy("mru-test", "newest first (test only)")
        class MRUPolicy(EvictionPolicy):
            def order(self, rows):
                return sorted(
                    rows,
                    key=lambda r: (-(r["last_hit_at"] or r["created_at"]),
                                   r["key"]),
                )

        try:
            s = MemoryStore(clock=LogicalClock())
            for i in range(4):
                s.put(f"k{i}", payload(i))
            out = s.evict(policy="mru-test", max_rows=2)
            assert out["evicted"] == 2
            assert sorted(s.keys()) == ["k0", "k1"]
        finally:
            del EVICTION_POLICIES["mru-test"]


class TestEvictionConfig:
    def test_requires_a_cap(self):
        with pytest.raises(ValueError, match="max_rows and/or max_bytes"):
            EvictionConfig(policy="lru")

    def test_rejects_negative_caps(self):
        with pytest.raises(ValueError):
            EvictionConfig(max_rows=-1)
        with pytest.raises(ValueError):
            EvictionConfig(max_bytes=-1)

    def test_fails_fast_on_unknown_policy(self):
        with pytest.raises(KeyError):
            EvictionConfig(policy="nope", max_rows=1)

    def test_from_spec_coercions(self):
        cfg = EvictionConfig(max_rows=5)
        assert EvictionConfig.from_spec(None) is None
        assert EvictionConfig.from_spec(cfg) is cfg
        built = EvictionConfig.from_spec(
            {"policy": "fifo", "max_rows": 2, "max_bytes": None}
        )
        assert built == EvictionConfig(policy="fifo", max_rows=2)


class TestOrdering:
    def test_lru_evicts_least_recently_used(self, store):
        for i in range(4):
            store.put(f"k{i}", payload(i))
        store.get("k0")  # k0 becomes most recently used
        store.get("k1")
        out = store.evict(policy="lru", max_rows=2)
        assert out["evicted"] == 2
        assert sorted(store.keys()) == ["k0", "k1"]

    def test_lru_falls_back_to_created_at(self, store):
        for i in range(3):
            store.put(f"k{i}", payload(i))  # never read back
        store.evict(policy="lru", max_rows=1)
        assert store.keys() == ["k2"]

    def test_fifo_ignores_hits(self, store):
        for i in range(3):
            store.put(f"k{i}", payload(i))
        store.get("k0")  # a hit must not save the oldest row
        store.evict(policy="fifo", max_rows=2)
        assert sorted(store.keys()) == ["k1", "k2"]

    def test_rrip_hit_promotion_beats_recency(self, store):
        # Under a configured RRIP, fresh rows insert at a long
        # re-reference prediction; a hit promotes to MRU (rrpv 0).  The
        # promoted row survives even though *younger* rows exist — this
        # is where RRIP and LRU-by-creation disagree.
        store.configure_eviction("rrip", max_rows=10)
        for i in range(4):
            store.put(f"k{i}", payload(i))
        store.get("k0")
        out = store.evict(policy="rrip", max_rows=1)
        assert out["evicted"] == 3
        assert store.keys() == ["k0"]

    def test_rrip_insertion_prediction(self, store):
        store.configure_eviction("rrip", max_rows=10)
        store.put("k", payload(0))
        row = next(store._eviction_rows())
        assert row["rrpv"] == RRPV_LONG
        store.get("k")
        row = next(store._eviction_rows())
        assert row["rrpv"] == 0

    def test_brrip_mostly_distant_insertions(self, store):
        store.configure_eviction("brrip", max_rows=1000)
        for i in range(BIP_MAX):
            store.put(f"k{i:03d}", payload(i))
        rrpvs = [r["rrpv"] for r in store._eviction_rows()]
        # Exactly one long insertion per BIP_MAX; the rest distant.
        assert rrpvs.count(RRPV_LONG) == 1
        assert rrpvs.count(RRPV_MAX) == BIP_MAX - 1

    def test_policy_order_is_deterministic_on_ties(self, store):
        for i in range(5):
            store.put(f"k{i}", payload(i))
        pol = get_eviction_policy("lru")
        rows = list(store._eviction_rows())
        for row in rows:  # force a total tie on recency
            row["created_at"] = 1.0
            row["last_hit_at"] = None
        assert [r["key"] for r in pol.order(rows)] == sorted(
            r["key"] for r in rows
        )


class TestCapsOnPut:
    def test_max_rows_enforced_on_put(self, store):
        store.configure_eviction("lru", max_rows=3)
        for i in range(10):
            store.put(f"k{i}", payload(i))
            assert len(store) <= 3
        assert len(store) == 3

    def test_max_bytes_enforced_on_put(self, store):
        one = len(
            __import__("json").dumps(payload(0, pad=50), sort_keys=True)
        )
        store.configure_eviction("lru", max_bytes=3 * one)
        for i in range(10):
            store.put(f"k{i}", payload(i, pad=50))
            assert store.total_bytes() <= 3 * one
        assert len(store) == 3

    def test_put_protects_the_just_written_row(self, store):
        # Under BRRIP the fresh row usually carries the worst (distant)
        # prediction; cap enforcement must still never evict it.
        store.configure_eviction("brrip", max_rows=1)
        for i in range(1, 6):
            store.put(f"k{i}", payload(i))
            assert store.keys() == [f"k{i}"]

    def test_under_cap_puts_do_not_evict(self, store):
        store.configure_eviction("lru", max_rows=100)
        for i in range(5):
            store.put(f"k{i}", payload(i))
        assert store.eviction_stats()["total"] == 0

    def test_detach_restores_unbounded(self, store):
        store.configure_eviction("lru", max_rows=2)
        for i in range(5):
            store.put(f"k{i}", payload(i))
        assert len(store) == 2
        store.configure_eviction(None)
        for i in range(5, 10):
            store.put(f"k{i}", payload(i))
        assert len(store) == 7

    def test_eviction_counters_per_policy(self, store):
        store.configure_eviction("fifo", max_rows=1)
        for i in range(4):
            store.put(f"k{i}", payload(i))
        store.evict(policy="lru", max_rows=0)
        ev = store.eviction_stats()
        assert ev == {"evicted": {"fifo": 3, "lru": 1}, "total": 4}
        assert store.stats()["eviction"] == ev

    def test_explicit_evict_requires_a_cap(self, store):
        with pytest.raises(ValueError):
            store.evict(policy="lru")


class TestDuel:
    @staticmethod
    def trace_keys(universe=120):
        import hashlib

        return [
            hashlib.sha256(f"duel-{i}".encode()).hexdigest()
            for i in range(universe)
        ]

    def replay_skewed(self, store, policy, hot_keys=None, cold_keys=None,
                      accesses=600, cap=30):
        """Bound the store and replay a deterministic skewed trace: hot
        keys re-referenced every other access, cold keys scanned
        through once each (the mix the bimodal candidate exists for)."""
        if hot_keys is None:
            keys = self.trace_keys()
            hot_keys, cold_keys = keys[:12], keys[12:]
        store.configure_eviction(policy, max_rows=cap)
        c = 0
        for n in range(accesses):
            if n % 2 == 0:
                key = hot_keys[(n // 2) % len(hot_keys)]
            else:
                key = cold_keys[c % len(cold_keys)]
                c += 1
            if store.get(key) is None:
                store.put(key, payload(n))
        acc = store.access_stats()
        return acc["hits"] / (acc["hits"] + acc["misses"])

    def test_psel_moves_off_neutral_and_persists(self, tmp_path):
        # Put an rrip-leader key (duel region 0) in the hot set: its
        # repeated hits are evidence for rrip, so PSEL must move up.
        keys = self.trace_keys(400)
        leaders = [k for k in keys if duel_region(k) == 0]
        followers = [k for k in keys if duel_region(k) > 1]
        hot = [leaders[0]] + followers[:11]
        cold = followers[11:200]
        db = tmp_path / "duel.sqlite"
        s = SQLiteStore(db, clock=LogicalClock())
        self.replay_skewed(s, "drrip", hot_keys=hot, cold_keys=cold)
        psel = s._get_counter("psel", PSEL_INIT)
        assert psel != PSEL_INIT  # the duel picked a side
        s.close()
        s2 = SQLiteStore(db, clock=LogicalClock())
        assert s2._get_counter("psel", PSEL_INIT) == psel
        s2.close()

    def test_duelled_hit_rate_at_least_worse_static(self):
        rates = {
            name: self.replay_skewed(
                MemoryStore(clock=LogicalClock()), name
            )
            for name in ("rrip", "brrip", "drrip")
        }
        assert rates["drrip"] >= min(rates["rrip"], rates["brrip"])

    def test_leader_regions_split_by_key_hash(self):
        assert duel_region("00000000" + "a" * 56) == 0
        assert duel_region("00000001" + "a" * 56) == 1
        assert duel_region("not-hex!") == sum(b"not-hex!") % 64

    def test_follower_insertions_track_psel(self):
        s = MemoryStore(clock=LogicalClock())
        pol = get_eviction_policy("drrip")
        follower = "00000002" + "a" * 56  # region 2: a follower
        assert duel_region(follower) == 2
        s._set_counter("psel", PSEL_INIT)  # neutral → rrip wins ties
        assert pol.insertion_rrpv(s, follower) == RRPV_LONG
        s._set_counter("psel", 0)  # brrip winning → mostly distant
        rrpvs = {pol.insertion_rrpv(s, follower) for _ in range(4)}
        assert RRPV_MAX in rrpvs


class TestClockAndAccounting:
    def test_logical_clock_is_monotone(self):
        clk = LogicalClock()
        assert [clk(), clk(), clk()] == [1.0, 2.0, 3.0]
        clk = LogicalClock(start=10.0, step=0.5)
        assert clk() == 10.5

    def test_injected_clock_orders_recency(self, store):
        store.put("a", payload(0))
        store.put("b", payload(1))
        store.get("a")  # hit at a later tick than b's creation
        rows = {r["key"]: r for r in store._eviction_rows()}
        assert rows["a"]["last_hit_at"] > rows["b"]["created_at"]
        assert rows["b"]["last_hit_at"] is None

    def test_gc_drop_all_purges_quarantine(self, store):
        store.put("good", payload(1))
        store.put("bad", payload(2))
        # Corrupt "bad" below the checksum, then read it: quarantined.
        if isinstance(store, MemoryStore):
            store._rows["bad"]["payload"] = "garbage"
        else:
            with store._db() as conn:
                conn.execute(
                    "UPDATE results SET payload='garbage' WHERE key='bad'"
                )
        assert store.get("bad") is None
        assert [q["key"] for q in store.quarantined()] == ["bad"]
        removed = store.gc(drop_all=True)
        assert removed == 2  # 1 live row + 1 quarantined row
        assert len(store) == 0
        assert store.quarantined() == []

    def test_gc_default_leaves_quarantine(self, store):
        store.put("bad", payload(2))
        store.quarantine("bad", "testing")
        assert store.gc() == 0
        assert [q["key"] for q in store.quarantined()] == ["bad"]

    def test_sqlite_aggregate_stats_match_generic_scan(self, tmp_path):
        s = SQLiteStore(tmp_path / "agg.sqlite", clock=LogicalClock())
        s.put("a", payload(1), kind="sweep-cell")
        s.put("b", payload(2), kind="solve")
        s.put("c", {"schema": PAYLOAD_SCHEMA_VERSION - 1, "old": True},
              kind="solve")
        fast = s._count_aggregates()
        from repro.store.backend import ResultStore

        slow = ResultStore._count_aggregates(s)
        assert fast == slow
        st = s.stats()
        assert st["entries"] == 3
        assert st["by_kind"] == {"solve": 2, "sweep-cell": 1}
        assert st["stale"] == 1
        assert st["bytes"] == s.total_bytes() > 0
        s.close()

    def test_memory_len_is_cheap_and_correct(self):
        s = MemoryStore()
        for i in range(7):
            s.put(f"k{i}", payload(i))
        assert len(s) == 7

    def test_open_store_threads_the_clock(self, tmp_path):
        from repro.store import open_store

        clk = LogicalClock()
        s = open_store(str(tmp_path / "clk.sqlite"), clock=clk)
        s.put("k", payload(0))
        row = next(s._eviction_rows())
        assert row["created_at"] == 1.0
        s.close()

    def test_legacy_sqlite_store_gains_rrpv_column(self, tmp_path):
        import sqlite3

        db = tmp_path / "legacy.sqlite"
        conn = sqlite3.connect(db)
        with conn:
            conn.execute(
                "CREATE TABLE results (key TEXT PRIMARY KEY, kind TEXT "
                "NOT NULL, schema INTEGER NOT NULL, version TEXT NOT "
                "NULL, created_at REAL NOT NULL, payload TEXT NOT NULL)"
            )
            conn.execute(
                "INSERT INTO results VALUES ('old', 'result', ?, "
                "'0.0', 1.0, '{\"schema\": 1}')",
                (PAYLOAD_SCHEMA_VERSION,),
            )
        conn.close()
        s = SQLiteStore(db)
        row = next(s._eviction_rows())
        assert row["rrpv"] == 0  # legacy rows read as MRU
        out = s.evict(policy="rrip", max_rows=0)
        assert out["evicted"] == 1
        s.close()


class TestBoundedSweepByteIdentity:
    SWEEP = dict(
        topologies=("mesh",),
        sizes=("2x2",),
        ccrs=(10.0,),
        apps=("random-8",),
        replicates=2,
        seed=5,
    )

    def test_evict_then_resume_matches_cold(self, tmp_path):
        cold = report_json(run_scenario_sweep(**self.SWEEP))

        db = str(tmp_path / "bounded.sqlite")
        bounded = run_scenario_sweep(
            **self.SWEEP,
            store=db,
            eviction={"policy": "drrip", "max_rows": 1},
        )
        assert report_json(bounded) == cold

        s = SQLiteStore(db)
        assert len(s) <= 1  # the cap held
        assert s.eviction_stats()["total"] >= 1
        s.evict(policy="lru", max_rows=0)  # drain it completely
        assert len(s) == 0
        s.close()

        resumed = run_scenario_sweep(**self.SWEEP, store=db, resume=True)
        assert report_json(resumed) == cold

    def test_bounded_service_matches_unbounded(self, tmp_path):
        from repro.store import load_requests, serve_batch

        reqs = load_requests([
            {"app": "random-6", "topology": "mesh", "size": "2x2",
             "solver": "greedy", "seed": 3, "ccr": 10.0},
            {"app": "random-6", "topology": "mesh", "size": "2x2",
             "solver": "dpa2d1d", "seed": 3, "ccr": 10.0},
        ])

        def answers(report):
            # The solver answers must be identical; the cached flags and
            # the meta hit/miss/location bookkeeping legitimately differ
            # between a store-less and a bounded run.
            return [
                {k: v for k, v in entry.items() if k != "cached"}
                for entry in report["responses"]
            ]

        free = serve_batch(reqs, store=None, jobs=1)
        db = str(tmp_path / "svc.sqlite")
        bounded = serve_batch(
            reqs,
            store=db,
            jobs=1,
            eviction={"policy": "lru", "max_rows": 1},
        )
        assert report_json({"responses": answers(bounded)}) == \
            report_json({"responses": answers(free)})
        s = SQLiteStore(db)
        assert len(s) <= 1
        s.close()
