"""Tests for the heuristic registry and the run() wrapper contract."""

import pytest

from repro.core.errors import HeuristicFailure
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.heuristics.base import PAPER_ORDER, REGISTRY, register, run
from repro.platform.speeds import GHZ
from repro.spg.build import chain


class TestRegistry:
    def test_paper_heuristics_registered(self):
        for name in PAPER_ORDER:
            assert name in REGISTRY

    def test_paper_order(self):
        assert PAPER_ORDER == ("Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D")

    def test_register_decorator(self):
        @register("_test_dummy")
        def dummy(problem, rng=None):
            raise HeuristicFailure("dummy")

        try:
            assert REGISTRY["_test_dummy"] is dummy
        finally:
            del REGISTRY["_test_dummy"]


class TestRunWrapper:
    @pytest.fixture
    def problem(self, grid_2x2):
        g = chain(3, [1e8] * 3, [1e5] * 2)
        return ProblemInstance(g, grid_2x2, 1.0)

    def test_success_result(self, problem):
        res = run("Greedy", problem, rng=0)
        assert res.ok
        assert res.name == "Greedy"
        assert res.energy is not None
        assert res.failure is None
        assert res.total_energy == res.energy.total

    def test_failure_result(self, problem):
        tight = problem.scaled(1e-6)
        res = run("Greedy", tight, rng=0)
        assert not res.ok
        assert res.mapping is None
        assert res.total_energy == float("inf")
        assert res.failure

    def test_invalid_output_guard(self, problem):
        """A buggy heuristic returning a broken mapping is flagged, not
        silently accepted."""

        @register("_test_broken")
        def broken(prob, rng=None):
            # Mapping that misses the period: one core at minimum speed.
            alloc = {i: (0, 0) for i in range(prob.spg.n)}
            return Mapping(
                prob.spg, prob.grid, alloc, {(0, 0): 0.15 * GHZ}
            )

        try:
            res = run("_test_broken", problem.scaled(0.2), rng=0)
            assert not res.ok
            assert res.failure.startswith("INVALID OUTPUT")
        finally:
            del REGISTRY["_test_broken"]

    def test_options_forwarded(self, problem):
        res = run("Random", problem, rng=0, trials=1)
        assert res.ok or res.failure

    def test_unknown_heuristic(self, problem):
        with pytest.raises(KeyError):
            run("NoSuchHeuristic", problem)
