"""Unit tests for SPG structural analysis."""

import pytest

from repro.spg.analysis import (
    ancestor_masks,
    convex_closure_ok,
    cut_volume,
    descendant_masks,
    is_series_parallel,
    out_cut_edges,
)
from repro.spg.build import chain, diamond, split_join
from repro.spg.graph import SPG, sp_edge
from repro.util.bitset import mask_of


class TestReachabilityMasks:
    def test_chain_descendants(self):
        g = chain(4)
        desc = descendant_masks(g)
        assert desc[0] == mask_of([1, 2, 3])
        assert desc[3] == 0

    def test_chain_ancestors(self):
        g = chain(4)
        anc = ancestor_masks(g)
        assert anc[0] == 0
        assert anc[3] == mask_of([0, 1, 2])

    def test_diamond(self):
        g = diamond()
        desc = descendant_masks(g)
        assert desc[0] == mask_of([1, 2, 3])
        assert desc[1] == mask_of([3])
        anc = ancestor_masks(g)
        assert anc[3] == mask_of([0, 1, 2])
        assert anc[1] == mask_of([0])

    def test_masks_are_duals(self):
        g = split_join([2, 3, 1])
        desc = descendant_masks(g)
        anc = ancestor_masks(g)
        for i in range(g.n):
            for j in range(g.n):
                assert bool((desc[i] >> j) & 1) == bool((anc[j] >> i) & 1)


class TestCuts:
    def test_chain_prefix_cut(self):
        g = chain(4, 1.0, [10.0, 20.0, 30.0])
        assert cut_volume(g, mask_of([0])) == 10.0
        assert cut_volume(g, mask_of([0, 1])) == 20.0

    def test_diamond_cut(self):
        g = diamond((1, 1, 1, 1), (10, 20, 30, 40))
        # source alone: both fork edges leave.
        assert cut_volume(g, mask_of([0])) == 30.0

    def test_full_set_cut_zero(self):
        g = diamond()
        assert cut_volume(g, mask_of(range(4))) == 0.0

    def test_out_cut_edges(self):
        g = chain(3, 1.0, [5.0, 6.0])
        assert out_cut_edges(g, mask_of([0])) == [(0, 1, 5.0)]


class TestSeriesParallelRecognition:
    def test_chain_is_sp(self):
        assert is_series_parallel(chain(6))

    def test_diamond_is_sp(self):
        assert is_series_parallel(diamond())

    def test_splitjoin_is_sp(self):
        assert is_series_parallel(split_join([3, 1, 2]))

    def test_edge_is_sp(self):
        assert is_series_parallel(sp_edge(1, 1, 1))

    def test_crossing_dag_is_not_sp(self):
        # The "N" graph: 0 -> {1, 2}; 1 -> 3; 2 -> {3, 4}; {3,4} -> 5
        # contains the forbidden N-structure.
        g = SPG(
            [1.0] * 6,
            None,
            {
                (0, 1): 1,
                (0, 2): 1,
                (1, 3): 1,
                (2, 3): 1,
                (2, 4): 1,
                (3, 5): 1,
                (4, 5): 1,
            },
        )
        assert not is_series_parallel(g)

    def test_single_node(self):
        g = SPG([1.0], [(1, 1)], {})
        assert is_series_parallel(g)


class TestConvexity:
    def test_chain_interval_convex(self):
        g = chain(5)
        desc, anc = descendant_masks(g), ancestor_masks(g)
        assert convex_closure_ok(mask_of([1, 2, 3]), desc, anc, g.n)

    def test_chain_gap_not_convex(self):
        g = chain(5)
        desc, anc = descendant_masks(g), ancestor_masks(g)
        assert not convex_closure_ok(mask_of([1, 3]), desc, anc, g.n)

    def test_diamond_fork_and_join_need_middle(self):
        g = diamond()
        desc, anc = descendant_masks(g), ancestor_masks(g)
        # {source, sink} without the branches is not convex.
        assert not convex_closure_ok(mask_of([0, 3]), desc, anc, g.n)
        assert convex_closure_ok(mask_of([0, 1, 2, 3]), desc, anc, g.n)

    def test_parallel_branches_are_convex(self):
        g = diamond()
        desc, anc = descendant_masks(g), ancestor_masks(g)
        assert convex_closure_ok(mask_of([1]), desc, anc, g.n)
        assert convex_closure_ok(mask_of([1, 2]), desc, anc, g.n)
