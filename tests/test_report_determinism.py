"""Byte-level determinism of the canonical JSON reports."""

from __future__ import annotations

import json

from repro.experiments import (
    REPORT_SCHEMA_VERSION,
    report_json,
    run_scenario_sweep,
    write_report,
)
from repro.util.version import repro_version

SWEEP = dict(
    topologies=("mesh", "ring"), sizes=("2x2",), ccrs=(1.0,),
    apps=("random-8",), replicates=1, seed=0,
)


class TestReportJson:
    def test_two_identical_runs_byte_identical(self):
        assert report_json(run_scenario_sweep(**SWEEP)) == report_json(
            run_scenario_sweep(**SWEEP)
        )

    def test_write_report_files_byte_identical(self, tmp_path):
        a = write_report(tmp_path / "a.json", run_scenario_sweep(**SWEEP))
        b = write_report(tmp_path / "b.json", run_scenario_sweep(**SWEEP))
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes().endswith(b"\n")

    def test_schema_and_version_stamped_by_sweep(self):
        meta = run_scenario_sweep(**SWEEP)["meta"]
        assert meta["schema_version"] == REPORT_SCHEMA_VERSION
        assert meta["repro_version"] == repro_version()

    def test_report_json_stamps_missing_meta(self):
        out = json.loads(report_json({"meta": {}, "data": [1]}))
        assert out["meta"]["schema_version"] == REPORT_SCHEMA_VERSION
        assert out["meta"]["repro_version"] == repro_version()
        # ... without overriding a producer's explicit values:
        out2 = json.loads(report_json({"meta": {"schema_version": 99}}))
        assert out2["meta"]["schema_version"] == 99

    def test_report_json_handles_missing_meta_key(self):
        out = json.loads(report_json({"data": []}))
        assert out["meta"]["schema_version"] == REPORT_SCHEMA_VERSION

    def test_keys_sorted(self, tmp_path):
        path = write_report(tmp_path / "r.json", run_scenario_sweep(**SWEEP))
        text = path.read_text()
        parsed = json.loads(text)
        assert text == json.dumps(parsed, indent=1, sort_keys=True) + "\n"

    def test_jobs_do_not_change_bytes(self):
        assert report_json(
            run_scenario_sweep(**SWEEP, jobs=1)
        ) == report_json(run_scenario_sweep(**SWEEP, jobs=2))
