"""Tests for the Random (Section 5.1) and Greedy (Section 5.2) heuristics."""

import numpy as np
import pytest

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, validate
from repro.core.problem import ProblemInstance
from repro.heuristics.greedy import greedy_mapping
from repro.heuristics.random_heuristic import random_mapping
from repro.spg.build import chain, split_join
from repro.spg.random_gen import random_spg


from tests.helpers import loose_period


@pytest.fixture
def easy_problem(grid_4x4):
    g = random_spg(20, rng=7, ccr=10.0)
    return ProblemInstance(g, grid_4x4, loose_period(g))


class TestRandomHeuristic:
    def test_produces_valid_mapping(self, easy_problem):
        m = random_mapping(easy_problem, rng=0)
        validate(m, easy_problem.period)

    def test_deterministic_under_seed(self, easy_problem):
        a = random_mapping(easy_problem, rng=42)
        b = random_mapping(easy_problem, rng=42)
        assert a.alloc == b.alloc
        assert a.speeds == b.speeds

    def test_seeds_vary(self, easy_problem):
        allocs = {
            tuple(sorted(random_mapping(easy_problem, rng=s).alloc.items()))
            for s in range(5)
        }
        assert len(allocs) > 1

    def test_more_trials_never_worse(self, easy_problem):
        e1 = energy(
            random_mapping(easy_problem, rng=3, trials=1), easy_problem.period
        ).total
        e10 = energy(
            random_mapping(easy_problem, rng=3, trials=10), easy_problem.period
        ).total
        assert e10 <= e1 * (1 + 1e-12)

    def test_fails_when_infeasible(self, grid_2x2):
        g = chain(3, [2e9, 2e9, 2e9], [1.0] * 2)  # stages can't meet T=1
        prob = ProblemInstance(g, grid_2x2, 1.0)
        with pytest.raises(HeuristicFailure):
            random_mapping(prob, rng=0)

    def test_fails_when_too_many_clusters(self):
        # 10 heavy stages cannot share cores, but only 4 cores exist.
        from repro.platform.cmp import CMPGrid

        g = chain(10, [9e8] * 10, [1.0] * 9)
        prob = ProblemInstance(g, CMPGrid(2, 2), 1.0)
        with pytest.raises(HeuristicFailure):
            random_mapping(prob, rng=0)

    def test_respects_period_on_every_resource(self, easy_problem):
        from repro.core.evaluate import max_cycle_time

        m = random_mapping(easy_problem, rng=1)
        assert max_cycle_time(m) <= easy_problem.period * (1 + 1e-9)

    def test_numpy_generator_accepted(self, easy_problem):
        m = random_mapping(easy_problem, rng=np.random.default_rng(5))
        validate(m, easy_problem.period)


class TestGreedyHeuristic:
    def test_produces_valid_mapping(self, easy_problem):
        m = greedy_mapping(easy_problem)
        validate(m, easy_problem.period)

    def test_deterministic(self, easy_problem):
        a = greedy_mapping(easy_problem)
        b = greedy_mapping(easy_problem)
        assert a.alloc == b.alloc

    def test_source_on_corner(self, easy_problem):
        m = greedy_mapping(easy_problem)
        assert m.alloc[easy_problem.spg.source] == (0, 0)

    def test_speeds_are_downgraded(self, easy_problem):
        """After downgrade, no core can step one speed down and still fit."""
        m = greedy_mapping(easy_problem)
        model = easy_problem.grid.model
        for core, work in m.core_work().items():
            s = m.speeds[core]
            assert s == model.best_feasible(work, easy_problem.period)

    def test_fails_when_infeasible(self, grid_2x2):
        g = chain(3, [2e9, 2e9, 2e9], [1.0] * 2)
        prob = ProblemInstance(g, grid_2x2, 1.0)
        with pytest.raises(HeuristicFailure):
            greedy_mapping(prob)

    def test_splitjoin_balanced(self, grid_4x4):
        g = split_join([1] * 4, w_source=1e8, w_sink=1e8, w_branch=8e8,
                       comm=1e5)
        T = 0.9
        m = greedy_mapping(ProblemInstance(g, grid_4x4, T))
        # Each branch stage is 8e8 cycles: no two fit together at T=0.9.
        validate(m, T)
        assert len(m.active_cores()) >= 4

    def test_chain_uses_few_cores_when_loose(self, grid_4x4):
        g = chain(6, [1e7] * 6, [1e3] * 5)
        m = greedy_mapping(ProblemInstance(g, grid_4x4, 1.0))
        assert len(m.active_cores()) == 1

    def test_beats_random_at_paper_periods(self, grid_4x4):
        """At Section-6.1.3 periods, Greedy beats Random on most seeds
        (the paper reports Greedy "always superior to Random")."""
        from repro.experiments import choose_period

        wins = 0
        total = 0
        for seed in range(4):
            g = random_spg(15, rng=seed, ccr=10.0)
            ch = choose_period(
                g, grid_4x4, heuristics=("Random", "Greedy"), rng=seed
            )
            ge = ch.results["Greedy"]
            re = ch.results["Random"]
            if not (ge.ok and re.ok):
                continue
            total += 1
            if ge.total_energy <= re.total_energy * (1 + 1e-9):
                wins += 1
        assert total >= 2
        assert wins >= total * 0.5
