"""Unit tests for the CMP platform model, power model and routing."""

import pytest

from repro.platform.cmp import CMPGrid
from repro.platform.routing import manhattan, snake_order, snake_path, xy_path
from repro.platform.speeds import GHZ, PowerModel, XSCALE, xscale_model


class TestPowerModel:
    def test_xscale_speeds(self):
        assert XSCALE.speeds == (
            0.15 * GHZ, 0.4 * GHZ, 0.6 * GHZ, 0.8 * GHZ, 1.0 * GHZ,
        )

    def test_xscale_powers(self):
        assert XSCALE.dyn_power == (0.08, 0.17, 0.40, 0.90, 1.60)

    def test_xscale_bandwidth(self):
        assert XSCALE.bandwidth == pytest.approx(19.2e9)

    def test_s_min_max(self):
        assert XSCALE.s_min == 0.15 * GHZ
        assert XSCALE.s_max == 1.0 * GHZ

    def test_power_at(self):
        assert XSCALE.power_at(0.6 * GHZ) == 0.40

    def test_power_at_unknown(self):
        with pytest.raises(ValueError):
            XSCALE.power_at(0.5 * GHZ)

    def test_slowest_feasible_picks_minimum(self):
        # 0.3 Gcycles in 1 s needs at least 0.3 GHz -> 0.4 GHz.
        assert XSCALE.slowest_feasible(0.3e9, 1.0) == 0.4 * GHZ

    def test_slowest_feasible_exact_boundary(self):
        assert XSCALE.slowest_feasible(0.4e9, 1.0) == 0.4 * GHZ

    def test_slowest_feasible_infeasible(self):
        assert XSCALE.slowest_feasible(2e9, 1.0) is None

    def test_slowest_feasible_zero_work(self):
        assert XSCALE.slowest_feasible(0.0, 1.0) == XSCALE.s_min

    def test_slowest_feasible_bad_period(self):
        assert XSCALE.slowest_feasible(1.0, 0.0) is None

    def test_slowest_feasible_float_fuzz(self):
        # work == T * s must never flip to infeasible due to division.
        T, s = 0.123456789, XSCALE.s_max
        assert XSCALE.slowest_feasible(T * s, T) == s

    def test_comp_energy(self):
        # 1e9 cycles at 1 GHz for T=2: leak 0.08*2 + 1.0 s * 1.6 W.
        e = XSCALE.comp_energy(1e9, 1.0 * GHZ, 2.0)
        assert e == pytest.approx(0.16 + 1.6)

    def test_comm_energy(self):
        # 1 byte = 8 bits at 6 pJ/bit.
        assert XSCALE.comm_energy(1.0) == pytest.approx(48e-12)

    def test_link_capacity(self):
        assert XSCALE.link_capacity(0.5) == pytest.approx(9.6e9)

    def test_speed_monotonicity_required(self):
        with pytest.raises(ValueError):
            PowerModel((2.0, 1.0), (0.1, 0.2), 0.0, 0.0, 1e-12, 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            PowerModel((1.0,), (0.1, 0.2), 0.0, 0.0, 1e-12, 1.0)

    def test_energy_per_cycle_not_monotone(self):
        # The XScale table is leakage-dominated at the bottom: 0.4 GHz is
        # *more* efficient per cycle than 0.15 GHz.  This is why the library
        # uses best_feasible instead of the paper's slowest-feasible rule.
        eff = [p / s for p, s in zip(XSCALE.dyn_power, XSCALE.speeds)]
        assert eff[1] < eff[0]
        assert eff[1:] == sorted(eff[1:])

    def test_best_feasible_prefers_efficient_speed(self):
        # Tiny work: slowest feasible is 0.15 GHz but 0.4 GHz costs less.
        assert XSCALE.slowest_feasible(1e6, 1.0) == 0.15 * GHZ
        assert XSCALE.best_feasible(1e6, 1.0) == 0.4 * GHZ

    def test_best_feasible_matches_slowest_higher_up(self):
        # 0.5 Gcycles in 1 s: slowest feasible is 0.6 GHz, and per-cycle
        # energy is increasing from there on.
        assert XSCALE.best_feasible(0.5e9, 1.0) == 0.6 * GHZ

    def test_best_feasible_infeasible(self):
        assert XSCALE.best_feasible(2e9, 1.0) is None

    def test_best_feasible_zero_work(self):
        assert XSCALE.best_feasible(0.0, 1.0) == XSCALE.s_min


class TestGridTopology:
    def test_core_count(self):
        assert CMPGrid(3, 4).n_cores == 12

    def test_cores_row_major(self):
        cores = CMPGrid(2, 2).cores()
        assert cores == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_neighbors_interior(self):
        g = CMPGrid(3, 3)
        assert set(g.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_neighbors_corner(self):
        g = CMPGrid(3, 3)
        assert set(g.neighbors((0, 0))) == {(0, 1), (1, 0)}

    def test_uni_directional_neighbors(self):
        g = CMPGrid(1, 4, uni_directional=True)
        assert g.neighbors((0, 1)) == [(0, 2)]
        assert g.neighbors((0, 3)) == []

    def test_is_link(self):
        g = CMPGrid(2, 2)
        assert g.is_link((0, 0), (0, 1))
        assert g.is_link((0, 1), (0, 0))
        assert not g.is_link((0, 0), (1, 1))

    def test_uni_directional_is_link(self):
        g = CMPGrid(1, 3, uni_directional=True)
        assert g.is_link((0, 0), (0, 1))
        assert not g.is_link((0, 1), (0, 0))

    def test_links_count_bidirectional(self):
        g = CMPGrid(2, 2)
        assert len(g.links()) == 8  # 4 undirected edges, both directions

    def test_links_count_uniline(self):
        g = CMPGrid.uni_line(4, uni_directional=True)
        assert len(g.links()) == 3

    def test_validate_path_ok(self):
        g = CMPGrid(2, 2)
        g.validate_path([(0, 0), (0, 1), (1, 1)])

    def test_validate_path_bad_hop(self):
        g = CMPGrid(2, 2)
        with pytest.raises(ValueError):
            g.validate_path([(0, 0), (1, 1)])

    def test_validate_path_single_core(self):
        # Degenerate single-core paths are valid (a route to itself).
        CMPGrid(2, 2).validate_path([(0, 0)])

    def test_validate_path_single_core_out_of_bounds(self):
        with pytest.raises(ValueError):
            CMPGrid(2, 2).validate_path([(5, 5)])

    def test_validate_path_empty(self):
        with pytest.raises(ValueError):
            CMPGrid(2, 2).validate_path([])

    def test_square_constructor(self):
        g = CMPGrid.square(5)
        assert (g.p, g.q) == (5, 5)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            CMPGrid(0, 3)


class TestRouting:
    def test_manhattan(self):
        assert manhattan((0, 0), (2, 3)) == 5

    def test_xy_path_same_core(self):
        assert xy_path((1, 1), (1, 1)) == [(1, 1)]

    def test_xy_path_horizontal_first(self):
        path = xy_path((0, 0), (2, 2))
        assert path == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]

    def test_xy_path_backwards(self):
        path = xy_path((2, 2), (0, 0))
        assert path == [(2, 2), (2, 1), (2, 0), (1, 0), (0, 0)]

    def test_xy_path_length(self):
        assert len(xy_path((0, 0), (3, 2))) == manhattan((0, 0), (3, 2)) + 1

    def test_snake_order_2x3(self):
        assert snake_order(2, 3) == [
            (0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0),
        ]

    def test_snake_adjacent(self):
        order = snake_order(4, 4)
        for a, b in zip(order, order[1:]):
            assert manhattan(a, b) == 1

    def test_snake_covers_all(self):
        order = snake_order(3, 5)
        assert len(set(order)) == 15

    def test_snake_path(self):
        g = CMPGrid(2, 2)
        path = snake_path(g, 0, 3)
        assert path == [(0, 0), (0, 1), (1, 1), (1, 0)]
        g.validate_path(path)

    def test_snake_path_degenerate(self):
        # i == j yields the single-core path (no caller special-casing).
        assert snake_path(CMPGrid(2, 2), 2, 2) == [(1, 1)]

    def test_snake_path_bounds(self):
        with pytest.raises(ValueError):
            snake_path(CMPGrid(2, 2), 3, 2)  # i > j
        with pytest.raises(ValueError):
            snake_path(CMPGrid(2, 2), 0, 4)  # j out of range
