"""Performance regression guard for the fast evaluation core.

The budgets are *generous* (an order of magnitude above the measured
times on the reference container) so the guard only trips on genuine
regressions — e.g. a cache accidentally dropped from the hot path — and
not on machine noise.  Set ``REPRO_SKIP_PERF_SMOKE=1`` to skip, e.g. on
heavily loaded or exotic CI hardware.
"""

from __future__ import annotations

import os
import time

import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_SMOKE") == "1",
    reason="REPRO_SKIP_PERF_SMOKE=1",
)

#: Wall-time budgets (seconds).  Reference container measurements:
#: eval core ~0.2 s, DPA1D instance ~0.5 s.
EVAL_CORE_BUDGET = 5.0
DPA1D_BUDGET = 10.0


def test_evaluation_core_stays_fast():
    from repro.core.evaluate import cycle_times, energy, validate
    from repro.core.problem import ProblemInstance
    from repro.heuristics.base import run
    from repro.platform.cmp import CMPGrid
    from repro.spg.random_gen import random_spg

    spg = random_spg(50, rng=42, ccr=1.0)
    grid = CMPGrid(4, 4)
    prob = ProblemInstance(spg, grid, 1.0)
    res = run("Greedy", prob, rng=42)
    assert res.ok
    mapping = res.mapping
    t0 = time.perf_counter()
    for _ in range(2000):
        cycle_times(mapping)
        energy(mapping, prob.period)
        validate(mapping, prob.period)
    elapsed = time.perf_counter() - t0
    assert elapsed < EVAL_CORE_BUDGET, (
        f"evaluation core took {elapsed:.2f}s for 2000 reps "
        f"(budget {EVAL_CORE_BUDGET}s) — a hot-path cache regressed"
    )


def test_dpa1d_solver_stays_fast():
    from repro.experiments import choose_period
    from repro.platform.cmp import CMPGrid
    from repro.spg.random_gen import random_spg_with_elevation
    from repro.util.rng import as_rng

    rng = as_rng(2011)
    spg = random_spg_with_elevation(50, 4, rng=rng, ccr=10.0)
    t0 = time.perf_counter()
    choice = choose_period(spg, CMPGrid(4, 4), heuristics=("DPA1D",), rng=rng)
    elapsed = time.perf_counter() - t0
    assert choice.results  # it ran
    assert elapsed < DPA1D_BUDGET, (
        f"DPA1D choose_period took {elapsed:.2f}s "
        f"(budget {DPA1D_BUDGET}s) — the DP fast path regressed"
    )
