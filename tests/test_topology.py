"""Tests for the pluggable topology subsystem: fabrics, routing edge
cases, the registry round-trip and heterogeneous speed wiring."""

import pytest

from repro.core.evaluate import validate
from repro.core.problem import ProblemInstance
from repro.heuristics.base import PAPER_ORDER, run
from repro.platform import (
    CMPGrid,
    BenesTopology,
    RingTopology,
    TorusTopology,
    get_topology,
    snake_order,
    topology_names,
    torus_path,
    xy_path,
)
from repro.platform.speeds import GHZ, xscale_model
from repro.spg.build import chain
from repro.util.rng import as_rng


class TestGridCaching:
    def test_cores_cached_identity(self):
        g = CMPGrid(3, 3)
        assert g.cores() is g.cores()

    def test_links_cached_identity(self):
        g = CMPGrid(3, 3)
        assert g.links() is g.links()

    def test_cached_values_match_fresh_instance(self):
        a, b = CMPGrid(3, 4), CMPGrid(3, 4)
        assert a.cores() == b.cores()
        assert a.links() == b.links()

    def test_cache_excluded_from_equality(self):
        a, b = CMPGrid(2, 2), CMPGrid(2, 2)
        a.cores(), a.links()  # warm one side only
        assert a == b
        assert hash(a) == hash(b)


class TestDegenerateRouting:
    def test_xy_path_self(self):
        assert xy_path((2, 1), (2, 1)) == [(2, 1)]

    def test_route_self_on_all_fabrics(self):
        for name in topology_names():
            topo = get_topology(name, 3, 3)
            c = topo.cores()[0]
            assert topo.route(c, c) == [c]

    def test_line_path_degenerate(self):
        for name in topology_names():
            topo = get_topology(name, 2, 2)
            assert topo.line_path(1, 1) == [topo.line_order()[1]]


class TestUniDirectionalRejections:
    def test_uni_line_rejects_backward(self):
        g = CMPGrid.uni_line(4, uni_directional=True)
        assert g.is_link((0, 1), (0, 2))
        assert not g.is_link((0, 2), (0, 1))

    def test_uni_grid_rejects_up_and_left(self):
        g = CMPGrid(3, 3, uni_directional=True)
        assert not g.is_link((1, 1), (0, 1))
        assert not g.is_link((1, 1), (1, 0))
        assert g.is_link((1, 1), (2, 1))
        assert g.is_link((1, 1), (1, 2))

    def test_uniring_rejects_backward_wrap(self):
        r = get_topology("uniring", 1, 5)
        assert r.is_link((0, 4), (0, 0))  # forward wrap
        assert not r.is_link((0, 0), (0, 4))  # backward wrap

    def test_validate_path_rejects_backward_on_uniline(self):
        g = CMPGrid.uni_line(4, uni_directional=True)
        with pytest.raises(ValueError):
            g.validate_path([(0, 2), (0, 1)])


class TestSnakeNonSquare:
    def test_snake_embedding_2x5(self):
        g = CMPGrid(2, 5)
        order = g.line_order()
        assert order == snake_order(2, 5)
        assert len(order) == 10
        for a, b in zip(order, order[1:]):
            assert g.is_link(a, b)

    def test_snake_line_path_3x2(self):
        g = CMPGrid(3, 2)
        path = g.line_path(0, 5)
        assert path[0] == (0, 0) and path[-1] == (2, 1)
        assert len(path) == 6
        g.validate_path(path)


class TestTorus:
    def test_wraparound_links(self):
        t = TorusTopology(3, 4)
        assert t.is_link((0, 0), (0, 3))
        assert t.is_link((0, 0), (2, 0))
        assert not t.is_link((0, 0), (2, 3))

    def test_wraparound_path_is_shorter(self):
        t = TorusTopology(4, 4)
        path = t.route((0, 0), (0, 3))
        assert path == [(0, 0), (0, 3)]  # one wrap hop, not three mesh hops
        t.validate_path(path)

    def test_route_ties_go_forward(self):
        # On a 4-ring the distance both ways to v+2 is 2; ties go +1.
        assert torus_path(1, 4, (0, 0), (0, 2)) == [(0, 0), (0, 1), (0, 2)]

    def test_all_pairs_valid(self):
        t = TorusTopology(3, 3)
        for a in t.cores():
            for b in t.cores():
                path = t.route(a, b)
                assert path[0] == a and path[-1] == b
                t.validate_path(path)

    def test_two_wide_dimension_has_no_duplicate_links(self):
        t = TorusTopology(2, 2)
        assert len(t.links()) == len(set(t.links()))

    def test_rejects_uni_directional(self):
        with pytest.raises(ValueError):
            TorusTopology(3, 3, uni_directional=True)


class TestRing:
    def test_shortest_way_routing(self):
        r = RingTopology(6)
        assert r.route((0, 1), (0, 5)) == [(0, 1), (0, 0), (0, 5)]
        assert r.route((0, 0), (0, 2)) == [(0, 0), (0, 1), (0, 2)]

    def test_uni_ring_routes_forward_only(self):
        r = RingTopology(4, uni_directional=True)
        path = r.route((0, 3), (0, 1))
        assert path == [(0, 3), (0, 0), (0, 1)]
        r.validate_path(path)

    def test_line_order_is_linked(self):
        r = RingTopology(5, uni_directional=True)
        order = r.line_order()
        for a, b in zip(order, order[1:]):
            assert r.is_link(a, b)


class TestBenes:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_all_pairs_route_valid(self, k):
        b = BenesTopology(k)
        for src in b.cores():
            for dst in b.cores():
                path = b.route(src, dst)
                assert path[0] == src and path[-1] == dst
                b.validate_path(path)
                assert len(set(path)) == len(path)  # simple paths

    def test_dimensions(self):
        b = BenesTopology(2)
        assert (b.p, b.q) == (4, 5)
        assert b.n_cores == 20

    def test_cross_links_follow_stage_bits(self):
        b = BenesTopology(2)
        # First half: stage 0 toggles the high bit, stage 1 the low bit.
        assert b.is_link((0, 0), (2, 1))
        assert not b.is_link((0, 0), (1, 1))
        assert b.is_link((0, 1), (1, 2))
        # Second half mirrors: stage 2 toggles the low bit again.
        assert b.is_link((0, 2), (1, 3))
        assert not b.is_link((0, 2), (2, 3))

    def test_no_intra_column_links(self):
        b = BenesTopology(2)
        for (a, c) in b.links():
            assert abs(a[1] - c[1]) == 1


class TestRegistryRoundTrip:
    @pytest.mark.parametrize("name", sorted(topology_names()))
    def test_build_route_and_evaluate(self, name):
        """Every registered topology builds, routes, and evaluates a
        mapping produced by a real heuristic on a small chain."""
        topo = get_topology(name, 2, 2)
        # All routable pairs validate: uni-directional fabrics only route
        # forward along the line embedding (as the paper's uni-line does).
        if getattr(topo, "uni_directional", False):
            order = topo.line_order()
            pairs = [
                (order[i], order[j])
                for i in range(len(order))
                for j in range(len(order))
                if i <= j or topo.name == "ring"  # rings wrap forward
            ]
        else:
            pairs = [(a, c) for a in topo.cores() for c in topo.cores()]
        for a, c in pairs:
            topo.validate_path(topo.route(a, c))
        spg = chain(6, [2e8] * 6, [1e6] * 5)
        prob = ProblemInstance(spg, topo, 1.0)
        ok = 0
        for h in PAPER_ORDER:
            res = run(h, prob, rng=as_rng(0))
            if res.ok:
                ok += 1
                # Independent re-validation (routes, speeds, quotient).
                validate(res.mapping, prob.period)
        assert ok >= 1, f"no heuristic succeeded on {name}"


class TestHeterogeneousSpeeds:
    def test_scaled_model_values(self):
        m = xscale_model().scaled(0.5)
        assert m.speeds[0] == pytest.approx(0.075 * GHZ)
        assert m.dyn_power[-1] == pytest.approx(0.8)
        assert m.comp_leak == xscale_model().comp_leak

    def test_scaled_identity(self):
        m = xscale_model()
        assert m.scaled(1.0) is m

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            xscale_model().scaled(0.0)

    def test_hetmesh_core_models(self):
        h = get_topology("hetmesh", 2, 2)
        assert h.heterogeneous
        assert h.core_model((0, 0)) is h.model
        little = h.core_model((0, 1))
        assert little.s_max == pytest.approx(0.5 * GHZ)
        assert h.speed_set((0, 1)) != h.speed_set((0, 0))

    def test_homogeneous_flag(self):
        assert not CMPGrid(3, 3).heterogeneous

    def test_heuristics_respect_scaled_speed_sets(self):
        """Mappings on a heterogeneous platform pass structural
        validation: every core's speed is in its own scaled DVFS set."""
        h = get_topology("hetmesh", 3, 3)
        spg = chain(8, [2e8] * 8, [1e6] * 7)
        prob = ProblemInstance(spg, h, 1.0)
        ok = 0
        for name in PAPER_ORDER:
            res = run(name, prob, rng=as_rng(1))
            if res.ok:
                ok += 1
                for core, s in res.mapping.speeds.items():
                    assert s in h.speed_set(core)
        assert ok >= 3

    def test_little_core_rejects_big_speed(self):
        from repro.core.errors import MappingError
        from repro.core.mapping import Mapping

        h = get_topology("hetmesh", 2, 2)
        spg = chain(2, [1e8, 1e8], [1e6])
        # (0, 1) is a little core: the base 1 GHz speed is not in its set.
        m = Mapping(spg, h, {0: (0, 1), 1: (0, 1)}, {(0, 1): 1.0 * GHZ})
        with pytest.raises(MappingError):
            m.check_structure()
