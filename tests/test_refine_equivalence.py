"""Bit-identity of the delta-evaluated refiner vs the rebuild reference.

The delta engine must reproduce the retained full-rebuild reference
implementation *exactly*: the same accepted-move sequence (kind, operand
and energy, compared via ``repr`` so doubles match byte for byte) and the
same final mapping.  Any divergence means the incremental bookkeeping
broke a canonical summation order somewhere.

Also unit-tests :class:`~repro.core.delta.DeltaState` directly:
apply/revert round-trips, score-vs-full-evaluation identity after move
chains, and rejection decisions matching the independent validators.
"""

from __future__ import annotations

import pytest

from tests.helpers import loose_period

from repro.core.delta import DeltaState, MoveStage, PowerOff, SwapClusters
from repro.core.errors import HeuristicFailure, MappingError
from repro.core.evaluate import energy, is_period_feasible, validate
from repro.core.problem import ProblemInstance
from repro.heuristics.base import REGISTRY
from repro.heuristics.refine import refine_mapping, refine_mapping_rebuild
from repro.platform.topology import get_topology, topology_names
from repro.spg.random_gen import random_spg


def _valid_base(problem, seed=0):
    for name in ("Random", "Greedy"):
        try:
            m = REGISTRY[name](problem, rng=seed)
            validate(m, problem.period)
            return m
        except (HeuristicFailure, MappingError):
            continue
    return None


def _instance(topo: str, seed: int, n: int = 14):
    spg = random_spg(n, rng=seed, ccr=5.0)
    grid = get_topology(topo, 3, 3)
    return ProblemInstance(spg, grid, loose_period(spg, parallelism=4.0))


@pytest.mark.parametrize("topo", topology_names())
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("allow_general", [False, True])
def test_engines_bit_identical(topo, seed, allow_general):
    problem = _instance(topo, seed)
    base = _valid_base(problem, seed)
    if base is None:
        pytest.skip(f"no valid base on {topo} seed {seed}")
    log_delta: list = []
    log_rebuild: list = []
    out_delta = refine_mapping(
        problem, base, rng=seed, sweeps=3, allow_general=allow_general,
        log=log_delta,
    )
    out_rebuild = refine_mapping_rebuild(
        problem, base, rng=seed, sweeps=3, allow_general=allow_general,
        log=log_rebuild,
    )
    # Same accepted moves, in the same order, at the same (byte-exact)
    # energies, and the same final mapping in every component.
    assert log_delta == log_rebuild
    assert out_delta.alloc == out_rebuild.alloc
    assert out_delta.speeds == out_rebuild.speeds
    assert out_delta.paths == out_rebuild.paths
    assert repr(energy(out_delta, problem.period).total) == repr(
        energy(out_rebuild, problem.period).total
    )


def test_engines_bit_identical_large_mesh():
    """The benchmark workload shape (bigger graph, 4x4 mesh), one seed."""
    spg = random_spg(40, rng=2011, ccr=10.0)
    grid = get_topology("mesh", 4, 4)
    problem = ProblemInstance(spg, grid, loose_period(spg, parallelism=8.0))
    base = _valid_base(problem, 0)
    assert base is not None
    log_delta: list = []
    log_rebuild: list = []
    out_delta = refine_mapping(problem, base, rng=0, sweeps=2, log=log_delta)
    out_rebuild = refine_mapping_rebuild(
        problem, base, rng=0, sweeps=2, log=log_rebuild
    )
    assert log_delta == log_rebuild and len(log_delta) > 0
    assert out_delta.alloc == out_rebuild.alloc
    assert out_delta.speeds == out_rebuild.speeds


def test_rebuild_engine_flag_dispatch():
    problem = _instance("mesh", 0)
    base = _valid_base(problem)
    via_flag = refine_mapping(problem, base, rng=0, sweeps=2,
                              engine="rebuild")
    direct = refine_mapping_rebuild(problem, base, rng=0, sweeps=2)
    assert via_flag.alloc == direct.alloc
    with pytest.raises(ValueError):
        refine_mapping(problem, base, engine="rebuild", schedule="best")
    with pytest.raises(ValueError):
        refine_mapping(problem, base, engine="bogus")
    with pytest.raises(ValueError):
        refine_mapping(problem, base, schedule="bogus")


# ----------------------------------------------------------------------
# DeltaState unit tests
# ----------------------------------------------------------------------
class TestDeltaState:
    @pytest.fixture
    def problem(self, grid_4x4):
        g = random_spg(15, rng=2, ccr=5.0)
        return ProblemInstance(g, grid_4x4, loose_period(g))

    @pytest.fixture
    def state(self, problem):
        base = _valid_base(problem)
        return DeltaState(problem, base)

    def _full_eval_identical(self, state, problem):
        """state.score() must equal a from-scratch evaluation of the
        materialised mapping, byte for byte."""
        mapping = state.to_mapping()
        got = state.score()
        want = energy(mapping, problem.period)
        assert repr(got.total) == repr(want.total)
        assert (got.comp_leak, got.comp_dyn, got.comm_leak, got.comm_dyn) \
            == (want.comp_leak, want.comp_dyn, want.comm_leak, want.comm_dyn)
        assert state.period_feasible() == is_period_feasible(
            mapping, problem.period
        )

    def test_initial_score_matches_full_eval(self, state, problem):
        self._full_eval_identical(state, problem)

    def test_apply_revert_roundtrip(self, state, problem):
        before = state.score()
        before_mapping = state.to_mapping()
        cores = problem.grid.cores()
        target = next(
            c for c in cores if c != state.core_of(0)
        )
        token = state.apply(MoveStage(0, target))
        assert state.core_of(0) == target
        state.revert(token)
        after = state.score()
        assert repr(before.total) == repr(after.total)
        assert state.to_mapping().alloc == before_mapping.alloc

    def test_move_chain_matches_fresh_state(self, state, problem):
        """After a chain of accepted moves, the incremental state must be
        indistinguishable from a DeltaState built from scratch."""
        cores = problem.grid.cores()
        applied = 0
        for stage in range(problem.spg.n):
            for c in cores:
                if c == state.core_of(stage):
                    continue
                token, breakdown = state.evaluate_move(MoveStage(stage, c))
                if breakdown is None:
                    state.revert(token)
                else:
                    applied += 1
                break
            if applied >= 4:
                break
        assert applied > 0
        fresh = DeltaState(problem, state.to_mapping())
        assert repr(state.score().total) == repr(fresh.score().total)
        assert state.active_cores() == fresh.active_cores()
        self._full_eval_identical(state, problem)

    def test_swap_and_poweroff_kinds(self, state, problem):
        active = sorted(state.active_cores())
        if len(active) < 2:
            pytest.skip("needs at least two active cores")
        a, b = active[0], active[1]
        token = state.apply(SwapClusters(a, b))
        if state.speeds_feasible():
            self._full_eval_identical(state, problem)
        state.revert(token)
        n_active = state.n_active_cores
        token = state.apply(PowerOff(a, b))
        assert state.n_active_cores == n_active - 1
        assert not state.cluster_of(a)
        # The merged cluster may be period-infeasible at top speed; the
        # state must report that instead of producing a score.
        if state.speeds_feasible():
            self._full_eval_identical(state, problem)
        else:
            assert state.score() is None
            assert not state.period_feasible()
        state.revert(token)
        assert state.n_active_cores == n_active
        self._full_eval_identical(state, problem)

    def test_rejections_match_validators(self, state, problem):
        """evaluate_move returns None exactly when the independent
        validators reject the rebuilt candidate."""
        from repro.heuristics.refine import _acceptable, _rebuild

        cores = problem.grid.cores()
        checked = rejected = 0
        for stage in range(0, problem.spg.n, 3):
            for c in cores[:6]:
                if c == state.core_of(stage):
                    continue
                token, breakdown = state.evaluate_move(MoveStage(stage, c))
                alloc = {
                    i: state.core_of(i) for i in range(problem.spg.n)
                }
                state.revert(token)
                cand = _rebuild(problem, alloc)
                reference_ok = cand is not None and _acceptable(
                    problem, cand, allow_general=False
                )
                assert (breakdown is not None) == reference_ok
                if breakdown is not None:
                    assert repr(breakdown.total) == repr(
                        energy(cand, problem.period).total
                    )
                else:
                    rejected += 1
                checked += 1
        assert checked > 0

    def test_unknown_move_kind_raises(self, state):
        with pytest.raises(TypeError):
            state.apply("not-a-move")

    def test_general_mode_skips_dag_check(self, problem):
        base = _valid_base(problem)
        strict = DeltaState(problem, base, require_dag_partition=True)
        general = DeltaState(problem, base, require_dag_partition=False)
        rejected_strict = accepted_general = 0
        cores = problem.grid.cores()
        for stage in range(problem.spg.n):
            for c in cores:
                if c == strict.core_of(stage):
                    continue
                t1, b1 = strict.evaluate_move(MoveStage(stage, c))
                strict.revert(t1)
                t2, b2 = general.evaluate_move(MoveStage(stage, c))
                general.revert(t2)
                if b1 is None and b2 is not None:
                    rejected_strict += 1
                    accepted_general += 1
        # General mappings admit strictly more candidates on this
        # instance (there is at least one cyclic-quotient move).
        assert accepted_general > 0
