"""Tests for the exact solvers: brute force and the Section-4.4 ILP."""

import pytest

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, validate
from repro.core.problem import ProblemInstance
from repro.exact.bnb import solve_binary_program
from repro.exact.brute_force import brute_force_optimal, enumerate_dag_partitions
from repro.exact.ilp_model import build_ilp, ilp_optimal
from repro.platform.cmp import CMPGrid
from repro.spg.build import chain, diamond
from repro.spg.random_gen import random_spg

import numpy as np


class TestEnumerateDagPartitions:
    def test_chain_partitions_are_intervals(self, grid_2x2):
        g = chain(4, [1e8] * 4, [1e3] * 3)
        prob = ProblemInstance(g, grid_2x2, 1.0)
        parts = enumerate_dag_partitions(prob)
        # Interval partitions of 4 elements into <= 4 blocks: 2^3 = 8.
        assert len(parts) == 8

    def test_cluster_count_capped(self, grid_2x2):
        g = chain(4, [1e8] * 4, [1e3] * 3)
        prob = ProblemInstance(g, grid_2x2, 1.0)
        parts = enumerate_dag_partitions(prob, max_clusters=2)
        assert all(len(p) <= 2 for p in parts)
        assert len(parts) == 4  # 3 cuts choose 1 + the single block

    def test_partitions_cover_all_stages(self, small_diamond, grid_2x2):
        prob = ProblemInstance(small_diamond, grid_2x2, 1.0)
        for part in enumerate_dag_partitions(prob):
            stages = sorted(i for cl in part for i in cl)
            assert stages == list(range(small_diamond.n))

    def test_weight_cap_respected(self, grid_2x2):
        g = chain(3, [6e8, 6e8, 6e8], [1e3] * 2)
        prob = ProblemInstance(g, grid_2x2, 1.0)  # cap 1e9: max 1 stage + eps
        for part in enumerate_dag_partitions(prob):
            for cl in part:
                assert sum(g.weights[i] for i in cl) <= 1e9


class TestBruteForce:
    def test_optimal_beats_every_heuristic(self, small_diamond, grid_2x2):
        from repro.experiments import run_all

        prob = ProblemInstance(small_diamond, grid_2x2, 0.6)
        _m, best = brute_force_optimal(prob)
        for name, res in run_all(prob, rng=0).items():
            if res.ok:
                assert res.total_energy >= best * (1 - 1e-9), name

    def test_mapping_is_valid(self, small_diamond, grid_2x2):
        prob = ProblemInstance(small_diamond, grid_2x2, 0.6)
        m, e = brute_force_optimal(prob)
        assert energy(m, 0.6).total == pytest.approx(e)
        validate(m, 0.6)

    def test_infeasible_raises(self, grid_2x2):
        g = chain(2, [5e9, 5e9], [1.0])
        with pytest.raises(HeuristicFailure):
            brute_force_optimal(ProblemInstance(g, grid_2x2, 1.0))

    def test_loose_period_single_core(self, grid_2x2):
        g = chain(3, [1e7] * 3, [1e2] * 2)
        m, _e = brute_force_optimal(ProblemInstance(g, grid_2x2, 1.0))
        assert len(m.active_cores()) == 1


class TestBnB:
    def test_simple_knapsack(self):
        # max x0 + 2 x1 subject to x0 + x1 <= 1  ->  min -(x0 + 2 x1).
        res = solve_binary_program(
            np.array([-1.0, -2.0]),
            np.array([[1.0, 1.0]]),
            np.array([1.0]),
            None,
            None,
        )
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-2.0)
        assert list(res.x) == [0.0, 1.0]

    def test_infeasible(self):
        # x0 >= 2 is impossible for a binary variable.
        res = solve_binary_program(
            np.array([1.0]),
            np.array([[-1.0]]),
            np.array([-2.0]),
            None,
            None,
        )
        assert res.status == "infeasible"
        assert res.x is None

    def test_equality_constraints(self):
        # x0 + x1 = 1, minimise x0 + 3 x1 -> x0 = 1.
        res = solve_binary_program(
            np.array([1.0, 3.0]),
            None,
            None,
            np.array([[1.0, 1.0]]),
            np.array([1.0]),
        )
        assert res.objective == pytest.approx(1.0)

    def test_forced_branching(self):
        # LP relaxation is fractional: x0 + x1 + x2 = 2 with pairwise
        # conflicts; only integral solutions picked by branching.
        c = np.array([1.0, 1.0, 1.0])
        A_ub = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        b_ub = np.array([1.0, 1.0, 1.0])
        res = solve_binary_program(-c, A_ub, b_ub, None, None)
        assert res.objective == pytest.approx(-1.0)

    def test_node_limit(self):
        rng = np.random.default_rng(0)
        n = 18
        c = -rng.random(n)
        A = rng.random((6, n))
        b = A.sum(axis=1) * 0.3
        res = solve_binary_program(c, A, b, None, None, max_nodes=2)
        assert res.status in ("node-limit", "optimal")


@pytest.fixture
def tiny_problem(two_speed_model):
    g = diamond((4e8, 2e8, 3e8, 1e8), (1e7, 2e7, 3e7, 4e7))
    grid = CMPGrid(2, 2, two_speed_model)
    return ProblemInstance(g, grid, 0.6)


class TestIlp:
    def test_matches_brute_force(self, tiny_problem):
        _bm, bf = brute_force_optimal(tiny_problem)
        m, obj = ilp_optimal(tiny_problem)
        assert obj == pytest.approx(bf, rel=1e-6)

    def test_decoded_mapping_matches_objective(self, tiny_problem):
        m, obj = ilp_optimal(tiny_problem)
        b = validate(m, tiny_problem.period)
        assert b.total == pytest.approx(obj, rel=1e-9)

    def test_chain_on_line(self, two_speed_model):
        g = chain(3, [4e8, 5e8, 3e8], [1e6, 1e6])
        grid = CMPGrid.uni_line(2, two_speed_model)
        prob = ProblemInstance(g, grid, 0.8)
        _bm, bf = brute_force_optimal(prob)
        _m, obj = ilp_optimal(prob)
        assert obj == pytest.approx(bf, rel=1e-6)

    def test_infeasible(self, two_speed_model):
        g = chain(2, [5e9, 5e9], [1.0])
        prob = ProblemInstance(g, CMPGrid(2, 2, two_speed_model), 1.0)
        with pytest.raises(HeuristicFailure):
            ilp_optimal(prob)

    def test_model_dimensions(self, tiny_problem):
        ilp = build_ilp(tiny_problem)
        n, nk, cores = 4, 2, 4
        n_x = n * nk * cores
        n_m = nk * cores
        assert len(ilp.x_idx) == n_x
        assert len(ilp.m_idx) == n_m
        # Interior 2x2 grid: each core has exactly 2 in-bounds directions.
        assert len(ilp.c_idx) == len(tiny_problem.spg.edges) * 2 * cores
        assert ilp.n_vars == n_x + n_m + len(ilp.c_idx)

    def test_dag_partition_enforced(self, two_speed_model):
        """Forcing fork+join together must force the branches in too."""
        # Weights such that {fork, join} on one core and branches elsewhere
        # would be cheapest if the DAG-partition constraint were missing.
        g = diamond((1e8, 4e8, 4e8, 1e8), (1e7, 1e7, 1e7, 1e7))
        prob = ProblemInstance(g, CMPGrid(2, 2, two_speed_model), 0.45)
        m, _obj = ilp_optimal(prob)
        cl = {i: m.alloc[i] for i in range(4)}
        if cl[0] == cl[3]:
            assert cl[1] == cl[0] and cl[2] == cl[0]


class TestTopologyThreading:
    """PR-4 satellite: exact solvers are threaded through the topology
    abstraction like the heuristics — brute force follows any fabric's
    own routing and per-core models, the ILP fails loudly where its
    mesh formulation does not apply."""

    def test_bruteforce_on_torus_beats_heuristics(self, xscale):
        from repro.experiments import run_all
        from repro.platform.topology import get_topology

        g = diamond((4e8, 2e8, 3e8, 1e8), (1e7, 2e7, 3e7, 4e7))
        prob = ProblemInstance(g, get_topology("torus", 3, 3, xscale), 0.6)
        m, best = brute_force_optimal(prob)
        validate(m, 0.6)
        for path in m.paths.values():
            prob.grid.validate_path(path)
        for name, res in run_all(prob, rng=0).items():
            if res.ok:
                assert res.total_energy >= best * (1 - 1e-9), name

    def test_bruteforce_heterogeneous_cap_uses_fastest_core(self, xscale):
        """A stage only the scaled-up core can execute must be found
        (the old ``grid.model.s_max`` cap silently pruned it)."""
        s_max = xscale.s_max
        grid = CMPGrid(1, 2, xscale, speed_scales=(((0, 0), 2.0),))
        g = chain(2, [1.5 * s_max, 0.1 * s_max], [1e3])
        m, _e = brute_force_optimal(ProblemInstance(g, grid, 1.0))
        assert m.alloc[0] == (0, 0)  # the big stage sits on the fast core
        validate(m, 1.0)

    def test_ilp_rejects_non_mesh_topologies(self, xscale):
        from repro.core.errors import UnsupportedPlatform
        from repro.platform.topology import get_topology

        g = diamond((4e8, 2e8, 3e8, 1e8), (1e7, 2e7, 3e7, 4e7))
        for topo in ("torus", "ring", "benes"):
            prob = ProblemInstance(g, get_topology(topo, 2, 2, xscale), 0.6)
            with pytest.raises(UnsupportedPlatform, match="mesh"):
                ilp_optimal(prob)

    def test_ilp_rejects_heterogeneous_and_unidirectional(self, xscale):
        from repro.core.errors import UnsupportedPlatform

        g = chain(2, [1e8, 1e8], [1e3])
        het = CMPGrid(2, 2, xscale, speed_scales=(((0, 0), 0.5),))
        with pytest.raises(UnsupportedPlatform, match="homogeneous"):
            ilp_optimal(ProblemInstance(g, het, 1.0))
        uni = CMPGrid.uni_line(2, xscale, uni_directional=True)
        with pytest.raises(UnsupportedPlatform, match="link structure"):
            build_ilp(ProblemInstance(g, uni, 1.0))
