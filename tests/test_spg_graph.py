"""Unit tests for the SPG data structure and its composition rules."""

import pytest

from repro.spg.graph import SPG, parallel, series, sp_edge


class TestSpEdge:
    def test_labels(self):
        g = sp_edge(1.0, 2.0, 3.0)
        assert g.labels == ((1, 1), (2, 1))

    def test_weights_and_comm(self):
        g = sp_edge(1.0, 2.0, 3.0)
        assert g.weights == (1.0, 2.0)
        assert g.comm(0, 1) == 3.0
        assert g.comm(1, 0) == 0.0

    def test_source_sink(self):
        g = sp_edge(1.0, 2.0, 3.0)
        assert g.source == 0
        assert g.sink == 1

    def test_dims(self):
        g = sp_edge(1.0, 2.0, 3.0)
        assert g.xmax == 2
        assert g.ymax == 1
        assert g.n == 2


class TestSeriesComposition:
    def test_node_count(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1))
        assert g.n == 3  # 2 + 2 - 1

    def test_merged_weight_sum(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1))
        assert g.weights == (1.0, 5.0, 4.0)

    def test_merge_first(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1), merge="first")
        assert g.weights[1] == 2.0

    def test_merge_second(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1), merge="second")
        assert g.weights[1] == 3.0

    def test_merge_max(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1), merge="max")
        assert g.weights[1] == 3.0

    def test_merge_callable(self):
        g = series(
            sp_edge(1, 2, 1), sp_edge(3, 4, 1), merge=lambda a, b: a * b
        )
        assert g.weights[1] == 6.0

    def test_bad_merge_rule(self):
        with pytest.raises(ValueError):
            series(sp_edge(1, 2, 1), sp_edge(3, 4, 1), merge="bogus")

    def test_labels_shift_x(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1))
        assert g.labels == ((1, 1), (2, 1), (3, 1))

    def test_xmax_additive(self):
        g1 = series(sp_edge(1, 1, 1), sp_edge(1, 1, 1))  # xmax 3
        g2 = series(g1, g1)
        assert g2.xmax == 5  # 3 + 3 - 1

    def test_sink_is_last(self):
        g = series(sp_edge(1, 2, 1), sp_edge(3, 4, 1))
        assert g.labels[g.sink] == (3, 1)

    def test_edge_volumes_kept(self):
        g = series(sp_edge(1, 2, 5.0), sp_edge(3, 4, 7.0))
        assert g.comm(0, 1) == 5.0
        assert g.comm(1, 2) == 7.0

    def test_elevation_is_max(self):
        dia = parallel(
            series(sp_edge(1, 1, 1), sp_edge(1, 1, 1)),
            series(sp_edge(1, 1, 1), sp_edge(1, 1, 1)),
        )
        g = series(dia, sp_edge(1, 1, 1))
        assert g.ymax == dia.ymax == 2


class TestParallelComposition:
    def _branch(self, length=3):
        g = sp_edge(1, 1, 1)
        for _ in range(length - 2):
            g = series(g, sp_edge(1, 1, 1))
        return g

    def test_node_count(self):
        g = parallel(self._branch(), self._branch())
        assert g.n == 4  # 3 + 3 - 2

    def test_elevation_stacks(self):
        g = parallel(self._branch(), self._branch())
        assert g.ymax == 2
        g3 = parallel(g, self._branch())
        assert g3.ymax == 3

    def test_longest_path_first(self):
        short = self._branch(3)
        long = self._branch(5)
        g1 = parallel(short, long)
        g2 = parallel(long, short)
        # Result is order-insensitive up to renumbering: same dims.
        assert g1.xmax == g2.xmax == 5
        assert g1.ymax == g2.ymax == 2
        assert g1.n == g2.n == 6

    def test_source_label_invariant(self):
        g = parallel(self._branch(), self._branch(4))
        assert g.labels[g.source] == (1, 1)

    def test_sink_y_is_one(self):
        g = parallel(self._branch(), self._branch(4))
        assert g.labels[g.sink][1] == 1

    def test_source_weight_merged(self):
        a, b = self._branch(), self._branch()
        g = parallel(a, b)
        assert g.weights[g.source] == 2.0  # 1 + 1 (sum rule)

    def test_direct_edges_accumulate(self):
        # Two bare edges in parallel collapse onto a single (0, 1) edge.
        g = parallel(sp_edge(1, 1, 5.0), sp_edge(1, 1, 7.0))
        assert g.n == 2
        assert g.comm(0, 1) == 12.0

    def test_rejects_single_node(self):
        single = SPG([1.0], [(1, 1)], {})
        with pytest.raises(ValueError):
            parallel(single, sp_edge(1, 1, 1))

    def test_inner_y_shift(self):
        g = parallel(self._branch(), self._branch())
        ys = sorted(y for _x, y in g.labels)
        assert ys == [1, 1, 1, 2]  # source, sink, branch1, branch2


class TestValidation:
    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            SPG([1, 1], [(1, 1), (2, 1)], {(0, 1): 1, (1, 0): 1})

    def test_second_source_rejected(self):
        with pytest.raises(ValueError, match="second source"):
            SPG(
                [1, 1, 1],
                [(1, 1), (1, 2), (2, 1)],
                {(0, 2): 1, (1, 2): 1},
            )

    def test_second_sink_rejected(self):
        with pytest.raises(ValueError, match="second sink"):
            SPG(
                [1, 1, 1],
                [(1, 1), (2, 1), (2, 2)],
                {(0, 1): 1, (0, 2): 1},
            )

    def test_edge_must_increase_x(self):
        with pytest.raises(ValueError, match="does not increase x"):
            SPG([1, 1], [(1, 1), (1, 1)], {(0, 1): 1})

    def test_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="unknown stage"):
            SPG([1, 1], [(1, 1), (2, 1)], {(0, 5): 1})

    def test_source_label_enforced(self):
        with pytest.raises(ValueError, match="source label"):
            SPG([1, 1], [(2, 1), (3, 1)], {(0, 1): 1})

    def test_fallback_labels(self):
        g = SPG([1, 1, 1, 1], None, {(0, 1): 1, (0, 2): 1, (1, 3): 1, (2, 3): 1})
        assert g.labels[0] == (1, 1)
        assert g.labels[3][0] == 3
        assert g.ymax == 2


class TestAccessors:
    def test_topological_order(self, small_diamond):
        order = small_diamond.topological_order()
        pos = {node: k for k, node in enumerate(order)}
        for (i, j) in small_diamond.edges:
            assert pos[i] < pos[j]

    def test_preds_succs(self, small_diamond):
        g = small_diamond
        assert set(g.succs(g.source)) == {1, 2}
        assert set(g.preds(g.sink)) == {1, 2}

    def test_levels(self, small_chain):
        lv = small_chain.levels()
        assert list(lv) == [1, 2, 3, 4, 5]
        assert all(len(nodes) == 1 for nodes in lv.values())

    def test_total_work(self, small_chain):
        assert small_chain.total_work == pytest.approx(12e8)

    def test_ccr(self, small_chain):
        assert small_chain.ccr == pytest.approx(12e8 / 4e7)

    def test_ccr_no_comm_is_inf(self):
        g = sp_edge(1, 1, 0.0)
        assert g.ccr == float("inf")

    def test_to_networkx(self, small_diamond):
        nxg = small_diamond.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        assert nxg.nodes[0]["x"] == 1

    def test_equality_and_hash(self, small_diamond):
        clone = SPG(
            list(small_diamond.weights),
            list(small_diamond.labels),
            dict(small_diamond.edges),
        )
        assert clone == small_diamond
        assert hash(clone) == hash(small_diamond)

    def test_inequality(self, small_diamond, small_chain):
        assert small_diamond != small_chain
        assert small_diamond != "not an SPG"


class TestRescaling:
    def test_with_ccr_exact(self, small_diamond):
        g = small_diamond.with_ccr(10.0)
        assert g.ccr == pytest.approx(10.0)

    def test_with_ccr_preserves_structure(self, small_diamond):
        g = small_diamond.with_ccr(0.1)
        assert g.labels == small_diamond.labels
        assert g.weights == small_diamond.weights
        assert set(g.edges) == set(small_diamond.edges)

    def test_with_ccr_rejects_nonpositive(self, small_diamond):
        with pytest.raises(ValueError):
            small_diamond.with_ccr(0.0)

    def test_with_ccr_rejects_no_comm(self):
        g = sp_edge(1, 1, 0.0)
        with pytest.raises(ValueError):
            g.with_ccr(1.0)

    def test_with_comm_scaled(self, small_diamond):
        g = small_diamond.with_comm_scaled(2.0)
        assert g.total_comm == pytest.approx(2 * small_diamond.total_comm)

    def test_with_weights_replaces(self, small_diamond):
        g = small_diamond.with_weights(weights=[1, 2, 3, 4])
        assert g.weights == (1.0, 2.0, 3.0, 4.0)

    def test_with_weights_unknown_edge(self, small_diamond):
        with pytest.raises(KeyError):
            small_diamond.with_weights(edges={(0, 3): 1.0})
