"""Tests for the process-parallel experiment engine."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.problem import ProblemInstance
from repro.experiments.parallel import (
    pool_available,
    resolve_jobs,
    run_tasks,
)
from repro.heuristics.base import run
from repro.platform.cmp import CMPGrid
from repro.spg.random_gen import random_spg


def _square(x: int) -> int:
    return x * x


class TestRunTasks:
    def test_serial_path_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_path_preserves_order(self):
        if not pool_available():  # pragma: no cover - sandboxed CI
            pytest.skip("process pools unavailable in this environment")
        assert run_tasks(_square, list(range(20)), jobs=2) == [
            x * x for x in range(20)
        ]

    def test_single_task_stays_in_process(self):
        # len(tasks) <= 1 must not spin up a pool.
        assert run_tasks(_square, [7], jobs=8) == [49]

    def test_empty(self):
        assert run_tasks(_square, [], jobs=4) == []


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cpus(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestPicklability:
    """Everything a worker ships back must survive pickling."""

    def test_heuristic_result_roundtrip(self):
        spg = random_spg(12, rng=4, ccr=1.0)
        grid = CMPGrid(2, 2)
        prob = ProblemInstance(spg, grid, 1.0)
        res = run("Greedy", prob, rng=0)
        clone = pickle.loads(pickle.dumps(res))
        assert clone.ok == res.ok
        if res.ok:
            assert clone.total_energy == res.total_energy
            assert clone.mapping.alloc == res.mapping.alloc
            assert clone.mapping.spg == res.mapping.spg
