"""Shared helpers importable from test modules."""

from __future__ import annotations

from repro.spg.graph import SPG


def loose_period(spg: SPG, parallelism: float = 8.0) -> float:
    """A feasible-but-not-trivial period for tests on random graphs.

    At least 1.2x the heaviest stage at top speed (otherwise *no* mapping
    exists) and at least enough for ``parallelism`` top-speed cores to
    carry the total work twice over.
    """
    s_max = 1e9
    return max(
        2.0 * spg.total_work / s_max / parallelism,
        1.2 * max(spg.weights) / s_max,
    )
