"""Tests for the Section-4 NP-hardness gadgets."""

import pytest

from repro.core.problem import ProblemInstance
from repro.exact.brute_force import brute_force_optimal
from repro.core.errors import HeuristicFailure
from repro.spg.analysis import is_series_parallel
from repro.spg.gadgets import (
    partition_fork_join,
    partition_platform,
    solve_2partition_via_mapping,
    uniline_gadget,
)


class TestPartitionForkJoin:
    def test_structure(self):
        g = partition_fork_join([3, 1, 4])
        assert g.n == 5
        assert g.ymax == 3
        assert g.weights[g.source] == 0.0
        assert g.weights[g.sink] == 0.0
        assert g.total_comm == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_fork_join([1, 0, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_fork_join([])


class TestPartitionPlatform:
    def test_single_speed(self):
        grid = partition_platform()
        assert grid.model.speeds == (1.0,)
        assert grid.uni_directional
        assert grid.n_cores == 2


class TestReduction:
    """Proposition 1: MinEnergy on the gadget decides 2-PARTITION."""

    @pytest.mark.parametrize(
        "values,expected",
        [
            ([1, 1], True),
            ([2, 1, 1], True),
            ([3, 1, 1], False),       # odd total
            ([3, 1, 4, 2, 2], True),  # 12 -> 6 + 6
            ([5, 1, 1, 1], False),    # 8 but 5 > 4
            ([4, 3, 2, 1], True),     # 10 -> {4,1} {3,2}
        ],
    )
    def test_decides_2partition(self, values, expected):
        ok, subset = solve_2partition_via_mapping(values)
        assert ok == expected
        if ok:
            assert subset is not None
            half = sum(values) / 2
            assert sum(values[i] for i in subset) == pytest.approx(half)

    def test_infeasible_period_means_no_partition(self):
        g = partition_fork_join([3, 1, 1])
        prob = ProblemInstance(g, partition_platform(2), 2.5)  # S/2 = 2.5
        with pytest.raises(HeuristicFailure):
            brute_force_optimal(prob)


class TestUnilineGadget:
    def test_stage_count(self):
        g = uniline_gadget([2, 3, 5])
        assert g.n == 3 * 3 + 3

    def test_unit_computations(self):
        g = uniline_gadget([2, 3])
        assert all(w == 1.0 for w in g.weights)

    def test_is_series_parallel(self):
        assert is_series_parallel(uniline_gadget([1, 2, 3, 4]))

    def test_backbone_volumes(self):
        values = [2.0, 4.0]
        g = uniline_gadget(values, eps=0.5)
        S = 6.0
        backbone = S / 2 + 0.5
        # Edge In -> A_1 carries S/2 + eps.
        assert g.comm(0, 1) == pytest.approx(backbone)
        # Appendix B -> C edges carry S + eps.
        heavy = [d for d in g.edges.values() if d == pytest.approx(S + 0.5)]
        assert len(heavy) == len(values)

    def test_value_edges_present(self):
        values = [2.0, 4.0, 7.0]
        g = uniline_gadget(values)
        vols = sorted(g.edges.values())
        for v in values:
            assert any(abs(d - v) < 1e-12 for d in vols)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            uniline_gadget([])
        with pytest.raises(ValueError):
            uniline_gadget([1, -2])
