"""Property-based tests (hypothesis) for core invariants.

Strategies build random SPGs by the same recursive composition the paper
uses, then check structural invariants of the labelling, the ideal lattice
and the heuristics' outputs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import max_cycle_time, validate
from repro.core.partition import IdealLattice
from repro.core.problem import ProblemInstance
from repro.heuristics.base import run
from repro.platform.cmp import CMPGrid
from repro.spg.analysis import is_series_parallel
from repro.spg.graph import SPG, parallel, series, sp_edge
from repro.util.bitset import iter_bits

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

weights = st.floats(min_value=1.0, max_value=100.0)
volumes = st.floats(min_value=0.0, max_value=50.0)


@st.composite
def spgs(draw, max_depth: int = 4) -> SPG:
    """Random SPG by recursive series/parallel composition."""

    def build(depth: int) -> SPG:
        if depth >= max_depth or draw(st.booleans()):
            return sp_edge(draw(weights), draw(weights), draw(volumes))
        left = build(depth + 1)
        right = build(depth + 1)
        if draw(st.booleans()):
            return series(left, right, merge="first")
        if left.n < 3 and right.n < 3 and left.edges.keys() == right.edges.keys():
            # Two bare edges in parallel collapse; that is fine but makes
            # size assertions awkward — compose in series instead.
            return series(left, right, merge="first")
        return parallel(left, right, merge="first")

    return build(0)


# ---------------------------------------------------------------------------
# SPG structural invariants (Section 3.1)
# ---------------------------------------------------------------------------


class TestSpgInvariants:
    @given(spgs())
    @settings(max_examples=60)
    def test_source_label(self, g: SPG):
        assert g.labels[g.source] == (1, 1)

    @given(spgs())
    @settings(max_examples=60)
    def test_sink_row_one(self, g: SPG):
        assert g.labels[g.sink][1] == 1
        assert g.labels[g.sink][0] == g.xmax

    @given(spgs())
    @settings(max_examples=60)
    def test_edges_increase_x(self, g: SPG):
        for (i, j) in g.edges:
            assert g.labels[i][0] < g.labels[j][0]

    @given(spgs())
    @settings(max_examples=60)
    def test_single_source_and_sink(self, g: SPG):
        for i in range(g.n):
            if i != g.source:
                assert g.preds(i)
            if i != g.sink:
                assert g.succs(i)

    @given(spgs())
    @settings(max_examples=60)
    def test_recognised_as_series_parallel(self, g: SPG):
        assert is_series_parallel(g)

    @given(spgs())
    @settings(max_examples=60)
    def test_same_row_same_level_distinct(self, g: SPG):
        """Labels are unique: no two stages share (x, y)."""
        assert len(set(g.labels)) == g.n

    @given(spgs(), st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=40)
    def test_ccr_rescaling(self, g: SPG, target: float):
        if g.total_comm < 1e-9 * g.total_work:
            return  # degenerate: rescaling would overflow float range
        assert abs(g.with_ccr(target).ccr - target) < 1e-6 * target


# ---------------------------------------------------------------------------
# Ideal lattice invariants (Section 4.1)
# ---------------------------------------------------------------------------


class TestIdealInvariants:
    @given(spgs(max_depth=3))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_ideals_are_predecessor_closed(self, g: SPG):
        lat = IdealLattice(g, budget=50_000)
        for ideal in lat.ideals():
            for i in iter_bits(ideal):
                for p in g.preds(i):
                    assert (ideal >> p) & 1

    @given(spgs(max_depth=3))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_ideal_count_bound(self, g: SPG):
        """The paper's bound: at most n^ymax + ... admissible subgraphs."""
        lat = IdealLattice(g, budget=50_000)
        count = len(lat.ideals())
        bound = (g.n + 1) ** max(g.ymax, 1) + 1
        assert count <= bound

    @given(spgs(max_depth=3))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_suffix_clusters_are_complements_of_ideals(self, g: SPG):
        lat = IdealLattice(g, budget=50_000)
        full = lat.full
        ideals = set(lat.ideals())
        for h in lat.suffix_clusters(full, float("inf")):
            assert full & ~h in ideals


# ---------------------------------------------------------------------------
# Heuristic outputs are always valid mappings (or clean failures)
# ---------------------------------------------------------------------------

heuristic_names = st.sampled_from(
    ["Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"]
)


class TestHeuristicContracts:
    @given(spgs(max_depth=3), heuristic_names, st.integers(0, 2**31 - 1))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_valid_or_failure(self, g: SPG, name: str, seed: int):
        """Any heuristic either returns a valid mapping or raises cleanly."""
        # Scale weights into the XScale regime.
        scale = 5e8 / max(g.weights)
        g = g.with_weights(
            weights=[w * scale for w in g.weights],
            edges={e: d * 1e6 for e, d in g.edges.items()},
        )
        T = max(
            1.5 * max(g.weights) / 1e9, g.total_work / 1e9 / 4
        )
        prob = ProblemInstance(g, CMPGrid(3, 3), T)
        res = run(name, prob, rng=seed, **(
            {"ideal_budget": 20_000} if name == "DPA1D" else {}
        ))
        if res.ok:
            validate(res.mapping, T)
            assert max_cycle_time(res.mapping) <= T * (1 + 1e-9)
        else:
            assert not (res.failure or "").startswith("INVALID")
