"""Tests for chooser options plumbing and instance-level edge cases."""

import pytest

from repro.core.problem import ProblemInstance
from repro.experiments.period import choose_period, run_all
from repro.platform.cmp import CMPGrid
from repro.spg.build import chain, split_join


class TestOptionsPlumbing:
    def test_per_heuristic_options(self, grid_4x4):
        """A tiny DPA1D ideal budget must be honoured through run_all."""
        g = split_join([1] * 10, w_source=1e8, w_sink=1e8, w_branch=1e8,
                       comm=1e3)
        prob = ProblemInstance(g, grid_4x4, 2.0)
        res = run_all(
            prob,
            heuristics=("DPA1D",),
            rng=0,
            options={"DPA1D": {"ideal_budget": 50}},
        )
        assert not res["DPA1D"].ok
        assert "admissible" in res["DPA1D"].failure

    def test_chooser_forwards_options(self, grid_4x4):
        g = split_join([1] * 10, w_source=1e8, w_sink=1e8, w_branch=1e8,
                       comm=1e3)
        choice = choose_period(
            g, grid_4x4, heuristics=("DPA1D", "Greedy"), rng=0,
            options={"DPA1D": {"ideal_budget": 50}},
        )
        assert not choice.results["DPA1D"].ok

    def test_chooser_with_single_heuristic(self, grid_4x4):
        g = chain(5, [1e8] * 5, [1e4] * 4)
        choice = choose_period(g, grid_4x4, heuristics=("Greedy",), rng=0)
        assert choice.results["Greedy"].ok

    def test_custom_start_and_factor(self, grid_4x4):
        g = chain(5, [1e8] * 5, [1e4] * 4)
        c2 = choose_period(g, grid_4x4, heuristics=("Greedy",),
                           start=2.0, factor=2.0, rng=0)
        # With factor 2 the retained period is within a factor 2 of the
        # all-fail point, hence tighter than the factor-10 choice.
        c10 = choose_period(g, grid_4x4, heuristics=("Greedy",),
                            start=2.0, factor=10.0, rng=0)
        assert c2.period <= c10.period * (1 + 1e-9)

    def test_rng_controls_heuristic_streams(self, grid_4x4):
        g = chain(5, [1e8] * 5, [1e4] * 4)
        prob = ProblemInstance(g, grid_4x4, 1.0)
        a = run_all(prob, heuristics=("Random",), rng=5)["Random"]
        b = run_all(prob, heuristics=("Random",), rng=5)["Random"]
        assert a.ok and b.ok
        assert a.mapping.alloc == b.mapping.alloc


class TestPeriodChoiceObject:
    def test_successes_property(self, grid_4x4):
        g = chain(5, [1e8] * 5, [1e4] * 4)
        choice = choose_period(g, grid_4x4, rng=0)
        assert choice.successes == sum(
            1 for r in choice.results.values() if r.ok
        )

    def test_chosen_period_is_power_of_ten_times_start(self, grid_4x4):
        import math

        g = chain(5, [1e8] * 5, [1e4] * 4)
        choice = choose_period(g, grid_4x4, start=1.0, rng=0)
        log = math.log10(choice.period)
        assert abs(log - round(log)) < 1e-9
