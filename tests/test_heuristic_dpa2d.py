"""Tests for DPA2D (Section 5.3) and DPA2D1D (Section 5.4)."""

import pytest

from tests.helpers import loose_period

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, validate
from repro.core.problem import ProblemInstance
from repro.heuristics.dpa1d import solve_uniline
from repro.heuristics.dpa2d import (
    dpa2d1d_mapping,
    dpa2d_mapping,
    solve_dpa2d,
)
from repro.platform.cmp import CMPGrid
from repro.spg.build import chain, split_join
from repro.spg.random_gen import random_spg, random_spg_with_elevation


class TestDpa2dMapping:
    def test_valid_on_splitjoin(self, grid_4x4):
        g = split_join([2, 2, 2, 2], w_source=1e8, w_sink=1e8,
                       w_branch=3e8, comm=1e5)
        T = 0.8
        m = dpa2d_mapping(ProblemInstance(g, grid_4x4, T))
        validate(m, T)

    def test_internal_energy_matches_evaluator(self, grid_4x4):
        g = split_join([2, 2, 2], w_source=1e8, w_sink=1e8,
                       w_branch=3e8, comm=1e5)
        T = 0.8
        prob = ProblemInstance(g, grid_4x4, T)
        e, _plans = solve_dpa2d(prob, 4, 4)
        m = dpa2d_mapping(prob)
        assert energy(m, T).total == pytest.approx(e, rel=1e-9)

    def test_pipeline_wastes_cores(self, grid_4x4):
        """A linear chain can only enroll one core per column (q cores)."""
        g = chain(16, [5e8] * 16, [1e5] * 15)
        T = 0.55  # one stage per core would be needed: 16 > 4 columns
        with pytest.raises(HeuristicFailure):
            dpa2d_mapping(ProblemInstance(g, grid_4x4, T))

    def test_pipeline_one_core_per_column(self, grid_4x4):
        g = chain(8, [5e8] * 8, [1e5] * 7)
        T = 1.1  # two stages per core fit
        m = dpa2d_mapping(ProblemInstance(g, grid_4x4, T))
        validate(m, T)
        # Each active core sits on a distinct column.
        cols = [c[1] for c in m.active_cores()]
        assert len(cols) == len(set(cols))

    def test_high_elevation_uses_column_cores(self, grid_4x4):
        g = split_join([1] * 8, w_source=1e8, w_sink=1e8, w_branch=3e8,
                       comm=1e5)
        T = 0.7
        m = dpa2d_mapping(ProblemInstance(g, grid_4x4, T))
        validate(m, T)
        # The branch level alone carries 2.4e9 cycles: needs >= 4 cores in
        # its column, plus distinct columns for source and sink.
        assert len(m.active_cores()) >= 5

    def test_level_too_heavy_for_column_fails(self, grid_4x4):
        # 8 branches of 6e8 cycles in one level: a column of 4 cores can
        # hold at most 4 of them at T=0.7, and levels cannot split across
        # columns -- DPA2D must fail (the paper's "wastes a lot of cores").
        g = split_join([1] * 8, w_source=1e8, w_sink=1e8, w_branch=6e8,
                       comm=1e5)
        with pytest.raises(HeuristicFailure):
            dpa2d_mapping(ProblemInstance(g, grid_4x4, 0.7))

    def test_respects_columns_left_to_right(self, grid_4x4):
        g = random_spg_with_elevation(20, 3, rng=2, ccr=10.0)
        T = loose_period(g)
        try:
            m = dpa2d_mapping(ProblemInstance(g, grid_4x4, T))
        except HeuristicFailure:
            pytest.skip("instance infeasible for DPA2D")
        for (i, j) in g.edges:
            assert m.alloc[i][1] <= m.alloc[j][1]

    def test_infeasible_period(self, grid_2x2):
        g = chain(3, [2e9] * 3, [1.0] * 2)
        with pytest.raises(HeuristicFailure):
            dpa2d_mapping(ProblemInstance(g, grid_2x2, 1.0))


class TestDpa2d1d:
    def test_valid_mapping(self, grid_4x4):
        g = chain(8, [5e8] * 8, [1e5] * 7)
        T = 1.1
        m = dpa2d1d_mapping(ProblemInstance(g, grid_4x4, T))
        validate(m, T)

    def test_uses_whole_snake(self, grid_4x4):
        """Unlike DPA2D, the 1D variant can use all 16 cores on a chain."""
        g = chain(16, [5e8] * 16, [1e5] * 15)
        T = 0.55
        m = dpa2d1d_mapping(ProblemInstance(g, grid_4x4, T))
        validate(m, T)
        assert len(m.active_cores()) == 16

    def test_level_granularity_vs_dpa1d(self, grid_4x4):
        """DPA2D1D's clusters are whole levels: never better than DPA1D."""
        g = random_spg(14, rng=9, ccr=10.0)
        T = loose_period(g)
        prob = ProblemInstance(g, grid_4x4, T)
        try:
            e1d, _c, _s = solve_uniline(prob, 16)
            m = dpa2d1d_mapping(prob)
        except HeuristicFailure:
            pytest.skip("instance infeasible")
        assert energy(m, T).total >= e1d * (1 - 1e-9)

    def test_chain_equals_dpa1d(self, grid_4x4):
        """On a chain, level granularity = stage granularity: same optimum."""
        g = chain(10, [3e8] * 10, [1e5] * 9)
        T = 0.7
        prob = ProblemInstance(g, grid_4x4, T)
        e1d, _c, _s = solve_uniline(prob, 16)
        m = dpa2d1d_mapping(prob)
        assert energy(m, T).total == pytest.approx(e1d, rel=1e-9)

    def test_snake_paths_valid(self, grid_4x4):
        g = chain(10, [3e8] * 10, [1e5] * 9)
        m = dpa2d1d_mapping(ProblemInstance(g, grid_4x4, 0.7))
        for path in m.paths.values():
            grid_4x4.validate_path(path)


class TestVirtualGridEquivalence:
    def test_solver_on_line_matches_mapping_energy(self, grid_4x4):
        g = chain(10, [3e8] * 10, [1e5] * 9)
        T = 0.7
        prob = ProblemInstance(g, grid_4x4, T)
        e, _plans = solve_dpa2d(prob, 1, 16)
        m = dpa2d1d_mapping(prob)
        assert energy(m, T).total == pytest.approx(e, rel=1e-9)
