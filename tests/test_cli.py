"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestWorkflows:
    def test_lists_all_twelve(self):
        code, text = run_cli("workflows")
        assert code == 0
        for name in ("Beamformer", "Serpent", "TDE"):
            assert name in text

    def test_table1_numbers_present(self):
        _code, text = run_cli("workflows")
        assert "57" in text   # Beamformer n
        assert "111" in text  # Serpent xmax


class TestMap:
    def test_map_chain_workflow(self):
        code, text = run_cli("map", "-w", "DCT", "-H", "DPA1D", "--seed", "1")
        assert code == 0
        assert "energy:" in text
        assert "stages per core" in text

    def test_explicit_period(self):
        code, text = run_cli(
            "map", "-w", "DCT", "-H", "Greedy", "-T", "1.0"
        )
        assert code == 0
        assert "period (Section 6.1.3)" not in text

    def test_failure_exit_code(self):
        # A hopeless period: every stage needs more than T at top speed.
        code, text = run_cli(
            "map", "-w", "DCT", "-H", "Greedy", "-T", "1e-6"
        )
        assert code == 1
        assert "FAILED" in text

    def test_random_instance(self):
        code, text = run_cli(
            "map", "--random", "12", "-H", "Greedy", "--seed", "3"
        )
        assert code == 0
        assert "energy:" in text

    def test_refine_flag(self):
        code, text = run_cli(
            "map", "-w", "DCT", "-H", "Random", "--refine", "--seed", "0"
        )
        assert code == 0

    def test_bad_grid_spec(self):
        with pytest.raises(SystemExit):
            run_cli("map", "--grid", "4by4")


class TestCompare:
    def test_compare_runs_all(self):
        code, text = run_cli("compare", "-w", "DCT", "--seed", "0")
        assert code == 0
        for h in ("Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"):
            assert h in text

    def test_normalised_column(self):
        _code, text = run_cli("compare", "-w", "DCT", "--seed", "0")
        assert "1.000" in text  # the winner

    def test_explicit_period(self):
        code, text = run_cli(
            "compare", "-w", "FFT", "-T", "10.0", "--seed", "0"
        )
        assert code == 0
        assert "T = 10" in text


class TestExperiment:
    def test_fig8_subset(self, tmp_path):
        csv_path = tmp_path / "out.csv"
        code, text = run_cli(
            "experiment", "fig8", "--workflows", "7", "--ccr", "1.0",
            "--csv", str(csv_path),
        )
        assert code == 0
        assert "DCT" in text
        assert csv_path.exists()
        assert "workflow,ccr" in csv_path.read_text()

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSolvers:
    def test_list_shows_registry(self):
        code, text = run_cli("solvers", "list")
        assert code == 0
        for name in ("greedy", "dpa2d1d", "bruteforce", "ilp", "bnb",
                     "refine", "portfolio"):
            assert name in text

    def test_describe_named_solver(self):
        code, text = run_cli("solvers", "describe", "portfolio")
        assert code == 0
        assert "portfolio" in text

    def test_describe_pipeline_spec(self):
        code, text = run_cli("solvers", "describe", "dpa2d1d+refine")
        assert code == 0
        assert "pipeline" in text and "refine" in text

    def test_describe_transform_stage(self):
        """Registered transforms are describable even though they cannot
        start a composite spec."""
        for name in ("refine", "refine-best", "refine-anneal"):
            code, text = run_cli("solvers", "describe", name)
            assert code == 0, name
            assert "transform" in text

    def test_describe_without_name(self):
        code, _text = run_cli("solvers", "describe")
        assert code == 2

    def test_describe_unknown(self):
        code, text = run_cli("solvers", "describe", "frobnicate")
        assert code == 2
        assert "unknown solver" in text


class TestSolve:
    def test_pipeline_spec(self):
        code, text = run_cli(
            "solve", "-w", "DCT", "--solver", "dpa2d1d+refine", "--seed", "0"
        )
        assert code == 0
        assert "stage dpa2d1d" in text and "stage refine" in text
        assert "solver dpa2d1d+refine" in text

    def test_portfolio_prints_member_table(self):
        code, text = run_cli(
            "solve", "-w", "DCT", "--solver", "portfolio", "--seed", "0"
        )
        assert code == 0
        assert "winner" in text
        for member in ("random", "greedy", "dpa2d", "dpa1d", "dpa2d1d"):
            assert member in text

    def test_failure_exit_code(self):
        code, text = run_cli(
            "solve", "-w", "DCT", "--solver", "greedy", "-T", "1e-6"
        )
        assert code == 1
        assert "FAILED" in text

    def test_unknown_spec_exit_code(self):
        code, text = run_cli("solve", "-w", "DCT", "--solver", "nope+refine")
        assert code == 2
        assert "unknown solver" in text

    def test_transform_only_spec_rejected(self):
        code, text = run_cli("solve", "-w", "DCT", "--solver", "refine")
        assert code == 2
        assert "transform" in text


class TestSweepSolvers:
    def test_solvers_axis(self, tmp_path):
        out_path = tmp_path / "sweep.json"
        code, text = run_cli(
            "sweep", "--topologies", "mesh", "--sizes", "2x2",
            "--ccr", "1.0", "--apps", "random-12", "--replicates", "1",
            "--solvers", "Greedy", "dpa2d1d+refine",
            "--out", str(out_path),
        )
        assert code == 0
        assert "dpa2d1d+refine" in text
        assert out_path.exists()

    def test_invalid_spec_exits_cleanly(self):
        code, text = run_cli(
            "sweep", "--topologies", "mesh", "--sizes", "2x2",
            "--ccr", "1.0", "--apps", "random-8", "--replicates", "1",
            "--solvers", "Gredy",
        )
        assert code == 2
        assert "unknown solver" in text


class TestVersion:
    def test_version_flag(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        from repro.util.version import repro_version

        assert f"repro {repro_version()}" in capsys.readouterr().out


def sweep_args(*extra):
    return (
        "sweep", "--topologies", "mesh", "--sizes", "2x2",
        "--ccr", "1.0", "--apps", "random-8", "--replicates", "2",
        "--seed", "3", *extra,
    )


class TestSweepStore:
    def test_interrupt_resume_merge_matches_cold(self, tmp_path):
        db = str(tmp_path / "cells.sqlite")
        cold_path = tmp_path / "cold.json"
        part_path = tmp_path / "part.json"
        full_path = tmp_path / "full.json"
        code, _ = run_cli(*sweep_args("--out", str(cold_path)))
        assert code == 0
        code, _ = run_cli(*sweep_args(
            "--store", db, "--limit", "1", "--checkpoint", "1",
            "--out", str(part_path),
        ))
        assert code == 0
        code, _ = run_cli(*sweep_args(
            "--store", db, "--resume", "--out", str(full_path),
        ))
        assert code == 0
        assert full_path.read_bytes() == cold_path.read_bytes()
        assert part_path.read_bytes() != cold_path.read_bytes()

    def test_shard_flag_in_summary(self, tmp_path):
        db = str(tmp_path / "cells.sqlite")
        code, text = run_cli(*sweep_args("--store", db, "--shard", "0/2"))
        assert code == 0
        assert "[shard 0/2]" in text
        assert "1/2 instances" in text

    def test_resume_without_store_rejected(self):
        code, text = run_cli(*sweep_args("--resume"))
        assert code == 2
        assert "--store" in text

    def test_bad_shard_spec_rejected(self, tmp_path):
        db = str(tmp_path / "cells.sqlite")
        code, text = run_cli(*sweep_args("--store", db, "--shard", "5/2"))
        assert code == 2
        assert "shard" in text


class TestStoreCommand:
    def fill(self, tmp_path) -> str:
        db = str(tmp_path / "store.sqlite")
        code, _ = run_cli(*sweep_args("--store", db))
        assert code == 0
        return db

    def test_stats(self, tmp_path):
        import json as json_mod

        db = self.fill(tmp_path)
        code, text = run_cli("store", "stats", "--store", db)
        assert code == 0
        stats = json_mod.loads(text)
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"sweep-cell": 2}
        assert stats["stale"] == 0

    def test_gc_noop_when_fresh(self, tmp_path):
        db = self.fill(tmp_path)
        code, text = run_cli("store", "gc", "--store", db)
        assert code == 0
        assert "removed 0" in text

    def test_gc_kind_and_all(self, tmp_path):
        db = self.fill(tmp_path)
        code, text = run_cli("store", "gc", "--store", db,
                             "--kind", "sweep-cell")
        assert code == 0
        assert "removed 2" in text
        second = tmp_path / "second"
        second.mkdir()
        db2 = self.fill(second)
        code, text = run_cli("store", "gc", "--store", db2, "--all")
        assert code == 0
        assert "removed 2" in text

    def test_export(self, tmp_path):
        import json as json_mod

        db = self.fill(tmp_path)
        out_path = tmp_path / "snap.json"
        code, text = run_cli("store", "export", "--store", db,
                             "--out", str(out_path))
        assert code == 0
        snap = json_mod.loads(out_path.read_text())
        assert snap["meta"]["entries"] == 2
        assert len(snap["entries"]) == 2
        code, text = run_cli("store", "export", "--store", db)
        assert code == 0
        assert json_mod.loads(text)["meta"]["entries"] == 2


class TestEvictCommand:
    def fill(self, tmp_path) -> str:
        db = str(tmp_path / "store.sqlite")
        code, _ = run_cli(*sweep_args("--store", db))
        assert code == 0
        return db

    def test_evict_to_row_cap(self, tmp_path):
        import json as json_mod

        db = self.fill(tmp_path)
        code, text = run_cli("store", "evict", "--store", db,
                             "--policy", "lru", "--max-rows", "1")
        assert code == 0
        result = json_mod.loads(text)
        assert result["policy"] == "lru"
        assert result["evicted"] == 1
        assert result["rows"] == 1
        code, text = run_cli("store", "stats", "--store", db)
        stats = json_mod.loads(text)
        assert stats["entries"] == 1
        assert stats["eviction"] == {"evicted": {"lru": 1}, "total": 1}

    def test_evict_requires_a_cap(self, tmp_path):
        db = self.fill(tmp_path)
        code, text = run_cli("store", "evict", "--store", db)
        assert code == 2
        assert "--max-rows" in text

    def test_evict_unknown_policy_rejected(self, tmp_path):
        db = self.fill(tmp_path)
        code, text = run_cli("store", "evict", "--store", db,
                             "--policy", "oracle", "--max-rows", "1")
        assert code == 2
        assert "unknown eviction policy" in text

    def test_bounded_sweep_evict_resume_matches_cold(self, tmp_path):
        db = str(tmp_path / "bounded.sqlite")
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        code, _ = run_cli(*sweep_args("--out", str(cold_path)))
        assert code == 0
        code, _ = run_cli(*sweep_args(
            "--store", db, "--store-policy", "drrip",
            "--store-max-rows", "1",
        ))
        assert code == 0
        code, _ = run_cli("store", "evict", "--store", db,
                          "--max-rows", "0")
        assert code == 0
        code, _ = run_cli(*sweep_args(
            "--store", db, "--resume", "--out", str(warm_path),
        ))
        assert code == 0
        assert warm_path.read_bytes() == cold_path.read_bytes()

    def test_bad_store_policy_flag_rejected(self, tmp_path):
        db = str(tmp_path / "bounded.sqlite")
        code, text = run_cli(*sweep_args(
            "--store", db, "--store-policy", "oracle",
            "--store-max-rows", "1",
        ))
        assert code == 2


class TestServeCommand:
    def write_requests(self, tmp_path):
        import json as json_mod

        path = tmp_path / "requests.json"
        path.write_text(json_mod.dumps({"requests": [
            {"solver": "greedy", "app": "random-10", "size": "2x2",
             "seed": 0},
            {"solver": "dpa2d1d+refine", "app": "random-10",
             "size": "2x2", "seed": 1},
        ]}))
        return str(path)

    def test_cold_then_warm(self, tmp_path):
        import json as json_mod

        reqs = self.write_requests(tmp_path)
        db = str(tmp_path / "serve.sqlite")
        out_path = tmp_path / "responses.json"
        code, text = run_cli("serve", "--batch", reqs, "--store", db,
                             "--out", str(out_path))
        assert code == 0
        assert "2 misses" in text
        cold = json_mod.loads(out_path.read_text())
        code, text = run_cli("serve", "--batch", reqs, "--store", db)
        assert code == 0
        assert "2 hits" in text
        assert cold["meta"]["misses"] == 2

    def test_bad_requests_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, text = run_cli("serve", "--batch", str(bad))
        assert code == 2
        assert "bad requests file" in text

    def test_missing_requests_file(self, tmp_path):
        code, text = run_cli("serve", "--batch", str(tmp_path / "nope.json"))
        assert code == 2

    def test_serve_without_store_is_all_misses(self, tmp_path):
        reqs = self.write_requests(tmp_path)
        code, text = run_cli("serve", "--batch", reqs)
        assert code == 0
        assert "2 misses" in text
        code, text = run_cli("serve", "--batch", reqs)
        assert "2 misses" in text  # in-memory store: nothing persists


class TestObservability:
    SWEEP = (
        "sweep", "--topologies", "mesh", "--sizes", "3x3", "--ccr", "10",
        "--apps", "random-8", "--replicates", "1", "--seed", "1",
    )

    def test_traced_sweep_report_is_byte_identical(self, tmp_path):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        trace = tmp_path / "t.jsonl"
        code, _ = run_cli(*self.SWEEP, "--out", str(plain))
        assert code == 0
        code, text = run_cli(
            *self.SWEEP, "--out", str(traced), "--trace", str(trace),
            "--metrics",
        )
        assert code == 0
        assert plain.read_bytes() == traced.read_bytes()
        assert "Session metrics" in text
        assert f"trace written to {trace}" in text

    def test_trace_summarize(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, _ = run_cli(*self.SWEEP, "--trace", str(trace))
        assert code == 0
        code, text = run_cli("trace", "summarize", str(trace))
        assert code == 0
        assert "sweep.cell" in text
        assert "solver.run" in text

    def test_trace_summarize_bad_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n")
        code, text = run_cli("trace", "summarize", str(bad))
        assert code == 2
        assert "bad trace file" in text

    def test_trace_summarize_missing_file(self, tmp_path):
        code, text = run_cli(
            "trace", "summarize", str(tmp_path / "nope.jsonl")
        )
        assert code == 2

    def test_stats_json(self, tmp_path):
        import json as json_mod

        stats = tmp_path / "stats.json"
        code, text = run_cli(*self.SWEEP, "--stats-json", str(stats))
        assert code == 0
        assert f"execution stats written to {stats}" in text
        doc = json_mod.loads(stats.read_text())
        assert doc["execution"] == {
            "retries": 0, "crashes": 0, "timeouts": 0, "respawns": 0,
            "permanent_failures": 0,
        }
        counters = doc["metrics"]["counters"]
        assert counters["sweep.cells_computed"] == 1
        assert counters["solver.runs"] > 0

    def test_env_var_arms_tracing(self, tmp_path, monkeypatch):
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        code, text = run_cli(*self.SWEEP)
        assert code == 0
        assert trace.exists()
        assert f"trace written to {trace}" in text

    def test_store_stats_reports_access(self, tmp_path):
        import json as json_mod

        db = str(tmp_path / "cells.sqlite")
        code, _ = run_cli(*self.SWEEP, "--store", db)
        assert code == 0
        code, _ = run_cli(*self.SWEEP, "--store", db, "--resume")
        assert code == 0
        code, text = run_cli("store", "stats", "--store", db)
        assert code == 0
        stats = json_mod.loads(text)
        assert stats["access"]["hits"] == 1
        assert stats["access"]["rows_never_hit"] == 0

    def test_profile_dumps(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        prof = tmp_path / "prof"
        code, _ = run_cli(*self.SWEEP, "--profile", str(prof))
        assert code == 0
        assert list(prof.glob("cli-*.pstats"))
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
