"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestWorkflows:
    def test_lists_all_twelve(self):
        code, text = run_cli("workflows")
        assert code == 0
        for name in ("Beamformer", "Serpent", "TDE"):
            assert name in text

    def test_table1_numbers_present(self):
        _code, text = run_cli("workflows")
        assert "57" in text   # Beamformer n
        assert "111" in text  # Serpent xmax


class TestMap:
    def test_map_chain_workflow(self):
        code, text = run_cli("map", "-w", "DCT", "-H", "DPA1D", "--seed", "1")
        assert code == 0
        assert "energy:" in text
        assert "stages per core" in text

    def test_explicit_period(self):
        code, text = run_cli(
            "map", "-w", "DCT", "-H", "Greedy", "-T", "1.0"
        )
        assert code == 0
        assert "period (Section 6.1.3)" not in text

    def test_failure_exit_code(self):
        # A hopeless period: every stage needs more than T at top speed.
        code, text = run_cli(
            "map", "-w", "DCT", "-H", "Greedy", "-T", "1e-6"
        )
        assert code == 1
        assert "FAILED" in text

    def test_random_instance(self):
        code, text = run_cli(
            "map", "--random", "12", "-H", "Greedy", "--seed", "3"
        )
        assert code == 0
        assert "energy:" in text

    def test_refine_flag(self):
        code, text = run_cli(
            "map", "-w", "DCT", "-H", "Random", "--refine", "--seed", "0"
        )
        assert code == 0

    def test_bad_grid_spec(self):
        with pytest.raises(SystemExit):
            run_cli("map", "--grid", "4by4")


class TestCompare:
    def test_compare_runs_all(self):
        code, text = run_cli("compare", "-w", "DCT", "--seed", "0")
        assert code == 0
        for h in ("Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"):
            assert h in text

    def test_normalised_column(self):
        _code, text = run_cli("compare", "-w", "DCT", "--seed", "0")
        assert "1.000" in text  # the winner

    def test_explicit_period(self):
        code, text = run_cli(
            "compare", "-w", "FFT", "-T", "10.0", "--seed", "0"
        )
        assert code == 0
        assert "T = 10" in text


class TestExperiment:
    def test_fig8_subset(self, tmp_path):
        csv_path = tmp_path / "out.csv"
        code, text = run_cli(
            "experiment", "fig8", "--workflows", "7", "--ccr", "1.0",
            "--csv", str(csv_path),
        )
        assert code == 0
        assert "DCT" in text
        assert csv_path.exists()
        assert "workflow,ccr" in csv_path.read_text()

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
