"""Chaos battery for the fault-tolerant execution layer.

The acceptance contract: a run whose injected faults are all
*recovered* — crashed workers respawned, hung workers timed out and
retried, corrupt store rows quarantined and recomputed — produces a
consolidated report **byte-identical** to a fault-free run, because
every retry re-runs the same pre-drawn task tuples.  Only *permanent*
failures (retries exhausted) may change a report, and then they appear
as typed records in ``meta.failures``.
"""

from __future__ import annotations

import json
import os
import sqlite3

import pytest

from repro.core.errors import StoreCorruption
from repro.experiments import report_json, run_scenario_sweep, sweep_summary
from repro.experiments.parallel import pool_available, run_tasks
from repro.resilience import (
    ExecutionStats,
    FaultPlan,
    RetryPolicy,
    TaskError,
    TaskFailure,
    WorkerCrash,
    resolve_fault_plan,
)
from repro.resilience.faults import FAULT_PLAN_ENV, FaultSite
from repro.store import BatchRequest, SQLiteStore, open_store, serve_batch
from repro.util.io import atomic_write_text

#: Three topologies x 2 replicates = 6 cells, small enough to run the
#: sweep several times per test module.
SWEEP = dict(
    topologies=("mesh", "torus", "ring"),
    sizes=("2x2",),
    ccrs=(10.0,),
    apps=("random-8",),
    replicates=2,
    seed=7,
)

#: A fast policy for tests: real backoff shape, negligible sleeps.
FAST = RetryPolicy(backoff_s=0.001, max_backoff_s=0.002)


@pytest.fixture(scope="module")
def clean_text() -> str:
    return report_json(run_scenario_sweep(**SWEEP))


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"boom {x}")


class TestRetryPolicy:
    def test_delay_is_deterministic_and_exponential(self):
        p = RetryPolicy(backoff_s=0.1, backoff_factor=2.0,
                        max_backoff_s=10.0, jitter=0.1)
        d1, d2, d3 = (p.delay(a, token=42) for a in (1, 2, 3))
        assert d1 == p.delay(1, token=42)  # pure function
        assert 0.1 <= d1 <= 0.11
        assert 0.2 <= d2 <= 0.22
        assert 0.4 <= d3 <= 0.44
        assert p.delay(1, token=1) != p.delay(1, token=2)

    def test_delay_caps_at_max_backoff(self):
        p = RetryPolicy(backoff_s=1.0, max_backoff_s=2.0, jitter=0.0)
        assert p.delay(10) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_task_failure_roundtrip(self):
        tf = TaskFailure(3, "crash", "worker died", 2)
        assert TaskFailure.from_payload(tf.to_payload()) == tf
        assert "task 3" in tf.describe() and "crash" in tf.describe()

    def test_task_error_carries_failure(self):
        tf = TaskFailure(0, "timeout", "too slow", 3)
        err = TaskError(tf)
        assert err.failure is tf and "timeout" in str(err)

    def test_stats_merge_and_clean(self):
        a, b = ExecutionStats(), ExecutionStats()
        assert a.clean
        b.retries, b.crashes = 2, 1
        b.failures.append(TaskFailure(0, "crash", "x", 3))
        a.merge(b)
        assert (a.retries, a.crashes, len(a.failures)) == (2, 1, 1)
        assert not a.clean and "2 retries" in a.summary()


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse(
            "crash@task:3; hang@task:5*2:0.5 ;corrupt@key:3fa;"
            "crash@task:*;corrupt@key:**2"
        )
        kinds = [(s.kind, s.target, s.times) for s in plan.sites]
        assert kinds == [
            ("crash", "3", 1), ("hang", "5", 2), ("corrupt", "3fa", 1),
            ("crash", "*", 1), ("corrupt", "*", 2),
        ]
        assert plan.sites[1].seconds == 0.5
        assert FaultPlan.parse(plan.to_spec()) == plan

    @pytest.mark.parametrize("bad", [
        "explode@task:1",         # unknown kind
        "crash@key:abc",          # wrong scope for kind
        "corrupt@task:1",         # wrong scope for kind
        "crash",                  # no @
        "crash@task:",            # empty target
        "crash@task:x",           # non-integer task index
        "crash@task:1*0",         # times < 1
        "crash@task:1:5",         # seconds on a non-hang site
        "hang@task:1:0",          # non-positive seconds
        "hang@task:1:1:2",        # too many suffixes
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_task_sites_are_attempt_addressed(self):
        plan = FaultPlan.parse("crash@task:2*2")
        assert plan.task_fault(2, 1) is not None
        assert plan.task_fault(2, 2) is not None
        assert plan.task_fault(2, 3) is None  # escapes on attempt 3
        assert plan.task_fault(1, 1) is None

    def test_corrupt_sites_consume_counters(self):
        plan = FaultPlan.parse("corrupt@key:ab*2")
        assert plan.corrupt_put("abc")
        assert not plan.corrupt_put("zzz")
        assert plan.corrupt_put("abd")
        assert not plan.corrupt_put("abe")  # disarmed after 2 hits

    def test_resolve_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash@task:0")
        plan = resolve_fault_plan(None)
        assert plan is not None and plan.sites[0].kind == "crash"
        explicit = FaultPlan.parse("hang@task:1")
        assert resolve_fault_plan(explicit) is explicit
        assert resolve_fault_plan("") is None

    def test_site_spec_roundtrip_defaults(self):
        site = FaultSite("hang", "task", "4", times=3, seconds=0.25)
        assert FaultPlan.parse(site.to_spec()).sites[0] == site


class TestSerialResilience:
    def test_recoverable_crash_retries_in_place(self):
        stats = ExecutionStats()
        out = run_tasks(
            _square, [1, 2, 3], policy=FAST, faults="crash@task:1",
            stats=stats,
        )
        assert out == [1, 4, 9]
        assert stats.crashes == 1 and stats.retries == 1
        assert not stats.failures

    def test_exhausted_retries_raise_typed_error(self):
        with pytest.raises(TaskError) as exc:
            run_tasks(_square, [1, 2], policy=FAST,
                      faults="crash@task:0*99")
        assert exc.value.failure.reason == "crash"
        assert exc.value.failure.attempts == FAST.max_attempts

    def test_exhausted_retries_recorded_in_place(self):
        stats = ExecutionStats()
        out = run_tasks(
            _square, [1, 2, 3], policy=FAST, faults="crash@task:1*99",
            failures="record", stats=stats,
        )
        assert out[0] == 1 and out[2] == 9
        assert isinstance(out[1], TaskFailure)
        assert out[1].index == 1 and out[1].reason == "crash"
        assert stats.failures == [out[1]]

    def test_injected_hang_maps_to_timeout(self):
        out = run_tasks(
            _square, [5], policy=FAST, faults="hang@task:0*99:0.01",
            failures="record",
        )
        assert isinstance(out[0], TaskFailure)
        assert out[0].reason == "timeout"

    def test_task_errors_never_retried(self):
        stats = ExecutionStats()
        out = run_tasks(
            _boom, [1], policy=FAST, failures="record", stats=stats,
        )
        assert isinstance(out[0], TaskFailure)
        assert out[0].reason == "error" and out[0].attempts == 1
        assert stats.retries == 0
        with pytest.raises(RuntimeError):
            run_tasks(_boom, [1], policy=FAST)

    def test_worker_crash_is_typed(self):
        with pytest.raises(TaskError):
            run_tasks(
                _square, [1], policy=RetryPolicy(max_attempts=1),
                faults="crash@task:*",
            )
        assert issubclass(WorkerCrash, Exception)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_tasks(_square, [1], failures="ignore")
        with pytest.raises(ValueError):
            run_tasks(_square, [1, 2], deadlines=[1.0])


@pytest.mark.skipif(
    not pool_available(), reason="process pools unavailable"
)
class TestPoolResilience:
    def test_crash_recovery_matches_serial(self):
        stats = ExecutionStats()
        out = run_tasks(
            _square, list(range(8)), jobs=2, policy=FAST,
            faults="crash@task:3", stats=stats,
        )
        assert out == [x * x for x in range(8)]
        assert stats.crashes >= 1 and stats.respawns >= 1

    def test_hang_blows_deadline_and_recovers(self):
        policy = RetryPolicy(backoff_s=0.001, deadline_s=1.0)
        stats = ExecutionStats()
        out = run_tasks(
            _square, list(range(6)), jobs=2, chunksize=1, policy=policy,
            faults="hang@task:2:30", stats=stats,
        )
        assert out == [x * x for x in range(6)]
        assert stats.timeouts >= 1 and stats.respawns >= 1

    def test_permanent_pool_failure_recorded(self):
        stats = ExecutionStats()
        out = run_tasks(
            _square, list(range(6)), jobs=2, chunksize=1, policy=FAST,
            faults="crash@task:4*99", failures="record", stats=stats,
        )
        assert isinstance(out[4], TaskFailure)
        assert out[4].reason == "crash"
        ok = [r for i, r in enumerate(out) if i != 4]
        assert ok == [x * x for x in range(6) if x != 4]

    def test_per_task_deadlines(self):
        policy = RetryPolicy(backoff_s=0.001)
        stats = ExecutionStats()
        out = run_tasks(
            _square, list(range(4)), jobs=2, chunksize=1, policy=policy,
            faults="hang@task:1:30",
            deadlines=[None, 0.5, None, None], stats=stats,
        )
        assert out == [0, 1, 4, 9]
        assert stats.timeouts >= 1


class TestSweepChaos:
    """Byte-identity of recovered sweep reports, across 3 topologies."""

    def test_recovered_crash_is_byte_identical(self, clean_text):
        stats = ExecutionStats()
        report = run_scenario_sweep(
            **SWEEP, policy=FAST, faults="crash@task:0;crash@task:4",
            stats=stats,
        )
        assert report_json(report) == clean_text
        assert stats.crashes == 2 and report["meta"]["failures"] == []
        assert "fault_stats" not in report["meta"]

    @pytest.mark.skipif(
        not pool_available(), reason="process pools unavailable"
    )
    def test_pooled_crash_and_hang_recovery_byte_identical(
        self, clean_text
    ):
        report = run_scenario_sweep(
            **SWEEP, jobs=2,
            policy=RetryPolicy(backoff_s=0.001, deadline_s=30.0),
            faults="crash@task:1;hang@task:3:60",
        )
        assert report_json(report) == clean_text

    def test_permanent_failure_degrades_and_is_recorded(self):
        stats = ExecutionStats()
        report = run_scenario_sweep(
            **SWEEP, policy=FAST, faults="crash@task:2*99", stats=stats,
        )
        failures = report["meta"]["failures"]
        assert len(failures) == 1
        assert failures[0]["reason"] == "crash"
        assert failures[0]["attempts"] == FAST.max_attempts
        assert report["meta"]["fault_stats"]["crashes"] == 3
        # The failed cell's scenario lost one record; the rest survive.
        assert sum(s["instances"] for s in report["scenarios"]) == 5
        assert "failed permanently" in sweep_summary(report)

    def test_corrupt_store_row_recomputed_on_resume(
        self, clean_text, tmp_path
    ):
        db = tmp_path / "chaos.sqlite"
        first = run_scenario_sweep(
            **SWEEP, store=db, faults="corrupt@key:*",
        )
        assert report_json(first) == clean_text  # built from live results
        resumed = run_scenario_sweep(**SWEEP, store=db, resume=True)
        assert report_json(resumed) == clean_text
        store = open_store(db)
        try:
            assert len(store.quarantined()) == 1
            assert len(store) == 6  # recomputed cell refiled
            assert store.verify()["corrupt"] == []
        finally:
            store.close()

    def test_combined_fault_plan_end_to_end(self, clean_text, tmp_path):
        """The ISSUE acceptance scenario: worker crash + hang + one
        corrupt store row in a single plan, report byte-identical."""
        db = tmp_path / "combined.sqlite"
        report = run_scenario_sweep(
            **SWEEP, store=db, policy=FAST,
            faults="crash@task:0;hang@task:2:0.01;corrupt@key:*",
        )
        assert report_json(report) == clean_text
        resumed = run_scenario_sweep(**SWEEP, store=db, resume=True)
        assert report_json(resumed) == clean_text


class TestStoreIntegrity:
    def test_checksum_detects_tampering(self, tmp_path):
        db = tmp_path / "s.db"
        store = SQLiteStore(db)
        store.put("aaa", {"schema": 1, "v": 1})
        store.put("bbb", {"schema": 1, "v": 2})
        store.close()
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE results SET payload = substr(payload, 1, 4) "
            "WHERE key = 'bbb'"
        )
        conn.commit()
        conn.close()
        store = SQLiteStore(db)
        try:
            with pytest.raises(StoreCorruption) as exc:
                store.get("bbb", on_corrupt="raise")
            assert exc.value.key == "bbb"
            # Default: quarantine and read as a miss.
            assert store.get("bbb") is None
            assert store.get("aaa") == {"schema": 1, "v": 1}
            assert [q["key"] for q in store.quarantined()] == ["bbb"]
            assert store.session_quarantined == ["bbb"]
            assert store.stats()["quarantined"] == 1
        finally:
            store.close()

    def test_verify_reports_and_quarantines(self, tmp_path):
        db = tmp_path / "s.db"
        store = SQLiteStore(db, faults=FaultPlan.parse("corrupt@key:b"))
        store.put("aaa", {"schema": 1})
        store.put("bbb", {"schema": 1})
        audit = store.verify()
        assert audit["checked"] == 2 and audit["ok"] == 1
        assert audit["corrupt"][0]["key"] == "bbb"
        assert audit["quarantined"] == 0  # report-only by default
        audit = store.verify(quarantine=True)
        assert audit["quarantined"] == 1
        assert store.verify() == {
            "location": str(db), "checked": 1, "ok": 1,
            "unchecksummed": 0, "corrupt": [], "quarantined": 0,
        }
        store.close()

    def test_legacy_rows_verify_as_unchecksummed(self, tmp_path):
        db = tmp_path / "legacy.db"
        conn = sqlite3.connect(db)
        conn.execute(
            "CREATE TABLE results (key TEXT PRIMARY KEY, kind TEXT NOT "
            "NULL, schema INTEGER NOT NULL, version TEXT NOT NULL, "
            "created_at REAL NOT NULL, payload TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO results VALUES ('old', 'result', 1, '0', 0, ?)",
            (json.dumps({"schema": 1, "v": 9}),),
        )
        conn.commit()
        conn.close()
        store = SQLiteStore(db)  # migrates in place
        try:
            assert store.get("old") == {"schema": 1, "v": 9}
            audit = store.verify()
            assert audit["unchecksummed"] == 1 and audit["ok"] == 1
            store.put("new", {"schema": 1})
            assert store.verify()["unchecksummed"] == 1
        finally:
            store.close()

    def test_close_is_idempotent_and_guards_use(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        store.put("k", {"schema": 1})
        store.close()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.get("k")

    def test_rows_raise_typed_corruption(self):
        store = open_store(None, faults=FaultPlan.parse("corrupt@key:*"))
        store.put("k", {"schema": 1})
        with pytest.raises(StoreCorruption):
            list(store.rows())
        # Metadata-only iteration never touches payloads.
        assert [r["key"] for r in store.rows(with_payload=False)] == ["k"]


class TestServiceResilience:
    REQS = [
        BatchRequest(solver="greedy", app="random-8", size="2x2", seed=1),
        BatchRequest(solver="greedy", app="random-8", size="2x2", seed=2),
    ]

    def test_recovered_batch_matches_clean(self):
        clean = serve_batch(self.REQS, policy=FAST)
        stats = ExecutionStats()
        recovered = serve_batch(
            self.REQS, policy=FAST, faults="crash@task:0", stats=stats,
        )
        assert recovered == clean
        assert stats.crashes == 1
        assert clean["meta"]["errors"] == 0
        assert all(r["error"] is None for r in clean["responses"])

    def test_error_response_degrades_not_aborts(self):
        report = serve_batch(
            self.REQS, policy=FAST, faults="crash@task:1*99",
        )
        assert report["meta"]["errors"] == 1
        ok, bad = report["responses"]
        assert ok["ok"] and ok["error"] is None
        assert not bad["ok"] and bad["error"]["reason"] == "crash"
        assert bad["error"]["attempts"] == FAST.max_attempts
        from repro.store import serve_summary

        assert "ERROR" in serve_summary(report)

    def test_errored_requests_not_cached(self):
        from repro.store import MemoryStore

        store = MemoryStore()
        serve_batch(
            self.REQS, store=store, policy=FAST,
            faults="crash@task:1*99",
        )
        assert len(store) == 1
        retry = serve_batch(self.REQS, store=store, policy=FAST)
        assert retry["meta"] == {
            **retry["meta"], "hits": 1, "misses": 1, "errors": 0,
        }
        assert retry["responses"][1]["ok"]
        assert len(store) == 2

    def test_deadline_field_roundtrips_but_not_fingerprinted(self):
        base = BatchRequest(seed=5)
        timed = BatchRequest(seed=5, deadline_s=1.0)
        assert BatchRequest.from_payload(timed.to_payload()) == timed
        from repro.store.fingerprint import request_fingerprint

        def key(req):
            return request_fingerprint(
                req.build_app(), req.build_platform(), req.solver,
                req.options or None, req.seed, req.period,
            )

        assert key(base) == key(timed)

    def test_unknown_fields_still_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            BatchRequest.from_payload({"deadline": 3})


class TestCLIResilience:
    """The operator-facing surface: sweep/serve/store verify flags."""

    SWEEP_ARGS = [
        "sweep", "--topologies", "mesh", "--sizes", "2x2", "--ccr", "10",
        "--apps", "random-8", "--replicates", "2", "--seed", "7",
    ]

    def _main(self, argv):
        import io

        from repro.cli import main

        buf = io.StringIO()
        code = main(argv, out=buf)
        return code, buf.getvalue()

    def test_sweep_fault_plan_recovers_to_same_report(self, tmp_path):
        clean, chaos = tmp_path / "clean.json", tmp_path / "chaos.json"
        code, _ = self._main(self.SWEEP_ARGS + ["--out", str(clean)])
        assert code == 0
        code, _ = self._main(
            self.SWEEP_ARGS
            + ["--out", str(chaos), "--fault-plan", "crash@task:0"]
        )
        assert code == 0
        assert clean.read_bytes() == chaos.read_bytes()

    def test_sweep_degrades_by_default_strict_exits_nonzero(self):
        plan = ["--fault-plan", "crash@task:0*99"]
        code, text = self._main(self.SWEEP_ARGS + plan)
        assert code == 0 and "failed permanently" in text
        code, text = self._main(self.SWEEP_ARGS + plan + ["--strict"])
        assert code == 1 and "strict mode" in text

    def test_sweep_rejects_bad_fault_plan_and_retries(self):
        code, text = self._main(
            self.SWEEP_ARGS + ["--fault-plan", "explode@task:1"]
        )
        assert code == 2 and "unknown fault kind" in text
        code, text = self._main(self.SWEEP_ARGS + ["--retries", "0"])
        assert code == 2 and "max_attempts" in text

    def test_store_verify_cli(self, tmp_path):
        db = tmp_path / "v.sqlite"
        code, _ = self._main(
            self.SWEEP_ARGS
            + ["--store", str(db), "--fault-plan", "corrupt@key:*"]
        )
        assert code == 0
        code, text = self._main(["store", "verify", "--store", str(db)])
        assert code == 1  # corruption found, report-only
        assert json.loads(text)["corrupt"]
        code, text = self._main(
            ["store", "verify", "--store", str(db), "--quarantine"]
        )
        assert code == 1 and json.loads(text)["quarantined"] == 1
        code, text = self._main(["store", "verify", "--store", str(db)])
        assert code == 0 and json.loads(text)["corrupt"] == []
        code, text = self._main(["store", "stats", "--store", str(db)])
        assert code == 0 and json.loads(text)["quarantined"] == 1

    def test_serve_error_responses(self, tmp_path):
        reqs = tmp_path / "requests.json"
        reqs.write_text(json.dumps([
            {"solver": "greedy", "app": "random-8", "size": "2x2",
             "seed": 1},
            {"solver": "greedy", "app": "random-8", "size": "2x2",
             "seed": 2, "deadline_s": 60.0},
        ]))
        out = tmp_path / "responses.json"
        code, text = self._main([
            "serve", "--batch", str(reqs), "--out", str(out),
            "--fault-plan", "crash@task:0*99",
        ])
        assert code == 0 and "ERROR" in text and "1 errors" in text
        doc = json.loads(out.read_text())
        assert doc["meta"]["errors"] == 1
        assert doc["responses"][0]["error"]["reason"] == "crash"
        assert doc["responses"][1]["ok"]


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "r.json"
        atomic_write_text(path, "one\n")
        assert path.read_text() == "one\n"
        atomic_write_text(path, "two\n")
        assert path.read_text() == "two\n"
        assert os.listdir(tmp_path) == ["r.json"]  # no temp debris

    def test_failure_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "r.json"
        atomic_write_text(path, "original\n")
        monkeypatch.setattr(
            os, "replace",
            lambda *a, **kw: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            atomic_write_text(path, "halfway\n")
        monkeypatch.undo()
        assert path.read_text() == "original\n"
        assert os.listdir(tmp_path) == ["r.json"]

    def test_write_report_is_atomic_and_canonical(self, tmp_path):
        from repro.experiments import write_report

        path = tmp_path / "report.json"
        report = {"meta": {}, "scenarios": []}
        write_report(path, report)
        assert path.read_text() == report_json(report)
        assert path.read_text().endswith("\n")
        assert os.listdir(tmp_path) == ["report.json"]
