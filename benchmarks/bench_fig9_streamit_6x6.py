"""Figure 9: normalised energy per heuristic, StreamIt suite, 6x6 CMP.

Same sweep as Figure 8 on the larger grid.  Paper observations to check:
failures drop relative to the 4x4 grid (Table 2: Random and Greedy never
fail on 6x6) and the DPA1D / DPA2D1D gap nearly disappears.
"""

from _common import streamit_experiment, write_result


def test_fig9(benchmark):
    exp = benchmark.pedantic(
        streamit_experiment, args=(6,), rounds=1, iterations=1
    )
    text = exp.render()
    print("\n" + text)
    write_result("fig9_streamit_6x6", text)
    counter = exp.failure_table()
    benchmark.extra_info["instances"] = counter.total
    benchmark.extra_info["failures"] = dict(
        zip(counter.heuristics, counter.row())
    )
    assert counter.total == 48
