"""Extra experiment: absolute optimality gaps on tiny instances.

The paper's Section 4.4 formulates an ILP "to find the optimal solution of
the problem (in exponential time) for small problem instances" but could
not run it beyond a 2x2 CMP and leaves the absolute quality measurement as
future work.  This benchmark provides it at that same scale: brute-force
optimum, ILP optimum (they must agree) and per-heuristic gaps.
"""

from _common import write_result

from repro.core.errors import HeuristicFailure
from repro.core.problem import ProblemInstance
from repro.exact import brute_force_optimal, ilp_optimal
from repro.experiments import run_all
from repro.heuristics.base import PAPER_ORDER
from repro.platform.cmp import CMPGrid
from repro.platform.speeds import GHZ, PowerModel
from repro.spg.random_gen import random_spg
from repro.util.fmt import format_table

TWO_SPEED = PowerModel(
    speeds=(0.5 * GHZ, 1.0 * GHZ),
    dyn_power=(0.2, 1.6),
    comp_leak=0.08,
    comm_leak=0.0,
    e_bit=6e-12,
    bandwidth=16 * 1.2 * GHZ,
)

SEEDS = range(3)
ILP_NODE_CAP = 4000


def _run():
    grid = CMPGrid(2, 2, TWO_SPEED)
    rows = []
    gaps = {h: [] for h in PAPER_ORDER}
    for seed in SEEDS:
        g = random_spg(6, rng=seed, ccr=1.0)
        T = max(1.3 * max(g.weights) / GHZ, g.total_work / GHZ / 3)
        prob = ProblemInstance(g, grid, T)
        _bm, bf = brute_force_optimal(prob)
        try:
            _im, ilp = ilp_optimal(prob, max_nodes=ILP_NODE_CAP)
            # Within the node cap the ILP must match the brute force; a
            # capped run may return a slightly worse incumbent.
            assert ilp >= bf * (1 - 1e-6)
            ilp_cell = f"{ilp:.4f}"
        except HeuristicFailure:
            ilp_cell = f"node-cap({ILP_NODE_CAP})"
        row = [seed, f"{bf:.4f}", ilp_cell]
        results = run_all(prob, rng=seed)
        for h in PAPER_ORDER:
            res = results[h]
            if res.ok:
                gap = res.total_energy / bf
                gaps[h].append(gap)
                row.append(f"{gap:.3f}")
            else:
                row.append("FAIL")
        rows.append(row)
    return rows, gaps


def test_exact_gap(benchmark):
    rows, gaps = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["seed", "optimal [J]", "ILP [J]", *PAPER_ORDER],
        rows,
        title="Optimality gap (heuristic / optimum), 6-stage SPGs on 2x2",
    )
    print("\n" + text)
    write_result("exact_gap", text)
    for h, values in gaps.items():
        if values:
            benchmark.extra_info[f"mean_gap_{h}"] = round(
                sum(values) / len(values), 4
            )
            # No heuristic may ever beat the optimum.
            assert min(values) >= 1.0 - 1e-9
