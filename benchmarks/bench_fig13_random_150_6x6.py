"""Figure 13: normalised inverse energy vs elevation, n=150, 6x6 CMP."""

import pytest

from _common import CCRS_RANDOM, random_experiment, write_result


@pytest.mark.parametrize("ccr", CCRS_RANDOM)
def test_fig13(benchmark, ccr):
    exp = benchmark.pedantic(
        random_experiment, args=(150, 6, ccr), rounds=1, iterations=1
    )
    text = exp.render()
    print("\n" + text)
    write_result(f"fig13_random_150_6x6_ccr{ccr:g}", text)
    counter = exp.failure_table()
    benchmark.extra_info["ccr"] = ccr
    benchmark.extra_info["failures"] = dict(
        zip(counter.heuristics, counter.row())
    )
