"""Table 3: failures per heuristic and CCR (random SPGs, n=50, 4x4 CMP).

Paper row (out of 2000 instances per CCR): Random 58/58/300,
Greedy 56/56/287, DPA2D 156/156/348, DPA1D 1516/1520/1340,
DPA2D1D 2/4/916.  At benchmark scale (see _common) absolute counts shrink
with the instance count, but the ordering must hold: DPA1D fails by far
the most, Random and Greedy the least, and the CCR=0.1 column degrades
everyone (DPA2D1D most dramatically).
"""

from _common import CCRS_RANDOM, random_experiment, write_result

from repro.experiments.paper_reference import table3_row
from repro.heuristics.base import PAPER_ORDER
from repro.util.fmt import format_table


def test_table3(benchmark):
    def build():
        return {ccr: random_experiment(50, 4, ccr) for ccr in CCRS_RANDOM}

    exps = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    totals = {}
    for ccr, exp in exps.items():
        counter = exp.failure_table()
        totals[ccr] = counter.total
        rows.append([f"{ccr:g} (ours, /{counter.total})", *counter.row()])
        rows.append([f"{ccr:g} (paper, /2000)", *table3_row(ccr)])
    text = format_table(
        ["CCR", *PAPER_ORDER],
        rows,
        title="Table 3: failures per heuristic and CCR (n=50, 4x4)",
    )
    print("\n" + text)
    write_result("table3_random_failures", text)
    benchmark.extra_info["instances_per_ccr"] = totals

    # Ordering checks at CCR=10: DPA1D fails most, Random/Greedy least.
    counter10 = dict(zip(PAPER_ORDER, exps[10.0].failure_table().row()))
    assert counter10["DPA1D"] >= max(
        counter10["Random"], counter10["Greedy"]
    )
