"""Benchmark of the portfolio solver: wall-clock vs. best single member.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_portfolio.py [--jobs 1 2]

Times the full five-heuristic ``portfolio`` solver on a fixed random
50-stage / 4x4 instance (seed 2011, CCR 10) for each requested ``jobs``
value, plus the ``dpa2d1d+refine`` pipeline for reference, asserts that
the portfolio winner and its energy are **identical for every jobs
value**, and merges a ``"portfolio"`` section into
``BENCH_perf_core.json`` at the repository root without clobbering the
sibling sections (via :func:`_common.merge_bench_sections`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from _common import merge_bench_sections

#: Fixed workload: one Figure-10-style instance, benchmark replicates.
N, GRID, CCR, SEED = 50, (4, 4), 10.0, 2011
REPEATS = 3


def build_instance():
    from repro.core.problem import ProblemInstance
    from repro.experiments import choose_period
    from repro.platform.cmp import CMPGrid
    from repro.spg.random_gen import random_spg

    spg = random_spg(N, rng=SEED, ccr=CCR)
    grid = CMPGrid(*GRID)
    T = choose_period(spg, grid, rng=SEED).period
    return ProblemInstance(spg, grid, T)


def time_solve(solver, prob, rng_seed: int, repeats: int = REPEATS):
    """Best-of-``repeats`` wall-clock (identical work each run)."""
    from repro.util.rng import as_rng

    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = solver.solve(prob, rng=as_rng(rng_seed))
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, nargs="*", default=[1, 2],
        help="jobs values for the portfolio (default: 1 2)",
    )
    args = parser.parse_args(argv)

    from repro.solvers import get_solver, parse_solver_spec

    prob = build_instance()
    section: dict = {
        "settings": {
            "n": N, "grid": f"{GRID[0]}x{GRID[1]}", "ccr": CCR,
            "seed": SEED, "period": prob.period, "repeats": REPEATS,
        },
        "runs": {},
    }

    reference = None
    for jobs in args.jobs:
        seconds, res = time_solve(get_solver("portfolio", jobs=jobs), prob, 5)
        entry = {
            "seconds": seconds,
            "winner": res.stats["winner"],
            "energy": repr(res.total_energy),
            "members": {
                m["solver"]: None if m["energy"] is None else repr(m["energy"])
                for m in res.stats["members"]
            },
        }
        if reference is None:
            reference = entry
        entry["outputs_equal"] = (
            entry["winner"] == reference["winner"]
            and entry["energy"] == reference["energy"]
            and entry["members"] == reference["members"]
        )
        section["runs"][str(jobs)] = entry

    pipe_seconds, pipe_res = time_solve(
        parse_solver_spec("dpa2d1d+refine"), prob, 5
    )
    section["pipeline_dpa2d1d_refine"] = {
        "seconds": pipe_seconds,
        "energy": repr(pipe_res.total_energy) if pipe_res.ok else None,
    }
    ok = all(r["outputs_equal"] for r in section["runs"].values())
    section["jobs_invariant"] = ok

    out_path = merge_bench_sections({"portfolio": section})
    print(json.dumps(section, indent=1, sort_keys=True))
    print(f"\nmerged into {out_path}")
    if not ok:
        print("ERROR: portfolio results diverged across jobs values",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
