"""Benchmark of the suffix-cluster enumeration kernels and lattice reuse.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_dpa1d.py [--repeats N]

It times, on an enumeration-bound panel of dense random SPGs (the
Theorem-1 suffix-cluster enumeration dominating, DP array work small):

* ``IdealLattice.warm`` — the full lattice enumeration + flat DP table
  build — under the ``python`` reference kernel and the ``vector``
  frontier-batched kernel, on fresh lattices, best of ``--repeats``;
* the cross-period lattice reuse that ``choose_period`` probes and
  sweep cells get from the keep-loosest caches: six solve caps walked
  loosest-first on one lattice versus a fresh lattice per cap.

Every kernel must produce a byte-identical suffix table (masks, works,
counts, prefix indices); the script exits nonzero on any divergence.
The vector kernel's panel-geomean speedup is gated by ``FLOOR`` (3x);
a miss on a noisy host is reported as a warning in ``floor_met`` so
timing jitter cannot mask a real output divergence.  Results land in
``BENCH_perf_core.json["dpa1d"]`` next to the other perf sections.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time

from _common import merge_bench_sections

#: Minimum acceptable panel-geomean speedup of vector over python.
FLOOR = 3.0

#: (n, elevation, seed): dense SPGs whose warm() cost is dominated by
#: the enumeration (0.5M-3.5M DP transitions each at CAP_FRACTION).
PANELS = ((40, 8, 2011), (36, 7, 2014), (40, 8, 2013))

#: Solve cap as a fraction of total graph weight — deep enough DFS trees
#: to matter, tight enough that weight pruning stays on the hot path.
CAP_FRACTION = 0.35

IDEAL_BUDGET = 1 << 22


def _panel(n: int, elevation: int, seed: int):
    import numpy as np

    from repro.spg.random_gen import random_spg_with_elevation

    spg = random_spg_with_elevation(n, elevation, np.random.default_rng(seed))
    return spg, sum(spg.weights) * CAP_FRACTION


def _table_fingerprint(lat, cap: float):
    M, W, counts, offsets, pidx, total = lat.suffix_table(cap)
    return (
        M.tobytes(), W.tobytes(), counts.tobytes(), offsets.tobytes(),
        pidx.tobytes(), total,
    )


def _time_warm(spg, cap: float, kernel: str, repeats: int):
    """Best-of-``repeats`` fresh-lattice warm time + table fingerprint."""
    from repro.core.partition import IdealLattice

    samples = []
    fp = None
    stats = None
    for _ in range(repeats):
        gc.collect()
        lat = IdealLattice(spg, budget=IDEAL_BUDGET, kernel=kernel)
        t0 = time.perf_counter()
        stats = lat.warm(cap)
        samples.append(time.perf_counter() - t0)
        fp = _table_fingerprint(lat, cap)
        del lat
    gc.collect()
    return min(samples), samples, fp, stats


def bench_kernels(repeats: int) -> dict:
    out: dict = {"panels": {}, "floor": FLOOR}
    speedups = []
    equal = True
    for n, elevation, seed in PANELS:
        spg, cap = _panel(n, elevation, seed)
        tv, sv, fv, stats = _time_warm(spg, cap, "vector", repeats)
        tp, sp, fp, _ = _time_warm(spg, cap, "python", repeats)
        eq = fv == fp
        equal = equal and eq
        speedup = tp / tv
        speedups.append(speedup)
        out["panels"][f"n{n}_e{elevation}_s{seed}"] = {
            "ideals": stats["ideals"],
            "transitions": stats["transitions"],
            "python_seconds": tp,
            "python_samples": sp,
            "vector_seconds": tv,
            "vector_samples": sv,
            "speedup": speedup,
            "outputs_equal": eq,
        }
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    out["speedup_geomean"] = geomean
    out["floor_met"] = geomean >= FLOOR
    out["outputs_equal"] = equal
    return out


def bench_reuse(repeats: int) -> dict:
    """Cross-period reuse: the ``choose_period`` walk on one lattice.

    Six caps, loosest first (the period search's own order), on a single
    lattice — every cap after the first is a filtered view of the
    loosest-cap table — against a fresh lattice per cap, which is what
    every probe paid before the keep-loosest caches and the per-worker
    ``LatticeCache``.  Both sides run the vector kernel, so the ratio
    isolates the reuse itself.
    """
    from repro.core.partition import IdealLattice

    n, elevation, seed = PANELS[0]
    spg, cap = _panel(n, elevation, seed)
    total_w = sum(spg.weights)
    caps = [total_w * f for f in (0.45, 0.4, 0.35, 0.3, 0.25, 0.2)]

    cold_samples, reused_samples = [], []
    equal = True
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        cold_fps = []
        for c in caps:
            lat = IdealLattice(spg, budget=IDEAL_BUDGET, kernel="vector")
            lat.warm(c)
            cold_fps.append(_table_fingerprint(lat, c))
            del lat
        cold_samples.append(time.perf_counter() - t0)
        gc.collect()
        t0 = time.perf_counter()
        lat = IdealLattice(spg, budget=IDEAL_BUDGET, kernel="vector")
        reused_fps = []
        for c in caps:
            lat.warm(c)
            reused_fps.append(_table_fingerprint(lat, c))
        reused_samples.append(time.perf_counter() - t0)
        del lat
        equal = equal and cold_fps == reused_fps
    cold = min(cold_samples)
    reused = min(reused_samples)
    return {
        "caps": len(caps),
        "cold_seconds": cold,
        "cold_samples": cold_samples,
        "reused_seconds": reused,
        "reused_samples": reused_samples,
        "reuse_speedup": cold / reused,
        "outputs_equal": equal,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="repetitions per measurement; best-of is reported "
             "(default 3 — raise on noisy shared hosts)",
    )
    args = parser.parse_args(argv)

    kernels = bench_kernels(args.repeats)
    reuse = bench_reuse(args.repeats)
    section = {
        "workload": (
            f"IdealLattice.warm (full enumeration + DP table) on "
            f"{len(PANELS)} dense panels, cap {CAP_FRACTION} x total "
            f"weight, best of {args.repeats}"
        ),
        **kernels,
        "cross_period_reuse": reuse,
        "outputs_equal": kernels["outputs_equal"] and reuse["outputs_equal"],
    }
    if not section["floor_met"]:
        print(
            f"WARNING: vector-kernel geomean speedup "
            f"{section['speedup_geomean']:.2f}x is below the {FLOOR}x "
            "floor (noisy host? outputs still verified)",
            file=sys.stderr,
        )
    out_path = merge_bench_sections({"dpa1d": section})
    print(json.dumps({"dpa1d": section}, indent=1, sort_keys=True))
    print(f"\nwritten to {out_path}")
    if not section["outputs_equal"]:
        print("ERROR: kernels diverged on the suffix table",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
