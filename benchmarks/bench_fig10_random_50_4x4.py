"""Figure 10: normalised inverse energy vs elevation, n=50, 4x4 CMP.

Random SPGs binned by elevation, CCR in {10, 1, 0.1}.  Paper shapes: the
1D heuristics dominate at low elevation and DPA1D collapses past elevation
~4-6 (state-space explosion); DPA2D is the best at high elevation and
fails on near-pipeline graphs; Random degrades sharply as communications
get heavy (CCR = 0.1).
"""

import pytest

from _common import CCRS_RANDOM, random_experiment, write_result


@pytest.mark.parametrize("ccr", CCRS_RANDOM)
def test_fig10(benchmark, ccr):
    exp = benchmark.pedantic(
        random_experiment, args=(50, 4, ccr), rounds=1, iterations=1
    )
    text = exp.render()
    print("\n" + text)
    write_result(f"fig10_random_50_4x4_ccr{ccr:g}", text)
    series = exp.mean_inverse_energy()
    benchmark.extra_info["ccr"] = ccr
    benchmark.extra_info["series"] = {
        str(e): {h: round(v, 3) for h, v in per.items()}
        for e, per in series.items()
    }
    counter = exp.failure_table()
    benchmark.extra_info["failures"] = dict(
        zip(counter.heuristics, counter.row())
    )
    # Shape: DPA1D strong at elevation 1-2, weak at 12+.
    low = series.get(1, series.get(2))
    high = series.get(16, series.get(12))
    if low and high:
        assert low["DPA1D"] >= high["DPA1D"]
