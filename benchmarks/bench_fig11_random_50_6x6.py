"""Figure 11: normalised inverse energy vs elevation, n=50, 6x6 CMP."""

import pytest

from _common import CCRS_RANDOM, random_experiment, write_result


@pytest.mark.parametrize("ccr", CCRS_RANDOM)
def test_fig11(benchmark, ccr):
    exp = benchmark.pedantic(
        random_experiment, args=(50, 6, ccr), rounds=1, iterations=1
    )
    text = exp.render()
    print("\n" + text)
    write_result(f"fig11_random_50_6x6_ccr{ccr:g}", text)
    counter = exp.failure_table()
    benchmark.extra_info["ccr"] = ccr
    benchmark.extra_info["failures"] = dict(
        zip(counter.heuristics, counter.row())
    )
