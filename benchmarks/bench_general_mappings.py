"""Extra experiment: DAG-partition versus *general* mappings (Section 7).

The paper's future work asks to "investigate general mappings, and assess
the difference with DAG-partition mappings".  This benchmark does exactly
that with the local-search refiner: starting from the best heuristic
mapping of each instance, hill-climb once under the DAG-partition rule and
once without it, and compare the reachable energies.
"""

from _common import SEED, write_result

from repro.core.evaluate import energy
from repro.core.problem import ProblemInstance
from repro.experiments import choose_period
from repro.heuristics.refine import refine_mapping
from repro.platform.cmp import CMPGrid
from repro.spg.random_gen import random_spg_with_elevation
from repro.spg.streamit import streamit_workflow
from repro.util.fmt import format_table


def _instances():
    grid = CMPGrid(4, 4)
    for idx in (7, 10):
        yield f"streamit-{idx}", streamit_workflow(idx, seed=SEED), grid
    for elev, seed in ((2, 1), (4, 2)):
        yield (
            f"random-e{elev}",
            random_spg_with_elevation(25, elev, rng=seed, ccr=5.0),
            grid,
        )


def _run():
    rows = []
    gains_dag, gains_gen = [], []
    for label, app, grid in _instances():
        choice = choose_period(app, grid, rng=0)
        ok = {n: r for n, r in choice.results.items() if r.ok}
        if not ok:
            continue
        best_name = min(ok, key=lambda n: ok[n].total_energy)
        base = ok[best_name].mapping
        prob = ProblemInstance(app, grid, choice.period)
        e_base = energy(base, choice.period).total
        m_dag = refine_mapping(prob, base, rng=0)
        m_gen = refine_mapping(prob, base, rng=0, allow_general=True)
        e_dag = energy(m_dag, choice.period).total
        e_gen = energy(m_gen, choice.period).total
        gains_dag.append(1 - e_dag / e_base)
        gains_gen.append(1 - e_gen / e_base)
        rows.append([
            label, best_name, f"{e_base:.3f}", f"{e_dag:.3f}",
            f"{e_gen:.3f}", f"{100 * (1 - e_gen / e_dag):.2f}%",
        ])
    return rows, gains_dag, gains_gen


def test_general_mappings(benchmark):
    rows, gains_dag, gains_gen = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    text = format_table(
        ["instance", "base heuristic", "E base [J]", "E refined (DAG) [J]",
         "E refined (general) [J]", "general vs DAG"],
        rows,
        title="Section-7 future work: DAG-partition vs general mappings "
              "after local search",
    )
    print("\n" + text)
    write_result("general_mappings", text)
    assert rows
    # General refinement can only do at least as well as restricted.
    for gd, gg in zip(gains_dag, gains_gen):
        assert gg >= gd - 1e-12
    benchmark.extra_info["mean_gain_dag"] = round(
        sum(gains_dag) / len(gains_dag), 4
    )
    benchmark.extra_info["mean_gain_general"] = round(
        sum(gains_gen) / len(gains_gen), 4
    )
