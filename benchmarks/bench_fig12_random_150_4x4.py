"""Figure 12: normalised inverse energy vs elevation, n=150, 4x4 CMP.

At n=150, DPA1D is expected to fail on almost everything except the lowest
elevations (the paper's Table-3 pattern), leaving DPA2D1D and DPA2D as the
leading specialised heuristics.
"""

import pytest

from _common import CCRS_RANDOM, random_experiment, write_result


@pytest.mark.parametrize("ccr", CCRS_RANDOM)
def test_fig12(benchmark, ccr):
    exp = benchmark.pedantic(
        random_experiment, args=(150, 4, ccr), rounds=1, iterations=1
    )
    text = exp.render()
    print("\n" + text)
    write_result(f"fig12_random_150_4x4_ccr{ccr:g}", text)
    counter = exp.failure_table()
    benchmark.extra_info["ccr"] = ccr
    benchmark.extra_info["failures"] = dict(
        zip(counter.heuristics, counter.row())
    )
