"""Benchmark of the content-addressed result store: warm vs cold sweeps.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_store.py [--repeats N]

The workload is the repeated-sweep pattern the store exists for: the
same scenario sweep (3 topologies x 2 replicates x CCR 10, seed 2011)
run twice — once **cold** into an empty SQLite store (every cell
computed and filed) and once **warm** with ``resume=True`` (every cell
answered from the store).  The two consolidated reports must serialise
**byte-identically** (the cache-correctness contract), and the warm run
is expected to beat the cold one by at least 5x (it only pays for
fingerprinting, deserialisation and the report-path re-validation).

A second, **eviction** subsection replays a deterministic skewed
access trace (an 80%-hot Zipf-ish mix) against a bounded
:class:`~repro.store.MemoryStore` (row cap well under the key
universe) once per registered eviction policy and records the
resulting hit-rates — the store-level analogue of a cache-replacement
sweep.  The duelled ``drrip`` policy must match or beat the worse of
its two static candidates (``rrip``/``brrip``); that is the whole
point of set-dueling.

The section is merged into ``BENCH_perf_core.json`` under ``"store"``
via :func:`_common.merge_bench_sections`.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

from _common import merge_bench_sections

#: The repeated-sweep workload (benchmark scale, not paper scale).
SWEEP = dict(
    topologies=("mesh", "torus", "benes"),
    sizes=("2x2",),
    ccrs=(10.0,),
    apps=("random-16",),
    replicates=2,
    seed=2011,
)

#: The acceptance floor for the warm-over-cold speedup.
TARGET_SPEEDUP = 5.0

#: The bounded-store replay: 400 sha256 keys, a 40-key hot set taking
#: 80% of 4000 accesses, row cap 60 (hot set fits, universe does not).
EVICTION = dict(
    keys=400,
    hot=40,
    hot_frac=0.8,
    accesses=4000,
    max_rows=60,
    policies=("lru", "fifo", "rrip", "brrip", "drrip"),
)


def eviction_hit_rates(cfg: dict = EVICTION) -> dict:
    """Replay the skewed trace once per policy; returns the subsection.

    Every policy sees the *identical* deterministic trace (numpy
    ``default_rng`` on the benchmark seed; keys are sha256 digests, as
    in the real store, so DRRIP's region hash sees its native key
    distribution).  A miss computes nothing — the payload is synthetic
    — so hit-rate differences are pure replacement-policy signal.
    """
    import numpy as np

    from repro.store import LogicalClock, MemoryStore

    universe = [
        hashlib.sha256(f"bench-eviction-{i}".encode()).hexdigest()
        for i in range(cfg["keys"])
    ]
    hot, cold = universe[: cfg["hot"]], universe[cfg["hot"]:]
    rng = np.random.default_rng(SWEEP["seed"])
    is_hot = rng.random(cfg["accesses"]) < cfg["hot_frac"]
    hot_pick = rng.integers(0, len(hot), cfg["accesses"])
    cold_pick = rng.integers(0, len(cold), cfg["accesses"])
    trace = [
        hot[h] if p else cold[c]
        for p, h, c in zip(is_hot, hot_pick, cold_pick)
    ]

    hit_rates: dict[str, float] = {}
    evictions: dict[str, int] = {}
    for name in cfg["policies"]:
        store = MemoryStore(clock=LogicalClock())
        store.configure_eviction(name, max_rows=cfg["max_rows"])
        for key in trace:
            if store.get(key) is None:
                store.put(key, {"key": key, "pad": "x" * 64},
                          kind="bench")
        acc = store.access_stats()
        hit_rates[name] = acc["hits"] / (acc["hits"] + acc["misses"])
        evictions[name] = store.eviction_stats()["total"]
        assert len(store) <= cfg["max_rows"], "cap enforcement failed"
    duel_floor = min(hit_rates["rrip"], hit_rates["brrip"])
    return {
        "settings": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in cfg.items()},
        "hit_rates": hit_rates,
        "evictions": evictions,
        "duel_floor": duel_floor,
        "duel_ok": hit_rates["drrip"] >= duel_floor,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats for the warm run (default 3; the cold "
             "run is timed once, it dominates wall-time)",
    )
    args = parser.parse_args(argv)

    from repro.experiments import report_json, run_scenario_sweep
    from repro.store import open_store

    with tempfile.TemporaryDirectory() as tmp:
        db = str(Path(tmp) / "bench_store.sqlite")

        t0 = time.perf_counter()
        cold_report = run_scenario_sweep(**SWEEP, store=db)
        cold_seconds = time.perf_counter() - t0

        store = open_store(db)
        cells = len(store)
        store.close()

        warm_seconds = float("inf")
        warm_report = None
        for _ in range(max(1, args.repeats)):
            t0 = time.perf_counter()
            warm_report = run_scenario_sweep(**SWEEP, store=db, resume=True)
            warm_seconds = min(warm_seconds, time.perf_counter() - t0)

    outputs_equal = report_json(cold_report) == report_json(warm_report)
    speedup = cold_seconds / warm_seconds
    eviction = eviction_hit_rates()
    section = {
        "settings": {
            **{k: list(v) if isinstance(v, tuple) else v
               for k, v in SWEEP.items()},
            "warm_repeats": args.repeats,
        },
        "cells": cells,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_ok": speedup >= TARGET_SPEEDUP,
        "outputs_equal": outputs_equal,
        "eviction": eviction,
    }

    out_path = merge_bench_sections({"store": section})
    print(json.dumps(section, indent=1, sort_keys=True))
    print(f"\nmerged into {out_path} under 'store'")
    if not outputs_equal:
        print("ERROR: warm sweep report diverged from the cold run",
              file=sys.stderr)
        return 1
    if not eviction["duel_ok"]:
        print(
            "ERROR: duelled drrip hit-rate "
            f"{eviction['hit_rates']['drrip']:.3f} fell below the worse "
            f"static candidate ({eviction['duel_floor']:.3f})",
            file=sys.stderr,
        )
        return 1
    if not section["speedup_ok"]:
        print(
            f"WARNING: warm-over-cold speedup {speedup:.1f}x below the "
            f"{TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
