"""Benchmark of the content-addressed result store: warm vs cold sweeps.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_store.py [--repeats N]

The workload is the repeated-sweep pattern the store exists for: the
same scenario sweep (3 topologies x 2 replicates x CCR 10, seed 2011)
run twice — once **cold** into an empty SQLite store (every cell
computed and filed) and once **warm** with ``resume=True`` (every cell
answered from the store).  The two consolidated reports must serialise
**byte-identically** (the cache-correctness contract), and the warm run
is expected to beat the cold one by at least 5x (it only pays for
fingerprinting, deserialisation and the report-path re-validation).

The section is merged into ``BENCH_perf_core.json`` under ``"store"``
via :func:`_common.merge_bench_sections`.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from _common import merge_bench_sections

#: The repeated-sweep workload (benchmark scale, not paper scale).
SWEEP = dict(
    topologies=("mesh", "torus", "benes"),
    sizes=("2x2",),
    ccrs=(10.0,),
    apps=("random-16",),
    replicates=2,
    seed=2011,
)

#: The acceptance floor for the warm-over-cold speedup.
TARGET_SPEEDUP = 5.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats for the warm run (default 3; the cold "
             "run is timed once, it dominates wall-time)",
    )
    args = parser.parse_args(argv)

    from repro.experiments import report_json, run_scenario_sweep
    from repro.store import open_store

    with tempfile.TemporaryDirectory() as tmp:
        db = str(Path(tmp) / "bench_store.sqlite")

        t0 = time.perf_counter()
        cold_report = run_scenario_sweep(**SWEEP, store=db)
        cold_seconds = time.perf_counter() - t0

        store = open_store(db)
        cells = len(store)
        store.close()

        warm_seconds = float("inf")
        warm_report = None
        for _ in range(max(1, args.repeats)):
            t0 = time.perf_counter()
            warm_report = run_scenario_sweep(**SWEEP, store=db, resume=True)
            warm_seconds = min(warm_seconds, time.perf_counter() - t0)

    outputs_equal = report_json(cold_report) == report_json(warm_report)
    speedup = cold_seconds / warm_seconds
    section = {
        "settings": {
            **{k: list(v) if isinstance(v, tuple) else v
               for k, v in SWEEP.items()},
            "warm_repeats": args.repeats,
        },
        "cells": cells,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_ok": speedup >= TARGET_SPEEDUP,
        "outputs_equal": outputs_equal,
    }

    out_path = merge_bench_sections({"store": section})
    print(json.dumps(section, indent=1, sort_keys=True))
    print(f"\nmerged into {out_path} under 'store'")
    if not outputs_equal:
        print("ERROR: warm sweep report diverged from the cold run",
              file=sys.stderr)
        return 1
    if not section["speedup_ok"]:
        print(
            f"WARNING: warm-over-cold speedup {speedup:.1f}x below the "
            f"{TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
