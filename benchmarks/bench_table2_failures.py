"""Table 2: number of heuristic failures over the StreamIt sweeps.

48 instances per grid size (12 workflows x 4 CCR settings).  Paper row for
comparison (4x4): Random 5, Greedy 4, DPA2D 16, DPA1D 20, DPA2D1D 16; on
6x6 Random and Greedy never fail and DPA2D1D halves.  Our synthetic
weights shift the absolute counts but the ordering should match: the
specialised DP heuristics fail far more often than Random/Greedy, and the
6x6 grid reduces failures.
"""

from _common import streamit_experiment, write_result

from repro.experiments.paper_reference import table2_row
from repro.heuristics.base import PAPER_ORDER
from repro.util.fmt import format_table


def test_table2(benchmark):
    def build():
        return streamit_experiment(4), streamit_experiment(6)

    exp4, exp6 = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for label, exp in (("4x4", exp4), ("6x6", exp6)):
        counter = exp.failure_table()
        rows.append([label + " (ours)", *counter.row()])
        rows.append([label + " (paper)", *table2_row(label)])
    text = format_table(
        ["Platform", *PAPER_ORDER],
        rows,
        title="Table 2: failures out of 48 instances per CMP grid size",
    )
    print("\n" + text)
    write_result("table2_failures", text)

    ours4 = exp4.failure_table().row()
    ours6 = exp6.failure_table().row()
    benchmark.extra_info["ours_4x4"] = ours4
    benchmark.extra_info["ours_6x6"] = ours6
    # Shape checks: specialised heuristics fail more than Random/Greedy,
    # and the larger grid does not increase Random/Greedy failures.
    named4 = dict(zip(PAPER_ORDER, ours4))
    named6 = dict(zip(PAPER_ORDER, ours6))
    assert named4["DPA1D"] >= named4["Random"]
    assert named6["Random"] <= named4["Random"]
    assert named6["Greedy"] <= named4["Greedy"]
