"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and

* runs the corresponding experiment (cached per pytest session, so the
  failure-count tables can reuse the figure sweeps without re-running),
* writes the rendered rows/series to ``benchmarks/results/<name>.txt``,
* attaches summary statistics to ``benchmark.extra_info``.

Replication counts are scaled down from the paper (100 graphs per elevation
point) to keep wall-time in minutes; the counts are recorded both here and
in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from repro.experiments import (
    run_random_experiment,
    run_streamit_experiment,
)
from repro.experiments.random_experiments import RandomExperiment
from repro.experiments.streamit_experiments import StreamItExperiment
from repro.platform.cmp import CMPGrid

RESULTS_DIR = Path(__file__).parent / "results"

#: The shared cross-benchmark report at the repository root.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf_core.json"

#: Append-only run log next to it (one JSONL line per bench run) — the
#: input to the ``repro bench check`` regression sentinel.
BENCH_HISTORY = BENCH_JSON.parent / "BENCH_history.jsonl"

#: Benchmark-scale replication settings (paper values in parentheses).
RANDOM_REPLICATES_50 = 3  # paper: 100 graphs per elevation point
RANDOM_REPLICATES_150 = 2  # paper: 100
ELEVATIONS_50 = (1, 2, 4, 8, 12, 16)  # paper: 1..20
ELEVATIONS_150 = (2, 8, 16, 24)  # paper: 1..30
CCRS_RANDOM = (10.0, 1.0, 0.1)
SEED = 2011  # publication year, for determinism

#: Worker processes for the experiment sweeps (results are identical for
#: any value; see repro.experiments.parallel).  0 = all CPUs.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

_cache: dict[tuple, object] = {}


def streamit_experiment(grid_size: int) -> StreamItExperiment:
    """Figures 8/9 sweep (all 12 workflows x 4 CCR settings), cached."""
    key = ("streamit", grid_size)
    if key not in _cache:
        _cache[key] = run_streamit_experiment(
            CMPGrid(grid_size, grid_size), seed=SEED, jobs=JOBS
        )
    return _cache[key]  # type: ignore[return-value]


def random_experiment(n: int, grid_size: int, ccr: float) -> RandomExperiment:
    """One Figures 10-13 panel, cached."""
    key = ("random", n, grid_size, ccr)
    if key not in _cache:
        _cache[key] = run_random_experiment(
            n=n,
            grid=CMPGrid(grid_size, grid_size),
            ccr=ccr,
            elevations=ELEVATIONS_50 if n <= 50 else ELEVATIONS_150,
            replicates=(
                RANDOM_REPLICATES_50 if n <= 50 else RANDOM_REPLICATES_150
            ),
            seed=SEED,
            jobs=JOBS,
        )
    return _cache[key]  # type: ignore[return-value]


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def merge_bench_sections(sections: dict, path: Path = BENCH_JSON) -> Path:
    """Merge top-level ``sections`` into the shared benchmark report.

    Every standalone benchmark script owns one (or a few) top-level keys
    of ``BENCH_perf_core.json`` — ``bench_perf_core.py`` the perf-core
    trio, ``bench_refine.py`` ``"refine"``, ``bench_portfolio.py``
    ``"portfolio"``, ``bench_store.py`` ``"store"`` — and must preserve
    the sibling sections when re-run.  This helper is that read-update-
    write cycle, deduplicated out of the individual scripts.
    """
    merged = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged.update(sections)
    path.write_text(json.dumps(merged, indent=1, sort_keys=True))
    # Every merge also appends one line to the run log so the speedup
    # trajectory is machine-checkable (``repro bench check``).  Only the
    # sections this run produced are recorded — the history captures
    # what each run measured, not the merged file's state.
    record_history(sections, history=path.parent / BENCH_HISTORY.name)
    return path


def _git_commit() -> str | None:
    """Best-effort short commit id of the repo being benchmarked."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_JSON.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def record_history(sections: dict, history: Path = BENCH_HISTORY) -> Path:
    """Append one bench-history line for ``sections``.

    The commit id and wall-clock timestamp are gathered *here* — bench
    scripts are the one place allowed to ask git and the clock —
    and injected into the clock-free ``repro.obs.history`` writer.
    """
    from repro.obs.history import append_history

    return append_history(
        sections, history, commit=_git_commit(), timestamp=time.time()
    )
