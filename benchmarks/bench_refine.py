"""Benchmark of the delta-evaluated refinement engine vs the retained
full-rebuild reference.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_refine.py [--repeats N]

For each workload (the headline n=150 stage graph on a 6x6 mesh, plus a
smaller n=50 / 4x4 trend point) it refines the same Random starting
mapping through

* ``refine_mapping_rebuild`` — the full-rebuild reference path, and
* ``refine_mapping`` — the incremental :class:`DeltaState` engine,

verifies the two are **bit-identical** (same accepted-move sequence,
same final allocation/speeds, byte-equal final energy) and reports the
speedup.  Results are merged into ``BENCH_perf_core.json`` at the
repository root under the ``"refine"`` key so future PRs can track the
trajectory; the delta engine is expected to stay at or above 5x on the
headline workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from _common import merge_bench_sections

#: (label, n stages, grid p, grid q, sweeps)
WORKLOADS = (
    ("n150_6x6", 150, 6, 6, 2),
    ("n50_4x4", 50, 4, 4, 2),
)

#: The acceptance floor for the headline workload.
TARGET_SPEEDUP = 5.0
HEADLINE = "n150_6x6"


def _loose_period(spg, parallelism: float = 12.0) -> float:
    s_max = 1e9
    return max(
        2.0 * spg.total_work / s_max / parallelism,
        1.2 * max(spg.weights) / s_max,
    )


def bench_workload(label, n, p, q, sweeps, repeats: int) -> dict:
    from repro.core.evaluate import energy
    from repro.core.problem import ProblemInstance
    from repro.heuristics.random_heuristic import random_mapping
    from repro.heuristics.refine import refine_mapping, refine_mapping_rebuild
    from repro.platform.cmp import CMPGrid
    from repro.spg.random_gen import random_spg

    spg = random_spg(n, rng=2011, ccr=10.0)
    problem = ProblemInstance(
        spg, CMPGrid(p, q), _loose_period(spg, parallelism=12.0)
    )
    base = random_mapping(problem, rng=0)

    def timed(fn):
        best, out, log = None, None, None
        for _ in range(repeats):
            run_log: list = []
            t0 = time.perf_counter()
            mapping = fn(run_log)
            seconds = time.perf_counter() - t0
            if best is None or seconds < best:
                best, out, log = seconds, mapping, run_log
        return best, out, log

    delta_s, delta_m, delta_log = timed(
        lambda run_log: refine_mapping(
            problem, base, rng=0, sweeps=sweeps, log=run_log
        )
    )
    rebuild_s, rebuild_m, rebuild_log = timed(
        lambda run_log: refine_mapping_rebuild(
            problem, base, rng=0, sweeps=sweeps, log=run_log
        )
    )
    equal = (
        delta_log == rebuild_log
        and delta_m.alloc == rebuild_m.alloc
        and delta_m.speeds == rebuild_m.speeds
        and delta_m.paths == rebuild_m.paths
        and repr(energy(delta_m, problem.period).total)
        == repr(energy(rebuild_m, problem.period).total)
    )
    base_e = energy(base, problem.period).total
    refined_e = energy(delta_m, problem.period).total
    return {
        "settings": {
            "n": n, "grid": f"{p}x{q}", "ccr": 10.0, "seed": 2011,
            "sweeps": sweeps, "base": "Random",
        },
        "delta_seconds": delta_s,
        "rebuild_seconds": rebuild_s,
        "speedup": rebuild_s / delta_s,
        "accepted_moves": len(delta_log),
        "base_energy": repr(base_e),
        "refined_energy": repr(refined_e),
        "energy_saved_pct": 100.0 * (1.0 - refined_e / base_e),
        "outputs_identical": equal,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repetitions per engine; best-of is reported "
             "(default 2)",
    )
    args = parser.parse_args(argv)

    results: dict = {"target_speedup": TARGET_SPEEDUP, "workloads": {}}
    for label, n, p, q, sweeps in WORKLOADS:
        print(f"benchmarking {label} (sweeps={sweeps}) ...")
        results["workloads"][label] = bench_workload(
            label, n, p, q, sweeps, args.repeats
        )
    headline = results["workloads"][HEADLINE]
    results["headline"] = HEADLINE
    results["speedup"] = headline["speedup"]
    results["speedup_ok"] = headline["speedup"] >= TARGET_SPEEDUP
    ok = all(
        w["outputs_identical"] for w in results["workloads"].values()
    )
    results["all_outputs_identical"] = ok

    out_path = merge_bench_sections({"refine": results})

    print(json.dumps(results, indent=1, sort_keys=True))
    print(f"\nmerged into {out_path} under 'refine'")
    if not ok:
        print("ERROR: delta engine diverged from the rebuild reference",
              file=sys.stderr)
        return 1
    if not results["speedup_ok"]:
        print(
            f"WARNING: headline speedup {headline['speedup']:.1f}x below "
            f"the {TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
