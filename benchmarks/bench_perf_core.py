"""Micro-benchmark of the fast evaluation core, the DPA2D solver and the
Figure-10 panel, against the recorded seed-implementation baseline.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_perf_core.py [--jobs N]

It times

* the evaluation core (``cycle_times`` + ``energy`` + ``validate`` on a
  fixed Greedy mapping, 2000 repetitions),
* the DPA2D solver on three fixed random 50-stage instances,
* the full Figure-10 random 50-stage 4x4 panel (CCR = 10, benchmark
  replicate settings, seed 2011), serially and through the parallel
  experiment engine for each requested ``--jobs`` value,

verifies that every output (periods, per-heuristic energies, failure
counts) is byte-identical to the seed implementation's recorded outputs in
``benchmarks/baseline_perf_core.json``, and writes the speedup trajectory
to ``BENCH_perf_core.json`` at the repository root so future PRs can track
it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from _common import merge_bench_sections

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_perf_core.json"


def bench_eval_core(baseline: dict) -> dict:
    """Time repeated evaluation of one fixed mapping.

    This is deliberately the harness's access pattern: ``run`` and the
    period search call ``validate``/``energy``/``is_period_feasible``
    several times on the *same* mapping, which is exactly what the
    Mapping/cycle-time memoisation added by this PR accelerates.  The
    seed baseline ran the identical loop without memoisation, so the
    ratio reported here is the cache win on warm mappings; cold-path
    (fresh-mapping) performance is covered by the fig10 panel below,
    which constructs every mapping anew.
    """
    from repro.core.evaluate import cycle_times, energy, validate
    from repro.core.problem import ProblemInstance
    from repro.experiments import choose_period
    from repro.heuristics.base import run
    from repro.platform.cmp import CMPGrid
    from repro.spg.random_gen import random_spg

    spg = random_spg(50, rng=42, ccr=1.0)
    grid = CMPGrid(4, 4)
    choice = choose_period(spg, grid, heuristics=("Greedy",), rng=42)
    prob = ProblemInstance(spg, grid, choice.period)
    res = run("Greedy", prob, rng=42)
    assert res.ok, "Greedy must succeed on the fixed instance"
    mapping = res.mapping
    reps = baseline["reps"]
    t0 = time.perf_counter()
    for _ in range(reps):
        cycle_times(mapping)
        energy(mapping, prob.period)
        validate(mapping, prob.period)
    seconds = time.perf_counter() - t0
    got = repr(energy(mapping, prob.period).total)
    return {
        "reps": reps,
        "seconds": seconds,
        "baseline_seconds": baseline["seconds"],
        "speedup": baseline["seconds"] / seconds,
        "outputs_equal": got == baseline["energy_total"],
    }


def bench_dpa2d(baseline: dict) -> dict:
    from repro.core.problem import ProblemInstance
    from repro.heuristics.dpa2d import solve_dpa2d
    from repro.platform.cmp import CMPGrid
    from repro.spg.random_gen import random_spg

    grid = CMPGrid(4, 4)
    t0 = time.perf_counter()
    energies = {}
    for seed_str, period in baseline["periods"].items():
        seed = int(seed_str)
        spg = random_spg(50, rng=seed, ccr=1.0)
        prob = ProblemInstance(spg, grid, period)
        e, _plans = solve_dpa2d(prob, 4, 4)
        energies[seed_str] = repr(e)
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "baseline_seconds": baseline["seconds"],
        "speedup": baseline["seconds"] / seconds,
        "outputs_equal": energies == baseline["energies"],
    }


def run_fig10_panel(jobs: int):
    from repro.experiments import run_random_experiment
    from repro.platform.cmp import CMPGrid

    t0 = time.perf_counter()
    exp = run_random_experiment(
        n=50,
        grid=CMPGrid(4, 4),
        ccr=10.0,
        elevations=(1, 2, 4, 8, 12, 16),
        replicates=3,
        seed=2011,
        jobs=jobs,
    )
    return time.perf_counter() - t0, exp


def check_fig10_outputs(exp, baseline: dict) -> bool:
    counter = exp.failure_table()
    if dict(zip(counter.heuristics, counter.row())) != baseline["failures"]:
        return False
    for recs in exp.records.values():
        for rec in recs:
            if rec.period != baseline["periods"][rec.label]:
                return False
            want = baseline["energies"][rec.label]
            for name, r in rec.results.items():
                got = repr(r.total_energy) if r.ok else None
                if got != want[name]:
                    return False
    return True


def bench_fig10(
    baseline: dict, jobs_values: list[int], repeats: int = 3
) -> dict:
    """Time the panel per jobs value, best of ``repeats``.

    Best-of is the standard way to factor out scheduler noise on shared
    hosts: every run computes identical work, so the minimum is the
    cleanest estimate of the code's cost.  All samples are recorded.
    """
    out: dict = {"settings": baseline["settings"],
                 "baseline_seconds": baseline["seconds"],
                 "repeats": repeats, "runs": {}}
    for jobs in jobs_values:
        samples = []
        equal = True
        for _ in range(repeats):
            seconds, exp = run_fig10_panel(jobs)
            samples.append(seconds)
            equal = equal and check_fig10_outputs(exp, baseline)
        best = min(samples)
        out["runs"][str(jobs)] = {
            "seconds": best,
            "samples": samples,
            "speedup_vs_seed": baseline["seconds"] / best,
            "outputs_equal": equal,
        }
    serial = out["runs"][str(jobs_values[0])]
    out["seconds"] = serial["seconds"]
    out["speedup_vs_seed"] = serial["speedup_vs_seed"]
    out["outputs_equal"] = all(r["outputs_equal"] for r in out["runs"].values())
    return out


def bench_obs_overhead(repeats: int = 3) -> dict:
    """Tracing + metrics overhead on the instrumented hot path.

    Runs the Figure-10 panel (the workload that fires ``solver.run``
    spans and counters thousands of times) serially, best of
    ``repeats``, once without observability and once under a full
    in-memory trace + metrics session.  The acceptance budget is < 5%
    overhead over the untraced floor; the disabled path must stay a
    single attribute check.
    """
    from repro.obs import observability

    floor_samples, traced_samples = [], []
    traced_equal = True
    for _ in range(repeats):
        seconds, _exp = run_fig10_panel(jobs=1)
        floor_samples.append(seconds)
        with observability(trace=True, metrics=True) as session:
            seconds, exp = run_fig10_panel(jobs=1)
        traced_samples.append(seconds)
        with open(BASELINE_PATH) as fh:
            base = json.load(fh)["fig10_panel"]
        traced_equal = traced_equal and check_fig10_outputs(exp, base)
    floor = min(floor_samples)
    traced = min(traced_samples)
    overhead = traced / floor - 1.0
    return {
        "workload": "fig10 panel, jobs=1, best of %d" % repeats,
        "untraced_floor_seconds": floor,
        "traced_seconds": traced,
        "overhead_fraction": overhead,
        "budget_fraction": 0.05,
        "within_budget": overhead < 0.05,
        "spans_recorded": len(session.tracer.export()),
        "outputs_equal": traced_equal,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, nargs="*", default=[1, 2],
        help="jobs values to run the panel with (first one is the "
             "headline serial measurement; default: 1 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="panel repetitions per jobs value; best-of is reported "
             "(default 3 — raise on noisy shared hosts)",
    )
    args = parser.parse_args(argv)
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)

    import os

    results = {
        "baseline_commit": "seed (see benchmarks/baseline_perf_core.json)",
        "cpu_count": os.cpu_count(),
        "note": (
            "jobs > 1 only helps with more than one CPU; on a single-CPU "
            "host the pool adds pickling overhead and the serial run is "
            "the headline number"
        ),
        "eval_core": bench_eval_core(baseline["eval_core"]),
        "dpa2d": bench_dpa2d(baseline["dpa2d"]),
        "fig10_panel": bench_fig10(
            baseline["fig10_panel"], args.jobs, repeats=args.repeats
        ),
        "obs_overhead": bench_obs_overhead(repeats=args.repeats),
    }
    ok = (
        results["eval_core"]["outputs_equal"]
        and results["dpa2d"]["outputs_equal"]
        and results["fig10_panel"]["outputs_equal"]
        and results["obs_overhead"]["outputs_equal"]
    )
    if not results["obs_overhead"]["within_budget"]:
        print(
            "WARNING: observability overhead "
            f"{results['obs_overhead']['overhead_fraction']:.1%} exceeds "
            "the 5% budget (noisy host? outputs still verified)",
            file=sys.stderr,
        )
    results["all_outputs_equal_to_seed"] = ok
    # Merge over the existing report so sibling benchmarks' sections
    # (e.g. bench_refine.py's "refine" key) survive a re-run.
    out_path = merge_bench_sections(results)
    print(json.dumps(results, indent=1, sort_keys=True))
    print(f"\nwritten to {out_path}")
    if not ok:
        print("ERROR: outputs diverged from the seed implementation",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
