"""Table 1: characteristics of the StreamIt workflows.

Regenerates the (n, ymax, xmax, CCR) table for the 12 synthesised
workflows and verifies it matches the published values exactly.  The timed
kernel is the synthesis of the entire suite.
"""

from _common import write_result

from repro.spg.streamit import STREAMIT_TABLE1, streamit_suite
from repro.util.fmt import format_table


def test_table1(benchmark):
    suite = benchmark.pedantic(streamit_suite, rounds=3, iterations=1)
    rows = []
    for spec, g in zip(STREAMIT_TABLE1, suite):
        assert (g.n, g.ymax, g.xmax) == (spec.n, spec.ymax, spec.xmax)
        assert abs(g.ccr - spec.ccr) < 1e-6 * spec.ccr
        rows.append([spec.index, spec.name, g.n, g.ymax, g.xmax,
                     round(g.ccr)])
    text = format_table(
        ["Index", "Name", "n", "ymax", "xmax", "CCR"],
        rows,
        title="Table 1: Characteristics of the StreamIt workflows",
    )
    print("\n" + text)
    write_result("table1_streamit", text)
    benchmark.extra_info["workflows"] = len(rows)
    benchmark.extra_info["all_match_paper"] = True
