"""Figure 8: normalised energy per heuristic, StreamIt suite, 4x4 CMP.

All 12 workflows at the original CCR and rescaled to 10, 1 and 0.1; periods
chosen by the Section-6.1.3 divide-by-10 procedure.  Shapes to check
against the paper: DPA1D fails on the first four (high-elevation)
workflows, DPA2D fails on the pipeline-like ones, Random is never best,
and one of the specialised heuristics wins each row.
"""

from _common import streamit_experiment, write_result


def test_fig8(benchmark):
    exp = benchmark.pedantic(
        streamit_experiment, args=(4,), rounds=1, iterations=1
    )
    text = exp.render()
    print("\n" + text)
    write_result("fig8_streamit_4x4", text)
    counter = exp.failure_table()
    benchmark.extra_info["instances"] = counter.total
    benchmark.extra_info["failures"] = dict(
        zip(counter.heuristics, counter.row())
    )
    # Qualitative shape assertions (documented in EXPERIMENTS.md).
    records = exp.records
    assert counter.total == 48
    # Random never fails outright more than the specialised heuristics do.
    fails = dict(zip(counter.heuristics, counter.row()))
    assert fails["Random"] <= fails["DPA1D"]
    # DPA1D fails on the four high-elevation workflows at original CCR.
    for idx in (1, 2, 3, 4):
        assert not records[(idx, None)].results["DPA1D"].ok
