"""Ablation benchmarks for design choices called out in DESIGN.md.

1. *Speed downgrade in Greedy* — the paper downgrades each core to the
   cheapest feasible speed after the greedy pass; how much energy does
   that step actually save?
2. *Energy-optimal vs slowest-feasible speed selection* — the XScale
   table's non-monotone energy-per-cycle makes the paper's
   slowest-feasible rule suboptimal at the bottom; quantify the gap on
   DPA1D's per-cluster choices.
3. *DPA1D ideal budget* — sensitivity of the failure rate to the
   admissible-subgraph budget (the knob that reproduces the paper's
   "too many splits to explore" failures).
"""

from _common import SEED, write_result

from repro.core.evaluate import energy
from repro.core.errors import HeuristicFailure
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.experiments import choose_period
from repro.heuristics.dpa1d import dpa1d_mapping
from repro.heuristics.greedy import greedy_mapping
from repro.platform.cmp import CMPGrid
from repro.spg.random_gen import random_spg_with_elevation
from repro.spg.streamit import streamit_workflow
from repro.util.fmt import format_table


def _no_downgrade_energy(problem: ProblemInstance, mapping: Mapping) -> float:
    """Energy if every active core ran at the greedy trial speed (s_max
    upper bound: we reconstruct the un-downgraded cost by pushing each core
    back to the fastest speed any core uses)."""
    s = max(mapping.speeds.values())
    speeds = {c: s for c in mapping.active_cores()}
    undg = Mapping(
        mapping.spg, mapping.grid, dict(mapping.alloc), speeds,
        dict(mapping.paths),
    )
    return energy(undg, problem.period).total


def test_ablation_greedy_downgrade(benchmark):
    def run():
        rows = []
        savings = []
        for idx in (6, 7, 9, 10, 12):
            app = streamit_workflow(idx, seed=SEED)
            grid = CMPGrid(4, 4)
            T = choose_period(app, grid, heuristics=("Greedy",), rng=0).period
            prob = ProblemInstance(app, grid, T)
            try:
                m = greedy_mapping(prob)
            except HeuristicFailure:
                continue
            with_dg = energy(m, T).total
            without = _no_downgrade_energy(prob, m)
            savings.append(1 - with_dg / without)
            rows.append([idx, f"{without:.3f}", f"{with_dg:.3f}",
                         f"{100 * (1 - with_dg / without):.1f}%"])
        return rows, savings

    rows, savings = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["app", "E no downgrade [J]", "E downgraded [J]", "saving"],
        rows,
        title="Ablation: per-core speed downgrade in Greedy",
    )
    print("\n" + text)
    write_result("ablation_greedy_downgrade", text)
    assert savings and max(savings) > 0.0
    benchmark.extra_info["mean_saving"] = round(
        sum(savings) / len(savings), 4
    )


def test_ablation_speed_rule(benchmark):
    """Energy-optimal vs slowest-feasible cluster speeds (same clustering)."""

    def run():
        rows = []
        for idx in (7, 9, 12):
            app = streamit_workflow(idx, seed=SEED)
            grid = CMPGrid(4, 4)
            T = choose_period(app, grid, heuristics=("DPA1D",), rng=0).period
            prob = ProblemInstance(app, grid, T)
            m = dpa1d_mapping(prob)
            e_best = energy(m, T).total
            model = grid.model
            slow_speeds = {
                c: model.slowest_feasible(w, T)
                for c, w in m.core_work().items()
            }
            m_slow = Mapping(
                m.spg, m.grid, dict(m.alloc), slow_speeds, dict(m.paths)
            )
            e_slow = energy(m_slow, T).total
            rows.append([idx, f"{e_slow:.3f}", f"{e_best:.3f}",
                         f"{100 * (1 - e_best / e_slow):.2f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["app", "E slowest-feasible [J]", "E energy-optimal [J]", "saving"],
        rows,
        title="Ablation: paper's slowest-feasible rule vs energy-optimal "
              "speeds (XScale is non-monotone in energy/cycle)",
    )
    print("\n" + text)
    write_result("ablation_speed_rule", text)
    benchmark.extra_info["rows"] = len(rows)


def test_ablation_dpa1d_budget(benchmark):
    """DPA1D failure rate as a function of the admissible-subgraph budget."""

    def run():
        instances = [
            random_spg_with_elevation(40, e, rng=s, ccr=10.0)
            for e in (2, 4, 6, 8)
            for s in (0, 1)
        ]
        rows = []
        for budget in (1_000, 10_000, 120_000):
            ok = 0
            for g in instances:
                grid = CMPGrid(4, 4)
                T = max(
                    1.3 * max(g.weights) / 1e9, g.total_work / 1e9 / 10
                )
                try:
                    dpa1d_mapping(
                        ProblemInstance(g, grid, T), ideal_budget=budget
                    )
                    ok += 1
                except HeuristicFailure:
                    pass
            rows.append([budget, ok, len(instances)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["ideal budget", "successes", "instances"],
        rows,
        title="Ablation: DPA1D success count vs admissible-subgraph budget",
    )
    print("\n" + text)
    write_result("ablation_dpa1d_budget", text)
    # More budget can only help.
    succ = [r[1] for r in rows]
    assert succ == sorted(succ)
