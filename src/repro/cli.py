"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------

``workflows``
    List the synthesised StreamIt suite with its Table-1 characteristics.
``platform``
    List the registered platform topologies, or describe one.
``map``
    Map one workflow (or a random SPG) onto a CMP with one heuristic and
    print the mapping, energy breakdown and link utilisation.
``solvers``
    List the unified solver registry, or describe one solver / spec
    (``repro solvers describe dpa2d1d+refine``).
``solve``
    Run any registered solver or composite spec on one workflow:
    ``repro solve --solver dpa2d1d+refine``, ``--solver portfolio``,
    ``--solver 'greedy|dpa1d'`` (quote ``|`` from the shell).
``compare``
    Run all five heuristics on one workflow at the Section-6.1.3 period
    and print the normalised comparison.
``experiment``
    Re-run one of the paper's experiments (fig8/fig9/table2 subsets) and
    print/export the tables.
``sweep``
    Fan a {topology, size, CCR, app} cross-product over the parallel
    engine and emit a consolidated JSON report; ``--solvers`` adds the
    strategy axis.  ``--store``/``--resume``/``--shard i/N`` make the
    sweep incremental through the content-addressed result store:
    completed cells are skipped, shards deterministically partition the
    cell grid, and a final ``--resume`` pass merges one shared store
    into a report bit-identical to a cold single-process run.
    ``--retries``/``--deadline-s`` govern worker-crash/hang recovery,
    ``--fault-plan`` injects deterministic chaos, and ``--strict``
    turns permanently failed cells into a nonzero exit (the default is
    graceful degradation with failures listed in ``meta.failures``).
``store``
    Inspect or maintain a result store: ``stats`` (entry counts),
    ``gc`` (purge stale-schema entries, one kind, or everything),
    ``export`` (deterministic JSON snapshot), ``verify`` (audit every
    row's sha256 checksum; ``--quarantine`` moves corrupt rows aside so
    resumed sweeps recompute them), ``evict`` (bound the store:
    ``--policy lru|fifo|rrip|brrip|drrip`` with ``--max-rows``/
    ``--max-bytes``; evicted keys read as misses and are recomputed).
    Sweeps and the service bound their own store with
    ``--store-policy``/``--store-max-rows``/``--store-max-bytes``.
``serve``
    Batch mapping service: answer a JSON file of solver requests
    through the store — cache hit -> stored result, miss -> compute
    over the parallel engine and store.
``trace``
    Work with recorded JSONL traces: ``summarize`` prints per-span-kind
    count/total/p50/p99 aggregates; ``critical-path`` prints the
    self-time hotspot table and the slowest root-to-leaf chain;
    ``export --format chrome|collapsed`` converts a trace for
    ``ui.perfetto.dev`` / flamegraph tools; ``diff A B [--budget-pct
    X]`` compares two recordings per span kind and exits 1 when any
    kind's total grew past the budget.
``profile``
    Work with the ``--profile DIR`` cProfile dumps: ``merge`` aggregates
    every per-process ``*.pstats`` file into one cumulative-time table;
    ``flame`` renders them (or a single dump) as collapsed stacks for
    flamegraph tools.
``bench``
    The perf-regression sentinel: ``check`` gates the current
    ``BENCH_perf_core.json`` against the recorded floors and the last
    ``BENCH_history.jsonl`` entry (exit 1 on regression); ``history``
    prints the recorded speedup trajectory.

``map``, ``solve``, ``compare``, ``experiment``, ``sweep`` and ``serve``
accept the observability flags (``repro/obs/``): ``--trace PATH``
records a hierarchical span trace to a JSONL file (also armed by the
``REPRO_TRACE`` environment variable), ``--metrics`` prints the session
metric aggregates after the command, and ``--profile DIR`` dumps
per-process ``cProfile`` files (workers included).  Telemetry is
strictly out-of-band: reports and stored results are byte-identical
with or without it.

``map``, ``solve``, ``compare``, ``experiment`` and ``sweep`` accept
``--topology`` (default ``mesh``, the paper's platform); ``repro
platform list`` shows the alternatives.  The same six commands accept
``--kernel`` selecting the suffix-cluster enumeration kernel
(``repro/core/kernels.py``; also via ``REPRO_KERNEL``) — a pure speed
knob, byte-identical outputs under every kernel.  ``repro --version``
prints the package version recorded in sweep/store/service metadata.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core.evaluate import energy, latency
from repro.core.kernels import kernel_names
from repro.core.problem import ProblemInstance
from repro.core.visualize import (
    render_link_utilisation,
    render_mapping,
    summarize,
)
from repro.experiments import (
    choose_period,
    run_scenario_sweep,
    run_streamit_experiment,
    streamit_csv,
    sweep_summary,
    write_report,
)
from repro.heuristics.base import PAPER_ORDER, run
from repro.platform.topology import TOPOLOGIES, get_topology, topology_names
from repro.solvers import (
    SOLVERS,
    get_solver,
    parse_solver_spec,
    solver_names,
)
from repro.spg.random_gen import random_spg
from repro.spg.streamit import STREAMIT_TABLE1, streamit_workflow
from repro.util.fmt import format_table
from repro.util.io import atomic_write_text
from repro.util.version import repro_version

__all__ = ["main", "build_parser"]


def _grid(spec: str) -> tuple[int, int]:
    try:
        p, q = spec.lower().split("x")
        return int(p), int(q)
    except Exception:
        raise argparse.ArgumentTypeError(
            f"grid must look like '4x4', got {spec!r}"
        )


def _parse_spec_or_report(spec: str, out):
    """Parse a solver spec, printing the error and returning ``None`` on
    invalid input (shared by the solve/solvers/sweep commands)."""
    try:
        return parse_solver_spec(spec)
    except (KeyError, ValueError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=out)
        return None


def _load_app(args) -> tuple[str, object]:
    if args.random is not None:
        app = random_spg(args.random, rng=args.seed, ccr=args.ccr or 10.0)
        return f"random-{args.random}", app
    app = streamit_workflow(args.workflow, ccr=args.ccr, seed=args.seed)
    return str(args.workflow), app


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-aware SPG-onto-CMP mapping (ICPP 2011 repro)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workflows", help="list the StreamIt suite (Table 1)")

    p_plat = sub.add_parser(
        "platform", help="list or describe the registered topologies"
    )
    p_plat.add_argument("action", choices=["list", "describe"])
    p_plat.add_argument("name", nargs="?", default=None,
                        help="topology to describe")
    p_plat.add_argument("--grid", type=_grid, default=(4, 4),
                        help="platform size for describe (default 4x4)")

    def add_topology_arg(p):
        p.add_argument(
            "--topology", default="mesh", choices=topology_names(),
            help="platform topology (default mesh; see 'repro platform "
                 "list')",
        )

    def add_kernel_arg(p):
        p.add_argument(
            "--kernel", default=None, choices=kernel_names(),
            help="suffix-cluster enumeration kernel (default: "
                 "REPRO_KERNEL or the built-in vector kernel; all "
                 "kernels give byte-identical results)",
        )

    def add_instance_args(p):
        add_kernel_arg(p)
        p.add_argument(
            "--workflow", "-w", default="FMRadio",
            help="StreamIt name or index (default FMRadio)",
        )
        p.add_argument(
            "--random", type=int, metavar="N", default=None,
            help="use a random SPG with N stages instead of a workflow",
        )
        p.add_argument("--grid", type=_grid, default=(4, 4),
                       help="CMP size, e.g. 4x4 (default)")
        add_topology_arg(p)
        p.add_argument("--ccr", type=float, default=None,
                       help="rescale the CCR (default: original)")
        p.add_argument("--period", "-T", type=float, default=None,
                       help="period bound in seconds (default: Section "
                            "6.1.3 procedure)")
        p.add_argument("--seed", type=int, default=0)

    p_map = sub.add_parser("map", help="map one application")
    add_instance_args(p_map)
    p_map.add_argument(
        "--heuristic", "-H", choices=PAPER_ORDER, default="Greedy"
    )
    p_map.add_argument("--refine", action="store_true",
                       help="refine the result with delta-evaluated "
                            "local search")
    p_map.add_argument("--refine-schedule", choices=["first", "best",
                                                     "anneal"],
                       default="first",
                       help="refinement acceptance schedule (default "
                            "first-improvement)")
    p_map.add_argument("--refine-sweeps", type=int, default=4,
                       help="refinement sweep budget (default 4)")
    p_map.add_argument("--refine-general", action="store_true",
                       help="admit general (non-DAG-partition) mappings "
                            "during refinement (Section-7 future work)")

    p_sv = sub.add_parser(
        "solvers", help="list or describe the registered solvers"
    )
    p_sv.add_argument("action", choices=["list", "describe"])
    p_sv.add_argument("name", nargs="?", default=None,
                      help="solver name or composite spec to describe")

    p_solve = sub.add_parser(
        "solve", help="run one solver (or pipeline/portfolio spec)"
    )
    add_instance_args(p_solve)
    p_solve.add_argument(
        "--solver", "-s", default="greedy", metavar="SPEC",
        help="registered solver or spec: NAME, NAME+refine, A|B|C "
             "(default greedy; see 'repro solvers list')",
    )
    p_solve.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for portfolio members (0 = all CPUs; "
             "the winner is identical for any value; default 1)",
    )

    p_cmp = sub.add_parser("compare", help="run all five heuristics")
    add_instance_args(p_cmp)

    p_exp = sub.add_parser("experiment", help="re-run a paper experiment")
    p_exp.add_argument("which", choices=["fig8", "fig9"])
    p_exp.add_argument("--workflows", type=int, nargs="*", default=None,
                       help="Table-1 indices (default: all 12)")
    p_exp.add_argument("--ccr", type=float, nargs="*", default=None,
                       help="CCR settings (default: orig 10 1 0.1)")
    add_topology_arg(p_exp)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--refine", action="store_true",
                       help="post-refine every heuristic mapping with "
                            "the delta-evaluated local search")
    p_exp.add_argument("--refine-schedule", choices=["first", "best",
                                                     "anneal"],
                       default="first",
                       help="refinement acceptance schedule (default "
                            "first-improvement)")
    p_exp.add_argument("--refine-sweeps", type=int, default=4,
                       help="refinement sweep budget (default 4)")
    p_exp.add_argument("--csv", metavar="PATH", default=None,
                       help="also export the records as CSV")
    p_exp.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the sweep (0 = all "
                            "CPUs; results are identical for any value; "
                            "default 1 = serial)")
    add_kernel_arg(p_exp)

    def add_obs_args(p):
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record a span trace to this JSONL file (see 'repro "
                 "trace summarize'; also armed by REPRO_TRACE)",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="print session metric aggregates (counters/histograms) "
                 "after the command",
        )
        p.add_argument(
            "--profile", metavar="DIR", default=None,
            help="dump per-process cProfile files into DIR (pool "
                 "workers inherit via REPRO_PROFILE)",
        )

    def add_bounded_store_args(p):
        p.add_argument(
            "--store-policy", metavar="POLICY", default="lru",
            help="eviction policy bounding --store (lru, fifo, rrip, "
                 "brrip, drrip; default lru — only active with a cap)",
        )
        p.add_argument(
            "--store-max-rows", type=int, default=None, metavar="N",
            help="bound --store to N rows: every put over the cap "
                 "evicts in --store-policy order (evicted cells read "
                 "as misses and are recomputed — reports stay "
                 "byte-identical to unbounded runs)",
        )
        p.add_argument(
            "--store-max-bytes", type=int, default=None, metavar="B",
            help="bound --store to B payload bytes (see "
                 "--store-max-rows)",
        )

    def add_resilience_args(p):
        p.add_argument(
            "--retries", type=int, default=3, metavar="N",
            help="attempts per task before it fails permanently "
                 "(crashed/hung workers are respawned and the lost "
                 "tasks re-run with the same pre-drawn seeds; "
                 "default 3)",
        )
        p.add_argument(
            "--deadline-s", type=float, default=None, metavar="S",
            help="per-task wall-clock deadline; a blown deadline kills "
                 "the worker and retries the task (default: none)",
        )
        p.add_argument(
            "--fault-plan", metavar="SPEC", default=None,
            help="deterministic fault injection, e.g. "
                 "'crash@task:0;hang@task:2:0.2;corrupt@key:*' "
                 "(default: the REPRO_FAULT_PLAN environment variable)",
        )

    for p in (p_map, p_solve, p_cmp, p_exp):
        add_obs_args(p)

    p_sw = sub.add_parser(
        "sweep",
        help="scenario sweep: {topology, size, CCR, app} cross-product",
    )
    p_sw.add_argument("--topologies", nargs="+", default=["mesh", "torus"],
                      choices=topology_names(), metavar="NAME",
                      help="topologies to sweep (default: mesh torus)")
    p_sw.add_argument("--sizes", type=_grid, nargs="+", default=[(3, 3)],
                      metavar="PxQ",
                      help="platform sizes (default: 3x3)")
    p_sw.add_argument("--ccr", type=float, nargs="+", default=[10.0],
                      help="CCR settings (default: 10)")
    p_sw.add_argument("--apps", nargs="+", default=["random-20"],
                      metavar="APP",
                      help="application classes: random-N or a StreamIt "
                           "name/index (default: random-20)")
    p_sw.add_argument("--solvers", nargs="+", default=None, metavar="SPEC",
                      help="solver specs replacing the heuristic columns "
                           "(e.g. Greedy dpa2d1d+refine portfolio); "
                           "default: the five paper heuristics")
    p_sw.add_argument("--replicates", type=int, default=1)
    p_sw.add_argument("--seed", type=int, default=0)
    p_sw.add_argument("--refine", action="store_true",
                      help="post-refine every heuristic mapping with the "
                           "delta-evaluated local search")
    p_sw.add_argument("--refine-schedule", choices=["first", "best",
                                                    "anneal"],
                      default="first",
                      help="refinement acceptance schedule (default "
                           "first-improvement)")
    p_sw.add_argument("--refine-sweeps", type=int, default=4,
                      help="refinement sweep budget (default 4)")
    p_sw.add_argument("--jobs", "-j", type=int, default=1,
                      help="worker processes (0 = all CPUs; results are "
                           "identical for any value)")
    p_sw.add_argument("--out", metavar="PATH", default=None,
                      help="write the consolidated JSON report here")
    p_sw.add_argument("--store", metavar="PATH", default=None,
                      help="result store (SQLite path, or ':memory:'); "
                           "every completed cell is filed under its "
                           "content fingerprint")
    p_sw.add_argument("--resume", action="store_true",
                      help="skip cells already present in --store and "
                           "rebuild their results from stored payloads")
    p_sw.add_argument("--shard", metavar="i/N", default=None,
                      help="process only cells with grid index i mod N "
                           "(0-based); shards 0/N..N-1/N cover the grid "
                           "exactly once into one shared store")
    p_sw.add_argument("--limit", type=int, default=None, metavar="K",
                      help="stop after K cells (a deterministic mid-grid "
                           "interruption, for testing resumption)")
    p_sw.add_argument("--checkpoint", type=int, default=None, metavar="N",
                      help="file computed cells into --store every N "
                           "cells (default: once at the end)")
    add_kernel_arg(p_sw)
    add_bounded_store_args(p_sw)
    add_resilience_args(p_sw)
    add_obs_args(p_sw)
    p_sw.add_argument("--stats-json", metavar="PATH", default=None,
                      help="dump execution statistics (retries, crashes, "
                           "timeouts, respawns) plus the session metrics "
                           "snapshot to this JSON file")
    p_sw.add_argument("--strict", action="store_true",
                      help="exit nonzero if any cell failed permanently "
                           "(default: degrade — report the surviving "
                           "cells and list failures in meta.failures)")
    p_sw.add_argument("--progress", action="store_true",
                      help="live stderr heartbeat: cells done/total, "
                           "rolling-mean ETA, store hit-rate, "
                           "retry/crash counts, and a stall warning "
                           "when no cell completes within 4x the p99 "
                           "inter-completion interval (out of band — "
                           "the report is byte-identical either way)")

    p_st = sub.add_parser(
        "store", help="inspect or maintain a result store"
    )
    p_st.add_argument("action", choices=["stats", "gc", "export", "verify",
                                         "evict"])
    p_st.add_argument("--store", metavar="PATH", required=True,
                      help="the store to operate on (SQLite path)")
    p_st.add_argument("--policy", default="lru",
                      help="evict: the eviction policy ranking victims "
                           "(lru, fifo, rrip, brrip, drrip; default lru)")
    p_st.add_argument("--max-rows", type=int, default=None, metavar="N",
                      help="evict: row-count cap to evict down to")
    p_st.add_argument("--max-bytes", type=int, default=None, metavar="B",
                      help="evict: payload-byte cap to evict down to")
    p_st.add_argument("--kind", default=None,
                      help="gc: purge every entry of this kind (e.g. "
                           "sweep-cell, solve), current schema included")
    p_st.add_argument("--all", action="store_true", dest="drop_all",
                      help="gc: purge everything")
    p_st.add_argument("--out", metavar="PATH", default=None,
                      help="export: write the JSON snapshot here "
                           "(default: stdout)")
    p_st.add_argument("--quarantine", action="store_true",
                      help="verify: move corrupt rows into the "
                           "quarantine table (their keys then read as "
                           "misses and resumed sweeps recompute them)")

    p_srv = sub.add_parser(
        "serve", help="batch mapping service over the result store"
    )
    p_srv.add_argument("--batch", metavar="PATH", required=True,
                       help="JSON requests file (a list, or "
                            "{requests: [...]})")
    p_srv.add_argument("--store", metavar="PATH", default=None,
                       help="result store backing the service (default: "
                            "in-memory, nothing persists)")
    p_srv.add_argument("--out", metavar="PATH", default=None,
                       help="write the JSON response document here")
    p_srv.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for cache misses (0 = all "
                            "CPUs; responses are identical for any value)")
    add_kernel_arg(p_srv)
    add_bounded_store_args(p_srv)
    add_resilience_args(p_srv)
    add_obs_args(p_srv)

    p_tr = sub.add_parser(
        "trace", help="work with recorded JSONL span traces"
    )
    p_tr.add_argument(
        "action", choices=["summarize", "export", "diff", "critical-path"]
    )
    p_tr.add_argument("path", help="the JSONL trace file to read")
    p_tr.add_argument("path_b", nargs="?", default=None,
                      help="diff: the second trace (B); deltas are B "
                           "relative to A")
    p_tr.add_argument("--format", choices=["chrome", "collapsed"],
                      default="chrome", dest="fmt",
                      help="export format: 'chrome' trace-event JSON "
                           "(ui.perfetto.dev / chrome://tracing) or "
                           "'collapsed' flamegraph stacks (default "
                           "chrome)")
    p_tr.add_argument("--out", metavar="PATH", default=None,
                      help="export: write the converted trace here "
                           "(default: stdout)")
    p_tr.add_argument("--budget-pct", type=float, default=None,
                      metavar="PCT",
                      help="diff: exit 1 when any span kind's total "
                           "duration grew more than PCT%% over trace A "
                           "(new kinds count as infinite growth)")
    p_tr.add_argument("--top", type=int, default=15, metavar="N",
                      help="critical-path: hotspot-table rows to print "
                           "(default 15)")

    p_pr = sub.add_parser(
        "profile",
        help="work with --profile/REPRO_PROFILE cProfile dumps",
    )
    p_pr.add_argument("action", choices=["merge", "flame"])
    p_pr.add_argument("path",
                      help="the dump directory (or, for flame, a single "
                           ".pstats file)")
    p_pr.add_argument("--top", type=int, default=25, metavar="N",
                      help="merge: functions in the cumulative table "
                           "(default 25)")
    p_pr.add_argument("--out", metavar="PATH", default=None,
                      help="flame: write the collapsed stacks here "
                           "(default: stdout)")

    p_bm = sub.add_parser(
        "bench", help="benchmark history and the regression sentinel"
    )
    p_bm.add_argument("action", choices=["check", "history"])
    p_bm.add_argument("--bench", metavar="PATH",
                      default="BENCH_perf_core.json",
                      help="check: the bench report to gate (default: "
                           "BENCH_perf_core.json in the current "
                           "directory)")
    p_bm.add_argument("--history", metavar="PATH",
                      default="BENCH_history.jsonl",
                      help="the recorded run log (default: "
                           "BENCH_history.jsonl in the current "
                           "directory; benchmark runs append to it)")
    p_bm.add_argument("--tolerance-pct", type=float, default=20.0,
                      metavar="PCT",
                      help="check: allowed drop below the last recorded "
                           "run before the band gate trips (default 20)")
    p_bm.add_argument("--last", type=int, default=None, metavar="N",
                      help="history: show only the newest N runs")
    return parser


def cmd_workflows(_args, out) -> int:
    rows = [
        [s.index, s.name, s.n, s.ymax, s.xmax, round(s.ccr)]
        for s in STREAMIT_TABLE1
    ]
    print(format_table(
        ["Index", "Name", "n", "ymax", "xmax", "CCR"], rows,
        title="StreamIt suite (paper Table 1)",
    ), file=out)
    return 0


def cmd_platform(args, out) -> int:
    if args.action == "list":
        rows = [
            [name, TOPOLOGIES[name].summary] for name in topology_names()
        ]
        print(format_table(
            ["name", "description"], rows,
            title="Registered platform topologies",
        ), file=out)
        return 0
    if args.name is None:
        print("platform describe needs a topology name", file=out)
        return 2
    try:
        topo = get_topology(args.name, *args.grid)
    except KeyError as exc:
        print(str(exc.args[0]), file=out)
        return 2
    print(topo.describe(), file=out)
    order = topo.line_order()
    if len(order) > 1:
        print(
            f"line embedding: {order[0]} -> {order[1]} -> ... -> "
            f"{order[-1]}",
            file=out,
        )
        sample = topo.route(order[0], order[-1])
        print(f"sample route {order[0]} -> {order[-1]}: {sample}", file=out)
    return 0


def cmd_map(args, out) -> int:
    label, app = _load_app(args)
    grid = get_topology(args.topology, *args.grid)
    T = args.period
    if T is None:
        T = choose_period(app, grid, rng=args.seed).period
        print(f"period (Section 6.1.3): T = {T:g} s", file=out)
    prob = ProblemInstance(app, grid, T)
    res = run(args.heuristic, prob, rng=args.seed)
    if not res.ok:
        print(f"{args.heuristic} FAILED on {label}: {res.failure}", file=out)
        return 1
    mapping = res.mapping
    if args.refine:
        from repro.heuristics.refine import refine_mapping

        before = res.energy.total
        mapping = refine_mapping(
            prob, mapping, rng=args.seed, sweeps=args.refine_sweeps,
            schedule=args.refine_schedule,
            allow_general=args.refine_general,
        )
        b = energy(mapping, T)
        print(
            f"refined ({args.refine_schedule}): {before:.4f} -> "
            f"{b.total:.4f} J/period "
            f"({100.0 * (1.0 - b.total / before):.2f}% saved)",
            file=out,
        )
    else:
        b = energy(mapping, T)
    print(summarize(mapping, T), file=out)
    print(
        f"energy: {b.total:.4f} J/period "
        f"(comp {b.comp:.4f} + comm {b.comm:.4g}); "
        f"latency {latency(mapping):.4g} s",
        file=out,
    )
    print(render_mapping(mapping, T), file=out)
    print(render_link_utilisation(mapping, T), file=out)
    return 0


def cmd_solvers(args, out) -> int:
    if args.action == "list":
        rows = [
            [name, SOLVERS[name].kind, SOLVERS[name].summary]
            for name in solver_names()
        ]
        print(format_table(
            ["name", "kind", "description"], rows,
            title="Registered solvers (compose specs with '+' and '|', "
                  "e.g. dpa2d1d+refine, greedy|dpa1d)",
        ), file=out)
        return 0
    if args.name is None:
        print("solvers describe needs a solver name or spec", file=out)
        return 2
    spec = SOLVERS.get(args.name) or SOLVERS.get(args.name.lower())
    if spec is not None:
        # Registered name: describe the built solver directly (transform
        # stages are valid names here even though they cannot *start* a
        # composite spec).
        print(f"{spec.name} [{spec.kind}]: {spec.summary}", file=out)
        print(get_solver(spec.name).describe(), file=out)
        return 0
    solver = _parse_spec_or_report(args.name, out)
    if solver is None:
        return 2
    print(solver.describe(), file=out)
    return 0


def cmd_solve(args, out) -> int:
    label, app = _load_app(args)
    grid = get_topology(args.topology, *args.grid)
    solver = _parse_spec_or_report(args.solver, out)
    if solver is None:
        return 2
    solver.set_jobs(args.jobs)
    T = args.period
    if T is None:
        T = choose_period(app, grid, rng=args.seed).period
        print(f"period (Section 6.1.3): T = {T:g} s", file=out)
    prob = ProblemInstance(app, grid, T)
    res = solver.solve(prob, rng=args.seed)
    members = res.stats.get("members")
    if members:
        rows = [
            [
                m["solver"],
                "ok" if m["ok"] else "FAIL",
                "-" if m["energy"] is None else f"{m['energy']:.4f}",
                "-" if m["seconds"] is None else f"{m['seconds']:.3f}",
            ]
            for m in members
        ]
        print(format_table(
            ["member", "status", "energy [J]", "seconds"], rows,
            title=f"Portfolio over {len(members)} members "
                  f"(winner: {res.stats.get('winner')})",
        ), file=out)
    for st in res.stats.get("stages", []):
        e = "-" if st["energy"] is None else f"{st['energy']:.4f}"
        print(
            f"stage {st['solver']}: "
            f"{'ok' if st['ok'] else 'FAIL'}, energy {e} J, "
            f"{st['seconds']:.3f} s",
            file=out,
        )
    if not res.ok:
        print(f"{res.solver} FAILED on {label}: {res.failure}", file=out)
        return 1
    b = res.energy
    print(summarize(res.mapping, T), file=out)
    print(
        f"solver {res.solver}: energy {b.total:.4f} J/period "
        f"(comp {b.comp:.4f} + comm {b.comm:.4g}); "
        f"latency {latency(res.mapping):.4g} s; "
        f"{res.stats['seconds']:.3f} s wall-clock",
        file=out,
    )
    print(render_mapping(res.mapping, T), file=out)
    return 0


def cmd_compare(args, out) -> int:
    label, app = _load_app(args)
    grid = get_topology(args.topology, *args.grid)
    if args.period is not None:
        prob = ProblemInstance(app, grid, args.period)
        from repro.experiments import run_all

        results = run_all(prob, rng=args.seed)
        T = args.period
    else:
        choice = choose_period(app, grid, rng=args.seed)
        results, T = choice.results, choice.period
    print(f"{label} on {grid.p}x{grid.q}, T = {T:g} s", file=out)
    best = min(
        (r.total_energy for r in results.values()), default=float("inf")
    )
    rows = []
    for name in PAPER_ORDER:
        r = results[name]
        if r.ok:
            rows.append([
                name, f"{r.energy.total:.4f}",
                f"{r.energy.total / best:.3f}",
                len(r.mapping.active_cores()),
            ])
        else:
            rows.append([name, "FAIL", "-", "-"])
    print(format_table(
        ["heuristic", "energy [J]", "normalised", "cores"], rows,
    ), file=out)
    return 0


def cmd_experiment(args, out) -> int:
    size = 4 if args.which == "fig8" else 6
    grid = get_topology(args.topology, size, size)
    ccrs = tuple(args.ccr) if args.ccr else (None, 10.0, 1.0, 0.1)
    workflows = tuple(args.workflows) if args.workflows else None
    exp = run_streamit_experiment(
        grid, ccrs=ccrs, workflows=workflows, seed=args.seed,
        jobs=args.jobs, refine=args.refine,
        refine_sweeps=args.refine_sweeps,
        refine_schedule=args.refine_schedule,
    )
    print(exp.render(), file=out)
    if args.csv:
        atomic_write_text(args.csv, streamit_csv(exp))
        print(f"CSV written to {args.csv}", file=out)
    return 0


def _eviction_from_args(args):
    """The EvictionConfig dict behind ``--store-policy/--store-max-*``
    (``None`` when no cap was given — an unbounded store)."""
    if args.store_max_rows is None and args.store_max_bytes is None:
        return None
    return {
        "policy": args.store_policy,
        "max_rows": args.store_max_rows,
        "max_bytes": args.store_max_bytes,
    }


def _policy_from_args(args):
    """Build the RetryPolicy behind ``--retries`` / ``--deadline-s``."""
    from repro.resilience import RetryPolicy

    try:
        return RetryPolicy(
            max_attempts=args.retries, deadline_s=args.deadline_s
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def cmd_sweep(args, out) -> int:
    # Validate --solvers specs up front so a typo exits cleanly instead
    # of surfacing as a raw KeyError from inside a (possibly pooled)
    # worker task.
    for spec in args.solvers or ():
        if _parse_spec_or_report(spec, out) is None:
            return 2
    if args.resume and args.store is None:
        print("--resume requires --store", file=out)
        return 2
    from repro.resilience import ExecutionStats

    stats = ExecutionStats()
    try:
        report = run_scenario_sweep(
            topologies=args.topologies,
            sizes=args.sizes,
            ccrs=args.ccr,
            apps=args.apps,
            replicates=args.replicates,
            seed=args.seed,
            jobs=args.jobs,
            refine=args.refine,
            refine_sweeps=args.refine_sweeps,
            refine_schedule=args.refine_schedule,
            solvers=args.solvers,
            store=args.store,
            eviction=_eviction_from_args(args),
            resume=args.resume,
            shard=args.shard,
            limit=args.limit,
            checkpoint=args.checkpoint,
            policy=_policy_from_args(args),
            faults=args.fault_plan,
            stats=stats,
            progress=args.progress,
        )
    except (ValueError, KeyError, argparse.ArgumentTypeError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=out)
        return 2
    print(sweep_summary(report), file=out)
    if args.out:
        write_report(args.out, report)
        print(f"JSON report written to {args.out}", file=out)
    if args.stats_json:
        from repro.obs.session import active_metrics

        metrics = active_metrics()
        doc = {
            "execution": {
                "retries": stats.retries,
                "crashes": stats.crashes,
                "timeouts": stats.timeouts,
                "respawns": stats.respawns,
                "permanent_failures": len(stats.failures),
            },
            "metrics": (
                metrics.snapshot() if metrics is not None else None
            ),
        }
        atomic_write_text(
            args.stats_json,
            json.dumps(doc, indent=1, sort_keys=True) + "\n",
        )
        print(f"execution stats written to {args.stats_json}", file=out)
    if args.strict and report["meta"]["failures"]:
        print(
            f"strict mode: {len(report['meta']['failures'])} cell(s) "
            f"failed permanently",
            file=out,
        )
        return 1
    return 0


def cmd_store(args, out) -> int:
    from repro.store import open_store

    store = open_store(args.store)
    try:
        if args.action == "stats":
            print(json.dumps(store.stats(), indent=1, sort_keys=True),
                  file=out)
            return 0
        if args.action == "verify":
            result = store.verify(quarantine=args.quarantine)
            print(json.dumps(result, indent=1, sort_keys=True), file=out)
            return 0 if not result["corrupt"] else 1
        if args.action == "evict":
            if args.max_rows is None and args.max_bytes is None:
                print("evict requires --max-rows and/or --max-bytes",
                      file=out)
                return 2
            try:
                result = store.evict(
                    policy=args.policy,
                    max_rows=args.max_rows,
                    max_bytes=args.max_bytes,
                )
            except KeyError as exc:
                print(str(exc.args[0]), file=out)
                return 2
            print(json.dumps(result, indent=1, sort_keys=True), file=out)
            return 0
        if args.action == "gc":
            removed = store.gc(kind=args.kind, drop_all=args.drop_all)
            what = (
                "all entries" if args.drop_all
                else f"kind {args.kind!r}" if args.kind
                else "stale-schema entries"
            )
            print(f"gc removed {removed} entries ({what}); "
                  f"{len(store)} remain", file=out)
            return 0
        snapshot = json.dumps(store.export(), indent=1, sort_keys=True)
        if args.out:
            atomic_write_text(args.out, snapshot + "\n")
            print(f"store exported to {args.out}", file=out)
        else:
            print(snapshot, file=out)
        return 0
    finally:
        store.close()


def cmd_serve(args, out) -> int:
    from repro.store import load_requests, serve_batch
    from repro.store.service import serve_summary

    try:
        requests = load_requests(args.batch)
    except (OSError, ValueError, TypeError, json.JSONDecodeError) as exc:
        print(f"bad requests file: {exc}", file=out)
        return 2
    # serve_batch opens (and closes) the store itself so the fault plan
    # reaches the corruption-injection hook inside `put`.
    report = serve_batch(
        requests, store=args.store, jobs=args.jobs,
        policy=_policy_from_args(args), faults=args.fault_plan,
        eviction=_eviction_from_args(args),
    )
    print(serve_summary(report), file=out)
    if args.out:
        write_report(args.out, report)
        print(f"responses written to {args.out}", file=out)
    return 0


def cmd_trace(args, out) -> int:
    try:
        if args.action == "summarize":
            from repro.obs.summarize import render_trace_summary

            print(render_trace_summary(args.path), file=out)
            return 0
        if args.action == "critical-path":
            from repro.obs.analyze import render_hotspots

            print(render_hotspots(args.path, top=args.top), file=out)
            return 0
        if args.action == "export":
            from repro.obs.export import export_trace

            result = export_trace(args.path, args.fmt, target=args.out)
            if args.out:
                print(f"{args.fmt} export written to {args.out}",
                      file=out)
            else:
                out.write(result)
            return 0
        # diff
        if args.path_b is None:
            print("trace diff needs two trace files (A B)", file=out)
            return 2
        from repro.obs.analyze import (
            diff_regressions,
            diff_traces,
            render_diff,
        )

        diff = diff_traces(args.path, args.path_b)
        regressions = None
        if args.budget_pct is not None:
            regressions = diff_regressions(diff, args.budget_pct)
        print(render_diff(diff, regressions), file=out)
        return 1 if regressions else 0
    except (OSError, ValueError) as exc:
        print(f"bad trace file: {exc}", file=out)
        return 2


def cmd_profile(args, out) -> int:
    from repro.obs.profile import merge_profiles, render_merged_profile

    try:
        if args.action == "merge":
            print(render_merged_profile(args.path, top=args.top),
                  file=out)
            return 0
        # flame: a directory merges every dump first; a single .pstats
        # file converts directly.
        from repro.obs.export import pstats_to_collapsed

        source = Path(args.path)
        stats = merge_profiles(source) if source.is_dir() else source
        text = pstats_to_collapsed(stats)
        if args.out:
            atomic_write_text(args.out, text)
            print(f"collapsed stacks written to {args.out}", file=out)
        else:
            out.write(text)
        return 0
    except (OSError, ValueError) as exc:
        print(f"profile error: {exc}", file=out)
        return 2


def cmd_bench(args, out) -> int:
    from repro.obs.history import (
        check_bench,
        load_history,
        render_check,
        render_history,
    )

    try:
        history = load_history(args.history)
    except ValueError as exc:
        print(f"bad history file: {exc}", file=out)
        return 2
    if args.action == "history":
        print(render_history(history, last=args.last), file=out)
        return 0
    bench_path = Path(args.bench)
    if not bench_path.exists():
        print(f"{bench_path}: no bench report (run the benchmarks "
              f"first, or pass --bench)", file=out)
        return 2
    try:
        bench = json.loads(bench_path.read_text())
    except json.JSONDecodeError as exc:
        print(f"bad bench report {bench_path}: {exc}", file=out)
        return 2
    try:
        result = check_bench(
            bench, history, tolerance=args.tolerance_pct / 100.0
        )
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    print(render_check(result), file=out)
    return 0 if result["ok"] else 1


def main(argv=None, out=sys.stdout) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv), out)
    except BrokenPipeError:
        # A downstream consumer (``| head``, ``| grep -q``) closed the
        # pipe early; that is their prerogative, not an error.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again,
        # and exit with the conventional SIGPIPE status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


#: Commands that accept --trace/--metrics/--profile.
_OBS_COMMANDS = frozenset(
    {"map", "solve", "compare", "experiment", "sweep", "serve"}
)


def _dispatch(args, out) -> int:
    """Route to the command, under an observability session if asked.

    ``--trace`` (or the ``REPRO_TRACE`` environment variable) records a
    span trace; ``--metrics`` (or ``--stats-json``, which needs the
    aggregates) installs the metrics registry; ``--profile`` arms
    ``REPRO_PROFILE`` so this process *and* spawned pool workers dump
    cProfile files.  With none of them the command runs exactly as
    before — no session is installed and every hook is a no-op.

    ``--kernel`` (where accepted) scopes the process-default enumeration
    kernel around the whole command — pool workers inherit it through
    ``REPRO_KERNEL`` — without touching outputs, which are byte-identical
    under every kernel.
    """
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        from repro.core.kernels import use_kernel

        args.kernel = None
        with use_kernel(kernel):
            return _dispatch(args, out)
    if args.command not in _OBS_COMMANDS:
        return _run_command(args, out)
    trace = args.trace or os.environ.get("REPRO_TRACE") or None
    metrics = args.metrics or getattr(args, "stats_json", None) is not None
    if args.profile:
        from repro.obs.profile import PROFILE_ENV

        os.environ[PROFILE_ENV] = args.profile
    if not trace and not metrics and not args.profile:
        return _run_command(args, out)
    from repro.obs import maybe_profile, observability, render_metrics

    with observability(trace=trace, metrics=metrics) as session:
        with maybe_profile("cli"):
            code = _run_command(args, out)
        if args.metrics and session.metrics is not None:
            print(render_metrics(session.metrics), file=out)
    if trace:
        print(f"trace written to {trace}", file=out)
    return code


def _run_command(args, out) -> int:
    if args.command == "workflows":
        return cmd_workflows(args, out)
    if args.command == "platform":
        return cmd_platform(args, out)
    if args.command == "map":
        return cmd_map(args, out)
    if args.command == "solvers":
        return cmd_solvers(args, out)
    if args.command == "solve":
        return cmd_solve(args, out)
    if args.command == "compare":
        return cmd_compare(args, out)
    if args.command == "experiment":
        return cmd_experiment(args, out)
    if args.command == "sweep":
        return cmd_sweep(args, out)
    if args.command == "store":
        return cmd_store(args, out)
    if args.command == "serve":
        return cmd_serve(args, out)
    if args.command == "trace":
        return cmd_trace(args, out)
    if args.command == "profile":
        return cmd_profile(args, out)
    if args.command == "bench":
        return cmd_bench(args, out)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
