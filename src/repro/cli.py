"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------

``workflows``
    List the synthesised StreamIt suite with its Table-1 characteristics.
``map``
    Map one workflow (or a random SPG) onto a CMP with one heuristic and
    print the mapping, energy breakdown and link utilisation.
``compare``
    Run all five heuristics on one workflow at the Section-6.1.3 period
    and print the normalised comparison.
``experiment``
    Re-run one of the paper's experiments (fig8/fig9/table2 subsets) and
    print/export the tables.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.evaluate import energy, latency
from repro.core.problem import ProblemInstance
from repro.core.visualize import (
    render_link_utilisation,
    render_mapping,
    summarize,
)
from repro.experiments import (
    choose_period,
    run_streamit_experiment,
    streamit_csv,
)
from repro.heuristics.base import PAPER_ORDER, run
from repro.platform.cmp import CMPGrid
from repro.spg.random_gen import random_spg
from repro.spg.streamit import STREAMIT_TABLE1, streamit_workflow
from repro.util.fmt import format_table

__all__ = ["main", "build_parser"]


def _grid(spec: str) -> CMPGrid:
    try:
        p, q = spec.lower().split("x")
        return CMPGrid(int(p), int(q))
    except Exception:
        raise argparse.ArgumentTypeError(
            f"grid must look like '4x4', got {spec!r}"
        )


def _load_app(args) -> tuple[str, object]:
    if args.random is not None:
        app = random_spg(args.random, rng=args.seed, ccr=args.ccr or 10.0)
        return f"random-{args.random}", app
    app = streamit_workflow(args.workflow, ccr=args.ccr, seed=args.seed)
    return str(args.workflow), app


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-aware SPG-onto-CMP mapping (ICPP 2011 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workflows", help="list the StreamIt suite (Table 1)")

    def add_instance_args(p):
        p.add_argument(
            "--workflow", "-w", default="FMRadio",
            help="StreamIt name or index (default FMRadio)",
        )
        p.add_argument(
            "--random", type=int, metavar="N", default=None,
            help="use a random SPG with N stages instead of a workflow",
        )
        p.add_argument("--grid", type=_grid, default=CMPGrid(4, 4),
                       help="CMP size, e.g. 4x4 (default)")
        p.add_argument("--ccr", type=float, default=None,
                       help="rescale the CCR (default: original)")
        p.add_argument("--period", "-T", type=float, default=None,
                       help="period bound in seconds (default: Section "
                            "6.1.3 procedure)")
        p.add_argument("--seed", type=int, default=0)

    p_map = sub.add_parser("map", help="map one application")
    add_instance_args(p_map)
    p_map.add_argument(
        "--heuristic", "-H", choices=PAPER_ORDER, default="Greedy"
    )
    p_map.add_argument("--refine", action="store_true",
                       help="hill-climb the result")

    p_cmp = sub.add_parser("compare", help="run all five heuristics")
    add_instance_args(p_cmp)

    p_exp = sub.add_parser("experiment", help="re-run a paper experiment")
    p_exp.add_argument("which", choices=["fig8", "fig9"])
    p_exp.add_argument("--workflows", type=int, nargs="*", default=None,
                       help="Table-1 indices (default: all 12)")
    p_exp.add_argument("--ccr", type=float, nargs="*", default=None,
                       help="CCR settings (default: orig 10 1 0.1)")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--csv", metavar="PATH", default=None,
                       help="also export the records as CSV")
    p_exp.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the sweep (0 = all "
                            "CPUs; results are identical for any value; "
                            "default 1 = serial)")
    return parser


def cmd_workflows(_args, out) -> int:
    rows = [
        [s.index, s.name, s.n, s.ymax, s.xmax, round(s.ccr)]
        for s in STREAMIT_TABLE1
    ]
    print(format_table(
        ["Index", "Name", "n", "ymax", "xmax", "CCR"], rows,
        title="StreamIt suite (paper Table 1)",
    ), file=out)
    return 0


def cmd_map(args, out) -> int:
    label, app = _load_app(args)
    grid = args.grid
    T = args.period
    if T is None:
        T = choose_period(app, grid, rng=args.seed).period
        print(f"period (Section 6.1.3): T = {T:g} s", file=out)
    prob = ProblemInstance(app, grid, T)
    res = run(args.heuristic, prob, rng=args.seed)
    if not res.ok:
        print(f"{args.heuristic} FAILED on {label}: {res.failure}", file=out)
        return 1
    mapping = res.mapping
    if args.refine:
        from repro.heuristics.refine import refine_mapping

        mapping = refine_mapping(prob, mapping, rng=args.seed)
    b = energy(mapping, T)
    print(summarize(mapping, T), file=out)
    print(
        f"energy: {b.total:.4f} J/period "
        f"(comp {b.comp:.4f} + comm {b.comm:.4g}); "
        f"latency {latency(mapping):.4g} s",
        file=out,
    )
    print(render_mapping(mapping, T), file=out)
    print(render_link_utilisation(mapping, T), file=out)
    return 0


def cmd_compare(args, out) -> int:
    label, app = _load_app(args)
    grid = args.grid
    if args.period is not None:
        prob = ProblemInstance(app, grid, args.period)
        from repro.experiments import run_all

        results = run_all(prob, rng=args.seed)
        T = args.period
    else:
        choice = choose_period(app, grid, rng=args.seed)
        results, T = choice.results, choice.period
    print(f"{label} on {grid.p}x{grid.q}, T = {T:g} s", file=out)
    best = min(
        (r.total_energy for r in results.values()), default=float("inf")
    )
    rows = []
    for name in PAPER_ORDER:
        r = results[name]
        if r.ok:
            rows.append([
                name, f"{r.energy.total:.4f}",
                f"{r.energy.total / best:.3f}",
                len(r.mapping.active_cores()),
            ])
        else:
            rows.append([name, "FAIL", "-", "-"])
    print(format_table(
        ["heuristic", "energy [J]", "normalised", "cores"], rows,
    ), file=out)
    return 0


def cmd_experiment(args, out) -> int:
    grid = CMPGrid(4, 4) if args.which == "fig8" else CMPGrid(6, 6)
    ccrs = tuple(args.ccr) if args.ccr else (None, 10.0, 1.0, 0.1)
    workflows = tuple(args.workflows) if args.workflows else None
    exp = run_streamit_experiment(
        grid, ccrs=ccrs, workflows=workflows, seed=args.seed,
        jobs=args.jobs,
    )
    print(exp.render(), file=out)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(streamit_csv(exp))
        print(f"CSV written to {args.csv}", file=out)
    return 0


def main(argv=None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "workflows":
        return cmd_workflows(args, out)
    if args.command == "map":
        return cmd_map(args, out)
    if args.command == "compare":
        return cmd_compare(args, out)
    if args.command == "experiment":
        return cmd_experiment(args, out)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
