"""Plain-text visualisation of SPGs and mappings.

Rendering helpers used by the examples and handy when debugging heuristics:

* :func:`render_label_grid` — the SPG laid out on its ``xmax x ymax``
  label grid (the structure DPA2D maps from);
* :func:`render_mapping` — the CMP grid with per-core stage counts,
  speeds and loads;
* :func:`render_link_utilisation` — per-link traffic as a fraction of the
  bandwidth-period product (the resource that fails first on
  communication-heavy instances).
"""

from __future__ import annotations

from repro.core.evaluate import cycle_times
from repro.core.mapping import Mapping
from repro.spg.graph import SPG
from repro.util.fmt import format_grid, format_table

__all__ = [
    "render_label_grid",
    "render_mapping",
    "render_link_utilisation",
]


def render_label_grid(spg: SPG) -> str:
    """The SPG on its label grid: rows are ``y`` values, columns ``x``."""
    cells = {}
    for i in range(spg.n):
        x, y = spg.labels[i]
        cells[(y - 1, x - 1)] = str(i)
    return format_grid(spg.ymax, spg.xmax, cells)


def render_mapping(mapping: Mapping, period: float) -> str:
    """Three aligned grids: stage counts, speeds (GHz) and load (% of T)."""
    grid = mapping.grid
    clusters = mapping.clusters()
    work = mapping.core_work()
    counts = {c: str(len(s)) for c, s in clusters.items()}
    speeds = {
        c: f"{mapping.speeds[c] / 1e9:.2f}" for c in clusters
    }
    loads = {
        c: f"{100 * work[c] / (mapping.speeds[c] * period):.0f}%"
        for c in clusters
    }
    return (
        "stages per core:\n"
        + format_grid(grid.p, grid.q, counts)
        + "\n\nspeeds (GHz):\n"
        + format_grid(grid.p, grid.q, speeds)
        + "\n\ncompute load (% of period):\n"
        + format_grid(grid.p, grid.q, loads)
    )


def render_link_utilisation(mapping: Mapping, period: float) -> str:
    """Table of used links sorted by utilisation (traffic / BW*T)."""
    cap = mapping.grid.model.link_capacity(period)
    rows = []
    for (a, b), traffic in sorted(
        mapping.link_traffic().items(), key=lambda kv: -kv[1]
    ):
        rows.append([
            f"{a}->{b}",
            f"{traffic:.3g}",
            f"{100 * traffic / cap:.1f}%",
        ])
    if not rows:
        return "no inter-core communication"
    return format_table(
        ["link", "bytes/period", "utilisation"],
        rows,
        title="Link utilisation",
    )


def summarize(mapping: Mapping, period: float) -> str:
    """One-paragraph mapping summary (cores, speeds, binding resource)."""
    times = cycle_times(mapping)
    binding = max(times, key=lambda k: times[k])
    return (
        f"{len(mapping.active_cores())} active cores, "
        f"{len(mapping.remote_edges())} remote edges, "
        f"max cycle-time {times[binding]:.4g}s on {binding} "
        f"(T = {period:g}s)"
    )
