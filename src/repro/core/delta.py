"""Incremental delta-evaluation of local-search moves on a mapping.

The Section-7 refiner explores thousands of candidate moves per sweep;
rebuilding a full :class:`~repro.core.mapping.Mapping` and re-running
:func:`~repro.core.evaluate.energy` for each one costs O(n + E) with
heavy constants.  :class:`DeltaState` keeps the evaluation state of the
*current* mapping factored per resource —

* per-core stage clusters, computation work, energy-optimal speed and
  dynamic-energy term (heterogeneous per-core models included),
* per-link traffic as a map of per-edge contributions, routed through the
  topology's own ``route`` policy (not hardwired XY),
* route-validity and DAG-partition bookkeeping,

so that a move touches only the affected cores, edges and links:
:meth:`apply` / :meth:`revert` are O(affected), and :meth:`score` /
:meth:`period_feasible` are O(active resources) with tiny constants.

**Bit-identity.**  The refiner's full-rebuild reference path accepts a
move by comparing ``energy(rebuilt_mapping).total`` against a strict
threshold, so the delta layer cannot afford *any* float divergence.
Floating-point addition is not associative; therefore nothing here is
updated by ``+= delta`` arithmetic.  Instead, every affected quantity is
*recomputed in the canonical order* a fresh rebuild would use:

* per-core work sums stage weights in ascending stage order (the order a
  stage-keyed allocation scan produces),
* per-link traffic sums edge contributions in ``SPG.edge_list`` order,
* ``comp_dyn`` sums core terms in order of each cluster's minimum stage
  (the first-appearance order of a stage-order allocation scan),
* ``comm_dyn`` sums link terms in first-appearance order of the
  remote-edge scan (edge index, then hop position).

Unaffected resources keep their previously-canonical values, so every
:meth:`score` equals ``energy(Mapping(spg, grid, {i: alloc[i] for i in
range(n)}, best_feasible_speeds))`` bit for bit — the equivalence suite
in ``tests/test_refine_equivalence.py`` pins this across topologies.

Supported moves: :class:`MoveStage` (one stage to another core),
:class:`SwapClusters` (exchange two cores' whole clusters) and
:class:`PowerOff` (empty a core into another active one, shedding its
leakage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluate import EnergyBreakdown
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.platform.topology import Topology

__all__ = ["MoveStage", "SwapClusters", "PowerOff", "DeltaState"]

Core = tuple[int, int]
Link = tuple[Core, Core]


# ----------------------------------------------------------------------
# Move kinds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MoveStage:
    """Reassign one stage to another core."""

    stage: int
    core: Core


@dataclass(frozen=True)
class SwapClusters:
    """Exchange the whole clusters of two cores (either may be empty)."""

    a: Core
    b: Core


@dataclass(frozen=True)
class PowerOff:
    """Empty ``core`` into ``target``, powering ``core`` off."""

    core: Core
    target: Core


class _Token:
    """Undo record of one :meth:`DeltaState.apply` (first-touch snapshots)."""

    __slots__ = ("alloc", "cores", "qcount", "epaths", "bad", "links")

    def __init__(self) -> None:
        self.alloc: dict[int, Core] = {}
        self.cores: dict[Core, tuple | None] = {}
        self.qcount: dict[tuple[int, int], int | None] = {}
        self.epaths: dict[int, list | None] = {}
        self.bad: dict[int, bool] = {}
        self.links: dict[Link, tuple | None] = {}


class DeltaState:
    """Mutable evaluation state of one allocation under local-search moves.

    The state models the *canonical rebuild* of an allocation: topology
    routes for every remote edge and energy-optimal per-core speeds (the
    input mapping's own custom paths and speeds are deliberately ignored,
    exactly as the full-rebuild refiner ignores them for candidates).

    Parameters
    ----------
    problem:
        The instance (SPG, topology, period).
    mapping:
        The starting mapping; only its allocation is read.
    require_dag_partition:
        When true (the default), :meth:`structure_valid` additionally
        checks quotient acyclicity; ``False`` admits *general mappings*.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        mapping: Mapping,
        require_dag_partition: bool = True,
    ) -> None:
        spg, grid = problem.spg, problem.grid
        self._spg = spg
        self._grid: Topology = grid
        self._period = problem.period
        self._period_bound = problem.period * (1.0 + 1e-9)
        self._model = grid.model
        self._require_dag = require_dag_partition
        self._weights = spg.weights
        n = self._n = spg.n

        cores = grid.cores()
        self._core_index = {c: k for k, c in enumerate(cores)}
        self._n_cores = len(cores)
        # Heterogeneous platforms resolve each core's scaled model; the
        # homogeneous fast path skips the lookup, as ``energy`` does.
        if grid.speed_scales:
            self._core_model = grid.core_model
        else:
            base_model = grid.model
            self._core_model = lambda _core: base_model

        edge_list = spg.edge_list
        self._esrc = [i for (i, _j, _d) in edge_list]
        self._edst = [j for (_i, j, _d) in edge_list]
        self._evol = [d for (_i, _j, d) in edge_list]
        stage_edges: list[list[int]] = [[] for _ in range(n)]
        for k, (i, j, _d) in enumerate(edge_list):
            stage_edges[i].append(k)
            stage_edges[j].append(k)
        self._stage_edges = stage_edges

        # -- allocation ------------------------------------------------
        alloc_in = mapping.alloc
        self._alloc: list[Core] = [alloc_in[i] for i in range(n)]
        self._cid: list[int] = [self._core_index[c] for c in self._alloc]
        # Quotient multigraph edge counts, maintained move by move so the
        # DAG-partition check never rescans the whole edge list.
        qcount: dict[tuple[int, int], int] = {}
        cid = self._cid
        for k in range(len(edge_list)):
            a, b = cid[self._esrc[k]], cid[self._edst[k]]
            if a != b:
                qcount[(a, b)] = qcount.get((a, b), 0) + 1
        self._qcount = qcount

        # -- per-core state --------------------------------------------
        self._cluster: dict[Core, set[int]] = {}
        for i, c in enumerate(self._alloc):
            self._cluster.setdefault(c, set()).add(i)
        self._work: dict[Core, float] = {}
        self._speed: dict[Core, float | None] = {}
        self._term: dict[Core, float | None] = {}
        self._min_stage: dict[Core, int] = {}
        self._broken: set[Core] = set()
        for c in list(self._cluster):
            self._refresh_core(c)

        # -- per-edge routes and per-link traffic ----------------------
        self._route_cache: dict[tuple[Core, Core], list[Core]] = {}
        self._route_ok: dict[tuple[Core, Core], bool] = {}
        self._epath: dict[int, list[Core]] = {}
        self._bad_edges: set[int] = set()
        self._linkc: dict[Link, dict[int, tuple[float, int]]] = {}
        self._ltraffic: dict[Link, float] = {}
        self._lfirst: dict[Link, tuple[int, int]] = {}
        alloc = self._alloc
        for k in range(len(edge_list)):
            u, v = self._esrc[k], self._edst[k]
            if alloc[u] != alloc[v]:
                self._set_edge_path(k)
        for link in list(self._linkc):
            self._refresh_link(link)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_active_cores(self) -> int:
        return len(self._cluster)

    def active_cores(self) -> set[Core]:
        return set(self._cluster)

    def core_of(self, stage: int) -> Core:
        return self._alloc[stage]

    def cluster_of(self, core: Core) -> frozenset[int]:
        return frozenset(self._cluster.get(core, ()))

    def speeds_feasible(self) -> bool:
        """True iff every active core has a period-feasible speed."""
        return not self._broken

    def routes_valid(self) -> bool:
        """True iff every remote edge's route is a valid link chain.

        Routing policies may emit paths a restricted fabric cannot carry
        (XY routes on a uni-directional grid); those candidates must be
        rejected exactly as the full validator rejects them.
        """
        return not self._bad_edges

    def max_cycle_time(self) -> float:
        """Max cycle-time over all resources, bit-equal to the full eval."""
        mx = 0.0
        speed = self._speed
        for c, w in self._work.items():
            t = w / speed[c]
            if t > mx:
                mx = t
        bw = self._model.bandwidth
        for traffic in self._ltraffic.values():
            t = traffic / bw
            if t > mx:
                mx = t
        return mx

    def period_feasible(self) -> bool:
        """True iff all speeds exist and no resource exceeds the period."""
        if self._broken:
            return False
        return self.max_cycle_time() <= self._period_bound

    def quotient_acyclic(self) -> bool:
        """Kahn's algorithm on the (incrementally maintained) quotient.

        Runs on the distinct quotient edges only — O(clusters + quotient
        edges), independent of the SPG's edge count.
        """
        qcount = self._qcount
        if not qcount:
            return True
        adj: dict[int, list[int]] = {}
        indeg: dict[int, int] = {}
        for (a, b) in qcount:
            lst = adj.get(a)
            if lst is None:
                lst = adj[a] = []
            lst.append(b)
            indeg[b] = indeg.get(b, 0) + 1
        n_nodes = len(adj.keys() | indeg.keys())
        stack = [a for a in adj if a not in indeg]
        seen = 0
        while stack:
            a = stack.pop()
            seen += 1
            for b in adj.get(a, ()):
                d = indeg[b] - 1
                if d:
                    indeg[b] = d
                else:
                    del indeg[b]
                    stack.append(b)
        return seen == n_nodes

    def structure_valid(self) -> bool:
        """Route validity plus (unless general) quotient acyclicity."""
        if self._bad_edges:
            return False
        return not self._require_dag or self.quotient_acyclic()

    def score(self) -> EnergyBreakdown | None:
        """Energy of the current state (``None`` when a speed is missing).

        Canonical summation order (see the module docstring) makes the
        result bit-identical to ``energy`` on the rebuilt mapping.
        """
        if self._broken:
            return None
        model = self._model
        period = self._period
        comp_leak = len(self._cluster) * model.comp_leak * period
        comp_dyn = 0.0
        term = self._term
        for c in sorted(self._cluster, key=self._min_stage.__getitem__):
            comp_dyn += term[c]
        comm_leak = model.comm_leak * period
        comm_dyn = 0.0
        traffic = self._ltraffic
        comm_energy = model.comm_energy
        for link in sorted(traffic, key=self._lfirst.__getitem__):
            comm_dyn += comm_energy(traffic[link])
        return EnergyBreakdown(comp_leak, comp_dyn, comm_leak, comm_dyn)

    def evaluate_move(self, move) -> tuple[_Token, EnergyBreakdown | None]:
        """Apply ``move`` and grade the result in one call.

        Returns ``(token, breakdown)``; ``breakdown`` is ``None`` when the
        moved state is rejected (missing speed, invalid route, period
        violation, or — unless general mappings are allowed — a cyclic
        quotient), i.e. exactly when the full validator would reject the
        rebuilt candidate.  The caller decides to keep or :meth:`revert`.
        """
        token = _Token()
        moved = self._collect(move)
        edge_ids = self._apply_cores(token, moved)
        # Cheap rejections first: the per-core speed check and the
        # (alloc-only) quotient acyclicity gate run before any route or
        # link traffic is touched — most rejected candidates never pay
        # for rerouting.  The acceptance decision is order-independent.
        if self._broken:
            return token, None
        if self._require_dag and not self.quotient_acyclic():
            return token, None
        self._apply_links(token, edge_ids)
        if self._bad_edges:
            return token, None
        if not self.period_feasible():
            return token, None
        return token, self.score()

    def to_mapping(self) -> Mapping:
        """Materialise the state as a canonical stage-ordered Mapping."""
        alloc = {i: self._alloc[i] for i in range(self._n)}
        speeds = {c: self._speed[c] for c in self._cluster}
        return Mapping(self._spg, self._grid, alloc, speeds)

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def apply(self, move) -> _Token:
        """Apply ``move`` and return the undo token for :meth:`revert`."""
        token = _Token()
        moved = self._collect(move)
        edge_ids = self._apply_cores(token, moved)
        self._apply_links(token, edge_ids)
        return token

    def _collect(self, move) -> list[tuple[int, Core]]:
        """Normalise a move into effective ``(stage, new_core)`` pairs."""
        if isinstance(move, MoveStage):
            pairs = [(move.stage, move.core)]
        elif isinstance(move, SwapClusters):
            a, b = move.a, move.b
            if a == b:
                return []
            pairs = [(i, b) for i in sorted(self._cluster.get(a, ()))]
            pairs += [(i, a) for i in sorted(self._cluster.get(b, ()))]
        elif isinstance(move, PowerOff):
            if move.core == move.target:
                return []
            pairs = [
                (i, move.target)
                for i in sorted(self._cluster.get(move.core, ()))
            ]
        else:
            raise TypeError(f"unknown move kind: {move!r}")
        alloc = self._alloc
        return [(i, dst) for i, dst in pairs if alloc[i] != dst]

    def revert(self, token: _Token) -> None:
        """Restore the state recorded by :meth:`apply`."""
        core_index = self._core_index
        for i, c in token.alloc.items():
            self._alloc[i] = c
            self._cid[i] = core_index[c]
        for pair, old in token.qcount.items():
            if old is None:
                self._qcount.pop(pair, None)
            else:
                self._qcount[pair] = old
        for c, snap in token.cores.items():
            if snap is None:
                self._cluster.pop(c, None)
                self._work.pop(c, None)
                self._speed.pop(c, None)
                self._term.pop(c, None)
                self._min_stage.pop(c, None)
                self._broken.discard(c)
            else:
                stages, work, speed, term, lowest = snap
                self._cluster[c] = stages
                self._work[c] = work
                self._speed[c] = speed
                self._term[c] = term
                self._min_stage[c] = lowest
                if speed is None:
                    self._broken.add(c)
                else:
                    self._broken.discard(c)
        for k, path in token.epaths.items():
            if path is None:
                self._epath.pop(k, None)
            else:
                self._epath[k] = path
        for k, was_bad in token.bad.items():
            if was_bad:
                self._bad_edges.add(k)
            else:
                self._bad_edges.discard(k)
        for link, snap in token.links.items():
            if snap is None:
                self._linkc.pop(link, None)
                self._ltraffic.pop(link, None)
                self._lfirst.pop(link, None)
            else:
                contribs, traffic, first = snap
                self._linkc[link] = contribs
                self._ltraffic[link] = traffic
                self._lfirst[link] = first

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_cores(self, token: _Token, moved) -> list[int]:
        """Reassign stages; refresh affected cores and quotient counts.

        Returns the ids of the edges incident to a moved stage (the ones
        :meth:`_apply_links` must re-route).
        """
        if not moved:
            return []
        alloc = self._alloc
        cid = self._cid
        cluster = self._cluster
        core_index = self._core_index
        tok_alloc = token.alloc
        touched_cores: set[Core] = set()
        for i, dst in moved:
            src = alloc[i]
            if i not in tok_alloc:
                tok_alloc[i] = src
            touched_cores.add(src)
            touched_cores.add(dst)
        for c in touched_cores:
            self._save_core(token, c)
        esrc, edst = self._esrc, self._edst
        stage_edges = self._stage_edges
        edge_ids: set[int] = set()
        for i, _dst in moved:
            edge_ids.update(stage_edges[i])
        edge_ids = list(edge_ids)
        old_pairs = [(cid[esrc[k]], cid[edst[k]]) for k in edge_ids]
        for i, dst in moved:
            cluster[alloc[i]].discard(i)
            cluster.setdefault(dst, set()).add(i)
            alloc[i] = dst
            cid[i] = core_index[dst]
        for c in touched_cores:
            self._refresh_core(c)
        for k, (oa, ob) in zip(edge_ids, old_pairs):
            na, nb = cid[esrc[k]], cid[edst[k]]
            if (oa, ob) == (na, nb):
                continue
            if oa != ob:
                self._qadjust(token, (oa, ob), -1)
            if na != nb:
                self._qadjust(token, (na, nb), 1)
        return edge_ids

    def _qadjust(self, token: _Token, pair: tuple[int, int], d: int) -> None:
        qcount = self._qcount
        old = qcount.get(pair)
        tq = token.qcount
        if pair not in tq:
            tq[pair] = old
        new = (old or 0) + d
        if new:
            qcount[pair] = new
        else:
            qcount.pop(pair, None)

    def _apply_links(self, token: _Token, edge_ids: list[int]) -> None:
        """Re-route every edge incident to a moved stage."""
        touched_links: set[Link] = set()
        for k in edge_ids:
            self._reroute_edge(token, k, touched_links)
        for link in touched_links:
            self._refresh_link(link)

    def _save_core(self, token: _Token, c: Core) -> None:
        if c in token.cores:
            return
        stages = self._cluster.get(c)
        if stages is None:
            token.cores[c] = None
        else:
            token.cores[c] = (
                set(stages),
                self._work[c],
                self._speed[c],
                self._term[c],
                self._min_stage[c],
            )

    def _refresh_core(self, c: Core) -> None:
        """Recompute one core's work/speed/term in canonical stage order."""
        stages = self._cluster.get(c)
        if not stages:
            self._cluster.pop(c, None)
            self._work.pop(c, None)
            self._speed.pop(c, None)
            self._term.pop(c, None)
            self._min_stage.pop(c, None)
            self._broken.discard(c)
            return
        weights = self._weights
        work = 0.0
        for i in sorted(stages):
            work += weights[i]
        self._work[c] = work
        self._min_stage[c] = min(stages)
        model = self._core_model(c)
        speed = model.best_feasible(work, self._period)
        self._speed[c] = speed
        if speed is None:
            self._term[c] = None
            self._broken.add(c)
        else:
            self._term[c] = (work / speed) * model.power_at(speed)
            self._broken.discard(c)

    def _route(self, src: Core, dst: Core) -> list[Core]:
        key = (src, dst)
        path = self._route_cache.get(key)
        if path is None:
            path = self._route_cache[key] = self._grid.route(src, dst)
        return path

    def _set_edge_path(self, k: int, token: _Token | None = None) -> None:
        """Route remote edge ``k`` and record its link contributions.

        With a ``token``, every touched link is snapshotted before its
        contribution map is mutated.
        """
        path = self._route(self._alloc[self._esrc[k]],
                           self._alloc[self._edst[k]])
        self._epath[k] = path
        d = self._evol[k]
        linkc = self._linkc
        for pos in range(len(path) - 1):
            link = (path[pos], path[pos + 1])
            if token is not None:
                self._save_link(token, link)
            contribs = linkc.get(link)
            if contribs is None:
                contribs = linkc[link] = {}
            contribs[k] = (d, pos)
        key = (path[0], path[-1])
        ok = self._route_ok.get(key)
        if ok is None:
            try:
                self._grid.validate_path(path)
                ok = True
            except ValueError:
                ok = False
            self._route_ok[key] = ok
        if ok:
            self._bad_edges.discard(k)
        else:
            self._bad_edges.add(k)

    def _reroute_edge(
        self, token: _Token, k: int, touched_links: set[Link]
    ) -> None:
        old_path = self._epath.get(k)
        if k not in token.epaths:
            token.epaths[k] = old_path
            token.bad[k] = k in self._bad_edges
        if old_path is not None:
            linkc = self._linkc
            for pos in range(len(old_path) - 1):
                link = (old_path[pos], old_path[pos + 1])
                self._save_link(token, link)
                del linkc[link][k]
                touched_links.add(link)
        u, v = self._esrc[k], self._edst[k]
        if self._alloc[u] != self._alloc[v]:
            self._set_edge_path(k, token)
            path = self._epath[k]
            for pos in range(len(path) - 1):
                touched_links.add((path[pos], path[pos + 1]))
        else:
            self._epath.pop(k, None)
            self._bad_edges.discard(k)

    def _save_link(self, token: _Token, link: Link) -> None:
        if link in token.links:
            return
        contribs = self._linkc.get(link)
        if contribs is None:
            token.links[link] = None
        else:
            token.links[link] = (
                dict(contribs),
                self._ltraffic.get(link),
                self._lfirst.get(link),
            )

    def _refresh_link(self, link: Link) -> None:
        """Recompute one link's traffic in canonical edge order."""
        contribs = self._linkc.get(link)
        if not contribs:
            self._linkc.pop(link, None)
            self._ltraffic.pop(link, None)
            self._lfirst.pop(link, None)
            return
        keys = sorted(contribs)
        traffic = 0.0
        for k in keys:
            traffic += contribs[k][0]
        self._ltraffic[link] = traffic
        k0 = keys[0]
        self._lfirst[link] = (k0, contribs[k0][1])
