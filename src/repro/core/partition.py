"""DAG-partition machinery (Section 3.3) and admissible subgraphs (Section 4.1).

A *DAG-partition mapping* partitions the SPG into clusters such that the
quotient graph (one node per cluster, edges induced by stage dependencies)
is acyclic, then maps clusters one-to-one onto cores.  Quotient acyclicity
is equivalent to the paper's convexity rule ("if S_i and S_j share a cluster,
any S_k with a dependency path S_i -> S_k -> S_j is in the same cluster")
*plus* the absence of cluster cycles.

An *admissible subgraph* (Theorem 1) is obtained from the SPG by repeatedly
deleting nodes without successors; equivalently it is a predecessor-closed
node set — an **order ideal** of the precedence poset.  The DP heuristics
enumerate ideals as bitmasks, with an explicit budget: bounded-elevation
SPGs have at most ``n^ymax`` ideals, and exceeding the budget reproduces the
paper's DPA1D failures on high-elevation graphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.errors import BudgetExceeded
from repro.spg.analysis import ancestor_masks, descendant_masks
from repro.spg.graph import SPG
from repro.util.bitset import bit, iter_bits, mask_of

__all__ = [
    "quotient_edges",
    "is_acyclic_quotient",
    "is_dag_partition",
    "IdealLattice",
]


def quotient_edges(
    spg: SPG, cluster_of: Mapping[int, object]
) -> set[tuple[object, object]]:
    """Edges of the quotient graph induced by ``cluster_of`` (stage -> key)."""
    out: set[tuple[object, object]] = set()
    for (i, j) in spg.edges:
        ci, cj = cluster_of[i], cluster_of[j]
        if ci != cj:
            out.add((ci, cj))
    return out


def is_acyclic_quotient(
    spg: SPG, cluster_of: Mapping[int, object]
) -> bool:
    """True iff the quotient graph of the clustering is acyclic."""
    edges = quotient_edges(spg, cluster_of)
    succ: dict[object, list[object]] = {}
    indeg: dict[object, int] = {}
    nodes = set(cluster_of.values())
    for c in nodes:
        succ[c] = []
        indeg[c] = 0
    for a, b in edges:
        succ[a].append(b)
        indeg[b] += 1
    stack = [c for c in nodes if indeg[c] == 0]
    seen = 0
    while stack:
        c = stack.pop()
        seen += 1
        for d in succ[c]:
            indeg[d] -= 1
            if indeg[d] == 0:
                stack.append(d)
    return seen == len(nodes)


def is_dag_partition(spg: SPG, cluster_of: Mapping[int, object]) -> bool:
    """True iff ``cluster_of`` (total map stage -> cluster key) is a DAG-partition."""
    if set(cluster_of) != set(range(spg.n)):
        return False
    return is_acyclic_quotient(spg, cluster_of)


class IdealLattice:
    """Enumeration of the order ideals (admissible subgraphs) of an SPG.

    Parameters
    ----------
    spg:
        The application graph.
    budget:
        Maximum number of ideals to enumerate before raising
        :class:`BudgetExceeded`.  The paper bounds the count by
        ``n^ymax``; real workloads with ymax around 12-17 blow any budget,
        which is exactly when DPA1D is reported to fail.
    """

    def __init__(self, spg: SPG, budget: int = 200_000) -> None:
        self.spg = spg
        self.budget = budget
        n = spg.n
        self.full = (1 << n) - 1
        self._pred_mask = [mask_of(spg.preds(i)) for i in range(n)]
        self._succ_mask = [mask_of(spg.succs(i)) for i in range(n)]
        self._weights = list(spg.weights)
        self.desc = descendant_masks(spg)
        self.anc = ancestor_masks(spg)
        self._ideals: list[int] | None = None

    # ------------------------------------------------------------------
    def weight(self, mask: int) -> float:
        """Total computation weight of the stages in ``mask``."""
        w = self._weights
        return sum(w[i] for i in iter_bits(mask))

    def is_ideal(self, mask: int) -> bool:
        """True iff ``mask`` is predecessor-closed."""
        for i in iter_bits(mask):
            if self._pred_mask[i] & ~mask:
                return False
        return True

    def addable(self, ideal: int) -> Iterator[int]:
        """Stages addable to ``ideal`` while keeping it an ideal."""
        pm = self._pred_mask
        for i in range(self.spg.n):
            if not (ideal >> i) & 1 and pm[i] & ~ideal == 0:
                yield i

    def ideals(self) -> list[int]:
        """All order ideals, sorted by population count (empty set first).

        Raises :class:`BudgetExceeded` if there are more than ``budget``.
        The result is cached.
        """
        if self._ideals is not None:
            return self._ideals
        seen: set[int] = {0}
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for ideal in frontier:
                for i in self.addable(ideal):
                    cand = ideal | bit(i)
                    if cand not in seen:
                        seen.add(cand)
                        if len(seen) > self.budget:
                            raise BudgetExceeded(
                                f"more than {self.budget} admissible subgraphs "
                                f"(n={self.spg.n}, ymax={self.spg.ymax})"
                            )
                        nxt.append(cand)
            frontier = nxt
        self._ideals = sorted(seen, key=lambda m: (m.bit_count(), m))
        return self._ideals

    # ------------------------------------------------------------------
    def suffix_clusters_weighted(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> list[tuple[int, float]]:
        """Non-empty up-sets ``H`` of ``ideal`` with weight <= ``max_weight``.

        Returns ``(mask, weight)`` pairs.  ``H = ideal \\ I'`` for a smaller
        ideal ``I'``; these are exactly the candidate "last clusters" when
        peeling the SPG from the sink side in the Theorem-1 DP.

        The DFS tracks the removable frontier *incrementally*: a stage
        becomes removable exactly when its last missing successor joins the
        cluster, so extending a cluster costs O(in-degree) rather than a
        scan of the whole ideal.  Exclusion by list position guarantees each
        up-set is produced exactly once.  Clusters heavier than
        ``max_weight`` are pruned (they cannot meet the period at any
        speed), which keeps the enumeration tractable for tight periods.
        """
        sm = self._succ_mask
        pm = self._pred_mask
        w = self._weights
        out: list[tuple[int, float]] = []

        init = [
            i for i in iter_bits(ideal) if sm[i] & ideal == 0
        ]  # successor-free stages of the ideal

        def rec(h: int, h_weight: float, cands: list[int]) -> None:
            for idx, i in enumerate(cands):
                wi = w[i]
                nw = h_weight + wi
                if nw > max_weight:
                    continue
                nh = h | (1 << i)
                out.append((nh, nw))
                if max_clusters is not None and len(out) > max_clusters:
                    raise BudgetExceeded(
                        f"more than {max_clusters} suffix clusters for one ideal"
                    )
                fresh = [
                    p
                    for p in iter_bits(pm[i] & ideal & ~nh)
                    if sm[p] & ideal & ~nh == 0
                ]
                rec(nh, nw, cands[idx + 1 :] + fresh)

        rec(0, 0.0, init)
        return out

    def suffix_clusters(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> list[int]:
        """Masks-only view of :meth:`suffix_clusters_weighted`."""
        return [
            mask
            for mask, _w in self.suffix_clusters_weighted(
                ideal, max_weight, max_clusters
            )
        ]
