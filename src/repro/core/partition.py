"""DAG-partition machinery (Section 3.3) and admissible subgraphs (Section 4.1).

A *DAG-partition mapping* partitions the SPG into clusters such that the
quotient graph (one node per cluster, edges induced by stage dependencies)
is acyclic, then maps clusters one-to-one onto cores.  Quotient acyclicity
is equivalent to the paper's convexity rule ("if S_i and S_j share a cluster,
any S_k with a dependency path S_i -> S_k -> S_j is in the same cluster")
*plus* the absence of cluster cycles.

An *admissible subgraph* (Theorem 1) is obtained from the SPG by repeatedly
deleting nodes without successors; equivalently it is a predecessor-closed
node set — an **order ideal** of the precedence poset.  The DP heuristics
enumerate ideals as bitmasks, with an explicit budget: bounded-elevation
SPGs have at most ``n^ymax`` ideals, and exceeding the budget reproduces the
paper's DPA1D failures on high-elevation graphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.errors import BudgetExceeded
from repro.spg.analysis import ancestor_masks, cut_volume, descendant_masks
from repro.spg.graph import SPG
from repro.util.bitset import bit, iter_bits, mask_of

__all__ = [
    "quotient_edges",
    "is_acyclic_quotient",
    "is_dag_partition",
    "IdealLattice",
]


def quotient_edges(
    spg: SPG, cluster_of: Mapping[int, object]
) -> set[tuple[object, object]]:
    """Edges of the quotient graph induced by ``cluster_of`` (stage -> key)."""
    out: set[tuple[object, object]] = set()
    for (i, j) in spg.edges:
        ci, cj = cluster_of[i], cluster_of[j]
        if ci != cj:
            out.add((ci, cj))
    return out


def is_acyclic_quotient(
    spg: SPG, cluster_of: Mapping[int, object]
) -> bool:
    """True iff the quotient graph of the clustering is acyclic."""
    edges = quotient_edges(spg, cluster_of)
    succ: dict[object, list[object]] = {}
    indeg: dict[object, int] = {}
    nodes = set(cluster_of.values())
    for c in nodes:
        succ[c] = []
        indeg[c] = 0
    for a, b in edges:
        succ[a].append(b)
        indeg[b] += 1
    stack = [c for c in nodes if indeg[c] == 0]
    seen = 0
    while stack:
        c = stack.pop()
        seen += 1
        for d in succ[c]:
            indeg[d] -= 1
            if indeg[d] == 0:
                stack.append(d)
    return seen == len(nodes)


def is_dag_partition(spg: SPG, cluster_of: Mapping[int, object]) -> bool:
    """True iff ``cluster_of`` (total map stage -> cluster key) is a DAG-partition."""
    if set(cluster_of) != set(range(spg.n)):
        return False
    return is_acyclic_quotient(spg, cluster_of)


class IdealLattice:
    """Enumeration of the order ideals (admissible subgraphs) of an SPG.

    Parameters
    ----------
    spg:
        The application graph.
    budget:
        Maximum number of ideals to enumerate before raising
        :class:`BudgetExceeded`.  The paper bounds the count by
        ``n^ymax``; real workloads with ymax around 12-17 blow any budget,
        which is exactly when DPA1D is reported to fail.
    """

    def __init__(self, spg: SPG, budget: int = 200_000) -> None:
        self.spg = spg
        self.budget = budget
        n = spg.n
        self.full = (1 << n) - 1
        self._pred_mask = [mask_of(spg.preds(i)) for i in range(n)]
        self._succ_mask = [mask_of(spg.succs(i)) for i in range(n)]
        self._weights = list(spg.weights)
        self.desc = descendant_masks(spg)
        self.anc = ancestor_masks(spg)
        self._ideals: list[int] | None = None
        self._budget_error: str | None = None
        self._cut: dict[int, float] = {}
        self._cuts_bulk_done = False
        self._cut_table: tuple | None = None
        self._initc: dict[int, list[int]] = {0: []}
        self._init_mask: dict[int, int] = {}
        # ideal -> (weight cap, masks uint64, works float64): the suffix
        # clusters enumerated at the loosest cap seen; tighter caps filter
        # the arrays in C (weight pruning removes whole DFS subtrees, so
        # the filtered arrays match a pruned enumeration element for
        # element).
        self._sfx: dict[int, tuple] = {}

    @staticmethod
    def for_spg(spg: SPG, budget: int = 200_000) -> "IdealLattice":
        """The lattice of ``spg``, cached on the (immutable) graph.

        Heuristics re-run on the same SPG at several candidate periods; the
        lattice (and its enumeration, cut volumes, even a cached budget
        failure) only depends on the graph, so one instance per ``(spg,
        budget)`` pair serves them all.
        """
        return spg.cached(
            ("ideal_lattice", budget), lambda: IdealLattice(spg, budget)
        )

    # ------------------------------------------------------------------
    def weight(self, mask: int) -> float:
        """Total computation weight of the stages in ``mask``."""
        w = self._weights
        return sum(w[i] for i in iter_bits(mask))

    def is_ideal(self, mask: int) -> bool:
        """True iff ``mask`` is predecessor-closed."""
        for i in iter_bits(mask):
            if self._pred_mask[i] & ~mask:
                return False
        return True

    def addable(self, ideal: int) -> Iterator[int]:
        """Stages addable to ``ideal`` while keeping it an ideal."""
        pm = self._pred_mask
        for i in range(self.spg.n):
            if not (ideal >> i) & 1 and pm[i] & ~ideal == 0:
                yield i

    def ideals(self) -> list[int]:
        """All order ideals, sorted by population count (empty set first).

        Raises :class:`BudgetExceeded` if there are more than ``budget``.
        Both the result and a budget failure are cached, so repeated solves
        on the same lattice neither re-enumerate nor re-discover the blowup.
        """
        if self._ideals is not None:
            return self._ideals
        if self._budget_error is not None:
            raise BudgetExceeded(self._budget_error)
        if self.spg.n <= 62:
            return self._ideals_vector()
        seen: set[int] = {0}
        initc = self._initc
        pm = self._pred_mask
        succs = [list(self.spg.succs(i)) for i in range(self.spg.n)]
        seen_add = seen.add
        # BFS with *incremental* frontier state: each entry carries its
        # ideal's addable stages (predecessor-closed extensions) and its
        # successor-free stages, both maintained in O(degree) per step
        # instead of O(n) rescans.
        roots = [i for i in range(self.spg.n) if pm[i] == 0]
        frontier: list[tuple[int, list[int], list[int]]] = [(0, [], roots)]
        while frontier:
            nxt: list[tuple[int, list[int], list[int]]] = []
            for ideal, cur_init, cur_add in frontier:
                for i in cur_add:
                    cand = ideal | bit(i)
                    if cand in seen:
                        continue
                    seen_add(cand)
                    if len(seen) > self.budget:
                        self._budget_error = (
                            f"more than {self.budget} admissible "
                            f"subgraphs (n={self.spg.n}, "
                            f"ymax={self.spg.ymax})"
                        )
                        raise BudgetExceeded(self._budget_error)
                    # Addable stages of ``cand``: everything addable to
                    # ``ideal`` except ``i``, plus successors of ``i``
                    # whose predecessors are now all in.
                    new_add = [a for a in cur_add if a != i]
                    for j in succs[i]:
                        if not (cand >> j) & 1 and pm[j] & ~cand == 0:
                            new_add.append(j)
                    # Successor-free stages of ``cand``: ``i`` joins (its
                    # successors cannot be in an ideal containing it) and
                    # its predecessors leave; kept sorted to match a
                    # low-to-high bit scan.
                    pmi = pm[i]
                    ni: list[int] = []
                    placed = False
                    for p in cur_init:
                        if (pmi >> p) & 1:
                            continue
                        if not placed and i < p:
                            ni.append(i)
                            placed = True
                        ni.append(p)
                    if not placed:
                        ni.append(i)
                    initc[cand] = ni
                    nxt.append((cand, ni, new_add))
            frontier = nxt
        self._ideals = sorted(seen, key=lambda m: (m.bit_count(), m))
        return self._ideals

    def _ideals_vector(self) -> list[int]:
        """Vectorised ideal enumeration for word-sized graphs.

        Growing an ideal by one addable stage raises its popcount by
        exactly one, so the BFS layers *are* the popcount classes: each
        layer is produced from the previous one with one masked
        shift-and-or per stage, deduplicated by ``np.unique`` (which also
        yields the value-sorted order within the class).  The concatenated
        layers therefore match the scalar enumeration's
        ``sorted-by-(popcount, value)`` output exactly.
        """
        import numpy as np

        n = self.spg.n
        pm = self._pred_mask
        sm = self._succ_mask
        bits = [np.uint64(1 << i) for i in range(n)]
        pms = [np.uint64(m) for m in pm]
        zero = np.uint64(0)
        layers = [np.zeros(1, dtype=np.uint64)]
        layer = layers[0]
        count = 1
        while True:
            cands = []
            for i in range(n):
                b = bits[i]
                p = pms[i]
                sel = ((layer & b) == zero) & ((layer & p) == p)
                if sel.any():
                    cands.append(layer[sel] | b)
            if not cands:
                break
            layer = np.unique(
                np.concatenate(cands) if len(cands) > 1 else cands[0]
            )
            count += layer.size
            if count > self.budget:
                self._budget_error = (
                    f"more than {self.budget} admissible "
                    f"subgraphs (n={self.spg.n}, ymax={self.spg.ymax})"
                )
                raise BudgetExceeded(self._budget_error)
            layers.append(layer)
        allv = np.concatenate(layers) if len(layers) > 1 else layers[0]
        self._ideals = allv.tolist()
        # Successor-free masks of every ideal, also one vector op per stage.
        im = np.zeros(allv.size, dtype=np.uint64)
        for i in range(n):
            b = bits[i]
            s = np.uint64(sm[i])
            sel = ((allv & b) != zero) & ((allv & s) == zero)
            im[sel] |= b
        self._init_mask = dict(zip(self._ideals, im.tolist()))
        return self._ideals

    def cut_volume(self, prefix: int) -> float:
        """Bytes leaving ideal ``prefix`` (cached; shared across periods).

        The summation order matches a scan of ``spg.edges`` so values are
        bit-identical to :func:`repro.spg.analysis.cut_volume`.  For graphs
        that fit a machine word the cuts of *all* ideals are computed in one
        vectorised pass (one numpy masked-add per edge, which accumulates in
        the same edge order as the scalar scan).
        """
        c = self._cut.get(prefix)
        if c is None:
            if not self._cuts_bulk_done and self._ideals is not None:
                self._bulk_cuts()
                self._cuts_bulk_done = True
                c = self._cut.get(prefix)
            if c is None:
                c = self._cut[prefix] = cut_volume(self.spg, prefix)
        return c

    def _bulk_cuts(self) -> None:
        """Vectorised cut volumes for every enumerated ideal (n <= 62)."""
        table = self.cut_table()
        if table is not None:
            vals, cuts = table
            self._cut = dict(zip(vals.tolist(), cuts.tolist()))

    def cut_table(self):
        """``(values, cuts)`` numpy arrays over all ideals, value-sorted.

        ``values`` is a sorted ``uint64`` array of every ideal bitmask and
        ``cuts[k]`` the cut volume of ``values[k]`` — the DP's vectorised
        prefix lookups run ``np.searchsorted`` against it.  ``None`` when
        the graph exceeds a machine word (n > 62) or the ideals have not
        been enumerated yet.
        """
        if self._cut_table is None:
            if self.spg.n > 62 or self._ideals is None:
                return None
            import numpy as np

            ideals = self._ideals
            vals = np.sort(
                np.fromiter(ideals, dtype=np.uint64, count=len(ideals))
            )
            cuts = np.zeros(len(ideals))
            one = np.uint64(1)
            for i, j, d in self.spg.edge_list:
                leaving = ((vals >> np.uint64(i)) & one).astype(bool) & (
                    ((vals >> np.uint64(j)) & one) == 0
                )
                cuts[leaving] += d
            self._cut_table = (vals, cuts)
        return self._cut_table

    # ------------------------------------------------------------------
    def suffix_clusters_weighted(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> list[tuple[int, float]]:
        """Non-empty up-sets ``H`` of ``ideal`` with weight <= ``max_weight``.

        Returns ``(mask, weight)`` pairs.  ``H = ideal \\ I'`` for a smaller
        ideal ``I'``; these are exactly the candidate "last clusters" when
        peeling the SPG from the sink side in the Theorem-1 DP.

        The DFS tracks the removable frontier *incrementally*: a stage
        becomes removable exactly when its last missing successor joins the
        cluster, so extending a cluster costs O(in-degree) rather than a
        scan of the whole ideal.  Exclusion by list position guarantees each
        up-set is produced exactly once.  Clusters heavier than
        ``max_weight`` are pruned (they cannot meet the period at any
        speed), which keeps the enumeration tractable for tight periods.

        For word-sized graphs without a cluster budget the pairs are built
        from the per-ideal array cache of :meth:`suffix_arrays`, so e.g.
        the DP reconstruction rereads exactly what the solve enumerated.
        """
        if max_clusters is None and self.spg.n <= 62:
            masks, works = self.suffix_arrays(ideal, max_weight)
            return list(zip(masks.tolist(), works.tolist()))
        masks_l, works_l = self._enumerate_suffix_lists(
            ideal, max_weight, max_clusters
        )
        return list(zip(masks_l, works_l))

    def suffix_arrays(self, ideal: int, max_weight: float):
        """Suffix clusters of ``ideal`` as ``(masks, works)`` numpy arrays.

        Same clusters, same order as :meth:`suffix_clusters_weighted`, but
        flat ``uint64``/``float64`` arrays (graphs must fit a machine
        word).  The arrays are cached per ideal at the loosest cap seen;
        a tighter cap filters them with one vectorised comparison — the
        weight pruning of the DFS removes exactly the elements heavier
        than the cap, so filtering reproduces a pruned enumeration
        element for element.  choose_period probes the same graph at
        successively tighter periods and hits this cache on every re-run.
        """
        import numpy as np

        hit = self._sfx.get(ideal)
        if hit is not None:
            cap, masks, works = hit
            if max_weight == cap:
                return masks, works
            if max_weight < cap:
                sel = works <= max_weight
                masks, works = masks[sel], works[sel]
                # choose_period only ever tightens the period, so the
                # filtered arrays replace the loose ones: the same solve's
                # later passes (and tighter periods) hit the == case above.
                self._sfx[ideal] = (max_weight, masks, works)
                return masks, works
        masks_l, works_l = self._enumerate_suffix_lists(ideal, max_weight)
        masks = np.fromiter(masks_l, dtype=np.uint64, count=len(masks_l))
        works = np.fromiter(works_l, dtype=np.float64, count=len(works_l))
        self._sfx[ideal] = (max_weight, masks, works)
        return masks, works

    def _enumerate_suffix_lists(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> tuple[list[int], list[float]]:
        """The one suffix-cluster DFS, shared by every enumeration front end.

        ``start`` indexes into a shared candidate list so the common "no
        freshly exposed stage" case recurses without copying; the
        enumeration order (and therefore every downstream tie-break) is
        identical to a naive slice-and-concatenate implementation.
        """
        masks_l: list[int] = []
        works_l: list[float] = []
        sm = self._succ_mask
        pm = self._pred_mask
        w = self._weights
        masks_append = masks_l.append
        works_append = works_l.append
        init = self._init_list(ideal)

        def rec(
            h: int,
            h_weight: float,
            cands: list[int],
            start: int,
            # Hot-loop constants bound as defaults (LOAD_FAST).
            sm=sm,
            pm=pm,
            w=w,
            ideal=ideal,
            max_weight=max_weight,
            max_clusters=max_clusters,
            masks_append=masks_append,
            works_append=works_append,
        ) -> None:
            end = len(cands)
            for idx in range(start, end):
                i = cands[idx]
                nw = h_weight + w[i]
                if nw > max_weight:
                    continue
                nh = h | (1 << i)
                masks_append(nh)
                works_append(nw)
                if max_clusters is not None and len(masks_l) > max_clusters:
                    raise BudgetExceeded(
                        f"more than {max_clusters} suffix clusters "
                        f"for one ideal"
                    )
                rem = ideal ^ nh
                m = pm[i] & rem
                if m:
                    fresh = []
                    while m:
                        low = m & -m
                        p = low.bit_length() - 1
                        m ^= low
                        if sm[p] & rem == 0:
                            fresh.append(p)
                    if fresh:
                        rec(nh, nw, cands[idx + 1 : end] + fresh, 0)
                        continue
                if idx + 1 < end:
                    rec(nh, nw, cands, idx + 1)

        rec(0, 0.0, init, 0)
        return masks_l, works_l

    def _init_list(self, ideal: int) -> list[int]:
        """Successor-free stages of ``ideal``, ascending (cached)."""
        init = self._initc.get(ideal)
        if init is None:
            m = self._init_mask.get(ideal)
            if m is not None:
                init = list(iter_bits(m))
            else:
                sm = self._succ_mask
                init = [i for i in iter_bits(ideal) if sm[i] & ideal == 0]
            self._initc[ideal] = init
        return init

    def suffix_clusters(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> list[int]:
        """Masks-only view of :meth:`suffix_clusters_weighted`."""
        return [
            mask
            for mask, _w in self.suffix_clusters_weighted(
                ideal, max_weight, max_clusters
            )
        ]
