"""DAG-partition machinery (Section 3.3) and admissible subgraphs (Section 4.1).

A *DAG-partition mapping* partitions the SPG into clusters such that the
quotient graph (one node per cluster, edges induced by stage dependencies)
is acyclic, then maps clusters one-to-one onto cores.  Quotient acyclicity
is equivalent to the paper's convexity rule ("if S_i and S_j share a cluster,
any S_k with a dependency path S_i -> S_k -> S_j is in the same cluster")
*plus* the absence of cluster cycles.

An *admissible subgraph* (Theorem 1) is obtained from the SPG by repeatedly
deleting nodes without successors; equivalently it is a predecessor-closed
node set — an **order ideal** of the precedence poset.  The DP heuristics
enumerate ideals as bitmasks, with an explicit budget: bounded-elevation
SPGs have at most ``n^ymax`` ideals, and exceeding the budget reproduces the
paper's DPA1D failures on high-elevation graphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.core.errors import BudgetExceeded
from repro.core.kernels import EnumerationKernel, resolve_kernel
from repro.obs.session import inc, trace_span
from repro.spg.analysis import ancestor_masks, cut_volume, descendant_masks
from repro.spg.graph import SPG
from repro.util.bitset import bit, iter_bits, mask_of

__all__ = [
    "quotient_edges",
    "is_acyclic_quotient",
    "is_dag_partition",
    "IdealLattice",
]


def quotient_edges(
    spg: SPG, cluster_of: Mapping[int, object]
) -> set[tuple[object, object]]:
    """Edges of the quotient graph induced by ``cluster_of`` (stage -> key)."""
    out: set[tuple[object, object]] = set()
    for (i, j) in spg.edges:
        ci, cj = cluster_of[i], cluster_of[j]
        if ci != cj:
            out.add((ci, cj))
    return out


def is_acyclic_quotient(
    spg: SPG, cluster_of: Mapping[int, object]
) -> bool:
    """True iff the quotient graph of the clustering is acyclic."""
    edges = quotient_edges(spg, cluster_of)
    succ: dict[object, list[object]] = {}
    indeg: dict[object, int] = {}
    nodes = set(cluster_of.values())
    for c in nodes:
        succ[c] = []
        indeg[c] = 0
    for a, b in edges:
        succ[a].append(b)
        indeg[b] += 1
    stack = [c for c in nodes if indeg[c] == 0]
    seen = 0
    while stack:
        c = stack.pop()
        seen += 1
        for d in succ[c]:
            indeg[d] -= 1
            if indeg[d] == 0:
                stack.append(d)
    return seen == len(nodes)


def is_dag_partition(spg: SPG, cluster_of: Mapping[int, object]) -> bool:
    """True iff ``cluster_of`` (total map stage -> cluster key) is a DAG-partition."""
    if set(cluster_of) != set(range(spg.n)):
        return False
    return is_acyclic_quotient(spg, cluster_of)


class IdealLattice:
    """Enumeration of the order ideals (admissible subgraphs) of an SPG.

    Parameters
    ----------
    spg:
        The application graph.
    budget:
        Maximum number of ideals to enumerate before raising
        :class:`BudgetExceeded`.  The paper bounds the count by
        ``n^ymax``; real workloads with ymax around 12-17 blow any budget,
        which is exactly when DPA1D is reported to fail.
    kernel:
        The suffix-cluster enumeration kernel — a name from the
        :mod:`repro.core.kernels` registry, a kernel instance, or
        ``None`` for the ambient default (``--kernel`` / the
        ``REPRO_KERNEL`` environment variable).  Every kernel produces
        byte-identical output; the choice is purely a speed lever.
    """

    def __init__(
        self,
        spg: SPG,
        budget: int = 200_000,
        kernel: "str | EnumerationKernel | None" = None,
    ) -> None:
        self.spg = spg
        self.budget = budget
        self.kernel = resolve_kernel(kernel)
        n = spg.n
        self.full = (1 << n) - 1
        self._pred_mask = [mask_of(spg.preds(i)) for i in range(n)]
        self._succ_mask = [mask_of(spg.succs(i)) for i in range(n)]
        self._weights = list(spg.weights)
        self.desc = descendant_masks(spg)
        self.anc = ancestor_masks(spg)
        self._ideals: list[int] | None = None
        self._budget_error: str | None = None
        self._cut: dict[int, float] = {}
        self._cuts_bulk_done = False
        self._cut_table: tuple | None = None
        self._initc: dict[int, list[int]] = {0: []}
        self._init_mask: dict[int, int] = {}
        # ideal -> (loosest cap, masks, works, filter cap, fmasks, fworks):
        # the suffix clusters enumerated at the loosest cap seen (kept for
        # good — weight pruning removes whole DFS subtrees, so tighter caps
        # are exactly filtered views) plus one memoised filtered view for
        # the cap currently being solved.
        self._sfx: dict[int, tuple] = {}
        # cap -> (M, W, counts, offsets, pidx, total): the concatenated
        # per-ideal arrays in DP ideal order (see suffix_table).
        self._tables: dict[float, tuple] = {}
        self._table_loosest: float | None = None
        self._ideal_pos: tuple | None = None
        # Per-lattice scratch namespace for kernels (numpy mask tables,
        # ...); dropped by clear_scratch with the rest.
        self._kernel_scratch: dict = {}

    @staticmethod
    def for_spg(
        spg: SPG,
        budget: int = 200_000,
        kernel: "str | EnumerationKernel | None" = None,
    ) -> "IdealLattice":
        """The lattice of ``spg``, cached on the (immutable) graph.

        Heuristics re-run on the same SPG at several candidate periods; the
        lattice (and its enumeration, cut volumes, even a cached budget
        failure) only depends on the graph, so one instance per ``(spg,
        budget, kernel)`` triple serves them all.
        """
        k = resolve_kernel(kernel)
        return spg.cached(
            ("ideal_lattice", budget, k.name),
            lambda: IdealLattice(spg, budget, k),
        )

    # ------------------------------------------------------------------
    def weight(self, mask: int) -> float:
        """Total computation weight of the stages in ``mask``."""
        w = self._weights
        return sum(w[i] for i in iter_bits(mask))

    def is_ideal(self, mask: int) -> bool:
        """True iff ``mask`` is predecessor-closed."""
        for i in iter_bits(mask):
            if self._pred_mask[i] & ~mask:
                return False
        return True

    def addable(self, ideal: int) -> Iterator[int]:
        """Stages addable to ``ideal`` while keeping it an ideal."""
        pm = self._pred_mask
        for i in range(self.spg.n):
            if not (ideal >> i) & 1 and pm[i] & ~ideal == 0:
                yield i

    def ideals(self) -> list[int]:
        """All order ideals, sorted by population count (empty set first).

        Raises :class:`BudgetExceeded` if there are more than ``budget``.
        Both the result and a budget failure are cached, so repeated solves
        on the same lattice neither re-enumerate nor re-discover the blowup.
        """
        if self._ideals is not None:
            return self._ideals
        if self._budget_error is not None:
            raise BudgetExceeded(self._budget_error)
        if self.spg.n <= 62:
            return self._ideals_vector()
        seen: set[int] = {0}
        initc = self._initc
        pm = self._pred_mask
        succs = [list(self.spg.succs(i)) for i in range(self.spg.n)]
        seen_add = seen.add
        # BFS with *incremental* frontier state: each entry carries its
        # ideal's addable stages (predecessor-closed extensions) and its
        # successor-free stages, both maintained in O(degree) per step
        # instead of O(n) rescans.
        roots = [i for i in range(self.spg.n) if pm[i] == 0]
        frontier: list[tuple[int, list[int], list[int]]] = [(0, [], roots)]
        while frontier:
            nxt: list[tuple[int, list[int], list[int]]] = []
            for ideal, cur_init, cur_add in frontier:
                for i in cur_add:
                    cand = ideal | bit(i)
                    if cand in seen:
                        continue
                    seen_add(cand)
                    if len(seen) > self.budget:
                        self._budget_error = (
                            f"more than {self.budget} admissible "
                            f"subgraphs (n={self.spg.n}, "
                            f"ymax={self.spg.ymax})"
                        )
                        raise BudgetExceeded(self._budget_error)
                    # Addable stages of ``cand``: everything addable to
                    # ``ideal`` except ``i``, plus successors of ``i``
                    # whose predecessors are now all in.
                    new_add = [a for a in cur_add if a != i]
                    for j in succs[i]:
                        if not (cand >> j) & 1 and pm[j] & ~cand == 0:
                            new_add.append(j)
                    # Successor-free stages of ``cand``: ``i`` joins (its
                    # successors cannot be in an ideal containing it) and
                    # its predecessors leave; kept sorted to match a
                    # low-to-high bit scan.
                    pmi = pm[i]
                    ni: list[int] = []
                    placed = False
                    for p in cur_init:
                        if (pmi >> p) & 1:
                            continue
                        if not placed and i < p:
                            ni.append(i)
                            placed = True
                        ni.append(p)
                    if not placed:
                        ni.append(i)
                    initc[cand] = ni
                    nxt.append((cand, ni, new_add))
            frontier = nxt
        self._ideals = sorted(seen, key=lambda m: (m.bit_count(), m))
        return self._ideals

    def _ideals_vector(self) -> list[int]:
        """Vectorised ideal enumeration for word-sized graphs.

        Growing an ideal by one addable stage raises its popcount by
        exactly one, so the BFS layers *are* the popcount classes: each
        layer is produced from the previous one with one masked
        shift-and-or per stage, deduplicated by ``np.unique`` (which also
        yields the value-sorted order within the class).  The concatenated
        layers therefore match the scalar enumeration's
        ``sorted-by-(popcount, value)`` output exactly.
        """
        import numpy as np

        n = self.spg.n
        pm = self._pred_mask
        sm = self._succ_mask
        bits = [np.uint64(1 << i) for i in range(n)]
        pms = [np.uint64(m) for m in pm]
        zero = np.uint64(0)
        layers = [np.zeros(1, dtype=np.uint64)]
        layer = layers[0]
        count = 1
        while True:
            cands = []
            for i in range(n):
                b = bits[i]
                p = pms[i]
                sel = ((layer & b) == zero) & ((layer & p) == p)
                if sel.any():
                    cands.append(layer[sel] | b)
            if not cands:
                break
            layer = np.unique(
                np.concatenate(cands) if len(cands) > 1 else cands[0]
            )
            count += layer.size
            if count > self.budget:
                self._budget_error = (
                    f"more than {self.budget} admissible "
                    f"subgraphs (n={self.spg.n}, ymax={self.spg.ymax})"
                )
                raise BudgetExceeded(self._budget_error)
            layers.append(layer)
        allv = np.concatenate(layers) if len(layers) > 1 else layers[0]
        self._ideals = allv.tolist()
        # Successor-free masks of every ideal, also one vector op per stage.
        im = np.zeros(allv.size, dtype=np.uint64)
        for i in range(n):
            b = bits[i]
            s = np.uint64(sm[i])
            sel = ((allv & b) != zero) & ((allv & s) == zero)
            im[sel] |= b
        self._init_mask = dict(zip(self._ideals, im.tolist()))
        return self._ideals

    def cut_volume(self, prefix: int) -> float:
        """Bytes leaving ideal ``prefix`` (cached; shared across periods).

        The summation order matches a scan of ``spg.edges`` so values are
        bit-identical to :func:`repro.spg.analysis.cut_volume`.  For graphs
        that fit a machine word the cuts of *all* ideals are computed in one
        vectorised pass (one numpy masked-add per edge, which accumulates in
        the same edge order as the scalar scan).
        """
        c = self._cut.get(prefix)
        if c is None:
            if not self._cuts_bulk_done and self._ideals is not None:
                self._bulk_cuts()
                self._cuts_bulk_done = True
                c = self._cut.get(prefix)
            if c is None:
                c = self._cut[prefix] = cut_volume(self.spg, prefix)
        return c

    def _bulk_cuts(self) -> None:
        """Vectorised cut volumes for every enumerated ideal (n <= 62)."""
        table = self.cut_table()
        if table is not None:
            vals, cuts = table
            self._cut = dict(zip(vals.tolist(), cuts.tolist()))

    def cut_table(self):
        """``(values, cuts)`` numpy arrays over all ideals, value-sorted.

        ``values`` is a sorted ``uint64`` array of every ideal bitmask and
        ``cuts[k]`` the cut volume of ``values[k]`` — the DP's vectorised
        prefix lookups run ``np.searchsorted`` against it.  ``None`` when
        the graph exceeds a machine word (n > 62) or the ideals have not
        been enumerated yet.
        """
        if self._cut_table is None:
            if self.spg.n > 62 or self._ideals is None:
                return None
            import numpy as np

            ideals = self._ideals
            vals = np.sort(
                np.fromiter(ideals, dtype=np.uint64, count=len(ideals))
            )
            cuts = np.zeros(len(ideals))
            one = np.uint64(1)
            for i, j, d in self.spg.edge_list:
                leaving = ((vals >> np.uint64(i)) & one).astype(bool) & (
                    ((vals >> np.uint64(j)) & one) == 0
                )
                cuts[leaving] += d
            self._cut_table = (vals, cuts)
        return self._cut_table

    # ------------------------------------------------------------------
    def suffix_clusters_weighted(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> list[tuple[int, float]]:
        """Non-empty up-sets ``H`` of ``ideal`` with weight <= ``max_weight``.

        Returns ``(mask, weight)`` pairs.  ``H = ideal \\ I'`` for a smaller
        ideal ``I'``; these are exactly the candidate "last clusters" when
        peeling the SPG from the sink side in the Theorem-1 DP.

        The DFS tracks the removable frontier *incrementally*: a stage
        becomes removable exactly when its last missing successor joins the
        cluster, so extending a cluster costs O(in-degree) rather than a
        scan of the whole ideal.  Exclusion by list position guarantees each
        up-set is produced exactly once.  Clusters heavier than
        ``max_weight`` are pruned (they cannot meet the period at any
        speed), which keeps the enumeration tractable for tight periods.

        For word-sized graphs without a cluster budget the pairs are built
        from the per-ideal array cache of :meth:`suffix_arrays`, so e.g.
        the DP reconstruction rereads exactly what the solve enumerated.
        """
        if max_clusters is None and self.spg.n <= 62:
            masks, works = self.suffix_arrays(ideal, max_weight)
            return list(zip(masks.tolist(), works.tolist()))
        masks_l, works_l = self._enumerate_suffix_lists(
            ideal, max_weight, max_clusters
        )
        return list(zip(masks_l, works_l))

    def suffix_arrays(self, ideal: int, max_weight: float):
        """Suffix clusters of ``ideal`` as ``(masks, works)`` numpy arrays.

        Same clusters, same order as :meth:`suffix_clusters_weighted`, but
        flat ``uint64``/``float64`` arrays (graphs must fit a machine
        word).  The arrays enumerated at the *loosest* cap seen are kept
        for good; a tighter cap is served as a filtered view (one
        vectorised comparison — the weight pruning of the DFS removes
        exactly the elements heavier than the cap, so filtering
        reproduces a pruned enumeration element for element), with the
        view for the cap currently being solved memoised.  choose_period
        probes the loosest period first and tightens, so every re-probe
        — and, through the worker lattice cache, every sweep cell
        sharing the graph — hits these arrays instead of re-running the
        DFS; a probe looser than anything seen re-enumerates once and
        becomes the new kept cap.
        """
        hit = self._sfx.get(ideal)
        if hit is not None:
            cap, masks, works, fcap, fmasks, fworks = hit
            if max_weight == cap:
                return masks, works
            if max_weight < cap:
                if fcap == max_weight:
                    return fmasks, fworks
                sel = works <= max_weight
                fmasks, fworks = masks[sel], works[sel]
                self._sfx[ideal] = (
                    cap, masks, works, max_weight, fmasks, fworks
                )
                return fmasks, fworks
        masks, works = self.kernel.enumerate_arrays(self, ideal, max_weight)
        self._sfx[ideal] = (max_weight, masks, works, None, None, None)
        inc("kernel.enumerations")
        return masks, works

    def _enumerate_suffix_lists(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> tuple[list[int], list[float]]:
        """The one suffix-cluster enumeration, dispatched to the kernel.

        Every registered kernel (see :mod:`repro.core.kernels`) produces
        the same masks and works in the same DFS preorder, so downstream
        tie-breaks are kernel-independent.
        """
        return self.kernel.enumerate_lists(
            self, ideal, max_weight, max_clusters
        )

    def suffix_table(
        self, max_weight: float, transition_budget: int | None = None
    ) -> tuple:
        """The whole lattice's suffix clusters as one flat DP table.

        Returns ``(M, W, counts, offsets, pidx, total)``: the per-ideal
        ``suffix_arrays`` concatenated in DP ideal order (``counts[k]``
        transitions for ``ideals()[k]``, sliced by ``offsets``), with
        ``pidx`` the value-index of each transition's prefix ``ideal ^
        mask`` in :meth:`cut_table`'s sorted array.  Word-sized graphs
        only.

        Like the per-ideal arrays the table built at the loosest cap is
        kept and tighter caps are derived by one filtering pass, so a
        re-solve at a previously seen (or tighter) cap does no per-ideal
        Python at all.  When ``transition_budget`` is given the build
        raises :class:`BudgetExceeded` at the same cumulative transition
        count as a per-ideal counting loop (cached tables re-check their
        total against the caller's budget, which may differ per solve).
        """
        import numpy as np

        budget_msg = (
            f"DPA1D exceeded {transition_budget} DP transitions"
        )
        tbl = self._tables.get(max_weight)
        if tbl is None:
            loosest = self._table_loosest
            if loosest is not None and max_weight < loosest:
                M, W, counts, offsets, pidx, _total = self._tables[loosest]
                keep = W <= max_weight
                cs = np.zeros(len(keep) + 1, dtype=np.intp)
                np.cumsum(keep, out=cs[1:])
                fcounts = (cs[offsets[1:]] - cs[offsets[:-1]]).astype(
                    np.intp
                )
                foffsets = np.zeros(len(fcounts) + 1, dtype=np.intp)
                np.cumsum(fcounts, out=foffsets[1:])
                tbl = (
                    M[keep], W[keep], fcounts, foffsets, pidx[keep],
                    int(foffsets[-1]),
                )
                self._tables[max_weight] = tbl
                inc("kernel.table_filtered")
            else:
                tbl = self._build_table(max_weight, transition_budget)
                self._tables[max_weight] = tbl
                if loosest is None or max_weight > loosest:
                    self._table_loosest = max_weight
                inc("kernel.table_builds")
        else:
            inc("kernel.table_hits")
        if transition_budget is not None and tbl[5] > transition_budget:
            raise BudgetExceeded(budget_msg)
        return tbl

    def _build_table(
        self, max_weight: float, transition_budget: int | None
    ) -> tuple:
        """Fresh ``suffix_table`` build, counting against the budget as
        it goes so a doomed run raises without enumerating the rest."""
        import numpy as np

        ideals = self.ideals()
        vals, _cuts = self.cut_table()
        n_ideals = len(ideals)
        counts = np.zeros(n_ideals, dtype=np.intp)
        masks_parts: list = []
        works_parts: list = []
        transitions = 0
        budget_msg = f"DPA1D exceeded {transition_budget} DP transitions"
        if not self._sfx:
            # Cold build: hand the kernel whole chunks of ideals so a
            # batching kernel expands thousands of DFS trees as one
            # forest.  The per-ideal slices land in ``_sfx`` so later
            # ``suffix_arrays``/``reconstruct`` calls hit the cache.
            nz = [(k, ideal) for k, ideal in enumerate(ideals) if ideal]
            chunk_size = 1024
            for s in range(0, len(nz), chunk_size):
                chunk = nz[s:s + chunk_size]
                chunk_ideals = [ideal for _k, ideal in chunk]
                remaining = (
                    None if transition_budget is None
                    else transition_budget - transitions
                )
                M, W, ccounts = self.kernel.enumerate_bulk(
                    self, chunk_ideals, max_weight,
                    node_budget=remaining, budget_msg=budget_msg,
                )
                off = 0
                for (k, ideal), t in zip(chunk, ccounts):
                    t = int(t)
                    counts[k] = t
                    self._sfx[ideal] = (
                        max_weight, M[off:off + t], W[off:off + t],
                        None, None, None,
                    )
                    off += t
                transitions += int(M.size)
                if M.size:
                    masks_parts.append(M)
                    works_parts.append(W)
            inc("kernel.enumerations", len(nz))
        else:
            for k, ideal in enumerate(ideals):
                if ideal == 0:
                    continue
                masks, works = self.suffix_arrays(ideal, max_weight)
                t = len(masks)
                if t == 0:
                    continue
                counts[k] = t
                transitions += t
                if transition_budget is not None and transitions > (
                    transition_budget
                ):
                    raise BudgetExceeded(budget_msg)
                masks_parts.append(masks)
                works_parts.append(works)
        offsets = np.zeros(n_ideals + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        if not masks_parts:
            empty_m = np.empty(0, np.uint64)
            return (empty_m, np.empty(0), counts, offsets,
                    np.empty(0, np.intp), 0)
        M = np.concatenate(masks_parts)
        W = np.concatenate(works_parts)
        ideal_vals, _epos = self.ideal_positions()
        owners = np.repeat(ideal_vals, counts)
        P = np.bitwise_xor(M, owners)
        pidx = np.searchsorted(vals, P)
        return (M, W, counts, offsets, pidx, transitions)

    def ideal_positions(self) -> tuple:
        """``(ideal_vals, epos)``: every ideal as ``uint64`` in DP order
        and its index into :meth:`cut_table`'s value-sorted array."""
        if self._ideal_pos is None:
            import numpy as np

            ideals = self.ideals()
            vals, _cuts = self.cut_table()
            ideal_vals = np.fromiter(
                ideals, dtype=np.uint64, count=len(ideals)
            )
            self._ideal_pos = (ideal_vals, np.searchsorted(vals, ideal_vals))
        return self._ideal_pos

    def warm(
        self, max_weight: float, transition_budget: int | None = None
    ) -> dict:
        """Pre-enumerate everything a solve at cap ``max_weight`` needs.

        Fills the ideal enumeration, cut volumes and — for word-sized
        graphs — the flat suffix table, so subsequent solves at this (or
        any tighter) cap are pure array work.  Returns ``{"ideals": ...,
        "transitions": ...}``.
        """
        with trace_span(
            "kernel.warm", kernel=self.kernel.name, cap=float(max_weight)
        ):
            ideals = self.ideals()
            if self.spg.n <= 62:
                self.cut_table()
                tbl = self.suffix_table(max_weight, transition_budget)
                return {"ideals": len(ideals), "transitions": tbl[5]}
            transitions = 0
            for ideal in ideals:
                if ideal:
                    transitions += len(
                        self.suffix_clusters_weighted(ideal, max_weight)
                    )
            return {"ideals": len(ideals), "transitions": transitions}

    # ------------------------------------------------------------------
    def scratch_stats(self) -> dict:
        """Sizes of the per-ideal enumeration scratch (see clear_scratch).

        ``nodes`` counts every cached (mask, work) pair — loosest-cap
        arrays, memoised filtered views and flat tables — and ``bytes``
        estimates their footprint (16 bytes a pair), so sweep drivers
        and the worker lattice cache can bound memory.
        """
        sfx_nodes = 0
        for _cap, masks, _w, _fcap, fmasks, _fw in self._sfx.values():
            sfx_nodes += len(masks)
            if fmasks is not None:
                sfx_nodes += len(fmasks)
        table_nodes = sum(t[5] for t in self._tables.values())
        init_items = sum(len(v) for v in self._initc.values())
        nodes = sfx_nodes + table_nodes
        return {
            "sfx_ideals": len(self._sfx),
            "sfx_nodes": sfx_nodes,
            "tables": len(self._tables),
            "table_nodes": table_nodes,
            "init_lists": len(self._initc),
            "nodes": nodes,
            "bytes": 16 * nodes + 8 * init_items,
        }

    def clear_scratch(self) -> None:
        """Drop rebuildable enumeration scratch, keeping the lattice.

        The ideal enumeration, cut volumes and any cached budget failure
        survive (they are the expensive, bounded part); the per-ideal
        suffix arrays, filtered views, flat tables, init lists and
        kernel scratch are released and will be rebuilt on demand.
        """
        self._sfx.clear()
        self._tables.clear()
        self._table_loosest = None
        self._initc = {0: []}
        self._kernel_scratch.clear()

    def _init_list(self, ideal: int) -> list[int]:
        """Successor-free stages of ``ideal``, ascending (cached)."""
        init = self._initc.get(ideal)
        if init is None:
            m = self._init_mask.get(ideal)
            if m is not None:
                init = list(iter_bits(m))
            else:
                sm = self._succ_mask
                init = [i for i in iter_bits(ideal) if sm[i] & ideal == 0]
            self._initc[ideal] = init
        return init

    def suffix_clusters(
        self, ideal: int, max_weight: float, max_clusters: int | None = None
    ) -> list[int]:
        """Masks-only view of :meth:`suffix_clusters_weighted`."""
        return [
            mask
            for mask, _w in self.suffix_clusters_weighted(
                ideal, max_weight, max_clusters
            )
        ]
