"""Pluggable suffix-cluster enumeration kernels + cross-cell lattice reuse.

The Theorem-1 DP peels "last clusters" off an SPG: the non-empty up-sets
``H`` of an order ideal with weight below the period cap.  Enumerating
them is the output-sensitive hot loop feeding DPA1D; this module makes
the enumeration strategy a registry choice (mirroring the topology /
solver / eviction registries) so alternative engines are one
``register_kernel`` away:

* ``python`` — the reference implementation: a recursive DFS with
  exclusion-by-list-position and incremental removable-frontier
  tracking.  Works for any graph size and defines the canonical
  enumeration order (a DFS preorder) that every downstream tie-break
  depends on.
* ``vector`` — an explicit-stack, frontier-batched bitset enumeration
  for word-sized graphs (n <= 62): whole DFS layers expand as ``uint64``
  numpy batches (one vectorised weight-pruning pass, ``pred_mask &
  remaining`` freshness tests as bit-twiddling on arrays), then the
  exact DFS preorder is reconstructed from per-layer subtree sizes.
  Masks *and* works come out byte-identical to the reference kernel —
  works accumulate ``parent_work + w[stage]`` in the same IEEE order —
  so golden fixtures do not move.  Graphs beyond a machine word fall
  back to ``python``.

Kernel selection is ambient: an explicit ``kernel=`` argument wins, then
a process default installed by :func:`set_default_kernel` (the CLI's
``--kernel`` flag), then the ``REPRO_KERNEL`` environment variable
(inherited by pool workers), then the built-in default.  Because every
kernel produces identical output, the choice never enters fingerprints
or reports.

The module also hosts the **per-worker lattice cache**: sweep cells and
``choose_period`` probes that share one (SPG content, budget) pair reuse
a single :class:`~repro.core.partition.IdealLattice` — pre-warmed at the
loosest cap seen — instead of re-enumerating per {CCR, period, solver}
probe.  The cache is bounded (LRU over graphs, scratch-node cap per
lattice) and keyed by *content* (weights, labels, ordered edge list), so
structurally equal SPG objects generated independently still hit.
Engine runs reset it (see ``run_tasks``) to keep telemetry aggregates
deterministic; results are byte-identical either way.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.core.errors import BudgetExceeded
from repro.obs.session import inc

__all__ = [
    "EnumerationKernel",
    "KernelSpec",
    "KERNELS",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "resolve_kernel",
    "set_default_kernel",
    "use_kernel",
    "KERNEL_ENV",
    "DEFAULT_KERNEL",
    "LatticeCache",
    "worker_lattice_cache",
    "reset_worker_cache",
]

#: Environment variable consulted when no explicit kernel is given; the
#: CLI's ``--kernel`` writes it so pool workers inherit the choice.
KERNEL_ENV = "REPRO_KERNEL"

#: Built-in default.  The vector kernel is byte-identical to the
#: reference DFS and strictly faster on word-sized graphs (it falls back
#: to ``python`` beyond 62 stages), so it is the default everywhere.
DEFAULT_KERNEL = "vector"


class EnumerationKernel:
    """One suffix-cluster enumeration strategy.

    A kernel produces, for an order ideal of a lattice, every non-empty
    up-set with weight <= ``max_weight`` — masks and cumulative weights,
    in the canonical DFS preorder.  Subclasses override whichever of the
    two entry points is natural (lists for scalar engines, arrays for
    vectorised ones); the base class cross-converts.

    Kernels are stateless: per-lattice scratch (e.g. numpy views of the
    predecessor masks) lives in the lattice's ``_kernel_scratch`` dict
    so it is dropped with the lattice's other scratch state.
    """

    name = "abstract"

    def enumerate_lists(
        self, lat, ideal: int, max_weight: float,
        max_clusters: int | None = None,
    ) -> tuple[list[int], list[float]]:
        masks, works = self.enumerate_arrays(
            lat, ideal, max_weight, max_clusters
        )
        return masks.tolist(), works.tolist()

    def enumerate_arrays(
        self, lat, ideal: int, max_weight: float,
        max_clusters: int | None = None,
    ):
        import numpy as np

        masks_l, works_l = self.enumerate_lists(
            lat, ideal, max_weight, max_clusters
        )
        masks = np.fromiter(masks_l, dtype=np.uint64, count=len(masks_l))
        works = np.fromiter(works_l, dtype=np.float64, count=len(works_l))
        return masks, works

    def enumerate_bulk(
        self, lat, ideals, max_weight: float,
        node_budget: int | None = None, budget_msg: str | None = None,
    ):
        """Enumerate many ideals in one call: ``(M, W, counts)``.

        ``M``/``W`` are the per-ideal arrays concatenated in the given
        ideal order and ``counts[k]`` the number of clusters of
        ``ideals[k]``.  When the cumulative cluster count exceeds
        ``node_budget`` the call raises :class:`BudgetExceeded` with
        ``budget_msg`` — at the same total as a per-ideal counting loop
        would.  Batched kernels override this to amortise across the
        whole lattice; the default loops.
        """
        import numpy as np

        counts = np.zeros(len(ideals), dtype=np.intp)
        parts_m: list = []
        parts_w: list = []
        total = 0
        for k, ideal in enumerate(ideals):
            masks, works = self.enumerate_arrays(lat, ideal, max_weight)
            t = masks.size
            if t == 0:
                continue
            counts[k] = t
            total += t
            if node_budget is not None and total > node_budget:
                raise BudgetExceeded(budget_msg)
            parts_m.append(masks)
            parts_w.append(works)
        if not parts_m:
            return np.empty(0, np.uint64), np.empty(0, np.float64), counts
        return np.concatenate(parts_m), np.concatenate(parts_w), counts


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry: identity, one-line summary, zero-arg factory."""

    name: str
    summary: str
    factory: Callable[[], EnumerationKernel]


KERNELS: dict[str, KernelSpec] = {}
_INSTANCES: dict[str, EnumerationKernel] = {}


def register_kernel(name: str, summary: str):
    """Class decorator registering an enumeration kernel under ``name``."""

    def deco(cls):
        cls.name = name
        KERNELS[name] = KernelSpec(name=name, summary=summary, factory=cls)
        _INSTANCES.pop(name, None)
        return cls

    return deco


def kernel_names() -> list[str]:
    """Registered kernel names, sorted."""
    return sorted(KERNELS)


def get_kernel(name: str) -> EnumerationKernel:
    """The (singleton) kernel registered under ``name``.

    Raises ``KeyError`` naming the available kernels, like the topology
    and eviction registries.
    """
    inst = _INSTANCES.get(name)
    if inst is None:
        spec = KERNELS.get(name)
        if spec is None:
            raise KeyError(
                f"unknown enumeration kernel {name!r}; "
                f"available: {', '.join(kernel_names())}"
            )
        inst = _INSTANCES[name] = spec.factory()
    return inst


#: Process-wide default installed by :func:`set_default_kernel` (used by
#: the CLI and sweep plumbing); ``None`` defers to ``REPRO_KERNEL``.
_DEFAULT: str | None = None


def set_default_kernel(name: str | None) -> None:
    """Install ``name`` as the process default kernel (validated).

    Also exports ``REPRO_KERNEL`` so process-pool workers spawned later
    inherit the choice; ``None`` clears both.
    """
    global _DEFAULT
    if name is not None:
        get_kernel(name)  # validate eagerly
        os.environ[KERNEL_ENV] = name
    else:
        os.environ.pop(KERNEL_ENV, None)
    _DEFAULT = name


@contextmanager
def use_kernel(name: str | None):
    """Scoped :func:`set_default_kernel`, restoring the previous state."""
    global _DEFAULT
    prev_default = _DEFAULT
    prev_env = os.environ.get(KERNEL_ENV)
    try:
        if name is not None:
            set_default_kernel(name)
        yield
    finally:
        _DEFAULT = prev_default
        if prev_env is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = prev_env


def resolve_kernel(
    kernel: "str | EnumerationKernel | None" = None,
) -> EnumerationKernel:
    """Resolve an explicit kernel, the process default, or the env var."""
    if isinstance(kernel, EnumerationKernel):
        return kernel
    name = (
        kernel
        or _DEFAULT
        or os.environ.get(KERNEL_ENV)
        or DEFAULT_KERNEL
    )
    return get_kernel(name)


# ----------------------------------------------------------------------
# The reference kernel: recursive DFS (any graph size)
# ----------------------------------------------------------------------
@register_kernel(
    "python",
    "reference recursive DFS (any n); defines the canonical order",
)
class PythonKernel(EnumerationKernel):
    """The pure-Python suffix-cluster DFS.

    ``start`` indexes into a shared candidate list so the common "no
    freshly exposed stage" case recurses without copying; the
    enumeration order (and therefore every downstream tie-break) is
    identical to a naive slice-and-concatenate implementation.
    """

    def enumerate_lists(
        self, lat, ideal: int, max_weight: float,
        max_clusters: int | None = None,
    ) -> tuple[list[int], list[float]]:
        masks_l: list[int] = []
        works_l: list[float] = []
        sm = lat._succ_mask
        pm = lat._pred_mask
        w = lat._weights
        masks_append = masks_l.append
        works_append = works_l.append
        init = lat._init_list(ideal)

        def rec(
            h: int,
            h_weight: float,
            cands: list[int],
            start: int,
            # Hot-loop constants bound as defaults (LOAD_FAST).
            sm=sm,
            pm=pm,
            w=w,
            ideal=ideal,
            max_weight=max_weight,
            max_clusters=max_clusters,
            masks_append=masks_append,
            works_append=works_append,
        ) -> None:
            end = len(cands)
            for idx in range(start, end):
                i = cands[idx]
                nw = h_weight + w[i]
                if nw > max_weight:
                    continue
                nh = h | (1 << i)
                masks_append(nh)
                works_append(nw)
                if max_clusters is not None and len(masks_l) > max_clusters:
                    raise BudgetExceeded(
                        f"more than {max_clusters} suffix clusters "
                        f"for one ideal"
                    )
                rem = ideal ^ nh
                m = pm[i] & rem
                if m:
                    fresh = []
                    while m:
                        low = m & -m
                        p = low.bit_length() - 1
                        m ^= low
                        if sm[p] & rem == 0:
                            fresh.append(p)
                    if fresh:
                        rec(nh, nw, cands[idx + 1 : end] + fresh, 0)
                        continue
                if idx + 1 < end:
                    rec(nh, nw, cands, idx + 1)

        rec(0, 0.0, init, 0)
        return masks_l, works_l


# ----------------------------------------------------------------------
# The vector kernel: frontier-batched bitset enumeration (n <= 62)
# ----------------------------------------------------------------------
@register_kernel(
    "vector",
    "frontier-batched uint64 numpy enumeration (n <= 62), exact DFS order",
)
class VectorKernel(EnumerationKernel):
    """Layer-at-a-time expansion of the suffix-cluster DFS forest.

    Every DFS node at depth d is a (mask, work, candidate-list) state;
    the kernel keeps one flat batch per depth — masks as ``uint64``,
    works as ``float64``, the ragged candidate lists as one flat index
    array plus per-node counts — and derives depth d+1 with whole-array
    operations:

    * weight pruning is one ``parent_work + w[cand] <= cap`` compare
      (works are monotone along DFS paths, so pruning a node prunes its
      whole subtree exactly like the DFS ``continue``);
    * the freshly-removable test (``p`` a predecessor of the added stage
      with no successor left in the remainder) runs as one
      ``(pred & rem) & bit`` / ``rem & succ_mask[p] == 0`` pass over the
      batch per stage *present in the batch's predecessor union*;
    * child candidate lists are the parent tail after the chosen
      position plus the fresh stages in ascending order, materialised
      with ``repeat``/``arange`` index arithmetic (ranks of fresh bits
      via popcount of the bits below).

    Batching is what pays: :meth:`enumerate_bulk` expands the trees of
    *many* ideals as one forest (each node carries its root's ideal),
    so layer batches hold hundreds of thousands of states and the fixed
    numpy dispatch cost amortises away.  This is the path the DP table
    build uses; single-ideal calls run the same machinery with one
    root.

    The output order is reconstructed exactly: subtree sizes bottom-up
    (one ``bincount`` per layer), then preorder positions top-down
    (``pos[child] = pos[parent] + 1 +`` exclusive segmented cumsum of
    elder-sibling subtree sizes), and one scatter per layer.  Works
    accumulate ``parent_work + w[stage]`` — the DFS's own IEEE order —
    so masks *and* works are byte-identical to the reference kernel.
    The cumulative node count crosses a budget at the same total as the
    DFS, raising the same :class:`BudgetExceeded`.  Graphs beyond a
    machine word fall back to the ``python`` kernel.
    """

    def _state(self, lat):
        import numpy as np

        st = lat._kernel_scratch.get("vector")
        if st is None:
            n = len(lat._weights)
            pm_u = np.array(lat._pred_mask, dtype=np.uint64)
            sm_u = np.array(lat._succ_mask, dtype=np.uint64)
            w_f = np.array(lat._weights, dtype=np.float64)
            bit_u = np.left_shift(
                np.uint64(1), np.arange(n, dtype=np.uint64)
            )
            st = lat._kernel_scratch["vector"] = (pm_u, sm_u, w_f, bit_u)
        return st

    def enumerate_arrays(
        self, lat, ideal: int, max_weight: float,
        max_clusters: int | None = None,
    ):
        import numpy as np

        if len(lat._weights) > 62:
            return get_kernel("python").enumerate_arrays(
                lat, ideal, max_weight, max_clusters
            )
        init = lat._init_list(ideal)
        if not init:
            return np.empty(0, np.uint64), np.empty(0, np.float64)
        msg = (
            f"more than {max_clusters} suffix clusters for one ideal"
            if max_clusters is not None
            else None
        )
        out_m, out_w, _counts = self._expand(
            self._state(lat),
            np.array([ideal], dtype=np.uint64),
            np.asarray(init, dtype=np.int64),
            np.array([len(init)], np.int64),
            float(max_weight),
            max_clusters,
            msg,
        )
        return out_m, out_w

    def enumerate_bulk(
        self, lat, ideals, max_weight: float,
        node_budget: int | None = None, budget_msg: str | None = None,
    ):
        import numpy as np

        if len(lat._weights) > 62:
            return super().enumerate_bulk(
                lat, ideals, max_weight, node_budget, budget_msg
            )
        root_ideals = np.fromiter(
            ideals, dtype=np.uint64, count=len(ideals)
        )
        flat, counts = self._root_candidates(lat, ideals, root_ideals)
        out_m, out_w, root_counts = self._expand(
            self._state(lat),
            root_ideals,
            flat,
            counts,
            float(max_weight),
            node_budget,
            budget_msg,
        )
        return out_m, out_w, root_counts.astype(np.intp)

    def _root_candidates(self, lat, ideals, root_ideals):
        """Initial candidate lists (successor-free stages, ascending)
        for every root, as one flat array + per-root counts."""
        import numpy as np

        im = lat._init_mask
        if im and all(ideal in im for ideal in ideals):
            _pm, _sm, _w, bit_u = self._state(lat)
            init_masks = np.fromiter(
                (im[ideal] for ideal in ideals),
                dtype=np.uint64,
                count=len(ideals),
            )
            counts = np.bitwise_count(init_masks).astype(np.int64)
            offs = np.zeros(len(ideals), np.int64)
            np.cumsum(counts[:-1], out=offs[1:])
            flat = np.empty(int(counts.sum()), np.int64)
            union = int(np.bitwise_or.reduce(init_masks)) if len(
                ideals
            ) else 0
            while union:
                low = union & -union
                p = low.bit_length() - 1
                union ^= low
                bp = bit_u[p]
                has = (init_masks & bp) != 0
                rank = np.bitwise_count(
                    init_masks[has] & (bp - np.uint64(1))
                ).astype(np.int64)
                flat[offs[has] + rank] = p
            return flat, counts
        lists = [lat._init_list(ideal) for ideal in ideals]
        counts = np.array([len(l) for l in lists], np.int64)
        flat = np.array(
            [i for l in lists for i in l], dtype=np.int64
        )
        return flat, counts

    @staticmethod
    def _expand(
        st, root_ideals, cand_flat, cand_counts, cap, node_budget,
        budget_msg,
    ):
        """Expand the DFS forest of ``root_ideals`` layer by layer.

        Returns ``(out_m, out_w, root_totals)`` with the nodes of each
        root's tree contiguous, in exact DFS preorder, roots in input
        order.
        """
        import numpy as np

        pm_u, sm_u, w_f, bit_u = st
        one = np.uint64(1)
        n_roots = root_ideals.size
        masks = np.zeros(n_roots, np.uint64)
        works = np.zeros(n_roots, np.float64)
        ideal_arr = root_ideals
        layer_masks: list = []
        layer_works: list = []
        layer_par: list = []
        total = 0
        while cand_flat.size:
            n_par = masks.size
            offsets = np.zeros(n_par + 1, np.int64)
            np.cumsum(cand_counts, out=offsets[1:])
            parent = np.repeat(
                np.arange(n_par, dtype=np.int64), cand_counts
            )
            nw = works[parent] + w_f[cand_flat]
            cpos = np.nonzero(nw <= cap)[0]
            if cpos.size == 0:
                break
            if cpos.size == nw.size:
                # Nothing pruned (common in early layers): skip the
                # gather and keep the parent-order arrays as-is.
                cpar, ci, cwork = parent, cand_flat, nw
            else:
                cpar = parent[cpos]
                ci = cand_flat[cpos]
                cwork = nw[cpos]
            cmask = masks[cpar] | bit_u[ci]
            cideal = ideal_arr[cpar]
            n_child = cpos.size
            total += n_child
            if node_budget is not None and total > node_budget:
                raise BudgetExceeded(budget_msg)
            layer_masks.append(cmask)
            layer_works.append(cwork)
            layer_par.append(cpar)
            # Parent-tail candidates surviving for each child.
            tail_counts = offsets[cpar + 1] - cpos - 1
            # Freshly removable stages per child, probing only stages
            # that are a missing predecessor of *some* child.
            rem = cideal ^ cmask
            pr = pm_u[ci] & rem
            fresh = np.zeros(n_child, np.uint64)
            union = int(np.bitwise_or.reduce(pr))
            while union:
                low = union & -union
                p = low.bit_length() - 1
                union ^= low
                bp = bit_u[p]
                sel = ((pr & bp) != 0) & ((rem & sm_u[p]) == 0)
                if sel.any():
                    fresh[sel] |= bp
            fresh_counts = np.bitwise_count(fresh).astype(np.int64)
            new_counts = tail_counts + fresh_counts
            new_offsets = np.zeros(n_child + 1, np.int64)
            np.cumsum(new_counts, out=new_offsets[1:])
            nt = int(new_offsets[-1])
            if nt == 0:
                break
            new_flat = np.empty(nt, np.int64)
            tt = int(tail_counts.sum())
            if tt:
                child_id = np.repeat(
                    np.arange(n_child, dtype=np.int64), tail_counts
                )
                tail_off = np.zeros(n_child, np.int64)
                np.cumsum(tail_counts[:-1], out=tail_off[1:])
                within = np.arange(tt, dtype=np.int64) - tail_off[child_id]
                new_flat[new_offsets[:-1][child_id] + within] = cand_flat[
                    cpos[child_id] + 1 + within
                ]
            if nt > tt:
                base = new_offsets[:-1] + tail_counts
                union = int(np.bitwise_or.reduce(fresh))
                while union:
                    low = union & -union
                    p = low.bit_length() - 1
                    union ^= low
                    bp = bit_u[p]
                    has = (fresh & bp) != 0
                    below = fresh[has] & (bp - one)
                    rank = np.bitwise_count(below).astype(np.int64)
                    new_flat[base[has] + rank] = p
            masks, works, ideal_arr = cmask, cwork, cideal
            cand_flat, cand_counts = new_flat, new_counts

        if total == 0:
            return (
                np.empty(0, np.uint64),
                np.empty(0, np.float64),
                np.zeros(n_roots, np.int64),
            )
        # Subtree sizes, bottom-up: one weighted bincount per layer.
        depth = len(layer_masks)
        sizes: list = [None] * depth
        sizes[depth - 1] = np.ones(layer_masks[depth - 1].size, np.int64)
        for d in range(depth - 1, 0, -1):
            acc = np.bincount(
                layer_par[d],
                weights=sizes[d],
                minlength=layer_masks[d - 1].size,
            ).astype(np.int64)
            acc += 1
            sizes[d - 1] = acc
        root_totals = np.bincount(
            layer_par[0], weights=sizes[0], minlength=n_roots
        ).astype(np.int64)
        # Preorder positions, top-down: within each sibling group, a
        # node sits 1 + (elder siblings' subtree sizes) after its
        # parent; the segmented exclusive cumsum is the global cumsum
        # minus each group's starting value.  Virtual roots sit one
        # slot before their tree's output range.
        root_base = np.zeros(n_roots, np.int64)
        np.cumsum(root_totals[:-1], out=root_base[1:])
        pos_parent = root_base - 1
        out_m = np.empty(total, np.uint64)
        out_w = np.empty(total, np.float64)
        n_prev = n_roots
        for d in range(depth):
            par = layer_par[d]
            sz = sizes[d]
            cs = np.cumsum(sz) - sz
            change = np.empty(par.size, bool)
            change[0] = True
            np.not_equal(par[1:], par[:-1], out=change[1:])
            fidx = np.nonzero(change)[0]
            group_start = np.zeros(n_prev, np.int64)
            group_start[par[fidx]] = cs[fidx]
            pos_d = pos_parent[par] + 1 + (cs - group_start[par])
            out_m[pos_d] = layer_masks[d]
            out_w[pos_d] = layer_works[d]
            pos_parent = pos_d
            n_prev = layer_masks[d].size
        return out_m, out_w, root_totals


# ----------------------------------------------------------------------
# Cross-cell lattice reuse: the per-worker cache
# ----------------------------------------------------------------------
def _content_key(spg) -> tuple:
    """Content identity of an SPG *including edge order*.

    Structural ``SPG.__eq__`` ignores edge insertion order, but cut
    volumes accumulate in ``edge_list`` order, so byte-identical reuse
    keys on the ordered list.  Labels ride along because cached budget
    failures embed ``ymax`` in their message.
    """
    return (
        tuple(spg.weights),
        tuple(spg.labels),
        tuple(spg.edge_list),
    )


class LatticeCache:
    """Bounded per-worker cache of ideal lattices, keyed by SPG content.

    ``seed(spg)`` installs previously adopted lattices into a fresh SPG
    object's derived-data cache (rebinding them to the new object so the
    old graph can be collected); ``adopt(spg)`` harvests the lattices a
    task built before the task clears ``spg._derived``.  Entries are LRU
    over graph contents (``max_entries``); a lattice whose enumeration
    scratch outgrew ``max_scratch_nodes`` is trimmed back to its ideal
    enumeration on adoption, so long sweeps cannot grow worker memory
    without bound.
    """

    def __init__(
        self, max_entries: int = 8, max_scratch_nodes: int = 4_000_000
    ) -> None:
        self.max_entries = max_entries
        self.max_scratch_nodes = max_scratch_nodes
        self._slots: "OrderedDict[tuple, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.adopted = 0
        self.evicted = 0
        self.trimmed = 0

    def __len__(self) -> int:
        return len(self._slots)

    def seed(self, spg) -> bool:
        """Install cached lattices for ``spg``; True on a content hit."""
        entry = self._slots.get(_content_key(spg))
        if entry is None:
            self.misses += 1
            inc("kernel.lattice_misses")
            return False
        self._slots.move_to_end(_content_key(spg))
        for dkey, lat in entry.items():
            lat.spg = spg
            spg._derived.setdefault(dkey, lat)
        self.hits += 1
        inc("kernel.lattice_hits")
        return True

    def adopt(self, spg) -> int:
        """Harvest ``spg``'s lattices into the cache; returns the count."""
        got = {
            k: v
            for k, v in spg._derived.items()
            if isinstance(k, tuple) and k and k[0] == "ideal_lattice"
        }
        if not got:
            return 0
        for lat in got.values():
            nodes = lat.scratch_stats()["nodes"]
            if nodes > self.max_scratch_nodes:
                lat.clear_scratch()
                self.trimmed += 1
                inc("kernel.lattice_trimmed")
        key = _content_key(spg)
        entry = self._slots.get(key)
        if entry is None:
            if len(self._slots) >= self.max_entries:
                self._slots.popitem(last=False)
                self.evicted += 1
                inc("kernel.lattice_evicted")
            entry = self._slots[key] = {}
        entry.update(got)
        self._slots.move_to_end(key)
        self.adopted += len(got)
        inc("kernel.lattice_adopted", len(got))
        return len(got)

    def stats(self) -> dict:
        """Counters plus current occupancy (lattices and scratch nodes)."""
        lattices = sum(len(e) for e in self._slots.values())
        nodes = sum(
            lat.scratch_stats()["nodes"]
            for e in self._slots.values()
            for lat in e.values()
        )
        return {
            "entries": len(self._slots),
            "lattices": lattices,
            "scratch_nodes": nodes,
            "hits": self.hits,
            "misses": self.misses,
            "adopted": self.adopted,
            "evicted": self.evicted,
            "trimmed": self.trimmed,
        }

    def clear(self) -> None:
        self._slots.clear()


#: The per-process cache behind :func:`worker_lattice_cache`.
_WORKER_CACHE: LatticeCache | None = None


def worker_lattice_cache() -> LatticeCache:
    """The process-wide lattice cache (each pool worker has its own)."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = LatticeCache()
    return _WORKER_CACHE


def reset_worker_cache() -> None:
    """Drop the per-process cache (engine runs start cold).

    ``run_tasks`` calls this so serial runs, pool runs (whose workers
    are born cold anyway) and repeated identical runs in one process all
    report the same deterministic telemetry.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = None
