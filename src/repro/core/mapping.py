"""The mapping object: stage allocation, core speeds, communication paths.

A mapping (Section 3.3) is defined by an allocation function from stages to
cores, a speed per active core, and, for every application edge whose
endpoints land on distinct cores, the path of links used to route the
communication.  Paths default to the platform topology's routing policy
(XY on the mesh) but heuristics may override them (the 1D heuristics route
along the topology's line embedding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import MappingError
from repro.core.partition import is_acyclic_quotient
from repro.platform.cmp import Core
from repro.platform.topology import Topology
from repro.spg.graph import SPG
from repro.util.fmt import format_grid

__all__ = ["Mapping"]

Edge = tuple[int, int]


@dataclass
class Mapping:
    """A complete DAG-partition mapping of an SPG onto a CMP.

    Attributes
    ----------
    spg, grid:
        The application and platform topology (the paper's mesh or any
        other registered fabric).
    alloc:
        ``alloc[i]`` is the core executing stage ``i`` (all stages mapped).
    speeds:
        ``speeds[core]`` for every active core, in Hz (a member of that
        core's speed set — per-core sets may be scaled on heterogeneous
        platforms).
    paths:
        ``paths[(i, j)]`` is the core path (inclusive) routing edge
        ``(i, j)``; edges whose endpoints share a core need no entry.
        Missing paths for remote edges are filled with the topology's
        routing policy (XY routes on the mesh).
    """

    spg: SPG
    grid: Topology
    alloc: dict[int, Core]
    speeds: dict[Core, float]
    paths: dict[Edge, list[Core]] = field(default_factory=dict)
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        route = self.grid.route
        for (i, j) in self.remote_edges():
            if (i, j) not in self.paths:
                self.paths[(i, j)] = route(self.alloc[i], self.alloc[j])

    # ------------------------------------------------------------------
    # Views
    #
    # Mappings are effectively frozen once constructed (heuristics build a
    # fresh Mapping per candidate), so the derived views below are computed
    # once and memoised.  Treat the returned containers as read-only.
    # ------------------------------------------------------------------
    def remote_edges(self) -> list[Edge]:
        """Application edges whose endpoints are on distinct cores.

        Edges with an unmapped endpoint are skipped here so that a partial
        allocation fails in :meth:`check_structure` with a clear error
        rather than during construction.
        """
        cached = self._memo.get("remote_edges")
        if cached is None:
            alloc = self.alloc
            cached = self._memo["remote_edges"] = [
                (i, j)
                for (i, j) in self.spg.edges
                if i in alloc and j in alloc and alloc[i] != alloc[j]
            ]
        return cached

    def clusters(self) -> dict[Core, list[int]]:
        """Stages grouped by core (unmapped stages are skipped).

        Tolerating a partial allocation keeps debugging renders such as
        :meth:`ascii` usable mid-construction; :meth:`check_structure` is
        the place where partial allocations are rejected.
        """
        cached = self._memo.get("clusters")
        if cached is None:
            out: dict[Core, list[int]] = {}
            for i in range(self.spg.n):
                c = self.alloc.get(i)
                if c is not None:
                    out.setdefault(c, []).append(i)
            cached = self._memo["clusters"] = out
        return cached

    def active_cores(self) -> set[Core]:
        """Cores executing at least one stage."""
        cached = self._memo.get("active_cores")
        if cached is None:
            cached = self._memo["active_cores"] = set(self.alloc.values())
        return cached

    def core_work(self) -> dict[Core, float]:
        """Total computation weight per active core."""
        cached = self._memo.get("core_work")
        if cached is None:
            out: dict[Core, float] = {}
            weights = self.spg.weights
            for i, c in self.alloc.items():
                out[c] = out.get(c, 0.0) + weights[i]
            cached = self._memo["core_work"] = out
        return cached

    def link_traffic(self) -> dict[tuple[Core, Core], float]:
        """Bytes per period on every used directed link."""
        cached = self._memo.get("link_traffic")
        if cached is None:
            out: dict[tuple[Core, Core], float] = {}
            edges = self.spg.edges
            for (i, j) in self.remote_edges():
                d = edges[(i, j)]
                path = self.paths[(i, j)]
                for a, b in zip(path, path[1:]):
                    out[(a, b)] = out.get((a, b), 0.0) + d
            cached = self._memo["link_traffic"] = out
        return cached

    def hops(self) -> float:
        """Total byte-hops (communication volume weighted by path length)."""
        return sum(self.link_traffic().values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_structure(self, require_dag_partition: bool = True) -> None:
        """Raise :class:`MappingError` on any structural violation.

        Checks: total allocation onto in-bounds cores, speeds belong to
        each core's speed set and cover all active cores, paths connect the
        right cores over valid links, and — unless ``require_dag_partition``
        is false (*general mappings*, the paper's Section-7 future work) —
        that the clustering is a DAG-partition (acyclic quotient).
        """
        spg, grid = self.spg, self.grid
        if set(self.alloc) != set(range(spg.n)):
            raise MappingError("allocation must cover every stage exactly")
        for i, c in self.alloc.items():
            if not grid.in_bounds(c):
                raise MappingError(f"stage {i} mapped outside the grid: {c}")
        for c in self.active_cores():
            s = self.speeds.get(c)
            if s is None:
                raise MappingError(f"active core {c} has no speed")
            if s not in grid.speed_set(c):
                raise MappingError(f"core {c} speed {s} not in the DVFS set")
        for (i, j) in self.remote_edges():
            path = self.paths.get((i, j))
            if path is None:
                raise MappingError(f"edge ({i}, {j}) has no path")
            if path[0] != self.alloc[i] or path[-1] != self.alloc[j]:
                raise MappingError(
                    f"path for edge ({i}, {j}) does not connect its cores"
                )
            try:
                grid.validate_path(path)
            except ValueError as exc:
                raise MappingError(
                    f"path for edge ({i}, {j}) is invalid: {exc}"
                ) from exc
        if require_dag_partition and not is_acyclic_quotient(spg, self.alloc):
            raise MappingError("clustering is not a DAG-partition")

    def is_valid_structure(self, require_dag_partition: bool = True) -> bool:
        """Boolean form of :meth:`check_structure`."""
        try:
            self.check_structure(require_dag_partition)
        except MappingError:
            return False
        return True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_clusters(
        spg: SPG,
        grid: Topology,
        clusters: dict[Core, list[int]],
        period: float,
        paths: dict[Edge, list[Core]] | None = None,
    ) -> "Mapping":
        """Build a mapping from a core -> stages dictionary.

        Each core is assigned the energy-optimal speed meeting the period
        for its workload (see :meth:`PowerModel.best_feasible`, applied to
        that core's own — possibly scaled — model); raises
        :class:`MappingError` when a cluster cannot meet the period at top
        speed.
        """
        alloc: dict[int, Core] = {}
        for c, stages in clusters.items():
            for i in stages:
                if i in alloc:
                    raise MappingError(f"stage {i} appears in two clusters")
                alloc[i] = c
        speeds: dict[Core, float] = {}
        for c, stages in clusters.items():
            work = sum(spg.weights[i] for i in stages)
            s = grid.core_model(c).best_feasible(work, period)
            if s is None:
                raise MappingError(
                    f"cluster on {c} (work {work:.3g}) cannot meet T={period}"
                )
            speeds[c] = s
        return Mapping(spg, grid, alloc, speeds, dict(paths or {}))

    def ascii(self) -> str:
        """Render the allocation on the grid (stage counts per core)."""
        cells = {
            c: f"{len(stages)}" for c, stages in self.clusters().items()
        }
        return format_grid(self.grid.p, self.grid.q, cells)
