"""Core mapping model: Mapping, evaluation, DAG-partitions, problem."""

from repro.core.errors import (
    ReproError,
    MappingError,
    HeuristicFailure,
    BudgetExceeded,
    UnsupportedPlatform,
)
from repro.core.delta import DeltaState, MoveStage, PowerOff, SwapClusters
from repro.core.mapping import Mapping
from repro.core.evaluate import (
    EnergyBreakdown,
    cycle_times,
    max_cycle_time,
    is_period_feasible,
    energy,
    latency,
    validate,
)
from repro.core.visualize import (
    render_label_grid,
    render_link_utilisation,
    render_mapping,
)
from repro.core.kernels import (
    EnumerationKernel,
    KERNELS,
    LatticeCache,
    get_kernel,
    kernel_names,
    register_kernel,
    set_default_kernel,
    use_kernel,
)
from repro.core.partition import (
    quotient_edges,
    is_acyclic_quotient,
    is_dag_partition,
    IdealLattice,
)
from repro.core.problem import ProblemInstance

__all__ = [
    "ReproError",
    "MappingError",
    "HeuristicFailure",
    "BudgetExceeded",
    "UnsupportedPlatform",
    "DeltaState",
    "MoveStage",
    "SwapClusters",
    "PowerOff",
    "Mapping",
    "EnergyBreakdown",
    "cycle_times",
    "max_cycle_time",
    "is_period_feasible",
    "energy",
    "latency",
    "validate",
    "render_label_grid",
    "render_link_utilisation",
    "render_mapping",
    "EnumerationKernel",
    "KERNELS",
    "LatticeCache",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "set_default_kernel",
    "use_kernel",
    "quotient_edges",
    "is_acyclic_quotient",
    "is_dag_partition",
    "IdealLattice",
    "ProblemInstance",
]
