"""Period and energy evaluation of a mapping (Sections 3.4 and 3.5).

Every heuristic's output is re-evaluated through this module by the
experiment harness, so results cannot depend on heuristic-internal
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import MappingError
from repro.core.mapping import Mapping

__all__ = [
    "EnergyBreakdown",
    "cycle_times",
    "max_cycle_time",
    "is_period_feasible",
    "energy",
    "validate",
]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one mapping over one period, split by source (Joules)."""

    comp_leak: float
    comp_dyn: float
    comm_leak: float
    comm_dyn: float

    @property
    def total(self) -> float:
        return self.comp_leak + self.comp_dyn + self.comm_leak + self.comm_dyn

    @property
    def comp(self) -> float:
        return self.comp_leak + self.comp_dyn

    @property
    def comm(self) -> float:
        return self.comm_leak + self.comm_dyn


def cycle_times(mapping: Mapping) -> dict[object, float]:
    """Cycle-time of every used resource.

    Keys are cores ``(u, v)`` (computation time ``w/s``) and directed links
    ``((u,v), (u',v'))`` (transfer time ``bytes / BW``).  Period-independent,
    hence memoised on the (frozen-after-construction) mapping.
    """
    cached = mapping._memo.get("cycle_times")
    if cached is None:
        out: dict[object, float] = {}
        speeds = mapping.speeds
        for core, work in mapping.core_work().items():
            out[core] = work / speeds[core]
        bw = mapping.grid.model.bandwidth
        for link, traffic in mapping.link_traffic().items():
            out[link] = traffic / bw
        cached = mapping._memo["cycle_times"] = out
    return cached


def max_cycle_time(mapping: Mapping) -> float:
    """The maximum cycle-time over all resources (the achievable period)."""
    cached = mapping._memo.get("max_cycle_time")
    if cached is None:
        times = cycle_times(mapping)
        cached = mapping._memo["max_cycle_time"] = (
            max(times.values()) if times else 0.0
        )
    return cached


def is_period_feasible(
    mapping: Mapping, period: float, rtol: float = 1e-9
) -> bool:
    """True iff no resource's cycle-time exceeds ``period``.

    A tiny relative tolerance absorbs float round-off in DP bookkeeping.
    """
    return max_cycle_time(mapping) <= period * (1.0 + rtol)


def energy(mapping: Mapping, period: float) -> EnergyBreakdown:
    """Energy consumed per period by ``mapping`` (Section 3.5).

    ``E(comp) = |A| P_leak T + sum_cores (w/s) P_dyn(s)`` and
    ``E(comm) = P_leak^comm T + sum_links bits * E_bit``.
    """
    grid = mapping.grid
    model = grid.model
    active = mapping.active_cores()
    comp_leak = len(active) * model.comp_leak * period
    comp_dyn = 0.0
    # Homogeneous platforms (the common case) skip the per-core model
    # lookup entirely; heterogeneous ones resolve each core's scaled model.
    core_model = grid.core_model if grid.speed_scales else None
    for core, work in mapping.core_work().items():
        s = mapping.speeds[core]
        m = core_model(core) if core_model is not None else model
        comp_dyn += (work / s) * m.power_at(s)
    comm_leak = model.comm_leak * period
    comm_dyn = sum(
        model.comm_energy(traffic)
        for traffic in mapping.link_traffic().values()
    )
    return EnergyBreakdown(comp_leak, comp_dyn, comm_leak, comm_dyn)


def validate(
    mapping: Mapping, period: float, require_dag_partition: bool = True
) -> EnergyBreakdown:
    """Full validation: structure plus period; returns the energy breakdown.

    Raises :class:`MappingError` if the mapping is structurally invalid or
    misses the period.  ``require_dag_partition=False`` admits *general
    mappings* (Section-7 future work), which only need a valid allocation,
    speeds and routes.
    """
    mapping.check_structure(require_dag_partition)
    if not is_period_feasible(mapping, period):
        raise MappingError(
            f"period exceeded: max cycle-time {max_cycle_time(mapping):.6g} "
            f"> T={period:.6g}"
        )
    return energy(mapping, period)


def latency(mapping: Mapping) -> float:
    """End-to-end latency of one data set through the mapping (seconds).

    The critical-path time: each stage contributes ``w_i / s`` on its core
    and each remote edge contributes one link transfer per hop
    (``hops * delta / BW``).  Latency is the third objective of the
    companion work on linear chains ([5] in the paper); it is exposed here
    as an additional metric for mappings of SPGs.
    """
    spg = mapping.spg
    bw = mapping.grid.model.bandwidth
    finish: dict[int, float] = {}
    for i in spg.topological_order():
        start = 0.0
        for p in spg.preds(i):
            t = finish[p]
            if mapping.alloc[p] != mapping.alloc[i]:
                hops = len(mapping.paths[(p, i)]) - 1
                t += hops * spg.edges[(p, i)] / bw
            start = max(start, t)
        finish[i] = start + spg.weights[i] / mapping.speeds[mapping.alloc[i]]
    return finish[spg.sink]
