"""Problem instance bundling: an SPG, a CMP and a period bound.

``MinEnergy(T)`` (Definition 1): find a DAG-partition mapping whose maximal
cycle-time does not exceed ``T`` and whose energy is minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluate import EnergyBreakdown, validate
from repro.core.mapping import Mapping
from repro.platform.topology import Topology
from repro.spg.graph import SPG

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """One MinEnergy(T) instance."""

    spg: SPG
    grid: Topology
    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def evaluate(self, mapping: Mapping) -> EnergyBreakdown:
        """Validate ``mapping`` against this instance and return its energy."""
        return validate(mapping, self.period)

    def scaled(self, period: float) -> "ProblemInstance":
        """The same instance with a different period bound."""
        return ProblemInstance(self.spg, self.grid, period)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProblemInstance(n={self.spg.n}, ymax={self.spg.ymax}, "
            f"grid={self.grid.p}x{self.grid.q}, T={self.period:g})"
        )
