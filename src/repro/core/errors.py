"""Exception types shared across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MappingError",
    "HeuristicFailure",
    "BudgetExceeded",
    "UnsupportedPlatform",
    "StoreCorruption",
]


class ReproError(Exception):
    """Base class for all library errors."""


class MappingError(ReproError):
    """A mapping violates a structural or performance constraint."""


class UnsupportedPlatform(ReproError):
    """A solver does not support the requested platform topology.

    Raised *loudly* (instead of silently assuming the paper's mesh) by
    solvers whose formulation is tied to a specific fabric — e.g. the
    Section-4.4 ILP, whose communication variables encode the
    bidirectional mesh's N/S/W/E link structure and whose speed/period
    constraints assume one homogeneous DVFS model.
    """


class StoreCorruption(ReproError):
    """A result-store row failed integrity verification.

    Raised with the offending key when a stored payload no longer
    parses as JSON or no longer matches its recorded sha256 checksum
    (torn write, disk fault, manual tampering).  The store-facing
    recovery paths quarantine such rows and recompute their cells
    instead of letting a raw ``json.JSONDecodeError`` abort a resumed
    sweep; see ``repro store verify``.
    """

    def __init__(self, key: str, reason: str) -> None:
        super().__init__(f"store row {key[:16]}... is corrupt: {reason}")
        self.key = key
        self.reason = reason


class HeuristicFailure(ReproError):
    """A heuristic could not produce a valid mapping for this instance.

    This is an *expected* outcome in the paper's evaluation (Tables 2 and 3
    count failures per heuristic); experiment runners catch it and record a
    failure rather than aborting.
    """


class BudgetExceeded(HeuristicFailure):
    """A dynamic program exceeded its state budget.

    DPA1D enumerates up to ``n^ymax`` admissible subgraphs; the paper reports
    it failing on high-elevation workflows because "there are too many
    possible splits to explore".  We make that concrete with an explicit
    state budget.
    """
