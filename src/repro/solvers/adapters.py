"""Adapters wrapping the existing producers into the solver registry.

Three families:

* :class:`HeuristicSolver` wraps any callable in the Section-5 heuristic
  registry (``repro.heuristics.base.REGISTRY``): run the heuristic, then
  *independently* re-validate its output so results never depend on
  heuristic-internal bookkeeping — byte-for-byte the contract the legacy
  ``heuristics.base.run`` enforced (the golden mesh fixtures pin this).
* :class:`RefineStage` turns the Section-7 local-search refiner into a
  *transform* stage, replacing the special-cased ``refine=...`` kwargs:
  ``"dpa2d1d+refine"`` refines DPA2D1D's output with the same continuing
  RNG stream the kwargs path used, so the two are bit-identical.
* :class:`ExactSolver` wraps the ``exact/`` solvers (brute force and the
  Section-4.4 ILP, the latter also registered as ``bnb`` after the
  in-house 0-1 branch & bound that solves it).  Exact solvers are
  deterministic and ignore the RNG; unsupported platforms fail loudly
  (:class:`~repro.core.errors.UnsupportedPlatform`) instead of silently
  assuming the mesh.
"""

from __future__ import annotations

import time

from repro.core.errors import (
    HeuristicFailure,
    MappingError,
    UnsupportedPlatform,
)
from repro.core.evaluate import validate
from repro.solvers.base import (
    Solver,
    SolverResult,
    register_solver,
    timed,
)

__all__ = ["HeuristicSolver", "RefineStage", "ExactSolver"]


def _validated_result(
    spec: str,
    mapping,
    problem,
    t0: float,
    require_dag_partition: bool = True,
    extra_stats: dict | None = None,
) -> SolverResult:
    """Independently re-validate ``mapping`` and wrap it as a result.

    The shared tail of every adapter: a mapping that fails validation
    becomes an ``INVALID OUTPUT`` failure (a solver bug, not an
    infeasible instance), success carries the re-validated breakdown
    plus the wall-clock since ``t0``.
    """
    try:
        breakdown = validate(
            mapping, problem.period,
            require_dag_partition=require_dag_partition,
        )
    except MappingError as exc:
        return SolverResult(
            spec, None, None,
            failure=f"INVALID OUTPUT: {exc}", stats=timed(t0),
        )
    stats = timed(t0)
    if extra_stats:
        stats.update(extra_stats)
    return SolverResult(spec, mapping, breakdown, stats=stats)

#: solver key -> Section-5 heuristic registry name.
HEURISTIC_KEYS = {
    "random": "Random",
    "greedy": "Greedy",
    "dpa2d": "DPA2D",
    "dpa1d": "DPA1D",
    "dpa2d1d": "DPA2D1D",
}


class HeuristicSolver(Solver):
    """A producer wrapping one registered Section-5 heuristic.

    ``heuristic`` is the *heuristic* registry name (``"Random"``,
    ``"Greedy"``, ... — looked up lazily so ad-hoc test registrations
    work too); ``options`` are forwarded to the heuristic callable.
    """

    kind = "producer"

    def __init__(
        self, heuristic: str, options: dict | None = None,
        spec: str | None = None,
    ) -> None:
        self.heuristic = heuristic
        self.options = dict(options or {})
        self.spec = spec if spec is not None else heuristic.lower()

    def solve(self, problem, rng=None, upstream=None) -> SolverResult:
        from repro.heuristics.base import REGISTRY

        fn = REGISTRY[self.heuristic]
        t0 = time.perf_counter()
        try:
            mapping = fn(problem, rng=rng, **self.options)
        except HeuristicFailure as exc:
            return SolverResult(
                self.spec, None, None,
                failure=str(exc) or "failed", stats=timed(t0),
            )
        return _validated_result(self.spec, mapping, problem, t0)

    def describe(self) -> str:
        return f"producer wrapping the {self.heuristic} heuristic"


class RefineStage(Solver):
    """Transform stage: delta-evaluated local-search refinement.

    Refines the upstream mapping through
    :func:`repro.heuristics.refine.refine_mapping`, forwarding the
    shared RNG verbatim (the refiner continues the producer's stream,
    exactly as the deprecated ``refine=...`` kwargs path did) and
    re-validating the result with ``require_dag_partition`` relaxed only
    when ``allow_general`` admits general mappings.
    """

    kind = "transform"

    def __init__(
        self,
        sweeps: int = 4,
        schedule: str = "first",
        allow_general: bool = False,
        spec: str | None = None,
    ) -> None:
        self.sweeps = sweeps
        self.schedule = schedule
        self.allow_general = allow_general
        if spec is None:
            spec = "refine" if schedule == "first" else f"refine-{schedule}"
        self.spec = spec

    def solve(self, problem, rng=None, upstream=None) -> SolverResult:
        from repro.heuristics.refine import refine_mapping

        if upstream is None or not upstream.ok:
            raise ValueError(
                f"{self.spec!r} is a transform stage: it needs a successful "
                "upstream mapping (use it after a producer, e.g. "
                f"'dpa2d1d+{self.spec}')"
            )
        t0 = time.perf_counter()
        mapping = refine_mapping(
            problem, upstream.mapping, rng=rng, sweeps=self.sweeps,
            allow_general=self.allow_general, schedule=self.schedule,
        )
        return _validated_result(
            self.spec, mapping, problem, t0,
            require_dag_partition=not self.allow_general,
        )

    def describe(self) -> str:
        gen = ", general mappings" if self.allow_general else ""
        return (
            f"transform: local-search refinement "
            f"(schedule={self.schedule}, sweeps={self.sweeps}{gen})"
        )


class ExactSolver(Solver):
    """A producer wrapping one exact solver from ``repro.exact``.

    ``which`` selects ``"bruteforce"`` or ``"ilp"``; ``options`` are
    forwarded (the ILP accepts ``max_nodes``).  The optimiser's own
    objective is discarded in favour of independent re-validation, so
    exact and heuristic results are compared on identical footing.

    An :class:`UnsupportedPlatform` error is recorded as this solver's
    *failure* (message intact, prefixed with the error class) rather
    than propagated: the direct ``exact/`` entry points still raise
    loudly, but inside the run/sweep/portfolio harness an unsupported
    column must count as a failure like any other, not abort the whole
    sweep and discard its completed results.
    """

    kind = "producer"

    def __init__(
        self, which: str, options: dict | None = None,
        spec: str | None = None,
    ) -> None:
        self.which = which
        self.options = dict(options or {})
        self.spec = spec if spec is not None else which

    def solve(self, problem, rng=None, upstream=None) -> SolverResult:
        t0 = time.perf_counter()
        if self.which == "bruteforce":
            from repro.exact.brute_force import brute_force_optimal as fn
        else:
            from repro.exact.ilp_model import ilp_optimal as fn
        try:
            mapping, objective = fn(problem, **self.options)
        except HeuristicFailure as exc:
            return SolverResult(
                self.spec, None, None,
                failure=str(exc) or "failed", stats=timed(t0),
            )
        except UnsupportedPlatform as exc:
            return SolverResult(
                self.spec, None, None,
                failure=f"UnsupportedPlatform: {exc}", stats=timed(t0),
            )
        return _validated_result(
            self.spec, mapping, problem, t0,
            extra_stats={"objective": objective},
        )

    def describe(self) -> str:
        return f"producer wrapping the exact {self.which} solver"


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------
def _register_heuristics() -> None:
    summaries = {
        "random": "random valid DAG-partition mappings, best of N trials "
                  "(Section 5.1)",
        "greedy": "speed-level sweep of the forwarding greedy placement "
                  "(Section 5.2)",
        "dpa2d": "2D double dynamic program on the real grid (Section 5.3)",
        "dpa1d": "optimal uni-line DP mapped along the line embedding "
                 "(Section 5.4)",
        "dpa2d1d": "DPA2D on a virtual 1 x pq line, snake-embedded "
                   "(Section 5.4)",
    }
    for key, name in HEURISTIC_KEYS.items():

        def factory(_name=name, _key=key, **options) -> Solver:
            return HeuristicSolver(_name, options, spec=_key)

        register_solver(key, summaries[key], kind="producer")(factory)


def _register_transforms() -> None:
    for schedule, summary in (
        ("first", "delta-evaluated refinement, first-improvement "
                  "(Section 7)"),
        ("best", "delta-evaluated refinement, best-improvement per "
                 "neighbourhood"),
        ("anneal", "delta-evaluated refinement, simulated annealing"),
    ):
        key = "refine" if schedule == "first" else f"refine-{schedule}"

        def factory(_schedule=schedule, _key=key, **options) -> Solver:
            options.setdefault("schedule", _schedule)
            return RefineStage(spec=_key, **options)

        register_solver(key, summary, kind="transform")(factory)


def _register_exact() -> None:
    register_solver(
        "bruteforce",
        "exhaustive optimal DAG-partition search (tiny instances only)",
        kind="producer",
    )(lambda **options: ExactSolver("bruteforce", options))
    register_solver(
        "ilp",
        "Section-4.4 ILP solved by the in-house 0-1 branch & bound "
        "(homogeneous mesh only)",
        kind="producer",
    )(lambda **options: ExactSolver("ilp", options, spec="ilp"))
    register_solver(
        "bnb",
        "alias of ilp: the same Section-4.4 model through the 0-1 "
        "branch & bound",
        kind="producer",
    )(lambda **options: ExactSolver("ilp", options, spec="bnb"))


_register_heuristics()
_register_transforms()
_register_exact()
