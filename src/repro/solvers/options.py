"""Shared run-option plumbing between the experiment runners and solvers.

Before the solver layer, ``random_experiments.py``,
``streamit_experiments.py`` and ``scenarios.py`` each threaded the
runner-level refinement flags into per-solver worker options through
copy-pasted ``refine_options(...)`` calls.  That plumbing now lives here
once: :func:`merge_solver_options` works for any mix of legacy heuristic
names and solver-spec strings, and the old ``refine_options`` name
survives as a deprecated alias in ``repro.experiments.runner``.
"""

from __future__ import annotations

__all__ = ["merge_solver_options", "solver_for_run"]


def _has_refine_stage(name: str) -> bool:
    """True iff spec ``name`` already pipelines a refine stage.

    Case-insensitive, matching ``get_solver``'s key lookup.
    """
    return any(
        stage.strip().lower().startswith("refine")
        for member in name.split("|")
        for stage in member.split("+")[1:]
    )


def merge_solver_options(
    options: dict | None,
    names,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
) -> dict | None:
    """Merge runner-level refinement flags into per-solver run options.

    ``names`` are the solver columns of the sweep — legacy heuristic
    names or solver specs; the merged entries feed ``run(name, ...,
    **options[name])`` inside the workers (task tuples and worker
    signatures stay unchanged).  Explicit per-solver settings win over
    the runner-level flags; columns whose spec already pipelines a
    refine stage (``"dpa2d1d+refine"``) are left alone, so combining
    ``--refine`` with ``--solvers X+refine`` does not silently run the
    refinement twice.  ``options`` is returned untouched when
    ``refine`` is false.
    """
    if not refine:
        return options
    merged = dict(options or {})
    for name in names:
        if _has_refine_stage(name):
            continue
        entry = dict(merged.get(name, {}))
        entry.setdefault("refine", True)
        entry.setdefault("refine_sweeps", refine_sweeps)
        entry.setdefault("refine_schedule", refine_schedule)
        merged[name] = entry
    return merged


def solver_for_run(
    name: str,
    options: dict | None = None,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    refine_allow_general: bool = False,
):
    """The solver behind one ``heuristics.base.run`` invocation.

    ``name`` may be a legacy Section-5 heuristic registry name
    (``"Random"``, ``"Greedy"``, ...) — wrapped directly so ad-hoc test
    registrations keep working — or any solver spec
    (``"dpa2d1d+refine"``, ``"portfolio"``, ``"greedy|dpa1d"``).  The
    deprecated ``refine`` kwargs append a :class:`RefineStage`, exactly
    aliasing the ``"+refine"`` spec syntax.  ``refine=True`` on a spec
    that already pipelines a refine stage is a no-op (the request is
    already satisfied — refinement never runs twice), but combining
    such a spec with *non-default* ``refine_*`` settings is a conflict
    and raises ``ValueError`` rather than silently dropping them.

    Raises ``KeyError`` for unknown names (the historical ``run``
    contract) and ``ValueError`` for structurally invalid specs.
    """
    from repro.heuristics.base import REGISTRY as HEURISTICS
    from repro.solvers.adapters import HeuristicSolver, RefineStage
    from repro.solvers.base import parse_solver_spec
    from repro.solvers.composite import PipelineSolver

    if name in HEURISTICS:
        base = HeuristicSolver(name, options, spec=name)
    else:
        base = parse_solver_spec(name, options or None)
    if not refine:
        return base
    if _has_refine_stage(name):
        if (refine_schedule != "first" or refine_sweeps != 4
                or refine_allow_general):
            raise ValueError(
                f"spec {name!r} already pipelines a refine stage; "
                "configure it in the spec (e.g. '+refine-best', "
                "'+refine-anneal') instead of passing conflicting "
                "refine_* options"
            )
        return base
    return PipelineSolver(
        [base, RefineStage(
            sweeps=refine_sweeps, schedule=refine_schedule,
            allow_general=refine_allow_general,
        )],
        spec=f"{name}+refine",
    )
