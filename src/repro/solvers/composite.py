"""Composite solvers: pipelines and portfolios.

:class:`PipelineSolver` chains a producer with transform stages
(``"dpa2d1d+refine"``): every stage receives the *same* RNG value, so a
heuristic followed by refinement consumes one continuing stream exactly
as the deprecated ``refine=...`` kwargs path did — the two are pinned
bit-identical by ``tests/test_solvers.py``.

:class:`PortfolioSolver` runs N registered solvers on the same instance
(``"greedy|dpa2d1d+refine"``) and returns the best feasible mapping.
Member seeds are pre-drawn serially from the portfolio RNG and members
are dispatched through the PR-1 parallel engine
(:func:`repro.experiments.parallel.run_tasks`), so the winner — ties
broken deterministically toward the earliest member — is bit-identical
for any ``jobs`` value.  Members are resolved to solver objects once at
construction (spec strings are parsed, configured solvers keep their
options) and those objects are shipped to the workers, so serial and
pooled execution run literally the same solvers.
"""

from __future__ import annotations

import time

from repro.core.errors import ReproError
from repro.obs.session import trace_span
from repro.solvers.base import (
    Solver,
    SolverResult,
    parse_solver_spec,
    register_solver,
    timed,
)
from repro.util.rng import as_rng

__all__ = ["PipelineSolver", "PortfolioSolver", "portfolio_member_task"]


class PipelineSolver(Solver):
    """A producer followed by transform stages, run left to right.

    A stage failure short-circuits the pipeline (matching the legacy
    behaviour of never refining a failed heuristic); the failure is
    reported under the pipeline's own spec with the failing stage named
    in ``stats``.
    """

    kind = "composite"

    def __init__(self, stages: list[Solver], spec: str | None = None) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        if stages[0].kind == "transform":
            raise ValueError(
                f"pipeline stage {stages[0].spec!r} is a transform and "
                "cannot come first"
            )
        for st in stages[1:]:
            if st.kind != "transform":
                raise ValueError(
                    f"pipeline stage {st.spec!r} must be a transform "
                    "(only the first stage produces a mapping)"
                )
        self.stages = list(stages)
        self.spec = spec if spec is not None else "+".join(
            st.spec for st in stages
        )

    def solve(self, problem, rng=None, upstream=None) -> SolverResult:
        t0 = time.perf_counter()
        res = upstream
        stage_stats: list[dict] = []
        for stage in self.stages:
            with trace_span(
                "solver.stage", stage=stage.spec, pipeline=self.spec
            ):
                res = stage.solve(problem, rng=rng, upstream=res)
            stage_stats.append({
                "solver": stage.spec,
                "ok": res.ok,
                "energy": None if not res.ok else res.total_energy,
                "seconds": res.stats.get("seconds"),
            })
            if not res.ok:
                break
        stats = timed(t0)
        stats["stages"] = stage_stats
        return SolverResult(
            self.spec, res.mapping, res.energy, res.failure, stats=stats
        )

    def set_jobs(self, jobs: int | None) -> None:
        for stage in self.stages:
            stage.set_jobs(jobs)

    def describe(self) -> str:
        return "pipeline: " + " -> ".join(
            f"{st.spec} ({st.describe()})" for st in self.stages
        )


def portfolio_member_task(task) -> SolverResult:
    """Worker for one portfolio member: ``(solver, problem, seed)``.

    The member solver is solved with its pre-drawn seed, so the result
    is a pure function of the task tuple — identical whether it runs
    in-process or in a pool worker.  Library errors a member raises
    *loudly* on its own (e.g. :class:`UnsupportedPlatform` from the ILP
    off the mesh) are recorded as that member's failure here, keeping
    the portfolio's best-feasible-member contract; non-library
    exceptions still propagate as genuine bugs.
    """
    solver, problem, seed = task
    with trace_span("solver.member", solver=solver.spec):
        try:
            return solver.solve(problem, rng=as_rng(seed))
        except ReproError as exc:
            return SolverResult(
                solver.spec, None, None,
                failure=f"{type(exc).__name__}: {exc}",
            )


class PortfolioSolver(Solver):
    """Run every member on the instance; keep the best feasible mapping.

    ``members`` are solver specs (strings, parsed once here) or
    configured :class:`Solver` objects, which are used as given — their
    options survive pool dispatch because the objects themselves are
    shipped to the workers.  One seed per member is pre-drawn from the
    portfolio RNG in member order; the winner is the lowest
    re-validated total energy, ties broken toward the earliest member —
    both independent of ``jobs``.
    """

    kind = "composite"

    def __init__(
        self,
        members: "list[str | Solver]",
        jobs: int | None = 1,
        spec: str | None = None,
    ) -> None:
        if not members:
            raise ValueError("a portfolio needs at least one member")
        self._solvers = [parse_solver_spec(m) for m in members]
        self.members = [s.spec for s in self._solvers]
        self.jobs = jobs
        self.spec = spec if spec is not None else "|".join(self.members)

    def solve(self, problem, rng=None, upstream=None) -> SolverResult:
        from repro.experiments.parallel import run_tasks
        from repro.resilience import TaskFailure

        t0 = time.perf_counter()
        rng = as_rng(rng)
        seeds = [int(rng.integers(0, 2**63 - 1)) for _ in self._solvers]
        tasks = [
            (solver, problem, seed)
            for solver, seed in zip(self._solvers, seeds)
        ]
        # Degrade, don't abort: a member lost to a crashed/hung worker
        # (after retries) becomes that member's failure, and the
        # portfolio still returns the best *surviving* mapping.
        with trace_span("solver.portfolio", members=len(self._solvers)):
            results = run_tasks(
                portfolio_member_task, tasks, jobs=self.jobs,
                failures="record", tokens=seeds,
            )
        results = [
            SolverResult(
                self._solvers[i].spec, None, None, failure=r.describe()
            ) if isinstance(r, TaskFailure) else r
            for i, r in enumerate(results)
        ]
        best_i: int | None = None
        for i, r in enumerate(results):
            if r.ok and (
                best_i is None
                or r.total_energy < results[best_i].total_energy
            ):
                best_i = i
        stats = timed(t0)
        stats.update({
            "members": [
                {
                    "solver": spec,
                    "ok": r.ok,
                    "energy": r.total_energy if r.ok else None,
                    "failure": r.failure,
                    "seconds": r.stats.get("seconds"),
                }
                for spec, r in zip(self.members, results)
            ],
            "winner": None if best_i is None else self.members[best_i],
        })
        if best_i is None:
            return SolverResult(
                self.spec, None, None,
                failure="portfolio: every member failed", stats=stats,
            )
        win = results[best_i]
        return SolverResult(
            self.spec, win.mapping, win.energy, stats=stats
        )

    def set_jobs(self, jobs: int | None) -> None:
        self.jobs = jobs

    def describe(self) -> str:
        return (
            "portfolio (best feasible member, deterministic tie-break): "
            + ", ".join(self.members)
        )


@register_solver(
    "portfolio",
    "run all five Section-5 heuristics, keep the best feasible mapping "
    "(jobs-invariant)",
    kind="composite",
)
def _portfolio_factory(members=None, jobs: int | None = 1):
    if members is None:
        members = ["random", "greedy", "dpa2d", "dpa1d", "dpa2d1d"]
    return PortfolioSolver(list(members), jobs=jobs, spec="portfolio")
