"""The unified solver abstraction: protocol, result type and registry.

The paper compares many mapping *strategies* — the five Section-5
heuristics, the exact Section-4 solvers, and local-search refinement —
but each historically had its own call path (``heuristics.base.run``,
``exact/`` entry points, ``refine_options()`` plumbing in the experiment
runners).  This module unifies them behind one abstraction, mirroring
the platform subsystem's registry (``repro/platform/topology.py``):

* a :class:`Solver` produces (or transforms) a mapping for one
  :class:`~repro.core.problem.ProblemInstance` and returns a
  :class:`SolverResult` — mapping, independently re-validated energy
  breakdown, failure reason and a ``stats`` dict with wall-clock timings;
* every concrete solver registers under a string key
  (:func:`register_solver`); ``get_solver(name, **options)`` builds one;
* :func:`parse_solver_spec` turns a *spec string* into a composite
  solver: ``+`` chains a producer with transform stages into a
  :class:`~repro.solvers.composite.PipelineSolver`
  (``"dpa2d1d+refine"``), ``|`` joins alternatives into a
  :class:`~repro.solvers.composite.PortfolioSolver`
  (``"greedy|dpa2d1d+refine"``) that returns the best feasible result
  with deterministic, jobs-invariant tie-breaking.

Every solver's ``solve`` is deterministic given its RNG input, and the
registry-routed adapters are pinned bit-identical to the legacy direct
call paths they wrap (``tests/test_solvers.py``).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.core.evaluate import EnergyBreakdown
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance

__all__ = [
    "SolverResult",
    "Solver",
    "SolverSpec",
    "SOLVERS",
    "register_solver",
    "get_solver",
    "solver_names",
    "parse_solver_spec",
    "solve",
]


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver run on one problem instance.

    ``energy`` is always the *independently re-validated* breakdown (the
    solver's own bookkeeping is never trusted), so two solvers reporting
    the same mapping report bit-identical energies.  ``stats`` carries
    solver-specific metadata — at least ``{"seconds": wall_clock}``;
    composites add per-stage / per-member sub-records and the portfolio
    winner.  Stats never influence the mapping or its score.
    """

    solver: str
    mapping: Mapping | None
    energy: EnergyBreakdown | None
    failure: str | None = None
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.mapping is not None

    @property
    def total_energy(self) -> float:
        """Total energy, or +inf for failures (for min/normalisation)."""
        return self.energy.total if self.energy is not None else float("inf")

    # -- serialization (the result-store contract) ---------------------
    def to_payload(self) -> dict:
        """A plain-JSON payload that round-trips this result losslessly.

        The payload does not repeat the SPG/platform (the store key
        already pins them); :meth:`from_payload` takes them as context.
        """
        from repro.store.serialize import result_to_payload

        return result_to_payload(self)

    @staticmethod
    def from_payload(payload: dict, spg, grid) -> "SolverResult":
        """Rebuild a result from :meth:`to_payload` output."""
        from repro.store.serialize import solver_result_from_payload

        return solver_result_from_payload(payload, spg, grid)


class Solver(ABC):
    """One mapping strategy (see the module docstring).

    Concrete solvers set ``spec`` (the canonical spec string that
    rebuilds them, used for display and for shipping portfolio members
    to worker processes) and ``kind``:

    ``producer``
        Builds a mapping from the problem alone (heuristics, exact
        solvers).
    ``transform``
        Post-processes an upstream result (refinement); only valid as a
        non-first pipeline stage.
    ``composite``
        Combines other solvers (pipeline, portfolio).
    """

    #: Canonical spec string (set per instance).
    spec: str = "abstract"
    #: One of "producer", "transform", "composite".
    kind: str = "producer"

    @abstractmethod
    def solve(
        self,
        problem: ProblemInstance,
        rng=None,
        upstream: SolverResult | None = None,
    ) -> SolverResult:
        """Solve ``problem``; deterministic given ``rng``.

        ``rng`` is forwarded verbatim (integer seed or Generator) so a
        pipeline's stages share one stream exactly as the legacy
        refine-kwargs path did.  ``upstream`` carries the previous
        stage's result into transform stages; producers ignore it.
        """

    def set_jobs(self, jobs: int | None) -> None:
        """Set worker-process counts on any nested portfolio (no-op here)."""

    def describe(self) -> str:
        """One-line structural description (``repro solvers describe``)."""
        return f"{self.kind} solver {self.spec!r}"


def timed(t0: float) -> dict:
    """A fresh stats dict holding the wall-clock since ``t0``."""
    return {"seconds": time.perf_counter() - t0}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolverSpec:
    """A registered solver: key, one-line summary, kind and a factory.

    The factory signature is ``factory(**options) -> Solver``; options
    are solver-specific (e.g. ``trials`` for ``random``, ``sweeps`` /
    ``schedule`` for the refine stages, ``members`` / ``jobs`` for the
    portfolio).
    """

    name: str
    summary: str
    kind: str
    factory: Callable[..., "Solver"]


#: name -> spec, populated by :func:`register_solver`.
SOLVERS: dict[str, SolverSpec] = {}


def register_solver(name: str, summary: str, kind: str = "producer"):
    """Decorator adding a factory to :data:`SOLVERS` under ``name``."""

    def deco(fn: Callable[..., "Solver"]) -> Callable[..., "Solver"]:
        SOLVERS[name] = SolverSpec(name, summary, kind, fn)
        return fn

    return deco


def solver_names() -> list[str]:
    """All registered solver keys, sorted."""
    return sorted(SOLVERS)


def get_solver(name: str, **options) -> Solver:
    """Build registered solver ``name`` (case-insensitive key).

    Raises ``KeyError`` with the available names when ``name`` is
    unknown, mirroring :func:`repro.platform.topology.get_topology`.
    """
    spec = SOLVERS.get(name) or SOLVERS.get(name.lower())
    if spec is None:
        raise KeyError(
            f"unknown solver {name!r}; available: "
            f"{', '.join(solver_names())} (specs compose with '+' and '|')"
        )
    return spec.factory(**options)


def parse_solver_spec(
    spec: "str | Solver", options: dict | None = None
) -> Solver:
    """Turn a spec string into a (possibly composite) solver.

    Grammar: ``spec := member ("|" member)*``, ``member := name ("+"
    name)*``.  A ``+`` chain is a pipeline — the first name must be a
    producer (or composite), the rest transform stages; ``|``
    alternatives form a portfolio.  ``options`` apply to the producer of
    a single pipeline (portfolio specs reject them — configure members
    programmatically instead).

    Raises ``KeyError`` for unknown names and ``ValueError`` for
    structurally invalid specs (e.g. ``"refine"`` with nothing to
    refine).
    """
    from repro.solvers.composite import PipelineSolver, PortfolioSolver

    if isinstance(spec, Solver):
        return spec
    s = spec.strip()
    if not s:
        raise ValueError("empty solver spec")
    if "|" in s:
        if options:
            raise ValueError(
                "producer options cannot be attached to a portfolio spec; "
                "build the members programmatically instead"
            )
        members = [m.strip() for m in s.split("|")]
        return PortfolioSolver(members, spec=s)  # parses each member
    parts = [p.strip() for p in s.split("+")]
    stages = [
        get_solver(part, **(options if i == 0 and options else {}))
        for i, part in enumerate(parts)
    ]
    if len(stages) == 1:
        if stages[0].kind == "transform":
            raise ValueError(
                f"{parts[0]!r} is a transform stage and needs an "
                f"upstream producer (e.g. 'dpa2d1d+{parts[0]}')"
            )
        return stages[0]
    # The stage-kind grammar (a transform cannot start a pipeline, only
    # transforms may follow '+') is enforced once, by PipelineSolver.
    return PipelineSolver(stages, spec=s)


def solve(
    spec: "str | Solver", problem: ProblemInstance, rng=None, **options
) -> SolverResult:
    """One-call convenience: parse ``spec`` and solve ``problem``."""
    return parse_solver_spec(spec, options or None).solve(problem, rng=rng)
