"""Unified solver registry and composable pipeline layer.

One abstraction for every mapping strategy — the Section-5 heuristics,
the exact Section-4 solvers, local-search refinement as a pipeline
stage, and portfolios over all of them.  See ``repro.solvers.base`` for
the protocol/registry and ``repro.solvers.composite`` for composition;
``repro solvers list`` surfaces the registry on the CLI.
"""

from repro.solvers.base import (
    SOLVERS,
    Solver,
    SolverResult,
    SolverSpec,
    get_solver,
    parse_solver_spec,
    register_solver,
    solve,
    solver_names,
)
from repro.solvers.adapters import (
    HEURISTIC_KEYS,
    ExactSolver,
    HeuristicSolver,
    RefineStage,
)
from repro.solvers.composite import (
    PipelineSolver,
    PortfolioSolver,
    portfolio_member_task,
)
from repro.solvers.options import merge_solver_options, solver_for_run

__all__ = [
    "SOLVERS",
    "Solver",
    "SolverResult",
    "SolverSpec",
    "get_solver",
    "parse_solver_spec",
    "register_solver",
    "solve",
    "solver_names",
    "HEURISTIC_KEYS",
    "ExactSolver",
    "HeuristicSolver",
    "RefineStage",
    "PipelineSolver",
    "PortfolioSolver",
    "portfolio_member_task",
    "merge_solver_options",
    "solver_for_run",
]
