"""Period-bound selection (Section 6.1.3).

For each workflow the paper starts from ``T = 1 s`` (where at least one
heuristic succeeds), iteratively divides the period by 10 and re-runs all
heuristics until *all* of them fail; the retained period is the penultimate
value — the last one before total failure.  This gives the mapping problem
"some tightness": at least one heuristic succeeds at ``T`` but none does at
``T / 10``.

Our stage weights are synthesised, so as a safety net the search also walks
*up* by the same factor if every heuristic already fails at the starting
period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ProblemInstance
from repro.heuristics.base import PAPER_ORDER, HeuristicResult, run
from repro.platform.topology import Topology
from repro.spg.graph import SPG
from repro.util.rng import as_rng

__all__ = ["PeriodChoice", "choose_period", "run_all"]


@dataclass(frozen=True)
class PeriodChoice:
    """The selected period and the heuristic results obtained at it."""

    period: float
    results: dict[str, HeuristicResult]

    @property
    def successes(self) -> int:
        return sum(1 for r in self.results.values() if r.ok)


def run_all(
    problem: ProblemInstance,
    heuristics=PAPER_ORDER,
    rng=None,
    options: dict | None = None,
) -> dict[str, HeuristicResult]:
    """Run every solver on ``problem`` with per-solver RNG streams.

    ``heuristics`` entries are Section-5 heuristic names or any solver
    spec from the unified registry (``"dpa2d1d+refine"``,
    ``"portfolio"``, ...); each gets an independent child stream drawn
    from the shared ``rng`` in column order.
    """
    rng = as_rng(rng)
    options = options or {}
    out: dict[str, HeuristicResult] = {}
    for name in heuristics:
        child = as_rng(int(rng.integers(0, 2**63 - 1)))
        out[name] = run(name, problem, rng=child, **options.get(name, {}))
    return out


def choose_period(
    spg: SPG,
    grid: Topology,
    heuristics=PAPER_ORDER,
    start: float = 1.0,
    factor: float = 10.0,
    max_steps: int = 8,
    rng=None,
    options: dict | None = None,
    seed: int | None = None,
) -> PeriodChoice:
    """Select the period by the paper's divide-by-10 procedure.

    Returns the penultimate period (the tightest one where at least one
    heuristic succeeds) together with the results obtained there.  Raises
    ``RuntimeError`` if no period in the searched range admits any valid
    mapping (which would mean the instance is broken).

    ``seed`` is the heuristic seed normally drawn from ``rng`` as the first
    step; the parallel experiment engine pre-draws it in the parent process
    (preserving the shared stream's consumption order exactly) and passes
    it here so workers reproduce the serial results bit for bit.
    """
    if seed is None:
        rng = as_rng(rng)
        seed = int(rng.integers(0, 2**63 - 1))

    def attempt(T: float) -> dict[str, HeuristicResult]:
        return run_all(
            ProblemInstance(spg, grid, T), heuristics, as_rng(seed), options
        )

    T = start
    results = attempt(T)
    steps = 0
    while not any(r.ok for r in results.values()):
        # Safety net: walk up until something succeeds.
        T *= factor
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"no heuristic succeeds for any period up to {T:g}"
            )
        results = attempt(T)
    # Walk down while at least one heuristic still succeeds.
    for _ in range(max_steps):
        tighter = attempt(T / factor)
        if not any(r.ok for r in tighter.values()):
            break
        T /= factor
        results = tighter
    return PeriodChoice(T, results)
