"""Random-SPG experiments: Figures 10-13 and Table 3 of the paper.

For a given application size ``n`` and square grid, random SPGs are binned
by elevation; for each instance the period is chosen by the divide-by-10
procedure and all heuristics run.  The plots show, per elevation bin, the
average of ``E_min / E`` (inverse energy normalised to the best heuristic,
failures counting 0); Table 3 counts failures per heuristic and CCR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import random_panel_task, run_tasks
from repro.experiments.runner import (
    FailureCounter,
    InstanceRecord,
    normalized_inverse_energy,
)
from repro.heuristics.base import PAPER_ORDER
from repro.solvers.options import merge_solver_options
from repro.platform.topology import Topology
from repro.spg.random_gen import random_spg_with_elevation
from repro.util.fmt import format_table
from repro.util.rng import as_rng

__all__ = ["RandomExperiment", "run_random_experiment", "DEFAULT_ELEVATIONS"]

#: Elevation bins: the paper sweeps 1..~20 (50 nodes) / 1..~30 (150 nodes).
DEFAULT_ELEVATIONS: tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16, 20)


@dataclass
class RandomExperiment:
    """Results of one (n, grid, CCR) sweep over elevation bins."""

    n: int
    grid: Topology
    ccr: float
    records: dict[int, list[InstanceRecord]]  # elevation -> replicates
    heuristics: tuple[str, ...]

    def mean_inverse_energy(self) -> dict[int, dict[str, float]]:
        """Per elevation bin, the mean normalised inverse energy (Figs 10-13)."""
        out: dict[int, dict[str, float]] = {}
        for elev, recs in sorted(self.records.items()):
            sums = {h: 0.0 for h in self.heuristics}
            for rec in recs:
                inv = normalized_inverse_energy(rec)
                for h in self.heuristics:
                    sums[h] += inv.get(h, 0.0)
            out[elev] = {h: sums[h] / len(recs) for h in self.heuristics}
        return out

    def failure_table(self) -> FailureCounter:
        """Failure counts over every instance of the sweep (Table 3 row)."""
        counter = FailureCounter(self.heuristics)
        for recs in self.records.values():
            for rec in recs:
                counter.add(rec)
        return counter

    def render(self) -> str:
        series = self.mean_inverse_energy()
        rows = [
            [elev, *(round(series[elev][h], 3) for h in self.heuristics)]
            for elev in sorted(series)
        ]
        table = format_table(
            ["elevation", *self.heuristics],
            rows,
            title=(
                f"Mean normalised 1/E (n={self.n}, "
                f"{self.grid.p}x{self.grid.q} grid, CCR={self.ccr:g})"
            ),
        )
        counter = self.failure_table()
        fails = format_table(
            [*self.heuristics],
            [counter.row()],
            title=f"Failures out of {counter.total} instances",
        )
        return table + "\n\n" + fails


def run_random_experiment(
    n: int,
    grid: Topology,
    ccr: float,
    elevations=DEFAULT_ELEVATIONS,
    replicates: int = 10,
    seed: int = 0,
    heuristics=PAPER_ORDER,
    options: dict | None = None,
    jobs: int | None = 1,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    solvers=None,
) -> RandomExperiment:
    """Run one Figure-10..13 panel.

    The paper averages 100 random graphs per elevation value; benchmarks use
    a smaller ``replicates`` (recorded in EXPERIMENTS.md) to bound wall-time.

    ``jobs`` fans the per-replicate ``choose_period`` runs out over a
    process pool (``None``/``0`` = all CPUs).  The instances and solver
    seeds are generated serially in the parent first, so the results are
    bit-identical for every ``jobs`` value.

    ``solvers``, when given, replaces the ``heuristics`` axis with
    arbitrary solver specs (``"dpa2d1d+refine"``, ``"portfolio"``, ...)
    from the unified registry — the comparison columns become those
    specs.  ``refine=True`` (deprecated alias of a ``"+refine"`` stage)
    post-refines every successful mapping with the delta-evaluated local
    search (``refine_sweeps``/``refine_schedule`` select its budget and
    acceptance rule).
    """
    rng = as_rng(seed)
    heuristics = tuple(solvers) if solvers else tuple(heuristics)
    options = merge_solver_options(
        options, heuristics, refine, refine_sweeps, refine_schedule
    )
    labels: list[tuple[int, str]] = []
    tasks = []
    for elev in elevations:
        if elev > n // 2:
            continue  # unreachable elevation for this size
        for rep in range(replicates):
            # Consume the shared stream exactly as the serial loop did:
            # instance generation first, then the heuristic seed that
            # choose_period would have drawn.
            spg = random_spg_with_elevation(n, elev, rng=rng, ccr=ccr)
            hseed = int(rng.integers(0, 2**63 - 1))
            labels.append((elev, f"n{n}/elev{elev}/rep{rep}"))
            tasks.append((spg, grid, heuristics, hseed, options))
    choices = run_tasks(random_panel_task, tasks, jobs=jobs)
    records: dict[int, list[InstanceRecord]] = {}
    for (elev, label), choice in zip(labels, choices):
        records.setdefault(elev, []).append(
            InstanceRecord.from_choice(label, choice)
        )
    return RandomExperiment(n, grid, ccr, records, heuristics)
