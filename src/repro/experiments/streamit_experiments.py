"""StreamIt experiments: Figures 8-9 and Table 2 of the paper.

For each of the 12 workflows and each CCR setting (original, 10, 1, 0.1)
the period bound is selected with the divide-by-10 procedure and all five
heuristics are run; the plots report the energy of each heuristic
normalised by the best heuristic's energy on that instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import run_tasks, streamit_task
from repro.experiments.runner import (
    FailureCounter,
    InstanceRecord,
    normalized_energy,
)
from repro.heuristics.base import PAPER_ORDER
from repro.solvers.options import merge_solver_options
from repro.platform.topology import Topology
from repro.spg.streamit import STREAMIT_TABLE1
from repro.util.fmt import format_table
from repro.util.rng import as_rng

__all__ = ["StreamItExperiment", "run_streamit_experiment", "CCR_SETTINGS"]

#: The four CCR settings of Figures 8 and 9 (None = original CCR).
CCR_SETTINGS: tuple[float | None, ...] = (None, 10.0, 1.0, 0.1)


@dataclass
class StreamItExperiment:
    """Results of one grid size's sweep over workflows and CCRs."""

    grid: Topology
    records: dict[tuple[int, float | None], InstanceRecord]
    heuristics: tuple[str, ...]

    def normalized_table(self, ccr: float | None) -> list[list[object]]:
        """Rows: [app index, name, normalised energy per heuristic or FAIL]."""
        rows: list[list[object]] = []
        for spec in STREAMIT_TABLE1:
            rec = self.records.get((spec.index, ccr))
            if rec is None:
                continue
            norm = normalized_energy(rec)
            row: list[object] = [spec.index, spec.name]
            for h in self.heuristics:
                v = norm.get(h, float("inf"))
                row.append("FAIL" if v == float("inf") else round(v, 3))
            rows.append(row)
        return rows

    def failure_table(self) -> FailureCounter:
        """Failure counts over all (workflow, CCR) instances (Table 2 row)."""
        counter = FailureCounter(self.heuristics)
        for rec in self.records.values():
            counter.add(rec)
        return counter

    def render(self) -> str:
        """Human-readable report for every CCR setting."""
        blocks = []
        for ccr in sorted({c for (_i, c) in self.records}, key=lambda c: (c is None, c)):
            label = "original CCR" if ccr is None else f"CCR = {ccr:g}"
            blocks.append(
                format_table(
                    ["idx", "workflow", *self.heuristics],
                    self.normalized_table(ccr),
                    title=f"Normalised energy ({label}, "
                    f"{self.grid.p}x{self.grid.q} grid)",
                )
            )
        counter = self.failure_table()
        blocks.append(
            format_table(
                [*self.heuristics],
                [counter.row()],
                title=f"Failures out of {counter.total} instances (Table 2)",
            )
        )
        return "\n\n".join(blocks)


def run_streamit_experiment(
    grid: Topology,
    ccrs=CCR_SETTINGS,
    workflows: tuple[int, ...] | None = None,
    seed: int = 0,
    heuristics=PAPER_ORDER,
    options: dict | None = None,
    jobs: int | None = 1,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    solvers=None,
) -> StreamItExperiment:
    """Run the Figure-8/9 sweep on ``grid``.

    ``workflows`` restricts to a subset of Table-1 indices (all by default);
    benchmarks use subsets to bound wall-time.

    ``jobs`` fans the per-instance ``choose_period`` runs out over a
    process pool (``None``/``0`` = all CPUs); solver seeds are pre-drawn
    serially so results match a serial run bit for bit.

    ``solvers``, when given, replaces the ``heuristics`` axis with
    arbitrary solver specs from the unified registry
    (``"dpa2d1d+refine"``, ``"portfolio"``, ...).  ``refine=True``
    (deprecated alias of a ``"+refine"`` stage) post-refines every
    successful mapping with the delta-evaluated local search
    (``refine_sweeps``/``refine_schedule`` select its budget and
    acceptance rule).
    """
    rng = as_rng(seed)
    heuristics = tuple(solvers) if solvers else tuple(heuristics)
    options = merge_solver_options(
        options, heuristics, refine, refine_sweeps, refine_schedule
    )
    indices = workflows or tuple(s.index for s in STREAMIT_TABLE1)
    keys: list[tuple[int, float | None]] = []
    tasks = []
    for idx in indices:
        for ccr in ccrs:
            hseed = int(rng.integers(0, 2**63 - 1))
            keys.append((idx, ccr))
            tasks.append((idx, ccr, seed, grid, heuristics, hseed, options))
    choices = run_tasks(streamit_task, tasks, jobs=jobs)
    records: dict[tuple[int, float | None], InstanceRecord] = {}
    for (idx, ccr), choice in zip(keys, choices):
        label = f"app{idx}/ccr={'orig' if ccr is None else ccr}"
        records[(idx, ccr)] = InstanceRecord.from_choice(label, choice)
    return StreamItExperiment(grid, records, heuristics)
