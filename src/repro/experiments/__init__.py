"""Experiment harness reproducing Section 6 (figures 8-13, tables 2-3)."""

from repro.experiments.period import PeriodChoice, choose_period, run_all
from repro.experiments.runner import (
    InstanceRecord,
    FailureCounter,
    normalized_energy,
    normalized_inverse_energy,
    refine_options,
)
from repro.experiments.streamit_experiments import (
    StreamItExperiment,
    run_streamit_experiment,
    CCR_SETTINGS,
)
from repro.experiments.random_experiments import (
    RandomExperiment,
    run_random_experiment,
    DEFAULT_ELEVATIONS,
)
from repro.experiments.parallel import pool_available, resolve_jobs, run_tasks
from repro.resilience import (
    ExecutionStats,
    FaultPlan,
    RetryPolicy,
    TaskError,
    TaskFailure,
)
from repro.experiments.scenarios import (
    ScenarioSpec,
    build_scenarios,
    parse_shard,
    run_scenario_sweep,
    sweep_summary,
)
from repro.experiments.report import (
    REPORT_SCHEMA_VERSION,
    random_csv,
    random_markdown,
    report_json,
    streamit_csv,
    streamit_markdown,
    write_report,
)

__all__ = [
    "PeriodChoice",
    "choose_period",
    "run_all",
    "InstanceRecord",
    "FailureCounter",
    "normalized_energy",
    "normalized_inverse_energy",
    "refine_options",
    "StreamItExperiment",
    "run_streamit_experiment",
    "CCR_SETTINGS",
    "RandomExperiment",
    "run_random_experiment",
    "DEFAULT_ELEVATIONS",
    "random_csv",
    "random_markdown",
    "streamit_csv",
    "streamit_markdown",
    "resolve_jobs",
    "run_tasks",
    "pool_available",
    "RetryPolicy",
    "TaskFailure",
    "TaskError",
    "ExecutionStats",
    "FaultPlan",
    "ScenarioSpec",
    "build_scenarios",
    "parse_shard",
    "run_scenario_sweep",
    "sweep_summary",
    "REPORT_SCHEMA_VERSION",
    "report_json",
    "write_report",
]
