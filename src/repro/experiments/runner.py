"""Aggregation helpers shared by the StreamIt and random-SPG experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.period import PeriodChoice
from repro.heuristics.base import PAPER_ORDER, HeuristicResult
from repro.solvers.options import merge_solver_options

__all__ = ["InstanceRecord", "FailureCounter", "normalized_energy",
           "normalized_inverse_energy", "refine_options"]


def refine_options(
    options: dict | None,
    heuristics,
    refine: bool,
    sweeps: int = 4,
    schedule: str = "first",
) -> dict | None:
    """Deprecated alias of :func:`repro.solvers.merge_solver_options`.

    Kept for callers of the historical name; the refine-kwargs plumbing
    it merged is itself deprecated in favour of ``"+refine"`` solver
    specs (``run_*_experiment(solvers=("dpa2d1d+refine", ...))``).
    """
    return merge_solver_options(
        options, heuristics, refine=refine,
        refine_sweeps=sweeps, refine_schedule=schedule,
    )


@dataclass(frozen=True)
class InstanceRecord:
    """One instance's outcome: chosen period plus per-heuristic results."""

    label: str
    period: float
    results: dict[str, HeuristicResult]

    @staticmethod
    def from_choice(label: str, choice: PeriodChoice) -> "InstanceRecord":
        return InstanceRecord(label, choice.period, choice.results)

    def best_energy(self) -> float:
        """Minimum total energy over successful heuristics (inf if none)."""
        return min(
            (r.total_energy for r in self.results.values()), default=float("inf")
        )


def normalized_energy(record: InstanceRecord) -> dict[str, float]:
    """``E / E_min`` per heuristic (Figures 8-9; inf for failures).

    The best heuristic returns 1.0 and the others return larger values.
    """
    best = record.best_energy()
    return {
        name: (r.total_energy / best) if r.ok else float("inf")
        for name, r in record.results.items()
    }


def normalized_inverse_energy(record: InstanceRecord) -> dict[str, float]:
    """``E_min / E`` per heuristic (Figures 10-13; 0.0 for failures).

    The best heuristic returns 1.0 and the others return smaller values;
    failures contribute 0, matching the paper's averaging over 100 graphs.
    """
    best = record.best_energy()
    return {
        name: (best / r.total_energy) if r.ok else 0.0
        for name, r in record.results.items()
    }


@dataclass
class FailureCounter:
    """Counts heuristic failures across instances (Tables 2 and 3)."""

    heuristics: tuple[str, ...] = PAPER_ORDER
    total: int = 0
    failures: dict[str, int] = field(default_factory=dict)

    def add(self, record: InstanceRecord) -> None:
        self.total += 1
        for name in self.heuristics:
            r = record.results.get(name)
            if r is None or not r.ok:
                self.failures[name] = self.failures.get(name, 0) + 1

    def row(self) -> list[int]:
        return [self.failures.get(name, 0) for name in self.heuristics]
