"""Export experiment results as CSV, Markdown or canonical JSON.

The benchmarks render ASCII tables for the terminal; this module provides
machine-readable exports so downstream analysis (plotting the figures,
diffing against the paper) does not have to re-run the sweeps.

JSON reports are written in **canonical form** — sorted keys, a
``schema_version`` and the library version stamped into ``meta``, a
trailing newline — so that two identical runs produce byte-identical
files.  That byte-level determinism is what the result store's
resume/shard machinery is verified against (an interrupted-and-resumed
sweep must reproduce the cold run's report exactly), and it makes report
files content-addressable and diff-friendly.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.random_experiments import RandomExperiment
from repro.experiments.runner import normalized_energy
from repro.experiments.streamit_experiments import StreamItExperiment
from repro.spg.streamit import STREAMIT_TABLE1
from repro.util.io import atomic_write_text
from repro.util.version import repro_version

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "report_json",
    "write_report",
    "streamit_csv",
    "random_csv",
    "streamit_markdown",
    "random_markdown",
]

#: Version of the consolidated JSON report layout; bump on any structural
#: change so report consumers (and stored reports) can detect skew.
REPORT_SCHEMA_VERSION = 1


def report_json(report: dict) -> str:
    """The canonical byte-exact serialisation of a JSON-able report.

    ``meta.schema_version`` and ``meta.repro_version`` are stamped in
    when absent (report producers such as the scenario sweep set them
    already); keys are sorted recursively and floats use Python's exact
    shortest-repr formatting, so equal reports serialise to equal bytes.
    """
    out = dict(report)
    meta = dict(out.get("meta") or {})
    meta.setdefault("schema_version", REPORT_SCHEMA_VERSION)
    meta.setdefault("repro_version", repro_version())
    out["meta"] = meta
    return json.dumps(out, indent=1, sort_keys=True) + "\n"


def write_report(path: "str | Path", report: dict) -> Path:
    """Write ``report`` to ``path`` in canonical form (see above).

    The write is atomic (temp file + ``os.replace``): an interrupted
    run leaves either the previous complete report or the new one,
    never a truncated file that byte-level consumers would mistake for
    a real report.
    """
    return atomic_write_text(path, report_json(report))


def streamit_csv(exp: StreamItExperiment) -> str:
    """CSV rows: workflow, ccr, period, heuristic, energy, normalised, ok."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(
        ["workflow", "ccr", "period_s", "heuristic", "energy_J",
         "normalized", "ok"]
    )
    for (idx, ccr), rec in sorted(
        exp.records.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
    ):
        name = next(s.name for s in STREAMIT_TABLE1 if s.index == idx)
        norm = normalized_energy(rec)
        for h in exp.heuristics:
            res = rec.results[h]
            w.writerow([
                name,
                "original" if ccr is None else ccr,
                rec.period,
                h,
                res.total_energy if res.ok else "",
                norm[h] if res.ok else "",
                int(res.ok),
            ])
    return buf.getvalue()


def random_csv(exp: RandomExperiment) -> str:
    """CSV rows: elevation, replicate, heuristic, energy, ok."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(
        ["n", "ccr", "elevation", "replicate", "period_s", "heuristic",
         "energy_J", "ok"]
    )
    for elev, recs in sorted(exp.records.items()):
        for rep, rec in enumerate(recs):
            for h in exp.heuristics:
                res = rec.results[h]
                w.writerow([
                    exp.n, exp.ccr, elev, rep, rec.period, h,
                    res.total_energy if res.ok else "", int(res.ok),
                ])
    return buf.getvalue()


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def streamit_markdown(exp: StreamItExperiment, ccr=None) -> str:
    """Markdown table of normalised energies for one CCR setting."""
    rows = exp.normalized_table(ccr)
    label = "original" if ccr is None else f"{ccr:g}"
    return (
        f"### Normalised energy (CCR = {label}, "
        f"{exp.grid.p}x{exp.grid.q})\n\n"
        + _md_table(["idx", "workflow", *exp.heuristics], rows)
    )


def random_markdown(exp: RandomExperiment) -> str:
    """Markdown table of mean normalised inverse energy per elevation."""
    series = exp.mean_inverse_energy()
    rows = [
        [e, *(f"{series[e][h]:.3f}" for h in exp.heuristics)]
        for e in sorted(series)
    ]
    return (
        f"### Mean 1/E (n={exp.n}, {exp.grid.p}x{exp.grid.q}, "
        f"CCR={exp.ccr:g})\n\n"
        + _md_table(["elevation", *exp.heuristics], rows)
    )
