"""Process-parallel experiment engine with fault-tolerant execution.

The paper's figures sweep thousands of independent ``choose_period``
runs (12 StreamIt workflows x 4 CCRs, random-SPG panels with
per-elevation replicates).  Each run is CPU-bound pure Python, so the
engine fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`:

* **Seed stability.**  The serial harness threads one RNG through SPG
  generation and period selection.  The parent process keeps doing exactly
  that — it generates every instance and pre-draws every heuristic seed in
  the original order — and ships ``(instance, seed)`` tasks to workers.
  Results are therefore bit-identical to a serial run for any ``jobs``.
* **Tracked per-chunk futures.**  Tasks are submitted in deterministic
  chunks through per-chunk futures (not bare ``Executor.map``), so the
  engine knows exactly which task indices are in flight and can re-run
  only the lost work when something goes wrong.
* **Fault tolerance.**  A crashed worker (``BrokenProcessPool``) or a
  chunk that blows its :class:`~repro.resilience.RetryPolicy` deadline
  kills and respawns the pool and re-runs only the affected tasks —
  split into singleton chunks to isolate a repeat offender — with the
  *same pre-drawn seeds*, so every surviving result is still
  bit-identical to a serial fault-free run.  A task that exhausts its
  attempts becomes a typed :class:`~repro.resilience.TaskFailure`
  record (``failures="record"``) or a :class:`~repro.resilience.TaskError`
  (``failures="raise"``, the default) instead of a raw pool exception
  discarding every in-flight result.
* **Deterministic chaos.**  A :class:`~repro.resilience.FaultPlan`
  (``faults=`` or the ``REPRO_FAULT_PLAN`` environment variable)
  injects crashes and hangs at index- and attempt-addressed points, so
  every recovery path above is testable and reproducible
  (``tests/test_resilience.py``).
* **Ordered merge.**  Results are keyed by task index and assembled in
  submission order, exactly as the serial loops would.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
in-process — retries and fault injection still apply (injected crashes
and hangs surface as typed exceptions there), which keeps the recovery
logic testable without a pool.

The engine is strategy-agnostic: the ``heuristics`` tuples inside task
payloads may name Section-5 heuristics or any solver spec from the
unified registry (``"dpa2d1d+refine"``, ``"portfolio"`` — see
``repro.solvers``), and :func:`portfolio_member_task` (re-exported from
``repro.solvers.composite``) fans portfolio members over the same pool
with pre-drawn seeds, keeping portfolio winners jobs-invariant too.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.kernels import reset_worker_cache, worker_lattice_cache
from repro.experiments.period import PeriodChoice, choose_period
from repro.obs.profile import maybe_profile
from repro.obs.session import absorb, capture, capture_config, event, inc
from repro.resilience import (
    ExecutionStats,
    FaultPlan,
    RetryPolicy,
    TaskError,
    TaskFailure,
    WorkerCrash,
    WorkerHang,
    resolve_fault_plan,
)
from repro.resilience.faults import trigger_in_worker, trigger_serial
from repro.solvers.composite import portfolio_member_task

__all__ = [
    "resolve_jobs",
    "run_tasks",
    "random_panel_task",
    "streamit_task",
    "portfolio_member_task",
    "pool_available",
]


#: Memoised result of the one-shot pool probe (None = not probed yet).
_POOL_OK: bool | None = None


def pool_available() -> bool:
    """Best-effort check that process pools work in this environment.

    Catches only the failure modes a sandboxed or restricted platform
    actually produces — missing semaphores/pipes (``OSError``), a pool
    that breaks on spawn (``BrokenProcessPool`` is a ``RuntimeError``),
    or an unsupported start method (``NotImplementedError``) — so a
    genuine bug (e.g. a ``TypeError`` in the probe) still surfaces.
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return list(pool.map(_identity_probe, [1])) == [1]
    except (OSError, RuntimeError, NotImplementedError):
        return False


def _pool_ok() -> bool:
    global _POOL_OK
    if _POOL_OK is None:
        _POOL_OK = pool_available()
    return _POOL_OK


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPUs.

    When more than one worker is requested but process pools do not
    work in this environment (sandboxes without semaphores, restricted
    platforms), falls back to ``1`` with a visible warning instead of
    failing later with a mid-sweep ``BrokenProcessPool``.
    """
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and not _pool_ok():
        # The degradation must be diagnosable after the fact, not only
        # from a scrolled-away warning: count it and stamp a structured
        # event into any active trace (both no-ops when obs is off).
        inc("engine.jobs_fallback")
        event("warning.jobs_fallback", requested=jobs)
        warnings.warn(
            f"process pools are unavailable in this environment; "
            f"falling back to jobs=1 (requested {jobs})",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return jobs


@dataclass(frozen=True)
class _ChunkTaskError:
    """A task function's own exception, shipped back from a worker so
    one bad task cannot poison its chunk-mates' results."""

    index: int
    message: str


@dataclass(frozen=True)
class _ObsWrapped:
    """A task outcome bundled with the worker's telemetry buffer (only
    produced when the parent had an observability session active)."""

    value: object
    blob: dict


def _run_chunk(payload):
    """Worker entry: run one chunk of ``(index, attempt, task)`` entries.

    Fault sites armed for ``(index, attempt)`` fire *before* the task
    runs — a crash takes the worker process down (the parent sees
    ``BrokenProcessPool``), a hang sleeps through the deadline.  Task
    exceptions are captured per entry so the rest of the chunk still
    returns.

    When the parent traced/metered (``obs_cfg``), each task runs under a
    local buffering session whose spans and counters ship back with the
    result — the parent absorbs them in task-index order, which keeps
    metric aggregates identical to a serial run.  ``REPRO_PROFILE``
    additionally dumps one ``cProfile`` file per executed chunk.
    """
    fn, entries, faults, obs_cfg = payload
    out = []
    with maybe_profile("worker"):
        for index, attempt, task in entries:
            if faults is not None:
                site = faults.task_fault(index, attempt)
                if site is not None:
                    trigger_in_worker(site)
            blob = None
            try:
                if obs_cfg is not None:
                    with capture(obs_cfg) as cap:
                        result = fn(task)
                    blob = cap.export()
                else:
                    result = fn(task)
            except Exception as exc:
                result = _ChunkTaskError(
                    index, f"{type(exc).__name__}: {exc}"
                )
                if obs_cfg is not None:
                    blob = cap.export()
            out.append(
                result if blob is None else _ObsWrapped(result, blob)
            )
    return out


def _token(tokens, index: int):
    return index if tokens is None else tokens[index]


def run_tasks(
    fn: Callable,
    tasks: Sequence,
    jobs: int | None = 1,
    chunksize: int | None = None,
    policy: RetryPolicy | None = None,
    failures: str = "raise",
    faults: "FaultPlan | str | None" = None,
    tokens: Sequence | None = None,
    deadlines: "Sequence[float | None] | None" = None,
    stats: ExecutionStats | None = None,
    progress: Callable | None = None,
) -> list:
    """Apply ``fn`` to every task, preserving order, surviving faults.

    ``jobs <= 1`` runs serially in-process; otherwise a process pool
    with ``jobs`` workers executes the tasks in chunks and the results
    are merged back in submission order.  Either way, work lost to a
    crashed or hung worker is retried under ``policy`` (default:
    :class:`~repro.resilience.RetryPolicy` — 3 attempts, exponential
    backoff with deterministic jitter, no deadline) with the exact same
    task tuples, so retried successes are bit-identical to a fault-free
    run.

    ``failures``
        ``"raise"`` (default): a terminally failed task raises a typed
        :class:`~repro.resilience.TaskError`; on the serial path a task
        function's own exception propagates unchanged.  ``"record"``:
        terminally failed tasks yield :class:`~repro.resilience.TaskFailure`
        entries *in place* in the result list, and the sweep goes on.
    ``faults``
        A :class:`~repro.resilience.FaultPlan` (or its spec string);
        ``None`` reads ``REPRO_FAULT_PLAN`` from the environment.
    ``tokens``
        Per-task backoff-jitter tokens (the pre-drawn task seeds, where
        the caller has them); defaults to the task index.
    ``deadlines``
        Per-task overrides of ``policy.deadline_s`` (e.g. the batch
        service's per-request deadlines).  A chunk's wall-clock budget
        is the sum of its members' deadlines, measured from submission;
        chunks holding any unbounded task are never timed out.
    ``stats``
        An :class:`~repro.resilience.ExecutionStats` to fill with
        retry/respawn/failure counters (never part of canonical
        reports).
    ``progress``
        An optional ``callback(index, result)`` invoked once per task
        as its *terminal* outcome lands (success or
        :class:`~repro.resilience.TaskFailure`; retried attempts do not
        fire it).  On the pool path it fires as futures complete, i.e.
        in completion order, not submission order — strictly a liveness
        channel (e.g. ``repro sweep --progress``), never part of any
        canonical output.
    """
    tasks = list(tasks)
    policy = RetryPolicy() if policy is None else policy
    plan = resolve_fault_plan(faults)
    if stats is None:
        stats = ExecutionStats()
    if failures not in ("raise", "record"):
        raise ValueError(f"failures must be 'raise' or 'record', got "
                         f"{failures!r}")
    if deadlines is not None and len(deadlines) != len(tasks):
        raise ValueError("deadlines must align with tasks")
    if len(tasks) <= 1:
        jobs = 1
    else:
        jobs = resolve_jobs(jobs)
    # Every engine run starts with a cold lattice cache: pool workers are
    # born cold anyway, and resetting the in-process cache keeps serial
    # runs' telemetry (and memory) independent of what ran before.
    # Reuse still multiplies *within* the run, which is where cells
    # sharing a graph actually cluster.
    reset_worker_cache()
    # Mirror resilience activity into the metrics registry (satellite
    # of the telemetry-analytics PR): deltas only, and only when
    # nonzero, so a clean run's counter set stays jobs-invariant (pool
    # respawns differ from serial only under faults).
    before = (stats.retries, stats.crashes, stats.timeouts, stats.respawns)
    try:
        if jobs <= 1:
            results = _run_serial(
                fn, tasks, policy, plan, tokens, failures, stats, progress
            )
        else:
            results = _run_pool(
                fn, tasks, jobs, chunksize, policy, plan, tokens,
                deadlines, stats, capture_config(), progress,
            )
            if failures == "raise":
                for r in results:
                    if isinstance(r, TaskFailure):
                        raise TaskError(r)
    finally:
        after = (stats.retries, stats.crashes, stats.timeouts,
                 stats.respawns)
        for name, b, a in zip(
            ("retries", "crashes", "timeouts", "respawns"), before, after
        ):
            if a > b:
                inc(f"engine.{name}", a - b)
    return results


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def _run_serial(fn, tasks, policy, plan, tokens, failures, stats,
                progress=None):
    """In-process execution with the same retry contract as the pool.

    Injected crashes and hangs surface as :class:`WorkerCrash` /
    :class:`WorkerHang` (there is no process to kill or preempt
    in-process), mapped to the pool path's "crash"/"timeout" outcomes;
    real deadlines cannot be enforced without a separate process.
    """
    results = []
    for i, task in enumerate(tasks):
        attempt = 1
        while True:
            reason = message = None
            try:
                if plan is not None:
                    site = plan.task_fault(i, attempt)
                    if site is not None:
                        trigger_serial(site)
                results.append(fn(task))
                if progress is not None:
                    progress(i, results[-1])
                break
            except WorkerCrash as exc:
                reason, message = "crash", str(exc)
                stats.crashes += 1
            except WorkerHang as exc:
                reason, message = "timeout", str(exc)
                stats.timeouts += 1
            except Exception as exc:
                if failures == "raise":
                    raise
                tf = TaskFailure(
                    i, "error", f"{type(exc).__name__}: {exc}", attempt
                )
                stats.failures.append(tf)
                results.append(tf)
                if progress is not None:
                    progress(i, tf)
                break
            if attempt >= policy.max_attempts:
                tf = TaskFailure(i, reason, message, attempt)
                stats.failures.append(tf)
                if failures == "raise":
                    raise TaskError(tf)
                results.append(tf)
                if progress is not None:
                    progress(i, tf)
                break
            time.sleep(policy.delay(attempt, _token(tokens, i)))
            stats.retries += 1
            attempt += 1
    return results


# ----------------------------------------------------------------------
# Pool path
# ----------------------------------------------------------------------
def _chunk_budget(policy, deadlines, indices) -> float | None:
    """A chunk's wall-clock budget: the sum of its members' effective
    deadlines, or ``None`` (never time out) if any member is unbounded."""
    total = 0.0
    for i in indices:
        d = None if deadlines is None else deadlines[i]
        if d is None:
            d = policy.deadline_s
        if d is None:
            return None
        total += d
    return total


def _kill_pool(pool) -> None:
    """Forcibly stop a pool that may hold hung workers.

    ``shutdown`` alone would join workers that are asleep in an
    injected (or real) hang; terminating the processes first is the
    only way the parent can reclaim them.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass
    pool.shutdown(wait=True, cancel_futures=True)


def _run_pool(
    fn, tasks, jobs, chunksize, policy, plan, tokens, deadlines, stats,
    obs_cfg=None, progress=None,
):
    """Tracked per-chunk futures with kill-and-respawn recovery.

    One queue of ``(indices, attempt)`` work items drives the loop;
    each pool generation submits everything queued, then waits.  On a
    worker crash the pool is broken for *every* in-flight chunk, so all
    unfinished chunks are charged one attempt and requeued as singleton
    chunks (isolating a repeat offender); on a blown deadline only the
    earliest-expired chunk is charged and the rest are requeued with a
    fresh budget.  Tasks are pure functions of their tuples, so however
    many times a chunk is re-run, surviving results are identical.
    """
    n = len(tasks)
    if chunksize is None:
        chunksize = max(1, n // (4 * jobs))
    results: dict[int, object] = {}
    # Telemetry blobs by task index; dict overwrite keeps only the final
    # attempt's buffer, matching what a serial fault-free run records.
    obs_by_idx: dict[int, dict] = {}
    queue: list[tuple[tuple[int, ...], int]] = [
        (tuple(range(lo, min(lo + chunksize, n))), 1)
        for lo in range(0, n, chunksize)
    ]
    spawns = 0

    def charge(indices, attempt, reason, retry_queue):
        """One failed attempt for every task in ``indices``: requeue as
        singletons at ``attempt + 1``, or fail terminally."""
        for i in indices:
            if attempt >= policy.max_attempts:
                tf = TaskFailure(
                    i, reason,
                    f"worker {reason} (attempt {attempt})", attempt,
                )
                stats.failures.append(tf)
                results[i] = tf
                if progress is not None:
                    progress(i, tf)
            else:
                stats.retries += 1
                retry_queue.append(((i,), attempt + 1))

    while queue:
        pool = ProcessPoolExecutor(max_workers=jobs)
        spawns += 1
        retry_queue: list[tuple[tuple[int, ...], int]] = []
        info: dict = {}
        now = time.monotonic()
        max_delay = 0.0
        for indices, attempt in queue:
            entries = [(i, attempt, tasks[i]) for i in indices]
            fut = pool.submit(_run_chunk, (fn, entries, plan, obs_cfg))
            budget = _chunk_budget(policy, deadlines, indices)
            info[fut] = (
                indices, attempt,
                None if budget is None else now + budget,
            )
        queue = []
        pending = set(info)
        broke = False
        try:
            while pending:
                cutoffs = [
                    info[f][2] for f in pending if info[f][2] is not None
                ]
                timeout = None
                if cutoffs:
                    timeout = max(0.0, min(cutoffs) - time.monotonic())
                done, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    indices, attempt, _cutoff = info[fut]
                    try:
                        chunk_out = fut.result()
                    except BrokenProcessPool:
                        # The pool is broken for everyone; this chunk is
                        # charged here, the rest as their futures drain
                        # through `done` on the next wait() rounds (a
                        # broken pool completes them all immediately).
                        broke = True
                        stats.crashes += 1
                        charge(indices, attempt, "crash", retry_queue)
                        continue
                    for i, r in zip(indices, chunk_out):
                        if isinstance(r, _ObsWrapped):
                            obs_by_idx[i] = r.blob
                            r = r.value
                        if isinstance(r, _ChunkTaskError):
                            tf = TaskFailure(i, "error", r.message, attempt)
                            stats.failures.append(tf)
                            results[i] = tf
                        else:
                            results[i] = r
                        if progress is not None:
                            progress(i, results[i])
                if broke:
                    continue
                if not done and pending:
                    # A deadline expired.  Charge only the
                    # earliest-expired chunk (with a hung worker pinning
                    # one slot, that is the chunk actually stuck);
                    # everything else is requeued uncharged with a
                    # fresh budget on the respawned pool.
                    now = time.monotonic()
                    expired = [
                        f for f in pending
                        if info[f][2] is not None and info[f][2] <= now
                    ]
                    if not expired:
                        continue  # pragma: no cover - wait() raced a result
                    victim = min(expired, key=lambda f: info[f][2])
                    stats.timeouts += 1
                    indices, attempt, _cutoff = info[victim]
                    charge(indices, attempt, "timeout", retry_queue)
                    pending.discard(victim)
                    for fut in pending:
                        indices, attempt, _cutoff = info[fut]
                        retry_queue.append((indices, attempt))
                    pending = set()
                    broke = True
        finally:
            if broke:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        if retry_queue:
            # Deterministic backoff: one sleep per respawn round, the
            # longest of the retried tasks' delays.
            max_delay = max(
                policy.delay(attempt - 1, _token(tokens, indices[0]))
                for indices, attempt in retry_queue
                if attempt > 1
            ) if any(a > 1 for _, a in retry_queue) else 0.0
            if max_delay > 0:
                time.sleep(max_delay)
            retry_queue.sort(key=lambda item: item[0])
        queue = retry_queue
    stats.respawns += spawns - 1
    # Fold worker telemetry into the parent session in task-index order
    # — the ordering (not worker scheduling) is what makes the merged
    # aggregates identical to a serial run's.
    for i in sorted(obs_by_idx):
        absorb(obs_by_idx[i])
    return [results[i] for i in range(n)]


# ----------------------------------------------------------------------
# Task functions
# ----------------------------------------------------------------------
def random_panel_task(task) -> PeriodChoice:
    """Worker for one random-SPG replicate: ``(spg, grid, heuristics,
    seed, options)`` — the SPG was generated (and the seed pre-drawn) by
    the parent so the shared RNG stream is consumed in serial order."""
    spg, grid, heuristics, seed, options = task
    cache = worker_lattice_cache()
    cache.seed(spg)
    try:
        return choose_period(
            spg, grid, heuristics, seed=seed, options=options
        )
    finally:
        # Experiment records keep the SPG alive for the whole sweep; the
        # ideal lattices move into the bounded per-worker cache (so a
        # later cell with the same graph content skips re-enumeration)
        # and the rest of the instance's DP scratch state is dropped so
        # serial runs don't accumulate it.  (Pool workers keep their
        # cache for the life of the run; SPG.__reduce__ excludes
        # ``_derived`` from pickles either way.)
        cache.adopt(spg)
        spg._derived.clear()


def streamit_task(task) -> PeriodChoice:
    """Worker for one (workflow, CCR) instance: ``(idx, ccr, wf_seed,
    grid, heuristics, seed, options)`` — the workflow is synthesised in the
    worker (it only depends on the integer ``wf_seed``)."""
    from repro.spg.streamit import streamit_workflow

    idx, ccr, wf_seed, grid, heuristics, seed, options = task
    spg = streamit_workflow(idx, ccr=ccr, seed=wf_seed)
    cache = worker_lattice_cache()
    cache.seed(spg)
    try:
        return choose_period(
            spg, grid, heuristics, seed=seed, options=options
        )
    finally:
        cache.adopt(spg)
        spg._derived.clear()


def _identity_probe(x):  # pragma: no cover - used by engine self-tests
    return x
