"""Process-parallel experiment engine.

The paper's figures sweep thousands of independent ``choose_period`` runs
(12 StreamIt workflows x 4 CCRs, random-SPG panels with per-elevation
replicates).  Each run is CPU-bound pure Python, so the engine fans them
out over a :class:`concurrent.futures.ProcessPoolExecutor`:

* **Seed stability.**  The serial harness threads one RNG through SPG
  generation and period selection.  The parent process keeps doing exactly
  that — it generates every instance and pre-draws every heuristic seed in
  the original order — and ships ``(instance, seed)`` tasks to workers.
  Results are therefore bit-identical to a serial run for any ``jobs``.
* **Chunked submission.**  Tasks are submitted through ``Executor.map``
  with a chunksize that amortises pickling overhead over long sweeps.
* **Ordered merge.**  ``Executor.map`` yields results in submission order,
  so records are assembled exactly as the serial loops would.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
in-process, which keeps tests, tracebacks and profiling simple.

The engine is strategy-agnostic: the ``heuristics`` tuples inside task
payloads may name Section-5 heuristics or any solver spec from the
unified registry (``"dpa2d1d+refine"``, ``"portfolio"`` — see
``repro.solvers``), and :func:`portfolio_member_task` (re-exported from
``repro.solvers.composite``) fans portfolio members over the same pool
with pre-drawn seeds, keeping portfolio winners jobs-invariant too.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.experiments.period import PeriodChoice, choose_period
from repro.solvers.composite import portfolio_member_task

__all__ = [
    "resolve_jobs",
    "run_tasks",
    "random_panel_task",
    "streamit_task",
    "portfolio_member_task",
]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_tasks(
    fn: Callable,
    tasks: Sequence,
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> list:
    """Apply ``fn`` to every task, preserving order.

    ``jobs <= 1`` runs serially in-process; otherwise a process pool with
    ``jobs`` workers executes the tasks in chunks and the results are
    merged back in submission order.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    if chunksize is None:
        chunksize = max(1, len(tasks) // (4 * jobs))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, tasks, chunksize=chunksize))


def random_panel_task(task) -> PeriodChoice:
    """Worker for one random-SPG replicate: ``(spg, grid, heuristics,
    seed, options)`` — the SPG was generated (and the seed pre-drawn) by
    the parent so the shared RNG stream is consumed in serial order."""
    spg, grid, heuristics, seed, options = task
    try:
        return choose_period(
            spg, grid, heuristics, seed=seed, options=options
        )
    finally:
        # Experiment records keep the SPG alive for the whole sweep; drop
        # the instance's DP scratch state (ideal lattice, suffix arrays)
        # so serial runs don't accumulate it.  (Pool workers shed it
        # implicitly: SPG.__reduce__ excludes the cache from the pickle.)
        spg._derived.clear()


def streamit_task(task) -> PeriodChoice:
    """Worker for one (workflow, CCR) instance: ``(idx, ccr, wf_seed,
    grid, heuristics, seed, options)`` — the workflow is synthesised in the
    worker (it only depends on the integer ``wf_seed``)."""
    from repro.spg.streamit import streamit_workflow

    idx, ccr, wf_seed, grid, heuristics, seed, options = task
    spg = streamit_workflow(idx, ccr=ccr, seed=wf_seed)
    try:
        return choose_period(
            spg, grid, heuristics, seed=seed, options=options
        )
    finally:
        spg._derived.clear()


def _identity_probe(x):  # pragma: no cover - used by engine self-tests
    return x


def pool_available() -> bool:
    """Best-effort check that process pools work in this environment."""
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return list(pool.map(_identity_probe, [1])) == [1]
    except Exception:
        return False
