"""Scenario sweep engine: cross-products over the platform registry.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this module fans a cross-product of **{topology, platform size, CCR,
application class}** over the PR-1 parallel experiment engine and emits
one consolidated, JSON-serialisable report.  The strategy axis is the
unified solver registry: ``solvers=`` (CLI ``--solvers``) replaces the
default heuristic columns with arbitrary solver specs, so the
cross-product also fans over strategies (``dpa2d1d+refine``,
``portfolio``, ``greedy|dpa1d``, ...).

Each scenario instance runs the full divide-by-10 period selection plus
every requested solver (independently re-validated by
:func:`repro.heuristics.base.run`, so every route in the report passed
``Topology.validate_path``).  Instances and solver seeds are generated
serially in the parent in a fixed order, then executed through
:func:`repro.experiments.parallel.run_tasks` — results are bit-identical
for any ``jobs`` value, exactly as in the figure sweeps.

Sweeps are **resumable and shardable** through the content-addressed
result store (``repro/store/``): ``store=`` files every completed cell
under its fingerprint, ``resume=True`` skips cells already present, and
``shard="i/N"`` deterministically partitions the cell grid so
independent invocations (or machines) fill one shared store; a final
``resume`` pass over the full grid emits a consolidated report
bit-identical to a cold single-process run.

CLI: ``repro sweep --topologies mesh torus benes --sizes 3x3 4x4
--ccr 1 10 --apps random-20 FMRadio --solvers Greedy dpa2d1d+refine
--replicates 2 --jobs 0 --out r.json`` plus ``--store sweep.sqlite
--resume --shard 0/4 --limit K --checkpoint N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import random_panel_task, run_tasks
from repro.experiments.period import PeriodChoice
from repro.experiments.report import REPORT_SCHEMA_VERSION
from repro.obs.session import inc, trace_span
from repro.resilience import (
    ExecutionStats,
    RetryPolicy,
    TaskFailure,
    resolve_fault_plan,
)
from repro.heuristics.base import PAPER_ORDER
from repro.solvers.options import merge_solver_options
from repro.platform.topology import Topology, get_topology
from repro.spg.random_gen import random_spg
from repro.util.fmt import format_table
from repro.util.rng import as_rng
from repro.util.version import repro_version

__all__ = [
    "ScenarioSpec",
    "build_scenarios",
    "run_scenario_sweep",
    "sweep_summary",
    "parse_size",
    "parse_shard",
]

#: Default axes for a small but representative sweep.
DEFAULT_TOPOLOGIES = ("mesh", "torus", "ring", "benes", "hetmesh")
DEFAULT_SIZES = ("3x3",)
DEFAULT_CCRS = (10.0, 1.0)
DEFAULT_APPS = ("random-20",)


def parse_size(spec: "str | tuple[int, int]") -> tuple[int, int]:
    """Parse a platform size like ``'4x4'`` (tuples pass through)."""
    if isinstance(spec, tuple):
        p, q = spec
        return int(p), int(q)
    try:
        p, q = spec.lower().split("x")
        return int(p), int(q)
    except Exception:
        raise ValueError(f"size must look like '4x4', got {spec!r}") from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of the sweep cross-product."""

    topology: str
    p: int
    q: int
    ccr: float | None  # None = the application's original CCR
    app: str  # "random-N" or a StreamIt name/index

    @property
    def size(self) -> str:
        return f"{self.p}x{self.q}"

    def label(self) -> str:
        ccr = "orig" if self.ccr is None else f"{self.ccr:g}"
        return f"{self.topology}/{self.size}/ccr={ccr}/{self.app}"

    def build_platform(self, model=None) -> Topology:
        return get_topology(self.topology, self.p, self.q, model)

    def build_app(self, rng, seed: int):
        """Synthesise the application SPG for one replicate.

        Random apps consume the shared ``rng`` stream (one draw per
        replicate, in sweep order); StreamIt workflows are deterministic
        functions of the sweep ``seed``.
        """
        if self.app.startswith("random-"):
            n = int(self.app.split("-", 1)[1])
            return random_spg(n, rng=rng, ccr=self.ccr)
        from repro.spg.streamit import streamit_workflow

        which: "int | str" = self.app
        if isinstance(which, str) and which.isdigit():
            which = int(which)
        return streamit_workflow(which, ccr=self.ccr, seed=seed)


def build_scenarios(
    topologies=DEFAULT_TOPOLOGIES,
    sizes=DEFAULT_SIZES,
    ccrs=DEFAULT_CCRS,
    apps=DEFAULT_APPS,
) -> list[ScenarioSpec]:
    """The cross-product, in deterministic sweep order."""
    out: list[ScenarioSpec] = []
    for topo in topologies:
        for size in sizes:
            p, q = parse_size(size)
            for ccr in ccrs:
                for app in apps:
                    out.append(ScenarioSpec(topo, p, q, ccr, app))
    return out


def parse_shard(spec: "str | tuple[int, int] | None") -> tuple[int, int] | None:
    """Parse a shard spec ``"i/N"`` (0-based) into ``(i, N)``.

    Tuples pass through (validated); ``None`` means no sharding.
    """
    if spec is None:
        return None
    if isinstance(spec, tuple):
        i, n = spec
    else:
        try:
            i, n = str(spec).split("/")
        except ValueError:
            raise ValueError(
                f"shard must look like 'i/N' (0-based), got {spec!r}"
            ) from None
    i, n = int(i), int(n)
    if n < 1 or not 0 <= i < n:
        raise ValueError(f"shard needs 0 <= i < N, got {i}/{n}")
    return i, n


def sweep_cell_task(task) -> PeriodChoice:
    """Worker for one sweep cell: :func:`random_panel_task` under a
    ``sweep.cell`` span, so a traced sweep shows per-cell timings with
    the solver spans nested inside (a no-op wrapper when obs is off)."""
    with trace_span("sweep.cell"):
        return random_panel_task(task)


def _snap_choice(
    choice: PeriodChoice, heuristics: tuple[str, ...]
) -> tuple[dict, dict[str, bool]]:
    """One record's JSON snapshot plus its per-heuristic success flags.

    Every successful mapping is structurally re-checked here (routes
    through ``validate_path``, speeds in the per-core DVFS sets, acyclic
    quotient) so the report's ``routes_validated`` counts are asserted on
    the report path itself, not only inside the worker.
    """
    results: dict[str, dict] = {}
    ok_flags: dict[str, bool] = {}
    routes = 0
    for name in heuristics:
        r = choice.results[name]
        ok_flags[name] = r.ok
        if r.ok:
            r.mapping.check_structure()
            routes += len(r.mapping.remote_edges())
            results[name] = {
                "ok": True,
                "energy": r.energy.total,
                "active_cores": len(r.mapping.active_cores()),
            }
        else:
            results[name] = {"ok": False, "failure": r.failure}
    best = min(
        (r.total_energy for r in choice.results.values()),
        default=float("inf"),
    )
    record = {
        "period": choice.period,
        "best_energy": None if best == float("inf") else best,
        "routes_validated": routes,
        "results": results,
    }
    return record, ok_flags


def run_scenario_sweep(
    topologies=DEFAULT_TOPOLOGIES,
    sizes=DEFAULT_SIZES,
    ccrs=DEFAULT_CCRS,
    apps=DEFAULT_APPS,
    replicates: int = 1,
    seed: int = 0,
    heuristics=PAPER_ORDER,
    options: dict | None = None,
    jobs: int | None = 1,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    solvers=None,
    store=None,
    eviction=None,
    resume: bool = False,
    shard: "str | tuple[int, int] | None" = None,
    limit: int | None = None,
    checkpoint: int | None = None,
    policy: RetryPolicy | None = None,
    faults=None,
    stats: ExecutionStats | None = None,
    kernel: str | None = None,
    progress=None,
) -> dict:
    """Run the sweep and return the consolidated JSON-serialisable report.

    ``jobs`` fans the per-instance ``choose_period`` runs over the PR-1
    process pool (``None``/``0`` = all CPUs); instances and solver
    seeds are pre-drawn serially so results match a serial run bit for
    bit.

    ``solvers``, when given, replaces the ``heuristics`` columns with
    arbitrary solver specs from the unified registry (CLI: ``repro
    sweep --solvers Greedy dpa2d1d+refine portfolio``), adding a
    strategy axis to the scenario cross-product.  ``refine=True``
    (deprecated alias of a ``"+refine"`` stage; CLI: ``repro sweep
    --refine``) post-refines every successful mapping with the
    delta-evaluated local search; ``refine_sweeps``/``refine_schedule``
    select its budget and acceptance rule.  Refined mappings pass the
    same structural re-checks as raw solver outputs.

    Result-store integration (``repro/store/``):

    ``store``
        A :class:`~repro.store.ResultStore`, a SQLite path, or ``None``
        (compute everything, keep nothing).  With a store, every
        computed cell is filed under its content fingerprint.
    ``eviction``
        An :class:`~repro.store.EvictionConfig` (or its dict of fields)
        bounding the store: once a ``put`` leaves it over ``max_rows``/
        ``max_bytes``, rows are evicted in policy order (CLI:
        ``--store-policy/--store-max-rows/--store-max-bytes``).  Evicted
        cells read as misses on resume and are recomputed, so the
        consolidated report stays byte-identical to an unbounded run.
        Ignored without a store.
    ``resume``
        Skip cells whose fingerprint is already in the store and rebuild
        their results from the stored payloads.  A resumed sweep's
        report is **bit-identical** to a cold single-process run.
    ``shard``
        ``"i/N"`` (0-based): process only cells whose grid index is
        ``i mod N``.  The partition is over the deterministic cell order,
        so N invocations with shards ``0/N .. N-1/N`` cover the grid
        exactly once; a final ``resume`` pass (no shard) merges the
        shared store into the consolidated report.
    ``limit``
        Stop after this many cells (of the shard selection) — an
        interruption at a deterministic cell boundary, used to test and
        demonstrate resumption.
    ``checkpoint``
        Compute cache misses in batches of this many cells, filing each
        batch before starting the next (bounds how much work a killed
        sweep can lose).  ``None`` = one batch.

    Instance generation and seed pre-draws always cover the *full* grid
    in sweep order regardless of shard/resume/limit, so every cell's
    inputs — and therefore its fingerprint and its results — are
    independent of how the grid was partitioned across invocations.

    Resilience (``repro/resilience/``):

    ``policy``
        The :class:`~repro.resilience.RetryPolicy` governing worker
        crashes and hangs (CLI ``--retries`` / ``--deadline-s``).  A
        cell whose retries are exhausted is *degraded, not fatal*: the
        sweep completes without it, records it in ``meta["failures"]``
        (always present, ``[]`` on a clean run, so recovered runs stay
        byte-identical to fault-free ones), and the CLI exits nonzero
        only under ``--strict``.
    ``faults``
        A :class:`~repro.resilience.FaultPlan` or spec string (CLI
        ``--fault-plan``; default: the ``REPRO_FAULT_PLAN`` environment
        variable) injecting deterministic worker crashes/hangs (task
        sites address positions within each executed batch) and store
        row corruption.  Corrupt rows are detected by checksum on the
        next resumed read, quarantined, and recomputed.
    ``stats``
        An :class:`~repro.resilience.ExecutionStats` filled with
        retry/crash/timeout/respawn counters (operator telemetry; the
        counters enter the report only as ``meta["fault_stats"]`` when
        permanent failures exist — a clean recovered run's report
        carries no trace of the recovery).
    ``kernel``
        Enumeration-kernel name for the whole sweep (CLI ``--kernel``;
        default: the ambient :mod:`repro.core.kernels` selection).  All
        kernels produce byte-identical reports; the choice is purely a
        speed knob and never enters cell fingerprints.
    ``progress``
        ``True`` (CLI ``--progress``) emits a live stderr heartbeat —
        cells done/total, rolling-mean ETA, store hit-rate, retry/crash
        counts — plus a stall warning when no cell completes within the
        :class:`~repro.obs.progress.SweepProgress` stall window; pass a
        configured ``SweepProgress`` for custom stream/thresholds.
        Strictly out of band: the consolidated report is byte-identical
        with progress on or off.
    """
    from repro.store.backend import open_store
    from repro.store.fingerprint import cell_fingerprint
    from repro.store.serialize import choice_from_payload, choice_to_payload

    if kernel is not None:
        # Scoped enumeration-kernel override (``repro sweep --kernel``):
        # exported via REPRO_KERNEL so pool workers inherit, restored on
        # exit.  Results are byte-identical under every kernel.
        from repro.core.kernels import use_kernel

        with use_kernel(kernel):
            return run_scenario_sweep(
                topologies, sizes, ccrs, apps, replicates=replicates,
                seed=seed, heuristics=heuristics, options=options,
                jobs=jobs, refine=refine, refine_sweeps=refine_sweeps,
                refine_schedule=refine_schedule, solvers=solvers,
                store=store, eviction=eviction, resume=resume,
                shard=shard, limit=limit, checkpoint=checkpoint,
                policy=policy, faults=faults, stats=stats, kernel=None,
                progress=progress,
            )

    rng = as_rng(seed)
    plan = resolve_fault_plan(faults)
    policy = RetryPolicy() if policy is None else policy
    stats = ExecutionStats() if stats is None else stats
    heuristics = tuple(solvers) if solvers else tuple(heuristics)
    options = merge_solver_options(
        options, heuristics, refine, refine_sweeps, refine_schedule
    )
    scenarios = build_scenarios(topologies, sizes, ccrs, apps)
    tasks = []
    task_meta: list[tuple[int, str]] = []  # (scenario index, label)
    platforms: list[Topology] = []
    for s_idx, spec in enumerate(scenarios):
        platform = spec.build_platform()
        platforms.append(platform)
        for rep in range(replicates):
            spg = spec.build_app(rng, seed)
            hseed = int(rng.integers(0, 2**63 - 1))
            tasks.append((spg, platform, heuristics, hseed, options))
            task_meta.append((s_idx, f"{spec.label()}/rep{rep}"))

    shard_part = parse_shard(shard)
    selected = list(range(len(tasks)))
    if shard_part is not None:
        i, n_shards = shard_part
        selected = [idx for idx in selected if idx % n_shards == i]
    if limit is not None:
        if limit < 0:
            raise ValueError("limit must be non-negative")
        selected = selected[:limit]

    if resume and store is None:
        raise ValueError("resume=True requires a store")
    from repro.store.backend import ResultStore

    # Close only connections this call opened; a live ResultStore passed
    # in stays under the caller's lifecycle.
    own_store = store is not None and not isinstance(store, ResultStore)
    store = open_store(store, faults=plan) if store is not None else None
    if store is not None and eviction is not None:
        from repro.store.eviction import EvictionConfig

        store.configure_eviction(EvictionConfig.from_spec(eviction))

    from repro.obs.progress import as_progress

    tracker = as_progress(progress, stats=stats)
    on_cell = None
    if tracker is not None:
        def on_cell(_index, result):
            tracker.cell_done(failed=isinstance(result, TaskFailure))

    def execute(indices: list[int]):
        """Run a batch of cells fault-tolerantly; terminally failed
        cells come back as TaskFailure records (index-local)."""
        return run_tasks(
            sweep_cell_task,
            [tasks[i] for i in indices],
            jobs=jobs,
            policy=policy,
            failures="record",
            faults=plan,
            tokens=[tasks[i][3] for i in indices],
            stats=stats,
            progress=on_cell,
        )

    choices_by_idx: dict[int, PeriodChoice] = {}
    failed_by_idx: dict[int, TaskFailure] = {}
    if tracker is not None:
        tracker.start(len(selected))
    try:
        with trace_span(
            "sweep.run", cells=len(selected), solvers=len(heuristics)
        ):
            if store is None:
                for idx, res in zip(selected, execute(selected)):
                    if isinstance(res, TaskFailure):
                        inc("sweep.cells_failed")
                        failed_by_idx[idx] = res
                    else:
                        inc("sweep.cells_computed")
                        choices_by_idx[idx] = res
            else:
                keys: dict[int, str] = {}
                misses: list[int] = []
                for idx in selected:
                    spg, platform, _h, hseed, _o = tasks[idx]
                    keys[idx] = cell_fingerprint(
                        spg, platform, heuristics, hseed, options
                    )
                    # A corrupt stored row is quarantined inside get() and
                    # reads as a miss, so the cell is recomputed here.
                    payload = store.get(keys[idx]) if resume else None
                    if payload is not None:
                        inc("sweep.cells_resumed")
                        choices_by_idx[idx] = choice_from_payload(
                            payload, spg, platform, order=heuristics
                        )
                        if tracker is not None:
                            tracker.cell_done(resumed=True)
                    else:
                        misses.append(idx)
                batch = len(misses) if not checkpoint else max(1, checkpoint)
                for lo in range(0, len(misses), max(1, batch)):
                    chunk = misses[lo : lo + max(1, batch)]
                    for idx, res in zip(chunk, execute(chunk)):
                        if isinstance(res, TaskFailure):
                            inc("sweep.cells_failed")
                            failed_by_idx[idx] = res
                            continue
                        store.put(
                            keys[idx], choice_to_payload(res),
                            kind="sweep-cell",
                        )
                        inc("sweep.cells_computed")
                        choices_by_idx[idx] = res
    finally:
        if tracker is not None:
            tracker.finish()
        if own_store:
            store.close()

    per_scenario: list[dict] = []
    for s_idx, spec in enumerate(scenarios):
        platform = platforms[s_idx]
        per_scenario.append({
            "topology": spec.topology,
            "size": spec.size,
            "cores": platform.n_cores,
            "heterogeneous": platform.heterogeneous,
            "ccr": spec.ccr,
            "app": spec.app,
            "records": [],
            "failures": {h: 0 for h in heuristics},
            "instances": 0,
        })
    cell_failures: list[dict] = []
    for idx in selected:
        s_idx, label = task_meta[idx]
        if idx in failed_by_idx:
            tf = failed_by_idx[idx]
            cell_failures.append({
                "label": label,
                "reason": tf.reason,
                "message": tf.message,
                "attempts": tf.attempts,
            })
            continue
        record, ok_flags = _snap_choice(choices_by_idx[idx], heuristics)
        record["label"] = label
        entry = per_scenario[s_idx]
        entry["records"].append(record)
        entry["instances"] += 1
        for h, ok in ok_flags.items():
            if not ok:
                entry["failures"][h] += 1
    meta = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "repro_version": repro_version(),
        "seed": seed,
        "replicates": replicates,
        # "solvers" names the actual sweep columns; "heuristics" is
        # retained for pre-solver-axis report consumers and holds
        # the same list.  "solver_axis" records whether the columns
        # came from an explicit solvers= request (specs) or the
        # default heuristic set.
        "heuristics": list(heuristics),
        "solvers": list(heuristics),
        "solver_axis": solvers is not None,
        "scenario_count": len(scenarios),
        "instance_count": len(tasks),
        "processed_instances": len(selected),
        "refine": bool(refine),
        "refine_schedule": refine_schedule if refine else None,
        # Always present: [] on a clean run, so a run whose faults were
        # all *recovered* (retries succeeded, corrupt rows recomputed)
        # serialises byte-identically to a fault-free run.
        "failures": cell_failures,
    }
    # Shard/limit are stamped only when they actually restricted the
    # grid: a full resumed (merge) pass must serialise byte-identically
    # to a cold single-process run, so its meta cannot mention the
    # store-side mechanics that produced it.
    if shard_part is not None:
        meta["shard"] = f"{shard_part[0]}/{shard_part[1]}"
    if limit is not None:
        meta["limit"] = limit
    # Retry/respawn counters enter the report only alongside permanent
    # failures (the report differs from the clean run anyway then);
    # recovered-run telemetry lives in the caller's `stats` object.
    if cell_failures:
        meta["fault_stats"] = {
            "retries": stats.retries,
            "crashes": stats.crashes,
            "timeouts": stats.timeouts,
            "respawns": stats.respawns,
        }
    return {"meta": meta, "scenarios": per_scenario}


def sweep_summary(report: dict) -> str:
    """Render one ASCII table summarising a sweep report."""
    meta = report["meta"]
    heuristics = meta.get("solvers", meta["heuristics"])
    rows = []
    for sc in report["scenarios"]:
        n = sc["instances"]
        ccr = "orig" if sc["ccr"] is None else f"{sc['ccr']:g}"
        cells = [
            f"{n - sc['failures'][h]}/{n}" for h in heuristics
        ]
        routes = sum(r["routes_validated"] for r in sc["records"])
        rows.append([
            sc["topology"] + ("*" if sc["heterogeneous"] else ""),
            sc["size"],
            sc["cores"],
            ccr,
            sc["app"],
            *cells,
            routes,
        ])
    refined = " [refined]" if report["meta"].get("refine") else ""
    total = meta["instance_count"]
    processed = meta.get("processed_instances", total)
    count = (
        f"{total} instances" if processed == total
        else f"{processed}/{total} instances"
    )
    shard = f" [shard {meta['shard']}]" if meta.get("shard") else ""
    table = format_table(
        ["topology", "size", "cores", "ccr", "app", *heuristics, "routes"],
        rows,
        title=(
            f"Scenario sweep{refined}{shard}: "
            f"{report['meta']['scenario_count']} scenarios, "
            f"{count} "
            f"(successes per heuristic; * = heterogeneous speeds)"
        ),
    )
    failures = meta.get("failures") or []
    if failures:
        lines = [
            f"WARNING: {len(failures)} cell(s) failed permanently "
            f"(degraded report):"
        ]
        lines += [
            f"  {f['label']}: {f['reason']} after {f['attempts']} "
            f"attempt(s) — {f['message']}"
            for f in failures
        ]
        table += "\n" + "\n".join(lines)
    return table
