"""Scenario sweep engine: cross-products over the platform registry.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this module fans a cross-product of **{topology, platform size, CCR,
application class}** over the PR-1 parallel experiment engine and emits
one consolidated, JSON-serialisable report.  The strategy axis is the
unified solver registry: ``solvers=`` (CLI ``--solvers``) replaces the
default heuristic columns with arbitrary solver specs, so the
cross-product also fans over strategies (``dpa2d1d+refine``,
``portfolio``, ``greedy|dpa1d``, ...).

Each scenario instance runs the full divide-by-10 period selection plus
every requested solver (independently re-validated by
:func:`repro.heuristics.base.run`, so every route in the report passed
``Topology.validate_path``).  Instances and solver seeds are generated
serially in the parent in a fixed order, then executed through
:func:`repro.experiments.parallel.run_tasks` — results are bit-identical
for any ``jobs`` value, exactly as in the figure sweeps.

CLI: ``repro sweep --topologies mesh torus benes --sizes 3x3 4x4
--ccr 1 10 --apps random-20 FMRadio --solvers Greedy dpa2d1d+refine
--replicates 2 --jobs 0 --out r.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import random_panel_task, run_tasks
from repro.experiments.period import PeriodChoice
from repro.heuristics.base import PAPER_ORDER
from repro.solvers.options import merge_solver_options
from repro.platform.topology import Topology, get_topology
from repro.spg.random_gen import random_spg
from repro.util.fmt import format_table
from repro.util.rng import as_rng

__all__ = [
    "ScenarioSpec",
    "build_scenarios",
    "run_scenario_sweep",
    "sweep_summary",
    "parse_size",
]

#: Default axes for a small but representative sweep.
DEFAULT_TOPOLOGIES = ("mesh", "torus", "ring", "benes", "hetmesh")
DEFAULT_SIZES = ("3x3",)
DEFAULT_CCRS = (10.0, 1.0)
DEFAULT_APPS = ("random-20",)


def parse_size(spec: "str | tuple[int, int]") -> tuple[int, int]:
    """Parse a platform size like ``'4x4'`` (tuples pass through)."""
    if isinstance(spec, tuple):
        p, q = spec
        return int(p), int(q)
    try:
        p, q = spec.lower().split("x")
        return int(p), int(q)
    except Exception:
        raise ValueError(f"size must look like '4x4', got {spec!r}") from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of the sweep cross-product."""

    topology: str
    p: int
    q: int
    ccr: float | None  # None = the application's original CCR
    app: str  # "random-N" or a StreamIt name/index

    @property
    def size(self) -> str:
        return f"{self.p}x{self.q}"

    def label(self) -> str:
        ccr = "orig" if self.ccr is None else f"{self.ccr:g}"
        return f"{self.topology}/{self.size}/ccr={ccr}/{self.app}"

    def build_platform(self, model=None) -> Topology:
        return get_topology(self.topology, self.p, self.q, model)

    def build_app(self, rng, seed: int):
        """Synthesise the application SPG for one replicate.

        Random apps consume the shared ``rng`` stream (one draw per
        replicate, in sweep order); StreamIt workflows are deterministic
        functions of the sweep ``seed``.
        """
        if self.app.startswith("random-"):
            n = int(self.app.split("-", 1)[1])
            return random_spg(n, rng=rng, ccr=self.ccr)
        from repro.spg.streamit import streamit_workflow

        which: "int | str" = self.app
        if isinstance(which, str) and which.isdigit():
            which = int(which)
        return streamit_workflow(which, ccr=self.ccr, seed=seed)


def build_scenarios(
    topologies=DEFAULT_TOPOLOGIES,
    sizes=DEFAULT_SIZES,
    ccrs=DEFAULT_CCRS,
    apps=DEFAULT_APPS,
) -> list[ScenarioSpec]:
    """The cross-product, in deterministic sweep order."""
    out: list[ScenarioSpec] = []
    for topo in topologies:
        for size in sizes:
            p, q = parse_size(size)
            for ccr in ccrs:
                for app in apps:
                    out.append(ScenarioSpec(topo, p, q, ccr, app))
    return out


def _snap_choice(
    choice: PeriodChoice, heuristics: tuple[str, ...]
) -> tuple[dict, dict[str, bool]]:
    """One record's JSON snapshot plus its per-heuristic success flags.

    Every successful mapping is structurally re-checked here (routes
    through ``validate_path``, speeds in the per-core DVFS sets, acyclic
    quotient) so the report's ``routes_validated`` counts are asserted on
    the report path itself, not only inside the worker.
    """
    results: dict[str, dict] = {}
    ok_flags: dict[str, bool] = {}
    routes = 0
    for name in heuristics:
        r = choice.results[name]
        ok_flags[name] = r.ok
        if r.ok:
            r.mapping.check_structure()
            routes += len(r.mapping.remote_edges())
            results[name] = {
                "ok": True,
                "energy": r.energy.total,
                "active_cores": len(r.mapping.active_cores()),
            }
        else:
            results[name] = {"ok": False, "failure": r.failure}
    best = min(
        (r.total_energy for r in choice.results.values()),
        default=float("inf"),
    )
    record = {
        "period": choice.period,
        "best_energy": None if best == float("inf") else best,
        "routes_validated": routes,
        "results": results,
    }
    return record, ok_flags


def run_scenario_sweep(
    topologies=DEFAULT_TOPOLOGIES,
    sizes=DEFAULT_SIZES,
    ccrs=DEFAULT_CCRS,
    apps=DEFAULT_APPS,
    replicates: int = 1,
    seed: int = 0,
    heuristics=PAPER_ORDER,
    options: dict | None = None,
    jobs: int | None = 1,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    solvers=None,
) -> dict:
    """Run the sweep and return the consolidated JSON-serialisable report.

    ``jobs`` fans the per-instance ``choose_period`` runs over the PR-1
    process pool (``None``/``0`` = all CPUs); instances and solver
    seeds are pre-drawn serially so results match a serial run bit for
    bit.

    ``solvers``, when given, replaces the ``heuristics`` columns with
    arbitrary solver specs from the unified registry (CLI: ``repro
    sweep --solvers Greedy dpa2d1d+refine portfolio``), adding a
    strategy axis to the scenario cross-product.  ``refine=True``
    (deprecated alias of a ``"+refine"`` stage; CLI: ``repro sweep
    --refine``) post-refines every successful mapping with the
    delta-evaluated local search; ``refine_sweeps``/``refine_schedule``
    select its budget and acceptance rule.  Refined mappings pass the
    same structural re-checks as raw solver outputs.
    """
    rng = as_rng(seed)
    heuristics = tuple(solvers) if solvers else tuple(heuristics)
    options = merge_solver_options(
        options, heuristics, refine, refine_sweeps, refine_schedule
    )
    scenarios = build_scenarios(topologies, sizes, ccrs, apps)
    tasks = []
    task_meta: list[tuple[int, str]] = []  # (scenario index, label)
    platforms: list[Topology] = []
    for s_idx, spec in enumerate(scenarios):
        platform = spec.build_platform()
        platforms.append(platform)
        for rep in range(replicates):
            spg = spec.build_app(rng, seed)
            hseed = int(rng.integers(0, 2**63 - 1))
            tasks.append((spg, platform, heuristics, hseed, options))
            task_meta.append((s_idx, f"{spec.label()}/rep{rep}"))
    choices = run_tasks(random_panel_task, tasks, jobs=jobs)

    per_scenario: list[dict] = []
    for s_idx, spec in enumerate(scenarios):
        platform = platforms[s_idx]
        per_scenario.append({
            "topology": spec.topology,
            "size": spec.size,
            "cores": platform.n_cores,
            "heterogeneous": platform.heterogeneous,
            "ccr": spec.ccr,
            "app": spec.app,
            "records": [],
            "failures": {h: 0 for h in heuristics},
            "instances": 0,
        })
    for (s_idx, label), choice in zip(task_meta, choices):
        record, ok_flags = _snap_choice(choice, heuristics)
        record["label"] = label
        entry = per_scenario[s_idx]
        entry["records"].append(record)
        entry["instances"] += 1
        for h, ok in ok_flags.items():
            if not ok:
                entry["failures"][h] += 1
    return {
        "meta": {
            "seed": seed,
            "replicates": replicates,
            # "solvers" names the actual sweep columns; "heuristics" is
            # retained for pre-solver-axis report consumers and holds
            # the same list.  "solver_axis" records whether the columns
            # came from an explicit solvers= request (specs) or the
            # default heuristic set.
            "heuristics": list(heuristics),
            "solvers": list(heuristics),
            "solver_axis": solvers is not None,
            "scenario_count": len(scenarios),
            "instance_count": len(tasks),
            "refine": bool(refine),
            "refine_schedule": refine_schedule if refine else None,
        },
        "scenarios": per_scenario,
    }


def sweep_summary(report: dict) -> str:
    """Render one ASCII table summarising a sweep report."""
    meta = report["meta"]
    heuristics = meta.get("solvers", meta["heuristics"])
    rows = []
    for sc in report["scenarios"]:
        n = sc["instances"]
        ccr = "orig" if sc["ccr"] is None else f"{sc['ccr']:g}"
        cells = [
            f"{n - sc['failures'][h]}/{n}" for h in heuristics
        ]
        routes = sum(r["routes_validated"] for r in sc["records"])
        rows.append([
            sc["topology"] + ("*" if sc["heterogeneous"] else ""),
            sc["size"],
            sc["cores"],
            ccr,
            sc["app"],
            *cells,
            routes,
        ])
    refined = " [refined]" if report["meta"].get("refine") else ""
    return format_table(
        ["topology", "size", "cores", "ccr", "app", *heuristics, "routes"],
        rows,
        title=(
            f"Scenario sweep{refined}: "
            f"{report['meta']['scenario_count']} scenarios, "
            f"{report['meta']['instance_count']} instances "
            f"(successes per heuristic; * = heterogeneous speeds)"
        ),
    )
