"""The paper's published evaluation numbers, as data.

Only the numeric tables are transcribed (figures are published as plots);
benchmarks compare our regenerated counts against these and EXPERIMENTS.md
records the comparison.  Keys follow :data:`repro.heuristics.PAPER_ORDER`.
"""

from __future__ import annotations

from repro.heuristics.base import PAPER_ORDER

__all__ = [
    "PAPER_TABLE2_FAILURES",
    "PAPER_TABLE3_FAILURES",
    "PAPER_TABLE3_INSTANCES",
    "table2_row",
    "table3_row",
]

#: Table 2 — failures out of 48 StreamIt instances per grid size.
PAPER_TABLE2_FAILURES: dict[str, dict[str, int]] = {
    "4x4": dict(zip(PAPER_ORDER, (5, 4, 16, 20, 16))),
    "6x6": dict(zip(PAPER_ORDER, (0, 0, 17, 20, 8))),
}

#: Table 3 — failures out of 2000 random 50-stage instances per CCR
#: (4x4 grid).
PAPER_TABLE3_FAILURES: dict[float, dict[str, int]] = {
    10.0: dict(zip(PAPER_ORDER, (58, 56, 156, 1516, 2))),
    1.0: dict(zip(PAPER_ORDER, (58, 56, 156, 1520, 4))),
    0.1: dict(zip(PAPER_ORDER, (300, 287, 348, 1340, 916))),
}

#: Instances behind each Table 3 row.
PAPER_TABLE3_INSTANCES = 2000


def table2_row(grid: str) -> list[int]:
    """Table-2 failures for grid "4x4" or "6x6", in PAPER_ORDER."""
    return [PAPER_TABLE2_FAILURES[grid][h] for h in PAPER_ORDER]


def table3_row(ccr: float) -> list[int]:
    """Table-3 failures for one CCR, in PAPER_ORDER."""
    return [PAPER_TABLE3_FAILURES[ccr][h] for h in PAPER_ORDER]
