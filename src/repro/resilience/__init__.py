"""Fault tolerance for the parallel engine, sweeps, store and service.

The experimental campaign is hours of independent solver runs fanned
over process pools, and the ROADMAP's north star is an always-on mapping
service — neither can afford one crashed worker discarding every
in-flight result, or one corrupt SQLite row aborting a resumed sweep.
This package makes faults *first-class, deterministic inputs*:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (attempt caps,
  exponential backoff with deterministic jitter, per-task deadlines)
  and the typed :class:`TaskFailure` record that replaces a raw
  ``BrokenProcessPool`` when a task exhausts its retries;
* :mod:`repro.resilience.faults` — :class:`FaultPlan`, a compact spec
  (``"crash@task:3;hang@task:5*2:0.5;corrupt@key:ab"``, also read from
  the ``REPRO_FAULT_PLAN`` environment variable) injecting worker
  crashes, hangs and store-row corruption at index- or key-addressed
  points, so every recovery path is testable and every chaos run
  reproducible.

The engine (:func:`repro.experiments.parallel.run_tasks`) re-runs lost
work with the *same pre-drawn seeds*, so results that survive a fault
are bit-identical to a fault-free run — the chaos battery
(``tests/test_resilience.py``) and the CI chaos-smoke job ``cmp`` the
consolidated reports byte for byte.
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultSite,
    WorkerCrash,
    WorkerHang,
    resolve_fault_plan,
)
from repro.resilience.policy import (
    ExecutionStats,
    RetryPolicy,
    TaskError,
    TaskFailure,
)

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "TaskError",
    "ExecutionStats",
    "FaultPlan",
    "FaultSite",
    "WorkerCrash",
    "WorkerHang",
    "resolve_fault_plan",
]
