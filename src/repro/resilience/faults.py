"""Deterministic fault injection.

In the spirit of systematic parallel-behaviour exploration, faults are
*inputs*: a :class:`FaultPlan` names exactly where a worker crash, a
worker hang or a store-row corruption strikes, and the engine's
recovery machinery must bring the run back to a byte-identical report.
Plans are compact strings so they travel through the
``REPRO_FAULT_PLAN`` environment variable into CLI chaos runs::

    crash@task:3          kill the worker executing task index 3
    crash@task:*          ... executing any task (first attempt only)
    hang@task:5*2:0.5     hang task 5 for 0.5 s on its first 2 attempts
    corrupt@key:3fa       garble the first stored row whose key starts
                          with "3fa" (below the checksum, so ``get``
                          detects and quarantines it)
    corrupt@key:*         ... the first stored row, whatever its key

Entries are ``;``-separated.  Task sites are **attempt-addressed**: a
site fires while ``attempt <= times`` (default once), so a retried task
deterministically escapes the fault — no shared mutable state is needed
between the parent and respawned pool workers.  Key sites consume a
per-site counter in the writing process (store puts happen in the
parent, so a plain counter suffices).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core.errors import ReproError

__all__ = [
    "FaultSite",
    "FaultPlan",
    "WorkerCrash",
    "WorkerHang",
    "resolve_fault_plan",
]

#: Environment variable holding a fault-plan spec for CLI chaos runs.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Default injected-hang duration — long enough that an unrecovered
#: hang is obvious, short enough that a missing deadline cannot wedge a
#: test run forever.
DEFAULT_HANG_S = 30.0

_KINDS = {"crash", "hang", "corrupt"}
_SCOPES = {"crash": "task", "hang": "task", "corrupt": "key"}


class WorkerCrash(ReproError):
    """A (simulated) worker crash, surfaced as an exception on the
    serial path where there is no process to kill."""


class WorkerHang(ReproError):
    """A (simulated) worker hang on the serial path, where a real sleep
    could not be interrupted; the engine treats it as a timeout."""


@dataclass(frozen=True)
class FaultSite:
    """One injection point: ``kind@scope:target[*times][:seconds]``."""

    kind: str  # "crash" | "hang" | "corrupt"
    scope: str  # "task" (index-addressed) | "key" (prefix-addressed)
    target: str  # task index, key prefix, or "*"
    times: int = 1
    seconds: float = DEFAULT_HANG_S

    def matches_task(self, index: int, attempt: int) -> bool:
        return (
            self.scope == "task"
            and (self.target == "*" or self.target == str(index))
            and attempt <= self.times
        )

    def matches_key(self, key: str) -> bool:
        return self.scope == "key" and (
            self.target == "*" or key.startswith(self.target)
        )

    def to_spec(self) -> str:
        spec = f"{self.kind}@{self.scope}:{self.target}"
        if self.times != 1:
            spec += f"*{self.times}"
        if self.kind == "hang" and self.seconds != DEFAULT_HANG_S:
            spec += f":{self.seconds:g}"
        return spec


@dataclass
class FaultPlan:
    """An ordered list of fault sites, plus the key-site fire counters
    (counters are process-local; task sites are attempt-addressed and
    need no state — see the module docstring)."""

    sites: list[FaultSite] = field(default_factory=list)
    _fired: dict[int, int] = field(default_factory=dict, compare=False)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        sites: list[FaultSite] = []
        for raw in spec.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
                scope, rest = rest.split(":", 1)
            except ValueError:
                raise ValueError(
                    f"fault site must look like kind@scope:target, "
                    f"got {entry!r}"
                ) from None
            kind, scope = kind.strip().lower(), scope.strip().lower()
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (expected one of "
                    f"{sorted(_KINDS)})"
                )
            if scope != _SCOPES[kind]:
                raise ValueError(
                    f"{kind} faults are {_SCOPES[kind]}-addressed, "
                    f"got scope {scope!r} in {entry!r}"
                )
            pieces = rest.split(":")
            target = pieces[0].strip()
            times = 1
            # The times suffix is parsed from the right so that a bare
            # "*" stays a wildcard target ("**2" = any target, twice).
            if "*" in target:
                head, times_s = target.rsplit("*", 1)
                if times_s.isdigit() and head:
                    target, times = head, int(times_s)
                    if times < 1:
                        raise ValueError(
                            f"times must be >= 1 in {entry!r}"
                        )
            seconds = DEFAULT_HANG_S
            if len(pieces) > 1:
                if kind != "hang" or len(pieces) > 2:
                    raise ValueError(
                        f"only hang sites take a :seconds suffix "
                        f"({entry!r})"
                    )
                seconds = float(pieces[1])
                if seconds <= 0:
                    raise ValueError(f"hang seconds must be > 0 ({entry!r})")
            if scope == "task" and target != "*":
                int(target)  # validate now, fail loudly at parse time
            if not target:
                raise ValueError(f"empty fault target in {entry!r}")
            sites.append(FaultSite(kind, scope, target, times, seconds))
        return FaultPlan(sites)

    def to_spec(self) -> str:
        return ";".join(site.to_spec() for site in self.sites)

    # -- task sites (stateless, attempt-addressed) ---------------------
    def task_fault(self, index: int, attempt: int) -> FaultSite | None:
        """The first crash/hang site armed for this (task, attempt)."""
        for site in self.sites:
            if site.kind in ("crash", "hang") and site.matches_task(
                index, attempt
            ):
                return site
        return None

    # -- key sites (counter per site, writer-process-local) ------------
    def corrupt_put(self, key: str) -> bool:
        """Whether to corrupt the row being filed under ``key`` now.

        Each corrupt site fires on the first ``times`` matching puts
        seen by this process, then disarms.
        """
        for i, site in enumerate(self.sites):
            if site.kind == "corrupt" and site.matches_key(key):
                fired = self._fired.get(i, 0)
                if fired < site.times:
                    self._fired[i] = fired + 1
                    return True
        return False


def resolve_fault_plan(
    faults: "FaultPlan | str | None",
) -> FaultPlan | None:
    """Coerce a ``faults=`` argument into a plan.

    ``None`` falls back to the ``REPRO_FAULT_PLAN`` environment
    variable (the CLI chaos hook); an absent/empty variable means no
    injection.
    """
    if isinstance(faults, FaultPlan):
        return faults
    if faults is None:
        faults = os.environ.get(FAULT_PLAN_ENV) or None
    if faults is None:
        return None
    plan = FaultPlan.parse(faults)
    return plan if plan.sites else None


def trigger_in_worker(site: FaultSite) -> None:
    """Fire a task site inside a pool worker: a crash takes the whole
    process down (exactly what a segfaulting worker does to a
    ``ProcessPoolExecutor``); a hang sleeps through the task's
    deadline."""
    if site.kind == "crash":
        os._exit(13)
    time.sleep(site.seconds)


def trigger_serial(site: FaultSite) -> None:
    """Fire a task site on the in-process path, where dying or sleeping
    for real would take the caller down with us: crashes and hangs
    surface as typed exceptions the retry loop maps to the same
    "crash"/"timeout" outcomes as the pool path."""
    if site.kind == "crash":
        raise WorkerCrash(f"injected crash ({site.to_spec()})")
    raise WorkerHang(f"injected hang ({site.to_spec()})")
