"""Retry policies and typed task failures.

A :class:`RetryPolicy` bounds how the engine re-runs work lost to a
crashed or hung worker: at most ``max_attempts`` tries per task,
separated by exponential backoff whose jitter is a *deterministic*
function of ``(token, attempt)`` — the token is the task's pre-drawn
seed where the caller knows it (sweeps, portfolios) and the task index
otherwise — so two identical chaos runs sleep identically and stay
reproducible end to end.

A task that exhausts its attempts becomes a :class:`TaskFailure` record
(JSON round-trippable, filed in sweep ``meta.failures``) instead of an
exception tearing down the whole sweep; callers that prefer the old
fail-fast contract get a typed :class:`TaskError` carrying the record.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.errors import ReproError

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "TaskError",
    "ExecutionStats",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) to keep trying one task.

    ``deadline_s`` is the per-task wall-clock budget enforced by the
    pool engine: a chunk of ``k`` tasks must finish within ``k *
    deadline_s`` of submission or its workers are killed and the chunk
    is retried (``None`` = never time out).  The serial path cannot
    interrupt a genuinely hung call, so there injected hangs surface as
    immediate timeouts instead (see :mod:`repro.resilience.faults`).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")

    def delay(self, attempt: int, token: "int | str" = 0) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based:
        attempt 1 is the delay between the first failure and the second
        try).  Exponential in ``attempt``, capped at ``max_backoff_s``,
        stretched by a deterministic jitter fraction drawn from
        ``sha256(token:attempt)`` — no global RNG state is consumed.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
        frac = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter * frac)


@dataclass(frozen=True)
class TaskFailure:
    """One task's terminal failure after all retries were spent.

    ``reason`` is one of ``"crash"`` (the worker process died),
    ``"timeout"`` (the task blew its deadline) or ``"error"`` (the task
    function itself raised — never retried, since a deterministic
    exception would fail every attempt identically).
    """

    index: int
    reason: str
    message: str
    attempts: int

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "reason": self.reason,
            "message": self.message,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_payload(payload: dict) -> "TaskFailure":
        return TaskFailure(
            index=int(payload["index"]),
            reason=str(payload["reason"]),
            message=str(payload["message"]),
            attempts=int(payload["attempts"]),
        )

    def describe(self) -> str:
        return (
            f"task {self.index} failed ({self.reason}) after "
            f"{self.attempts} attempt(s): {self.message}"
        )


class TaskError(ReproError):
    """Raised by ``run_tasks(..., failures='raise')`` — the default —
    when a task fails terminally; carries the :class:`TaskFailure`."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


@dataclass
class ExecutionStats:
    """Recovery counters for one ``run_tasks`` call.

    Callers pass an instance in (``stats=``) to observe what the engine
    had to do; the counters never feed canonical reports (a recovered
    run must serialise byte-identically to a fault-free one), only
    operator-facing summaries.
    """

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    respawns: int = 0
    failures: list[TaskFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.failures
            and not self.retries
            and not self.crashes
            and not self.timeouts
        )

    def merge(self, other: "ExecutionStats") -> None:
        self.retries += other.retries
        self.crashes += other.crashes
        self.timeouts += other.timeouts
        self.respawns += other.respawns
        self.failures.extend(other.failures)

    def summary(self) -> str:
        return (
            f"{self.retries} retries, {self.crashes} crashes, "
            f"{self.timeouts} timeouts, {self.respawns} pool respawns, "
            f"{len(self.failures)} permanent failures"
        )
