"""Convenience constructors for common SPG shapes.

All builders take explicit weight/volume sequences or a default constant so
that tests can pin exact values; the StreamIt synthesis and the random
generator layer their own weight distributions on top.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.spg.graph import SPG, parallel, series, sp_edge

__all__ = ["chain", "split_join", "fork_join", "pipeline_of", "diamond"]


def chain(
    n: int,
    weights: Sequence[float] | float = 1.0,
    comms: Sequence[float] | float = 1.0,
) -> SPG:
    """A linear chain of ``n`` stages (``n >= 2``); xmax = n, ymax = 1."""
    if n < 2:
        raise ValueError("chain needs at least 2 stages")
    w = list(weights) if isinstance(weights, Sequence) else [weights] * n
    c = list(comms) if isinstance(comms, Sequence) else [comms] * (n - 1)
    if len(w) != n or len(c) != n - 1:
        raise ValueError("weights/comms length mismatch")
    g = sp_edge(w[0], w[1], c[0])
    for k in range(2, n):
        g = series(g, sp_edge(0.0, w[k], c[k - 1]), merge="first")
    return g


def split_join(
    branch_lengths: Sequence[int],
    w_source: float = 1.0,
    w_sink: float = 1.0,
    w_branch: float = 1.0,
    comm: float = 1.0,
) -> SPG:
    """A split-join: ``k`` parallel chains between a source and a sink.

    ``branch_lengths[b]`` is the number of *internal* stages of branch ``b``
    (>= 1).  The result has ``n = 2 + sum(branch_lengths)`` stages, elevation
    ``k = len(branch_lengths)`` and length ``2 + max(branch_lengths)``.
    This is the basic StreamIt building block.
    """
    if not branch_lengths or any(l < 1 for l in branch_lengths):
        raise ValueError("need at least one branch, each of length >= 1")
    branches = [
        chain(l + 2, [w_source] + [w_branch] * l + [w_sink], comm)
        for l in branch_lengths
    ]
    g = branches[0]
    for b in branches[1:]:
        g = parallel(g, b, merge="first")
    return g


def fork_join(
    k: int,
    branch_weights: Sequence[float] | float = 1.0,
    w_source: float = 0.0,
    w_sink: float = 0.0,
    comm: float = 0.0,
) -> SPG:
    """A fork-join of ``k`` single-stage branches (the Proposition-1 gadget).

    With ``w_source = w_sink = 0`` and zero communications this is exactly
    the unbounded-elevation graph used in the 2-PARTITION reduction.
    """
    if isinstance(branch_weights, Sequence):
        bw = list(branch_weights)
        if len(bw) != k:
            raise ValueError("branch_weights length mismatch")
    else:
        bw = [branch_weights] * k
    g = split_join([1] * k, w_source, w_sink, 1.0, comm)
    # split_join([1]*k) numbers stages: 0 = source, 1..k = branches, k+1 = sink.
    return g.with_weights(weights=[w_source] + bw + [w_sink])


def diamond(
    w: Sequence[float] = (1.0, 1.0, 1.0, 1.0),
    d: Sequence[float] = (1.0, 1.0, 1.0, 1.0),
) -> SPG:
    """The 4-stage diamond: 0 -> {1, 2} -> 3 (smallest non-chain SPG)."""
    left = chain(3, [w[0], w[1], w[3]], [d[0], d[2]])
    right = chain(3, [0.0, w[2], 0.0], [d[1], d[3]])
    return parallel(left, right, merge="first")


def pipeline_of(segments: Sequence[SPG]) -> SPG:
    """Series composition of ``segments`` left to right (merge rule "first").

    With the "first" rule the junction stage keeps the weight it has in the
    left segment, so builders can put the full junction weight there and set
    the right segment's source weight to anything.
    """
    if not segments:
        raise ValueError("need at least one segment")
    g = segments[0]
    for s in segments[1:]:
        g = series(g, s, merge="first")
    return g
