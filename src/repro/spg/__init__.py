"""SPG substrate: graphs, builders, random generation, StreamIt suite."""

from repro.spg.graph import SPG, series, parallel, sp_edge
from repro.spg.build import chain, split_join, fork_join, diamond, pipeline_of
from repro.spg.random_gen import (
    random_spg,
    random_spg_with_elevation,
    random_weights,
)
from repro.spg.streamit import (
    STREAMIT_TABLE1,
    StreamItSpec,
    streamit_workflow,
    streamit_suite,
    streamit_names,
)
from repro.spg.decompose import SPTree, decompose, sp_depth
from repro.spg.gadgets import (
    partition_fork_join,
    partition_platform,
    solve_2partition_via_mapping,
    uniline_gadget,
)
from repro.spg.analysis import (
    ancestor_masks,
    descendant_masks,
    cut_volume,
    out_cut_edges,
    is_series_parallel,
)

__all__ = [
    "SPG",
    "series",
    "parallel",
    "sp_edge",
    "chain",
    "split_join",
    "fork_join",
    "diamond",
    "pipeline_of",
    "random_spg",
    "random_spg_with_elevation",
    "random_weights",
    "STREAMIT_TABLE1",
    "StreamItSpec",
    "streamit_workflow",
    "streamit_suite",
    "streamit_names",
    "SPTree",
    "decompose",
    "sp_depth",
    "partition_fork_join",
    "partition_platform",
    "solve_2partition_via_mapping",
    "uniline_gadget",
    "ancestor_masks",
    "descendant_masks",
    "cut_volume",
    "out_cut_edges",
    "is_series_parallel",
]
