"""Synthetic reconstruction of the StreamIt workflow suite (Table 1).

The paper evaluates on the 12 benchmarks of the StreamIt suite.  The actual
stream graphs are not redistributable here, so each workflow is *synthesised*
as a pipeline of split-join segments whose structural characteristics match
Table 1 of the paper **exactly**: number of stages ``n``, elevation
``ymax``, length ``xmax`` and computation-to-communication ratio CCR.
Stage weights and communication volumes are drawn from a fixed-seed RNG and
the volumes rescaled so the CCR matches the published value.

This substitution is documented in DESIGN.md: the paper's evaluation varies
only (n, ymax, xmax, CCR), which are preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spg.build import chain, pipeline_of, split_join
from repro.spg.graph import SPG
from repro.spg.random_gen import random_weights

__all__ = [
    "STREAMIT_TABLE1",
    "StreamItSpec",
    "streamit_workflow",
    "streamit_suite",
    "streamit_names",
]


@dataclass(frozen=True)
class StreamItSpec:
    """Published characteristics of one StreamIt workflow (paper Table 1)."""

    index: int
    name: str
    n: int
    ymax: int
    xmax: int
    ccr: float
    #: Synthesis recipe: pipeline segments, each ("sj", k, total, longest)
    #: for a split-join with k branches whose internal lengths sum to
    #: ``total`` with maximum ``longest``, or ("chain", length).
    segments: tuple[tuple, ...]


def _branch_lengths(k: int, total: int, longest: int) -> list[int]:
    """Distribute ``total`` internal stages over ``k`` branches, max ``longest``.

    The first branch gets exactly ``longest`` (this pins the split-join's
    xmax); the rest are filled greedily.
    """
    rest = total - longest
    if k < 1 or rest < k - 1 or rest > (k - 1) * longest:
        raise ValueError(f"infeasible branch distribution ({k}, {total}, {longest})")
    lengths = [longest]
    remaining_branches = k - 1
    for b in range(k - 1):
        remaining_branches -= 1
        take = min(longest, rest - remaining_branches)
        lengths.append(take)
        rest -= take
    assert rest == 0 and len(lengths) == k and max(lengths) == longest
    return lengths


# Table 1 of the paper, with a synthesis recipe per workflow.  Recipes were
# chosen so that the derived (n, ymax, xmax) match the published values; the
# test suite asserts this for every workflow.
STREAMIT_TABLE1: tuple[StreamItSpec, ...] = (
    StreamItSpec(1, "Beamformer", 57, 12, 12, 537.0, (("sj", 12, 55, 10),)),
    StreamItSpec(2, "ChannelVocoder", 55, 17, 8, 453.0, (("sj", 17, 53, 6),)),
    StreamItSpec(3, "Filterbank", 85, 16, 14, 535.0, (("sj", 16, 83, 12),)),
    StreamItSpec(4, "FMRadio", 43, 12, 12, 330.0, (("sj", 12, 41, 10),)),
    StreamItSpec(
        5, "Vocoder", 114, 17, 32, 38.0, (("sj", 17, 102, 20), ("chain", 11))
    ),
    StreamItSpec(
        6, "BitonicSort", 40, 4, 23, 6.0, (("sj", 4, 23, 6), ("chain", 16))
    ),
    StreamItSpec(7, "DCT", 8, 1, 8, 68.0, (("chain", 8),)),
    StreamItSpec(
        8, "DES", 53, 3, 45, 7.0, (("sj", 3, 12, 4), ("chain", 40))
    ),
    StreamItSpec(9, "FFT", 17, 1, 17, 17.0, (("chain", 17),)),
    StreamItSpec(
        10, "MPEG2-noparser", 23, 5, 18, 9.0, (("sj", 5, 8, 3), ("chain", 14))
    ),
    StreamItSpec(
        11, "Serpent", 120, 2, 111, 9.0, (("sj", 2, 18, 9), ("chain", 101))
    ),
    StreamItSpec(12, "TDE", 29, 1, 29, 12.0, (("chain", 29),)),
)

_BY_NAME = {s.name.lower(): s for s in STREAMIT_TABLE1}
_BY_INDEX = {s.index: s for s in STREAMIT_TABLE1}


def streamit_names() -> list[str]:
    """Workflow names in Table-1 order."""
    return [s.name for s in STREAMIT_TABLE1]


def _build_structure(spec: StreamItSpec) -> SPG:
    segments = []
    for seg in spec.segments:
        if seg[0] == "sj":
            _, k, total, longest = seg
            segments.append(split_join(_branch_lengths(k, total, longest)))
        elif seg[0] == "chain":
            segments.append(chain(seg[1]))
        else:  # pragma: no cover - specs are static
            raise ValueError(f"unknown segment kind {seg[0]!r}")
    return pipeline_of(segments)


def streamit_workflow(
    which: "int | str",
    ccr: float | None = None,
    seed: int = 0,
) -> SPG:
    """Synthesise one StreamIt workflow.

    Parameters
    ----------
    which:
        Table-1 index (1..12) or workflow name (case-insensitive).
    ccr:
        Override the computation-to-communication ratio (the paper rescales
        to 10, 1 and 0.1); ``None`` keeps the published original CCR.
    seed:
        Weight-synthesis seed (combined with the workflow index so that each
        workflow gets a distinct but reproducible weight draw).
    """
    if isinstance(which, str):
        try:
            spec = _BY_NAME[which.lower()]
        except KeyError:
            raise KeyError(f"unknown StreamIt workflow {which!r}") from None
    else:
        try:
            spec = _BY_INDEX[which]
        except KeyError:
            raise KeyError(f"StreamIt index must be 1..12, got {which}") from None
    structure = _build_structure(spec)
    rng = np.random.default_rng((seed, spec.index))
    target = spec.ccr if ccr is None else ccr
    return random_weights(structure, rng, ccr=target)


def streamit_suite(ccr: float | None = None, seed: int = 0) -> list[SPG]:
    """All 12 workflows in Table-1 order."""
    return [streamit_workflow(s.index, ccr, seed) for s in STREAMIT_TABLE1]
