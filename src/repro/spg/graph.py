"""Series-parallel graphs with the paper's recursive ``(x, y)`` labelling.

An SPG (Section 3.1 of the paper) is built from two-node graphs by *series*
composition (merge the sink of the first with the source of the second) and
*parallel* composition (merge both sources and both sinks).  Each stage
carries a computation requirement ``w_i`` (cycles) and each edge carries a
communication volume ``delta_{i,j}`` (bytes).

Every node has a label ``(x_i, y_i)``: its coordinates in the recursive
construction.  The source always has label ``(1, 1)``; the sink has label
``(xmax, 1)``; the maximum ``y`` value is the *elevation* ``ymax``, the
maximal degree of parallelism of the SPG.  Labels drive the DPA2D heuristic,
which first lays the SPG out on an ``xmax x ymax`` grid.

Node identifiers are integers ``0 .. n-1``; the source is always node ``0``
and the sink is always node ``n - 1`` (compositions renumber accordingly).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import networkx as nx

__all__ = ["SPG", "series", "parallel", "sp_edge"]

#: How to merge the weights of the two stages identified by a composition.
MergeRule = "str | Callable[[float, float], float]"


def _merge_fn(rule) -> Callable[[float, float], float]:
    if callable(rule):
        return rule
    if rule == "sum":
        return lambda a, b: a + b
    if rule == "first":
        return lambda a, b: a
    if rule == "second":
        return lambda a, b: b
    if rule == "max":
        return max
    raise ValueError(f"unknown merge rule: {rule!r}")


class SPG:
    """An immutable series-parallel workflow graph.

    Parameters
    ----------
    weights:
        ``weights[i]`` is the computation requirement of stage ``i`` (cycles).
    labels:
        ``labels[i] = (x_i, y_i)`` per the paper's recursive labelling, or
        ``None`` to derive fallback labels (longest-path depth for ``x``, a
        per-level counter for ``y``).  Fallback labels satisfy the structural
        invariants used by the heuristics but are only meaningful for graphs
        actually built by composition.
    edges:
        mapping ``(i, j) -> delta_ij`` (bytes sent from stage i to stage j).
    validate:
        verify the structural invariants (single source 0, single sink n-1,
        acyclic, edges strictly increase ``x``).
    """

    __slots__ = (
        "weights", "labels", "edges", "_preds", "_succs", "_topo", "_derived"
    )

    def __init__(
        self,
        weights: list[float],
        labels: list[tuple[int, int]] | None,
        edges: Mapping[tuple[int, int], float],
        *,
        validate: bool = True,
    ) -> None:
        self.weights: tuple[float, ...] = tuple(float(w) for w in weights)
        self.edges: dict[tuple[int, int], float] = {
            (int(i), int(j)): float(d) for (i, j), d in edges.items()
        }
        n = len(self.weights)
        preds: list[list[int]] = [[] for _ in range(n)]
        succs: list[list[int]] = [[] for _ in range(n)]
        for (i, j) in self.edges:
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"edge ({i}, {j}) references unknown stage")
            succs[i].append(j)
            preds[j].append(i)
        self._preds = tuple(tuple(sorted(p)) for p in preds)
        self._succs = tuple(tuple(sorted(s)) for s in succs)
        # The topological order is computed lazily: compositions build many
        # intermediate SPGs (validate=False) that never ask for it.
        self._topo: tuple[int, ...] | None = None
        # Lazily computed derived data (label extrema, totals, adjacency
        # arrays, reachability masks, ...).  SPGs are immutable, so entries
        # never need invalidation; the dict is dropped on pickling.
        self._derived: dict = {}
        if labels is None:
            labels = self._fallback_labels()
        self.labels: tuple[tuple[int, int], ...] = tuple(
            (int(x), int(y)) for x, y in labels
        )
        if len(self.labels) != n:
            raise ValueError("labels/weights length mismatch")
        if validate:
            self.topological_order()  # eager cycle detection
            self._validate()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of stages."""
        return len(self.weights)

    @property
    def source(self) -> int:
        return 0

    @property
    def sink(self) -> int:
        return self.n - 1

    def cached(self, key: str, factory: Callable[[], object]):
        """Fetch derived data from the per-instance cache, computing once.

        The cache holds anything recomputable from the immutable graph:
        label extrema, adjacency arrays, reachability bitmasks, the ideal
        lattice of the DP heuristics.  ``factory`` runs at most once per
        key for the lifetime of the SPG.
        """
        try:
            return self._derived[key]
        except KeyError:
            value = self._derived[key] = factory()
            return value

    @property
    def xmax(self) -> int:
        """Length of the SPG: the ``x`` label of the sink."""
        return self.cached("xmax", lambda: max(x for x, _ in self.labels))

    @property
    def ymax(self) -> int:
        """Elevation of the SPG: the maximal ``y`` label."""
        return self.cached("ymax", lambda: max(y for _, y in self.labels))

    def preds(self, i: int) -> tuple[int, ...]:
        """Immediate predecessors of stage ``i``."""
        return self._preds[i]

    def succs(self, i: int) -> tuple[int, ...]:
        """Immediate successors of stage ``i``."""
        return self._succs[i]

    def comm(self, i: int, j: int) -> float:
        """Communication volume on edge ``(i, j)`` (0 if absent)."""
        return self.edges.get((i, j), 0.0)

    def topological_order(self) -> tuple[int, ...]:
        """A topological ordering of the stages (computed once, lazily)."""
        if self._topo is None:
            self._topo = self._toposort()
        return self._topo

    @property
    def edge_list(self) -> tuple[tuple[int, int, float], ...]:
        """Edges as an immutable ``(i, j, delta)`` array (dict order).

        Hot loops iterate this flat tuple instead of ``edges.items()``;
        the order matches the ``edges`` dict so float accumulations are
        bit-identical either way.
        """
        return self.cached(
            "edge_list",
            lambda: tuple((i, j, d) for (i, j), d in self.edges.items()),
        )

    def in_edges(self, j: int) -> tuple[tuple[int, float], ...]:
        """Incoming ``(pred, delta)`` pairs of stage ``j`` (sorted by pred)."""
        return self._in_edges_table()[j]

    def out_edges(self, i: int) -> tuple[tuple[int, float], ...]:
        """Outgoing ``(succ, delta)`` pairs of stage ``i`` (sorted by succ)."""
        return self._out_edges_table()[i]

    def _in_edges_table(self) -> tuple:
        return self.cached(
            "in_edges",
            lambda: tuple(
                tuple((i, self.edges[(i, j)]) for i in self._preds[j])
                for j in range(self.n)
            ),
        )

    def _out_edges_table(self) -> tuple:
        return self.cached(
            "out_edges",
            lambda: tuple(
                tuple((j, self.edges[(i, j)]) for j in self._succs[i])
                for i in range(self.n)
            ),
        )

    def descendant_masks(self) -> list[int]:
        """``masks[i]`` = bitset of strict descendants of stage ``i`` (cached)."""
        return self.cached("desc_masks", self._descendant_masks)

    def ancestor_masks(self) -> list[int]:
        """``masks[i]`` = bitset of strict ancestors of stage ``i`` (cached)."""
        return self.cached("anc_masks", self._ancestor_masks)

    def _descendant_masks(self) -> list[int]:
        masks = [0] * self.n
        for i in reversed(self.topological_order()):
            m = 0
            for j in self._succs[i]:
                m |= (1 << j) | masks[j]
            masks[i] = m
        return masks

    def _ancestor_masks(self) -> list[int]:
        masks = [0] * self.n
        for i in self.topological_order():
            m = 0
            for j in self._preds[i]:
                m |= (1 << j) | masks[j]
            masks[i] = m
        return masks

    @property
    def total_work(self) -> float:
        """Sum of all computation requirements."""
        return self.cached("total_work", lambda: sum(self.weights))

    @property
    def total_comm(self) -> float:
        """Sum of all communication volumes."""
        return self.cached("total_comm", lambda: sum(self.edges.values()))

    @property
    def ccr(self) -> float:
        """Computation-to-communication ratio ``sum(w) / sum(delta)``."""
        tc = self.total_comm
        return float("inf") if tc == 0 else self.total_work / tc

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def levels(self) -> dict[int, list[int]]:
        """Stages grouped by ``x`` label: ``{x: [stage, ...]}`` (sorted)."""
        out: dict[int, list[int]] = {}
        for i, (x, _) in enumerate(self.labels):
            out.setdefault(x, []).append(i)
        return {x: sorted(nodes) for x, nodes in sorted(out.items())}

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph`.

        Nodes carry ``w``, ``x``, ``y`` attributes; edges carry ``delta``.
        """
        g = nx.DiGraph()
        for i, w in enumerate(self.weights):
            x, y = self.labels[i]
            g.add_node(i, w=w, x=x, y=y)
        for (i, j), d in self.edges.items():
            g.add_edge(i, j, delta=d)
        return g

    def with_weights(
        self,
        weights: list[float] | None = None,
        edges: Mapping[tuple[int, int], float] | None = None,
    ) -> "SPG":
        """A copy of this SPG with replaced node weights and/or edge volumes."""
        new_edges = dict(self.edges)
        if edges is not None:
            for e, d in edges.items():
                if e not in new_edges:
                    raise KeyError(f"edge {e} not present")
                new_edges[e] = float(d)
        return SPG(
            list(weights) if weights is not None else list(self.weights),
            list(self.labels),
            new_edges,
            validate=False,
        )

    def with_comm_scaled(self, factor: float) -> "SPG":
        """A copy with every communication volume multiplied by ``factor``."""
        return self.with_weights(
            edges={e: d * factor for e, d in self.edges.items()}
        )

    def with_ccr(self, target_ccr: float) -> "SPG":
        """A copy whose communication volumes are rescaled to hit ``target_ccr``.

        Used by the evaluation section of the paper, which rescales the
        ``delta``'s of each workflow so the CCR becomes 10, 1 or 0.1.
        """
        if target_ccr <= 0:
            raise ValueError("target CCR must be positive")
        if self.total_comm == 0:
            raise ValueError("cannot rescale an SPG with no communications")
        return self.with_comm_scaled(self.ccr / target_ccr)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _toposort(self) -> tuple[int, ...]:
        n = self.n
        indeg = [len(self._preds[i]) for i in range(n)]
        stack = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while stack:
            i = stack.pop()
            order.append(i)
            for j in self._succs[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    stack.append(j)
        if len(order) != n:
            raise ValueError("graph has a cycle")
        return tuple(order)

    def _fallback_labels(self) -> list[tuple[int, int]]:
        n = self.n
        depth = [1] * n
        for i in self.topological_order():
            for j in self._succs[i]:
                depth[j] = max(depth[j], depth[i] + 1)
        seen: dict[int, int] = {}
        labels: list[tuple[int, int]] = [(0, 0)] * n
        for i in sorted(range(n), key=lambda k: (depth[k], k)):
            lane = seen.get(depth[i], 0) + 1
            seen[depth[i]] = lane
            labels[i] = (depth[i], lane)
        return labels

    def _validate(self) -> None:
        n = self.n
        if n < 1:
            raise ValueError("SPG must have at least one stage")
        if n >= 2:
            for i in range(n):
                if i != self.source and not self._preds[i]:
                    raise ValueError(f"stage {i} is a second source")
                if i != self.sink and not self._succs[i]:
                    raise ValueError(f"stage {i} is a second sink")
        for (i, j) in self.edges:
            if self.labels[i][0] >= self.labels[j][0]:
                raise ValueError(
                    f"edge ({i}, {j}) does not increase x: "
                    f"{self.labels[i]} -> {self.labels[j]}"
                )
        if self.labels[self.source] != (1, 1):
            raise ValueError("source label must be (1, 1)")
        if self.labels[self.sink][1] != 1:
            raise ValueError("sink label must have y = 1")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SPG(n={self.n}, edges={len(self.edges)}, "
            f"xmax={self.xmax}, ymax={self.ymax}, ccr={self.ccr:.3g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SPG):
            return NotImplemented
        return (
            self.weights == other.weights
            and self.labels == other.labels
            and self.edges == other.edges
        )

    def __hash__(self) -> int:
        return hash(
            (self.weights, self.labels, tuple(sorted(self.edges.items())))
        )

    # ------------------------------------------------------------------
    # Pickling (the parallel experiment engine ships SPGs to workers).
    # The derived-data cache is dropped: workers rebuild what they need.
    # ------------------------------------------------------------------
    def __reduce__(self):
        return (_unpickle_spg, (self.weights, self.labels, self.edges))


def _unpickle_spg(weights, labels, edges) -> "SPG":
    return SPG(list(weights), list(labels), edges, validate=False)


def sp_edge(w_src: float, w_dst: float, delta: float) -> SPG:
    """The smallest SPG: two stages joined by one edge (labels (1,1)->(2,1))."""
    return SPG([w_src, w_dst], [(1, 1), (2, 1)], {(0, 1): delta})


def series(g1: SPG, g2: SPG, merge: MergeRule = "sum") -> SPG:
    """Series composition: merge the sink of ``g1`` with the source of ``g2``.

    The merged stage's weight combines the two endpoint weights according to
    ``merge`` ("sum" by default).  Labels follow Section 3.1: ``g2``'s labels
    have their ``x`` values incremented by ``x_sink(g1) - 1``.
    """
    fn = _merge_fn(merge)
    n1 = g1.n
    xshift = g1.labels[g1.sink][0] - 1

    def remap(j: int) -> int:
        # g2 node j -> result id; g2's source coincides with g1's sink.
        return g1.sink if j == 0 else n1 - 1 + j

    weights = list(g1.weights) + [g2.weights[j] for j in range(1, g2.n)]
    weights[g1.sink] = fn(g1.weights[g1.sink], g2.weights[0])
    labels = list(g1.labels) + [
        (x + xshift, y) for (x, y) in list(g2.labels)[1:]
    ]
    edges: dict[tuple[int, int], float] = dict(g1.edges)
    for (i, j), d in g2.edges.items():
        e = (remap(i), remap(j))
        edges[e] = edges.get(e, 0.0) + d
    return SPG(weights, labels, edges, validate=False)


def parallel(g1: SPG, g2: SPG, merge: MergeRule = "sum") -> SPG:
    """Parallel composition: merge both sources and both sinks.

    Following Section 3.1, the component with the longest path (largest
    ``x_sink``) is placed first; the other component's internal ``y`` labels
    are incremented by the first component's maximal ``y``.  If both
    components contribute a direct source->sink edge, the volumes add up.
    """
    if g1.n < 2 or g2.n < 2:
        raise ValueError("parallel composition needs SPGs with >= 2 stages")
    if g1.labels[g1.sink][0] < g2.labels[g2.sink][0]:
        g1, g2 = g2, g1
    fn = _merge_fn(merge)
    n1, n2 = g1.n, g2.n
    n = n1 + n2 - 2
    yshift = g1.ymax

    def remap2(j: int) -> int:
        if j == 0:
            return 0
        if j == g2.sink:
            return n - 1
        return n1 - 2 + j  # inner g2 nodes come after inner g1 nodes

    def remap1(i: int) -> int:
        return n - 1 if i == g1.sink else i

    weights = [0.0] * n
    labels: list[tuple[int, int]] = [(0, 0)] * n
    weights[0] = fn(g1.weights[0], g2.weights[0])
    labels[0] = g1.labels[0]
    weights[n - 1] = fn(g1.weights[g1.sink], g2.weights[g2.sink])
    labels[n - 1] = g1.labels[g1.sink]
    for i in range(1, n1 - 1):
        weights[i] = g1.weights[i]
        labels[i] = g1.labels[i]
    for j in range(1, n2 - 1):
        x, y = g2.labels[j]
        weights[n1 - 2 + j] = g2.weights[j]
        labels[n1 - 2 + j] = (x, y + yshift)

    edges: dict[tuple[int, int], float] = {}
    for (i, j), d in g1.edges.items():
        e = (remap1(i), remap1(j))
        edges[e] = edges.get(e, 0.0) + d
    for (i, j), d in g2.edges.items():
        e = (remap2(i), remap2(j))
        edges[e] = edges.get(e, 0.0) + d
    return SPG(weights, labels, edges, validate=False)
