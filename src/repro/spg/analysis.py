"""Structural analysis of SPGs: reachability, cuts, SP-recognition.

These utilities back the DAG-partition machinery (convexity and quotient
acyclicity checks) and the dynamic-programming heuristics (prefix cuts).
Node subsets are bitmask integers (see :mod:`repro.util.bitset`).
"""

from __future__ import annotations

from repro.spg.graph import SPG
from repro.util.bitset import iter_bits

__all__ = [
    "descendant_masks",
    "ancestor_masks",
    "cut_volume",
    "out_cut_edges",
    "is_series_parallel",
]


def descendant_masks(spg: SPG) -> list[int]:
    """``masks[i]`` = bitset of strict descendants of stage ``i``.

    Cached on the (immutable) SPG: heuristics that re-run on the same graph
    at several periods share one computation.
    """
    return spg.descendant_masks()


def ancestor_masks(spg: SPG) -> list[int]:
    """``masks[i]`` = bitset of strict ancestors of stage ``i`` (cached)."""
    return spg.ancestor_masks()


def cut_volume(spg: SPG, subset: int) -> float:
    """Total volume of edges leaving bitset ``subset`` (to its complement).

    On a uni-directional linear array every edge leaving a prefix of the
    cluster sequence crosses the link just after that prefix, so this is the
    traffic of the link following ``subset`` in the Theorem-1 DP.
    """
    total = 0.0
    for i, j, d in spg.edge_list:
        if (subset >> i) & 1 and not (subset >> j) & 1:
            total += d
    return total


def out_cut_edges(spg: SPG, subset: int) -> list[tuple[int, int, float]]:
    """Edges ``(i, j, delta)`` leaving bitset ``subset``."""
    return [
        (i, j, d)
        for i, j, d in spg.edge_list
        if (subset >> i) & 1 and not (subset >> j) & 1
    ]


def is_series_parallel(spg: SPG) -> bool:
    """Check two-terminal series-parallel structure by SP reduction.

    Repeatedly applies *series reductions* (remove a node with in-degree and
    out-degree one, fusing its two edges) and *parallel reductions* (fuse
    multi-edges).  The graph is SP iff it reduces to a single edge from
    source to sink.  Graphs produced by :func:`repro.spg.graph.series` /
    :func:`repro.spg.graph.parallel` always pass; hand-built DAGs may not.
    """
    n = spg.n
    if n == 1:
        return True
    # Multiset of edges as {(i, j): multiplicity}; volumes are irrelevant.
    mult: dict[tuple[int, int], int] = {}
    for (i, j) in spg.edges:
        mult[(i, j)] = mult.get((i, j), 0) + 1
    preds: dict[int, set[int]] = {i: set() for i in range(n)}
    succs: dict[int, set[int]] = {i: set() for i in range(n)}
    for (i, j) in mult:
        succs[i].add(j)
        preds[j].add(i)

    changed = True
    while changed:
        changed = False
        # Parallel reduction: collapse multiplicity.
        for e, m in list(mult.items()):
            if m > 1:
                mult[e] = 1
                changed = True
        # Series reduction.
        for v in list(preds):
            if v in (spg.source, spg.sink):
                continue
            if len(preds[v]) == 1 and len(succs[v]) == 1:
                (a,) = preds[v]
                (b,) = succs[v]
                if mult.get((a, v), 0) == 1 and mult.get((v, b), 0) == 1:
                    if a == b:  # would create a self loop; not SP
                        continue
                    del mult[(a, v)]
                    del mult[(v, b)]
                    succs[a].discard(v)
                    preds[b].discard(v)
                    mult[(a, b)] = mult.get((a, b), 0) + 1
                    succs[a].add(b)
                    preds[b].add(a)
                    del preds[v]
                    del succs[v]
                    changed = True
    return set(mult) == {(spg.source, spg.sink)}


def convex_closure_ok(
    cluster: int, desc: list[int], anc: list[int], n: int
) -> bool:
    """True iff bitset ``cluster`` is convex (no outside node on an inside path).

    A node ``w`` outside the cluster violates convexity iff it is a
    descendant of some cluster node *and* an ancestor of some cluster node.
    """
    below = 0  # nodes reachable from the cluster
    above = 0  # nodes reaching the cluster
    for i in iter_bits(cluster):
        below |= desc[i]
        above |= anc[i]
    return (below & above) & ~cluster == 0
