"""SP-tree decomposition: recover the series/parallel structure of an SPG.

An SPG is defined constructively (Section 3.1); this module inverts the
construction, producing a binary decomposition tree whose leaves are the
graph's edges and whose internal nodes are series or parallel compositions.
The tree certifies series-parallelness, and walking it re-derives node
labels, enumerates maximal chains, or measures structural statistics
(series/parallel depth) used by the structure-aware heuristics' analyses.

The algorithm is the classical two-terminal SP reduction: repeatedly fuse
a degree-(1,1) node into a series composition and merge duplicate edges
into a parallel composition, recording the history as a tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spg.graph import SPG

__all__ = ["SPTree", "decompose", "sp_depth"]


@dataclass(frozen=True)
class SPTree:
    """A node of the series-parallel decomposition tree.

    ``kind`` is "edge" (leaf; ``edge`` holds the original ``(i, j)`` pair),
    "series" (children joined at ``via``, the fused middle stage) or
    "parallel".
    """

    kind: str
    source: int
    sink: int
    children: tuple["SPTree", ...] = ()
    edge: tuple[int, int] | None = None
    via: int | None = None

    def leaves(self) -> list[tuple[int, int]]:
        """The original SPG edges covered by this subtree."""
        if self.kind == "edge":
            assert self.edge is not None
            return [self.edge]
        out: list[tuple[int, int]] = []
        for c in self.children:
            out.extend(c.leaves())
        return out

    def count(self, kind: str) -> int:
        """Number of tree nodes of the given kind."""
        own = 1 if self.kind == kind else 0
        return own + sum(c.count(kind) for c in self.children)

    def render(self, indent: int = 0) -> str:
        """Multi-line indented rendering (debugging / teaching aid)."""
        pad = "  " * indent
        if self.kind == "edge":
            return f"{pad}edge {self.edge[0]} -> {self.edge[1]}"
        label = f"{self.kind} ({self.source} .. {self.sink})"
        body = "\n".join(c.render(indent + 1) for c in self.children)
        return f"{pad}{label}\n{body}"


def decompose(spg: SPG) -> SPTree:
    """The SP decomposition tree of ``spg``.

    Raises ``ValueError`` if the graph is not two-terminal series-parallel
    (which cannot happen for graphs built by
    :func:`repro.spg.graph.series` / :func:`repro.spg.graph.parallel`).
    """
    n = spg.n
    if n == 1:
        raise ValueError("a single stage has no SP decomposition")
    # Multigraph between remaining nodes; each parallel bundle holds trees.
    trees: dict[tuple[int, int], list[SPTree]] = {}
    preds: dict[int, set[int]] = {i: set() for i in range(n)}
    succs: dict[int, set[int]] = {i: set() for i in range(n)}
    for (i, j) in spg.edges:
        trees.setdefault((i, j), []).append(
            SPTree("edge", i, j, edge=(i, j))
        )
        succs[i].add(j)
        preds[j].add(i)

    def merge_parallel(key: tuple[int, int]) -> None:
        bundle = trees[key]
        if len(bundle) > 1:
            trees[key] = [
                SPTree("parallel", key[0], key[1], tuple(bundle))
            ]

    for key in list(trees):
        merge_parallel(key)

    changed = True
    while changed:
        changed = False
        for v in list(preds):
            if v in (spg.source, spg.sink):
                continue
            if len(preds[v]) == 1 and len(succs[v]) == 1:
                (a,) = preds[v]
                (b,) = succs[v]
                if a == b or len(trees[(a, v)]) != 1 or len(trees[(v, b)]) != 1:
                    continue
                left = trees.pop((a, v))[0]
                right = trees.pop((v, b))[0]
                node = SPTree("series", a, b, (left, right), via=v)
                succs[a].discard(v)
                preds[b].discard(v)
                del preds[v]
                del succs[v]
                trees.setdefault((a, b), []).append(node)
                succs[a].add(b)
                preds[b].add(a)
                merge_parallel((a, b))
                changed = True
    if set(trees) != {(spg.source, spg.sink)} or len(
        trees[(spg.source, spg.sink)]
    ) != 1:
        raise ValueError("graph is not two-terminal series-parallel")
    return trees[(spg.source, spg.sink)][0]


def sp_depth(tree: SPTree) -> int:
    """Depth of composition nesting (edges have depth 0)."""
    if tree.kind == "edge":
        return 0
    return 1 + max(sp_depth(c) for c in tree.children)
