"""The NP-hardness reduction gadgets of Section 4.

These constructions make the paper's complexity results executable:

* :func:`partition_fork_join` — Proposition 1: a fork-join of elevation
  ``n`` whose period-matching on two single-speed cores solves
  2-PARTITION (the unbounded-elevation uni-line hardness).
* :func:`uniline_gadget` — Theorem 2: the bounded-elevation SPG of
  Figure 3 (3n + 3 stages, unit computations, communication volumes built
  from the 2-PARTITION instance) used for the bi-directional uni-line
  hardness.
* :func:`solve_2partition_via_mapping` — runs an exact mapping solver on
  the Proposition-1 gadget and reads the 2-PARTITION answer off the
  result, demonstrating the reduction end to end (used by tests).

The gadgets also serve as stress inputs: they are maximally parallel
(fork-joins) or bandwidth-critical by construction.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.platform.cmp import CMPGrid
from repro.platform.speeds import PowerModel
from repro.spg.build import fork_join
from repro.spg.graph import SPG

__all__ = [
    "partition_fork_join",
    "uniline_gadget",
    "partition_platform",
    "solve_2partition_via_mapping",
]


def partition_fork_join(values: Sequence[float]) -> SPG:
    """The Proposition-1 gadget for a 2-PARTITION instance ``values``.

    A fork-join with one branch stage per value; source and sink have zero
    computation cost and all communications are free.  A DAG-partition
    mapping onto two unit-speed cores with period ``sum(values) / 2``
    exists iff ``values`` admits a perfect 2-partition.
    """
    if not values or any(v <= 0 for v in values):
        raise ValueError("2-PARTITION values must be positive")
    return fork_join(len(values), list(values))


def partition_platform(r: int = 2) -> CMPGrid:
    """A 1 x ``r`` single-speed unit-power platform (the reduction target).

    Speed 1 cycle/s, so stage weights are directly times; bandwidth is
    effectively unlimited (the gadget has no communications).
    """
    model = PowerModel(
        speeds=(1.0,),
        dyn_power=(1.0,),
        comp_leak=0.0,
        comm_leak=0.0,
        e_bit=0.0,
        bandwidth=1e30,
    )
    return CMPGrid.uni_line(r, model, uni_directional=True)


def solve_2partition_via_mapping(
    values: Sequence[float],
) -> tuple[bool, set[int] | None]:
    """Decide 2-PARTITION by solving the Proposition-1 mapping instance.

    Returns ``(solvable, subset)`` where ``subset`` contains the indices of
    a half-sum subset when one exists.  Exponential (it drives the
    brute-force optimal solver) — intended for small instances and tests.
    """
    # Imported here: repro.core imports repro.spg, so a module-level import
    # would be circular.
    from repro.core.errors import HeuristicFailure
    from repro.core.problem import ProblemInstance
    from repro.exact.brute_force import brute_force_optimal

    g = partition_fork_join(values)
    total = float(sum(values))
    problem = ProblemInstance(g, partition_platform(2), total / 2.0)
    try:
        mapping, _e = brute_force_optimal(problem)
    except HeuristicFailure:
        return False, None
    clusters = list(mapping.clusters().values())
    if len(clusters) == 1:
        # Everything fit on one core: only possible for degenerate inputs.
        return True, {i - 1 for i in clusters[0] if 1 <= i <= len(values)}
    first = clusters[0]
    subset = {i - 1 for i in first if 1 <= i <= len(values)}
    return True, subset


def uniline_gadget(values: Sequence[float], eps: float = 0.25) -> SPG:
    """The Theorem-2 gadget (Figure 3) for a 2-PARTITION instance.

    The SPG has ``3n + 3`` unit-computation stages: a backbone chain
    ``In -> A_1 -> ... -> A_{n+1} -> Out`` whose edges carry ``S/2 + eps``
    bytes, and for each value ``a_i`` a two-stage appendix ``B_i -> C_i``
    hanging off the backbone: ``A_i -> B_i`` carries ``a_i`` and
    ``B_i -> C_i`` carries ``S + eps``.  Mapped one-to-one onto a
    ``1 x (3n + 3)`` bi-directional line with bandwidth ``3S/2 + eps`` and
    period 1, the B/C appendices must 2-partition around the backbone.

    The construction here mirrors the figure as an SPG: each appendix is a
    parallel branch between ``A_i`` and ``Out`` (C_i re-joins at the sink
    with a zero-volume edge), keeping the graph series-parallel while
    preserving all the volumes that drive the reduction.
    """
    n = len(values)
    if n == 0 or any(v <= 0 for v in values):
        raise ValueError("2-PARTITION values must be positive")
    S = float(sum(values))
    heavy = S + eps
    backbone = S / 2.0 + eps

    # Stage ids: 0 = In, 1..n+1 = A_1..A_{n+1}, then per value i:
    # B_i = n + 2 + 2i, C_i = n + 3 + 2i, finally sink Out = 3n + 4 - 1.
    n_stages = 3 * n + 3
    weights = [1.0] * n_stages
    edges: dict[tuple[int, int], float] = {}
    a = lambda i: 1 + i  # A_{i+1}
    out = n_stages - 1

    edges[(0, a(0))] = backbone
    for i in range(n):
        edges[(a(i), a(i + 1))] = backbone
    edges[(a(n), out)] = backbone
    for i in range(n):
        b = n + 2 + 2 * i
        c = n + 3 + 2 * i
        edges[(a(i), b)] = float(values[i])
        edges[(b, c)] = heavy
        edges[(c, out)] = 0.0
    return SPG(weights, None, edges)
