"""Random SPG generation by recursive series/parallel composition.

Mirrors Section 6.1.1 of the paper: random applications are built "by
applying recursively series and parallel compositions of SPG applications";
their size ``n``, elevation ``ymax`` and CCR are then extracted.  The
experiment runners bin graphs by achieved elevation, so
:func:`random_spg_with_elevation` provides rejection sampling with a tunable
parallel-composition probability to populate each elevation bin.
"""

from __future__ import annotations

import numpy as np

from repro.spg.graph import SPG, parallel, series, sp_edge
from repro.util.rng import as_rng

__all__ = ["random_spg", "random_spg_with_elevation", "random_weights"]

#: Default stage-weight range, in cycles (0.02 s to 0.2 s at top XScale
#: speed).  A moderate 10x spread keeps several DVFS speeds viable at the
#: periods chosen by the Section-6.1.3 procedure, like the fairly balanced
#: real StreamIt stage weights.  The scale is calibrated so that a 50-stage
#: workflow's total work sits well inside a 4x4 grid's capacity at the
#: retained period: the paper's Greedy forwards work only to right/down
#: neighbours, so on pipeline-like graphs it can reach at most p + q - 1
#: cores, and heavier scales would make it fail deterministically (the
#: paper's own weight scale is unpublished; see EXPERIMENTS.md).
W_RANGE = (2e7, 2e8)
#: Default per-edge communication range, in bytes (rescaled by CCR anyway).
D_RANGE = (1e3, 1e6)


def _random_structure(
    n_target: int, p_parallel: float, rng: np.random.Generator
) -> SPG:
    """Recursively build an SPG with exactly ``n_target`` stages.

    Unit weights/volumes; the caller randomises them afterwards.  A series
    composition of sizes (a, b) yields a + b - 1 stages; a parallel
    composition yields a + b - 2.
    """
    if n_target < 2:
        raise ValueError("SPGs have at least 2 stages")
    if n_target == 2:
        return sp_edge(1.0, 1.0, 1.0)
    if n_target == 3 or rng.random() >= p_parallel:
        # Series: a + b = n + 1 with a, b >= 2.
        a = int(rng.integers(2, n_target))  # 2 .. n-1
        b = n_target + 1 - a
        return series(
            _random_structure(a, p_parallel, rng),
            _random_structure(b, p_parallel, rng),
            merge="first",
        )
    # Parallel: a + b = n + 2 with a, b >= 3 (so both sides have an inner
    # stage; pairing two bare edges would just collapse into one edge).
    if n_target < 4:
        return _random_structure(n_target, 0.0, rng)
    a = int(rng.integers(3, n_target))  # 3 .. n-1
    b = n_target + 2 - a
    return parallel(
        _random_structure(a, p_parallel, rng),
        _random_structure(b, p_parallel, rng),
        merge="first",
    )


def random_weights(
    spg: SPG,
    rng,
    w_range: tuple[float, float] = W_RANGE,
    d_range: tuple[float, float] = D_RANGE,
    ccr: float | None = None,
) -> SPG:
    """Randomise stage weights and communication volumes of ``spg``.

    Weights are log-uniform in ``w_range`` and volumes log-uniform in
    ``d_range``; if ``ccr`` is given the volumes are then rescaled so that
    ``sum(w) / sum(delta) == ccr`` exactly.
    """
    rng = as_rng(rng)
    lo, hi = np.log(w_range[0]), np.log(w_range[1])
    weights = np.exp(rng.uniform(lo, hi, size=spg.n)).tolist()
    lo, hi = np.log(d_range[0]), np.log(d_range[1])
    vols = np.exp(rng.uniform(lo, hi, size=len(spg.edges)))
    edges = dict(zip(sorted(spg.edges), vols.tolist()))
    out = spg.with_weights(weights=weights, edges=edges)
    if ccr is not None:
        out = out.with_ccr(ccr)
    return out


def random_spg(
    n: int,
    rng=None,
    p_parallel: float = 0.6,
    ccr: float | None = None,
    w_range: tuple[float, float] = W_RANGE,
    d_range: tuple[float, float] = D_RANGE,
) -> SPG:
    """A random SPG with exactly ``n`` stages and randomised weights."""
    rng = as_rng(rng)
    g = _random_structure(n, p_parallel, rng)
    return random_weights(g, rng, w_range, d_range, ccr)


def random_spg_with_elevation(
    n: int,
    elevation: int,
    rng=None,
    ccr: float | None = None,
    max_tries: int = 200,
    w_range: tuple[float, float] = W_RANGE,
    d_range: tuple[float, float] = D_RANGE,
) -> SPG:
    """A random SPG with ``n`` stages and elevation exactly ``elevation``.

    Rejection-samples structures, sweeping the parallel-composition
    probability from values that favour the requested elevation.  Returns
    the first exact match; if none is found within ``max_tries`` the
    closest-elevation sample is returned (its *actual* ymax should then be
    used for binning).
    """
    rng = as_rng(rng)
    if elevation < 1:
        raise ValueError("elevation must be >= 1")
    if elevation == 1:
        from repro.spg.build import chain

        g = chain(n)
        return random_weights(g, rng, w_range, d_range, ccr)
    # Empirically the achieved elevation grows with p_parallel; sweep around
    # a heuristic initial guess.
    guess = min(0.95, 0.15 + 0.08 * elevation)
    best: SPG | None = None
    best_gap = 10**9
    for t in range(max_tries):
        p = float(np.clip(guess + 0.2 * rng.standard_normal(), 0.05, 0.97))
        g = _random_structure(n, p, rng)
        gap = abs(g.ymax - elevation)
        if gap < best_gap:
            best, best_gap = g, gap
        if gap == 0:
            break
        # Steer the guess toward the target.
        if g.ymax < elevation:
            guess = min(0.97, guess + 0.03)
        else:
            guess = max(0.05, guess - 0.03)
    assert best is not None
    return random_weights(best, rng, w_range, d_range, ccr)
