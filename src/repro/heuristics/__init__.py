"""The five mapping heuristics of Section 5, plus the common registry."""

from repro.heuristics.base import (
    HeuristicResult,
    REGISTRY,
    PAPER_ORDER,
    register,
    run,
)
from repro.heuristics.random_heuristic import random_mapping
from repro.heuristics.greedy import greedy_mapping
from repro.heuristics.dpa1d import dpa1d_mapping, solve_uniline
from repro.heuristics.dpa2d import dpa2d_mapping, dpa2d1d_mapping, solve_dpa2d
from repro.heuristics.refine import (
    SCHEDULES,
    refine_mapping,
    refine_mapping_rebuild,
    refined,
)

__all__ = [
    "HeuristicResult",
    "REGISTRY",
    "PAPER_ORDER",
    "register",
    "run",
    "random_mapping",
    "greedy_mapping",
    "dpa1d_mapping",
    "dpa2d_mapping",
    "dpa2d1d_mapping",
    "solve_uniline",
    "solve_dpa2d",
    "SCHEDULES",
    "refine_mapping",
    "refine_mapping_rebuild",
    "refined",
]
