"""The Random heuristic (Section 5.1).

The two-step procedure: (1) randomly grow a DAG-partition of the SPG,
cluster by cluster, choosing a random speed per cluster and adding random
eligible stages while the computation fits the period at that speed;
(2) place the clusters on random distinct cores and route communications
with XY routing.  If any link exceeds the bandwidth bound, the trial is
invalid.  The heuristic makes ten trials and keeps the valid mapping with
the lowest energy; it fails when no trial is valid.

Interpretation note (documented in DESIGN.md): when a freshly started
cluster's first stage does not fit at the drawn random speed, the speed is
redrawn among the speeds that can accommodate that stage; if none exists
the trial fails.  Without this, tight periods would make almost every
trial fail on its very first stage, which does not match the failure rates
of Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, is_period_feasible
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.heuristics.base import register
from repro.util.rng import as_rng

__all__ = ["random_mapping"]


def _random_partition(
    problem: ProblemInstance, rng: np.random.Generator
) -> tuple[list[list[int]], list[float]] | None:
    """Grow a random DAG-partition; returns (clusters, speeds) or None.

    Clusters are grown over the "ready" frontier (stages whose predecessors
    are all placed in earlier clusters or the current one), which guarantees
    an acyclic quotient.
    """
    spg = problem.spg
    model = problem.grid.model
    T = problem.period
    placed: set[int] = set()
    in_current: set[int] = set()
    clusters: list[list[int]] = []
    speeds: list[float] = []

    def ready() -> list[int]:
        out = []
        for i in range(spg.n):
            if i in placed or i in in_current:
                continue
            if all(p in placed or p in in_current for p in spg.preds(i)):
                out.append(i)
        return out

    def draw_speed(first_stage: int) -> float | None:
        fits = [
            s
            for s in model.speeds
            if spg.weights[first_stage] / s <= T
        ]
        if not fits:
            return None
        return float(rng.choice(fits))

    current: list[int] = []
    frontier = ready()
    first = frontier[0] if frontier else None
    if first is None:
        return None
    speed = draw_speed(first)
    if speed is None:
        return None
    current = [first]
    in_current = {first}
    load = spg.weights[first]

    while True:
        frontier = [i for i in ready() if load + spg.weights[i] <= T * speed]
        if frontier:
            nxt = int(rng.choice(frontier))
            current.append(nxt)
            in_current.add(nxt)
            load += spg.weights[nxt]
            continue
        # Close the current cluster.
        clusters.append(current)
        speeds.append(speed)
        placed |= in_current
        in_current = set()
        remaining = ready()
        if not remaining:
            break
        # "When moving to the next core, we choose the first stage in the
        # current list and iterate."
        first = remaining[0]
        speed = draw_speed(first)
        if speed is None:
            return None
        current = [first]
        in_current = {first}
        load = spg.weights[first]
    if len(placed) != spg.n:
        return None
    return clusters, speeds


def _random_placement(
    problem: ProblemInstance,
    clusters: list[list[int]],
    speeds: list[float],
    rng: np.random.Generator,
) -> Mapping | None:
    """Place clusters on random distinct cores; validate the period over
    the topology's routes (XY on the mesh).

    On heterogeneous platforms the drawn speed is rescaled to the chosen
    core's own DVFS set (same speed level); the subsequent period check
    rejects the trial when the scaled core is too slow.
    """
    grid = problem.grid
    if len(clusters) > grid.n_cores:
        return None
    cores = grid.cores()
    chosen = [cores[k] for k in rng.permutation(len(cores))[: len(clusters)]]
    alloc = {
        stage: chosen[t] for t, cl in enumerate(clusters) for stage in cl
    }
    speed_map = {}
    for t in range(len(clusters)):
        c = chosen[t]
        scale = grid.speed_scale(c)
        speed_map[c] = speeds[t] if scale == 1.0 else speeds[t] * scale
    mapping = Mapping(problem.spg, grid, alloc, speed_map)
    if not is_period_feasible(mapping, problem.period):
        return None
    return mapping


@register("Random")
def random_mapping(
    problem: ProblemInstance, rng=None, trials: int = 10
) -> Mapping:
    """Ten random trials, keep the valid mapping with minimum energy."""
    rng = as_rng(rng)
    best: Mapping | None = None
    best_e = float("inf")
    for _ in range(trials):
        part = _random_partition(problem, rng)
        if part is None:
            continue
        mapping = _random_placement(problem, *part, rng)
        if mapping is None:
            continue
        e = energy(mapping, problem.period).total
        if e < best_e:
            best, best_e = mapping, e
    if best is None:
        raise HeuristicFailure(f"Random: no valid trial out of {trials}")
    return best
