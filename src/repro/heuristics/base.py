"""Common interface and registry for the five heuristics of Section 5.

Each heuristic is a callable ``(problem, rng=None, **options) -> Mapping``
raising :class:`repro.core.errors.HeuristicFailure` when it cannot produce a
valid mapping (a normal outcome counted by Tables 2 and 3 of the paper).
:func:`run` wraps a heuristic call with independent re-validation and energy
accounting so results never depend on heuristic-internal bookkeeping.

``run`` is now a thin front on the unified solver layer
(``repro.solvers``): the name may be a Section-5 heuristic or any solver
spec (``"dpa2d1d+refine"``, ``"portfolio"``), and the legacy
``refine=...`` kwargs alias the ``"+refine"`` pipeline stage — the
registry-routed path is pinned bit-identical to the historical direct
calls by the golden fixtures and ``tests/test_solvers.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.evaluate import EnergyBreakdown
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance

__all__ = ["HeuristicResult", "REGISTRY", "PAPER_ORDER", "register", "run"]


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of one solver run on one problem instance.

    The legacy-stable view of :class:`repro.solvers.SolverResult` that
    the experiment records are built from (kept a separate frozen type
    so its positional field order and equality semantics never move).
    ``stats`` carries the solver layer's metadata — wall-clock timings,
    pipeline stages, portfolio members/winner — and is excluded from
    equality (timings differ run to run; results must not).
    """

    name: str
    mapping: Mapping | None
    energy: EnergyBreakdown | None
    failure: str | None = None
    stats: dict = field(default_factory=dict, compare=False)

    @property
    def ok(self) -> bool:
        return self.mapping is not None

    @property
    def total_energy(self) -> float:
        """Total energy, or +inf for failures (for min/normalisation)."""
        return self.energy.total if self.energy is not None else float("inf")


#: name -> heuristic callable
REGISTRY: dict[str, Callable[..., Mapping]] = {}

#: Heuristic names in the order the paper's plots list them.
PAPER_ORDER = ("Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D")


def register(name: str):
    """Class/function decorator adding a heuristic to :data:`REGISTRY`."""

    def deco(fn: Callable[..., Mapping]) -> Callable[..., Mapping]:
        REGISTRY[name] = fn
        return fn

    return deco


def run(
    name: str,
    problem: ProblemInstance,
    rng=None,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    refine_allow_general: bool = False,
    **options,
) -> HeuristicResult:
    """Run solver ``name`` and re-validate its output independently.

    ``name`` is a Section-5 heuristic registry name (``"Random"``, ...)
    or any solver spec accepted by
    :func:`repro.solvers.parse_solver_spec` (``"dpa2d1d+refine"``,
    ``"bruteforce"``, ``"portfolio"``, ``"greedy|dpa1d"``); unknown
    names raise ``KeyError`` and structurally invalid specs (a bare
    transform like ``"refine"``, a producer after ``+``) raise
    ``ValueError``.  A mapping that fails independent
    validation is treated as a failure (and flagged in the failure
    message, since it would indicate a solver bug rather than an
    infeasible instance).

    ``refine=True`` post-processes a successful mapping through the
    delta-evaluated local-search refiner (continuing the solver's RNG
    stream, so results stay deterministic per seed); the refined mapping
    is re-validated the same way.  The ``refine_*`` kwargs are the
    **deprecated-but-aliased** spelling of a ``"+refine"`` pipeline
    stage — ``run("DPA2D1D", p, refine=True)`` and
    ``run("dpa2d1d+refine", p)`` are bit-identical; prefer the spec.
    """
    from time import perf_counter

    from repro.obs.session import inc, observe, trace_span
    from repro.solvers import solver_for_run

    solver = solver_for_run(
        name, options=options, refine=refine, refine_sweeps=refine_sweeps,
        refine_schedule=refine_schedule,
        refine_allow_general=refine_allow_general,
    )
    t0 = perf_counter()
    with trace_span("solver.run", solver=name):
        res = solver.solve(problem, rng=rng)
    inc("solver.runs")
    if res.mapping is None:
        inc("solver.failures")
    observe("solver.duration_s", perf_counter() - t0)
    return HeuristicResult(
        name, res.mapping, res.energy, res.failure, stats=res.stats
    )
