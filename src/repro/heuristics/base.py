"""Common interface and registry for the five heuristics of Section 5.

Each heuristic is a callable ``(problem, rng=None, **options) -> Mapping``
raising :class:`repro.core.errors.HeuristicFailure` when it cannot produce a
valid mapping (a normal outcome counted by Tables 2 and 3 of the paper).
:func:`run` wraps a heuristic call with independent re-validation and energy
accounting so results never depend on heuristic-internal bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import HeuristicFailure, MappingError
from repro.core.evaluate import EnergyBreakdown, validate
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance

__all__ = ["HeuristicResult", "REGISTRY", "PAPER_ORDER", "register", "run"]


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of one heuristic run on one problem instance."""

    name: str
    mapping: Mapping | None
    energy: EnergyBreakdown | None
    failure: str | None = None

    @property
    def ok(self) -> bool:
        return self.mapping is not None

    @property
    def total_energy(self) -> float:
        """Total energy, or +inf for failures (for min/normalisation)."""
        return self.energy.total if self.energy is not None else float("inf")


#: name -> heuristic callable
REGISTRY: dict[str, Callable[..., Mapping]] = {}

#: Heuristic names in the order the paper's plots list them.
PAPER_ORDER = ("Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D")


def register(name: str):
    """Class/function decorator adding a heuristic to :data:`REGISTRY`."""

    def deco(fn: Callable[..., Mapping]) -> Callable[..., Mapping]:
        REGISTRY[name] = fn
        return fn

    return deco


def run(
    name: str,
    problem: ProblemInstance,
    rng=None,
    refine: bool = False,
    refine_sweeps: int = 4,
    refine_schedule: str = "first",
    refine_allow_general: bool = False,
    **options,
) -> HeuristicResult:
    """Run heuristic ``name`` and re-validate its output independently.

    A mapping that fails independent validation is treated as a heuristic
    failure (and flagged in the failure message, since it would indicate a
    heuristic bug rather than an infeasible instance).

    ``refine=True`` post-processes a successful mapping through the
    delta-evaluated local-search refiner (continuing the heuristic's RNG
    stream, so results stay deterministic per seed); the refined mapping
    is re-validated the same way.  The ``refine_*`` options select the
    sweep budget, the acceptance schedule and whether *general* (non
    DAG-partition) clusterings are admitted — the experiment runners and
    the scenario sweep thread them through per-heuristic ``options``.
    """
    fn = REGISTRY[name]
    try:
        mapping = fn(problem, rng=rng, **options)
    except HeuristicFailure as exc:
        return HeuristicResult(name, None, None, failure=str(exc) or "failed")
    if refine:
        from repro.heuristics.refine import refine_mapping

        # Only refine mappings that pass independent validation — a
        # buggy heuristic output must surface as INVALID OUTPUT below,
        # not as an exception out of the refiner's bookkeeping.
        try:
            validate(mapping, problem.period)
        except MappingError as exc:
            return HeuristicResult(
                name, None, None, failure=f"INVALID OUTPUT: {exc}"
            )
        mapping = refine_mapping(
            problem, mapping, rng=rng, sweeps=refine_sweeps,
            allow_general=refine_allow_general, schedule=refine_schedule,
        )
    try:
        breakdown = validate(
            mapping, problem.period,
            require_dag_partition=not (refine and refine_allow_general),
        )
    except MappingError as exc:  # pragma: no cover - heuristic bug guard
        return HeuristicResult(
            name, None, None, failure=f"INVALID OUTPUT: {exc}"
        )
    return HeuristicResult(name, mapping, breakdown)
