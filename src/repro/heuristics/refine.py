"""Local-search refinement of mappings (the paper's Section-7 future work).

The paper closes with two open directions: *general mappings* (dropping
the DAG-partition restriction) and an absolute quality measure for the
heuristics.  This module provides a hill-climbing refiner that

* takes any valid mapping (typically a heuristic's output),
* repeatedly applies local moves — move one stage to another core, swap
  the contents of two cores, power a core off by emptying it — keeping
  XY routing,
* accepts a move iff the mapping stays feasible for the period and the
  energy strictly decreases (speeds are re-optimised per move), and
* optionally admits *general* (non-DAG-partition) clusterings, which lets
  experiments quantify exactly how much the DAG-partition rule costs.

Deterministic given the RNG; first-improvement with a sweep budget.
"""

from __future__ import annotations

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, is_period_feasible
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.util.rng import as_rng

__all__ = ["refine_mapping", "refined"]


def _rebuild(
    problem: ProblemInstance, alloc: dict[int, tuple[int, int]]
) -> Mapping | None:
    """Mapping from an allocation with energy-optimal per-core speeds."""
    grid = problem.grid
    work: dict[tuple[int, int], float] = {}
    for i, c in alloc.items():
        work[c] = work.get(c, 0.0) + problem.spg.weights[i]
    speeds: dict[tuple[int, int], float] = {}
    for c, w in work.items():
        s = grid.core_model(c).best_feasible(w, problem.period)
        if s is None:
            return None
        speeds[c] = s
    return Mapping(problem.spg, problem.grid, dict(alloc), speeds)


def _acceptable(
    problem: ProblemInstance, mapping: Mapping, allow_general: bool
) -> bool:
    if not mapping.is_valid_structure(require_dag_partition=not allow_general):
        return False
    return is_period_feasible(mapping, problem.period)


def refine_mapping(
    problem: ProblemInstance,
    mapping: Mapping,
    rng=None,
    sweeps: int = 4,
    allow_general: bool = False,
) -> Mapping:
    """Hill-climb ``mapping``; returns an equal-or-better valid mapping.

    ``allow_general=True`` drops the DAG-partition requirement for the
    refined mapping (the input may be any valid mapping either way).
    """
    rng = as_rng(rng)
    best = mapping
    best_e = energy(best, problem.period).total
    cores = problem.grid.cores()
    n = problem.spg.n

    for _sweep in range(sweeps):
        improved = False
        stage_order = list(rng.permutation(n))
        # Move one stage to each other core, first improvement wins.
        for i in stage_order:
            i = int(i)
            current = best.alloc[i]
            for c in cores:
                if c == current:
                    continue
                alloc = dict(best.alloc)
                alloc[i] = c
                cand = _rebuild(problem, alloc)
                if cand is None or not _acceptable(
                    problem, cand, allow_general
                ):
                    continue
                e = energy(cand, problem.period).total
                if e < best_e * (1 - 1e-12):
                    best, best_e = cand, e
                    improved = True
                    break
        # Swap whole clusters between core pairs (placement improvement).
        clusters = best.clusters()
        active = sorted(clusters)
        for a_idx in range(len(active)):
            for b in cores:
                a = active[a_idx]
                if a == b:
                    continue
                alloc = dict(best.alloc)
                for i in clusters.get(a, []):
                    alloc[i] = b
                for i in clusters.get(b, []):
                    alloc[i] = a
                cand = _rebuild(problem, alloc)
                if cand is None or not _acceptable(
                    problem, cand, allow_general
                ):
                    continue
                e = energy(cand, problem.period).total
                if e < best_e * (1 - 1e-12):
                    best, best_e = cand, e
                    improved = True
                    clusters = best.clusters()
                    active = sorted(clusters)
                    break
        if not improved:
            break
    return best


def refined(
    name: str,
    problem: ProblemInstance,
    rng=None,
    sweeps: int = 4,
    allow_general: bool = False,
    **options,
) -> Mapping:
    """Run heuristic ``name`` and refine its output.

    Raises :class:`HeuristicFailure` if the base heuristic fails.
    """
    from repro.heuristics.base import REGISTRY

    rng = as_rng(rng)
    base = REGISTRY[name](problem, rng=rng, **options)
    if base is None:  # pragma: no cover - registry functions raise instead
        raise HeuristicFailure(f"{name} failed")
    return refine_mapping(
        problem, base, rng=rng, sweeps=sweeps, allow_general=allow_general
    )
