"""Local-search refinement of mappings (the paper's Section-7 future work).

The paper closes with two open directions: *general mappings* (dropping
the DAG-partition restriction) and an absolute quality measure for the
heuristics.  This module provides a local-search refiner that

* takes any valid mapping (typically a heuristic's output),
* repeatedly applies local moves — move one stage to another core, swap
  the contents of two cores, power a core off by merging its cluster
  into another active core — routing every remote edge through the
  platform topology's own ``route`` policy (XY on the mesh, shortest-way
  on tori/rings, bit-fixing on the Benes fabric) and re-optimising each
  affected core's speed under its own — possibly heterogeneous — DVFS
  model,
* accepts a move iff the mapping stays feasible for the period and the
  energy strictly decreases (default first-improvement hill climbing;
  best-improvement and simulated-annealing schedules sit behind the
  ``schedule`` flag), and
* optionally admits *general* (non-DAG-partition) clusterings, which lets
  experiments quantify exactly how much the DAG-partition rule costs.

Candidates are graded by the incremental
:class:`~repro.core.delta.DeltaState` layer, which scores each move in
O(affected cores/links) instead of rebuilding the full mapping; the
pre-delta full-rebuild implementation is retained as
:func:`refine_mapping_rebuild` and the two are pinned bit-identical
(same accepted-move sequence, same final mapping) by
``tests/test_refine_equivalence.py``.

Deterministic given the RNG; every schedule runs a bounded sweep budget
and returns a mapping never worse than its input.
"""

from __future__ import annotations

import math

from repro.core.delta import DeltaState, MoveStage, PowerOff, SwapClusters
from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, is_period_feasible
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.obs.session import inc, trace_span
from repro.util.rng import as_rng

__all__ = [
    "refine_mapping",
    "refine_mapping_rebuild",
    "refined",
    "SCHEDULES",
]

#: Acceptance schedules supported by :func:`refine_mapping`.
SCHEDULES = ("first", "best", "anneal")

#: Relative improvement a move must achieve to be accepted.
_EPS = 1e-12


# ----------------------------------------------------------------------
# Retained full-rebuild reference implementation
# ----------------------------------------------------------------------
def _rebuild(
    problem: ProblemInstance, alloc: dict[int, tuple[int, int]]
) -> Mapping | None:
    """Mapping from an allocation with energy-optimal per-core speeds.

    The allocation is canonicalised to stage order so that every float
    accumulation downstream (per-core work, energy sums) happens in the
    same deterministic order the delta layer reproduces.
    """
    grid = problem.grid
    alloc = {i: alloc[i] for i in range(problem.spg.n)}
    work: dict[tuple[int, int], float] = {}
    weights = problem.spg.weights
    for i, c in alloc.items():
        work[c] = work.get(c, 0.0) + weights[i]
    speeds: dict[tuple[int, int], float] = {}
    for c, w in work.items():
        s = grid.core_model(c).best_feasible(w, problem.period)
        if s is None:
            return None
        speeds[c] = s
    return Mapping(problem.spg, problem.grid, alloc, speeds)


def _acceptable(
    problem: ProblemInstance, mapping: Mapping, allow_general: bool
) -> bool:
    if not mapping.is_valid_structure(require_dag_partition=not allow_general):
        return False
    return is_period_feasible(mapping, problem.period)


def refine_mapping_rebuild(
    problem: ProblemInstance,
    mapping: Mapping,
    rng=None,
    sweeps: int = 4,
    allow_general: bool = False,
    log: list | None = None,
) -> Mapping:
    """First-improvement refinement, full-rebuild reference path.

    Every candidate rebuilds a complete :class:`Mapping` and re-runs the
    independent validators — O(n + E) per move.  Kept as the executable
    specification the delta engine is pinned against (and for
    benchmarking the speedup); use :func:`refine_mapping` for real work.

    ``log``, when given, collects the accepted moves as tuples
    ``(kind, *args, repr(energy))`` for the equivalence suite.
    """
    rng = as_rng(rng)
    best = mapping
    best_e = energy(best, problem.period).total
    cores = problem.grid.cores()
    n = problem.spg.n

    def try_updates(updates: dict[int, tuple[int, int]]):
        alloc = dict(best.alloc)
        alloc.update(updates)
        cand = _rebuild(problem, alloc)
        if cand is None or not _acceptable(problem, cand, allow_general):
            return None
        e = energy(cand, problem.period).total
        if e < best_e * (1 - _EPS):
            return cand, e
        return None

    for _sweep in range(sweeps):
        improved = False
        # Move one stage to each other core, first improvement wins.
        for i in rng.permutation(n):
            i = int(i)
            current = best.alloc[i]
            for b in cores:
                if b == current:
                    continue
                got = try_updates({i: b})
                if got is not None:
                    best, best_e = got
                    improved = True
                    if log is not None:
                        log.append(("move", i, current, b, repr(best_e)))
                    break
        # Swap whole clusters between core pairs (placement improvement).
        for a in sorted(best.clusters()):
            clusters = best.clusters()
            if a not in clusters:
                continue
            for b in cores:
                if b == a:
                    continue
                updates = {i: b for i in clusters.get(a, [])}
                updates.update({i: a for i in clusters.get(b, [])})
                got = try_updates(updates)
                if got is not None:
                    best, best_e = got
                    improved = True
                    if log is not None:
                        log.append(("swap", a, b, repr(best_e)))
                    break
        # Power a core off: merge its cluster into another active core.
        for a in sorted(best.clusters()):
            clusters = best.clusters()
            if a not in clusters:
                continue
            for b in cores:
                if b == a or b not in clusters:
                    continue
                got = try_updates({i: b for i in clusters[a]})
                if got is not None:
                    best, best_e = got
                    improved = True
                    if log is not None:
                        log.append(("off", a, b, repr(best_e)))
                    break
        if not improved:
            break
    return best


# ----------------------------------------------------------------------
# Delta-evaluated engine: acceptance schedules
# ----------------------------------------------------------------------
class _FirstImprovement:
    """Accept the first strictly-improving valid move of each scan."""

    stop_when_stuck = True

    def __init__(self, state: DeltaState, initial_e: float, log) -> None:
        self.state = state
        self.best_e = initial_e
        self.log = log
        self.accepted = 0

    def begin_sweep(self, sweep: int) -> None:
        pass

    def scan(self, moves) -> bool:
        state = self.state
        for move, entry in moves:
            token, breakdown = state.evaluate_move(move)
            if (
                breakdown is not None
                and breakdown.total < self.best_e * (1 - _EPS)
            ):
                self.best_e = breakdown.total
                self.accepted += 1
                if self.log is not None:
                    self.log.append((*entry, repr(self.best_e)))
                return True
            state.revert(token)
        return False

    def result(self, problem, mapping) -> Mapping:
        return mapping if self.accepted == 0 else self.state.to_mapping()


class _BestImprovement(_FirstImprovement):
    """Scan each neighbourhood fully and apply its best improving move."""

    def scan(self, moves) -> bool:
        state = self.state
        best_move = best_entry = best_val = None
        for move, entry in moves:
            token, breakdown = state.evaluate_move(move)
            if breakdown is not None:
                e = breakdown.total
                if e < self.best_e * (1 - _EPS) and (
                    best_val is None or e < best_val
                ):
                    best_move, best_entry, best_val = move, entry, e
            state.revert(token)
        if best_move is None:
            return False
        _token, breakdown = state.evaluate_move(best_move)
        self.best_e = breakdown.total
        self.accepted += 1
        if self.log is not None:
            self.log.append((*best_entry, repr(self.best_e)))
        return True


class _Anneal(_FirstImprovement):
    """Metropolis acceptance with a geometric per-sweep cooling schedule.

    Improving valid moves are always taken; a worsening valid move is
    taken with probability ``exp(-delta / T)`` where ``delta`` is the
    energy increase relative to the starting energy and ``T`` cools by
    ``decay`` each sweep.  The best feasible mapping seen is returned, so
    annealing can escape local minima without ever returning a mapping
    worse than its input.
    """

    stop_when_stuck = True

    def __init__(
        self, state, initial_e, log, rng, t0: float, decay: float
    ) -> None:
        super().__init__(state, initial_e, log)
        self.rng = rng
        self.t0 = t0
        self.decay = decay
        self.cur_e = initial_e
        self.scale = max(abs(initial_e), 1e-300)
        self.temperature = t0
        self.best_mapping: Mapping | None = None

    def begin_sweep(self, sweep: int) -> None:
        self.temperature = self.t0 * (self.decay ** sweep)

    def scan(self, moves) -> bool:
        state = self.state
        for move, entry in moves:
            token, breakdown = state.evaluate_move(move)
            if breakdown is None:
                state.revert(token)
                continue
            e = breakdown.total
            if e < self.cur_e * (1 - _EPS):
                take = True
            elif self.temperature <= 0:
                take = False
            else:
                delta = (e - self.cur_e) / self.scale
                take = float(self.rng.random()) < math.exp(
                    -delta / self.temperature
                )
            if take:
                self.cur_e = e
                self.accepted += 1
                if self.log is not None:
                    self.log.append((*entry, repr(e)))
                if e < self.best_e * (1 - _EPS):
                    self.best_e = e
                    self.best_mapping = state.to_mapping()
                return True
            state.revert(token)
        return False

    def result(self, problem, mapping) -> Mapping:
        return mapping if self.best_mapping is None else self.best_mapping


def _run_schedule(problem, state, strategy, rng, sweeps: int) -> None:
    """Drive the shared sweep structure over the three move kinds."""
    cores = problem.grid.cores()
    n = problem.spg.n
    for sweep in range(sweeps):
        strategy.begin_sweep(sweep)
        before = strategy.accepted
        for i in rng.permutation(n):
            i = int(i)
            current = state.core_of(i)
            strategy.scan(
                (MoveStage(i, b), ("move", i, current, b))
                for b in cores
                if b != current
            )
        for a in sorted(state.active_cores()):
            if not state.cluster_of(a):
                continue
            strategy.scan(
                (SwapClusters(a, b), ("swap", a, b))
                for b in cores
                if b != a
            )
        for a in sorted(state.active_cores()):
            if not state.cluster_of(a):
                continue
            strategy.scan(
                (PowerOff(a, b), ("off", a, b))
                for b in cores
                if b != a and state.cluster_of(b)
            )
        if strategy.accepted == before and strategy.stop_when_stuck:
            break


def refine_mapping(
    problem: ProblemInstance,
    mapping: Mapping,
    rng=None,
    sweeps: int = 4,
    allow_general: bool = False,
    schedule: str = "first",
    engine: str = "delta",
    log: list | None = None,
    anneal_t0: float = 0.05,
    anneal_decay: float = 0.5,
) -> Mapping:
    """Refine ``mapping``; returns an equal-or-better valid mapping.

    Parameters
    ----------
    schedule:
        ``"first"`` (default) accepts the first improving move of each
        neighbourhood scan, ``"best"`` the best one, ``"anneal"`` runs
        Metropolis acceptance with geometric cooling (``anneal_t0``,
        ``anneal_decay``) and returns the best feasible mapping seen.
    engine:
        ``"delta"`` (default) grades candidates incrementally through
        :class:`~repro.core.delta.DeltaState`; ``"rebuild"`` dispatches
        to the retained full-rebuild reference (first-improvement only),
        which produces bit-identical results ~an order of magnitude
        slower.
    allow_general:
        Drop the DAG-partition requirement for the refined mapping (the
        input may be any valid mapping either way).
    log:
        Optional list collecting accepted moves as ``(kind, *args,
        repr(energy))`` tuples — the equivalence suite compares these
        across engines.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; pick from {SCHEDULES}")
    if engine == "rebuild":
        if schedule != "first":
            raise ValueError(
                "the rebuild reference engine only supports schedule='first'"
            )
        inc("refine.runs")
        with trace_span(
            "refine.run", schedule=schedule, engine=engine, sweeps=sweeps
        ):
            return refine_mapping_rebuild(
                problem, mapping, rng=rng, sweeps=sweeps,
                allow_general=allow_general, log=log,
            )
    if engine != "delta":
        raise ValueError(f"unknown engine {engine!r}; pick 'delta' or 'rebuild'")

    inc("refine.runs")
    with trace_span(
        "refine.run", schedule=schedule, engine=engine, sweeps=sweeps
    ):
        rng = as_rng(rng)
        initial_e = energy(mapping, problem.period).total
        state = DeltaState(
            problem, mapping, require_dag_partition=not allow_general
        )
        if schedule == "first":
            strategy = _FirstImprovement(state, initial_e, log)
        elif schedule == "best":
            strategy = _BestImprovement(state, initial_e, log)
        else:
            strategy = _Anneal(
                state, initial_e, log, rng, anneal_t0, anneal_decay
            )
        _run_schedule(problem, state, strategy, rng, sweeps)
        inc("refine.moves_accepted", strategy.accepted)
        return strategy.result(problem, mapping)


def refined(
    name: str,
    problem: ProblemInstance,
    rng=None,
    sweeps: int = 4,
    allow_general: bool = False,
    schedule: str = "first",
    engine: str = "delta",
    **options,
) -> Mapping:
    """Run heuristic ``name`` and refine its output.

    Raises :class:`HeuristicFailure` if the base heuristic fails.
    """
    from repro.heuristics.base import REGISTRY

    rng = as_rng(rng)
    base = REGISTRY[name](problem, rng=rng, **options)
    if base is None:  # pragma: no cover - registry functions raise instead
        raise HeuristicFailure(f"{name} failed")
    return refine_mapping(
        problem, base, rng=rng, sweeps=sweeps, allow_general=allow_general,
        schedule=schedule, engine=engine,
    )
