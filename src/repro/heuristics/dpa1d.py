"""DPA1D (Sections 4.1 and 5.4): optimal 1D dynamic program on the snake.

The grid is configured as a uni-directional uni-line CMP with ``r = p*q``
cores by embedding the line into the grid as a snake.  Theorem 1's DP then
computes the *optimal* energy for this restricted platform:

``E(G, k) = min over admissible G' of  E(G', k-1) (+) Ecal(G \\ G')``

where admissible subgraphs are the order ideals of the SPG, ``Ecal`` maps a
cluster to one core at the slowest feasible speed, the prefix cut must fit
the link bandwidth, and ``(+)`` charges ``E_bit`` for every byte crossing
the link (each physical snake link carries the cut of the prefix before it,
so an edge spanning several positions pays once per hop, consistently with
Section 3.5).

The number of ideals is bounded by ``n^ymax``; like the paper we let the
heuristic *fail* when the state space explodes (budget caps), which is
exactly its reported behaviour on high-elevation workflows.  For linear
chains (and for any SPG when communications are free) DPA1D is optimal
among all mappings.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import BudgetExceeded, HeuristicFailure
from repro.core.mapping import Mapping
from repro.core.partition import IdealLattice
from repro.core.problem import ProblemInstance
from repro.heuristics.base import register
from repro.platform.routing import snake_order
from repro.spg.graph import SPG
from repro.util.bitset import bits_of

__all__ = ["dpa1d_mapping", "solve_uniline"]

INF = float("inf")


def _cut_bytes(spg: SPG, prefix: int) -> float:
    """Volume (bytes) of edges leaving the prefix ideal."""
    total = 0.0
    for (i, j), d in spg.edges.items():
        if (prefix >> i) & 1 and not (prefix >> j) & 1:
            total += d
    return total


class _UnilineDP:
    """State shared between the forward DP pass and the reconstruction."""

    def __init__(self, problem: ProblemInstance, r: int, ideal_budget: int):
        self.spg = problem.spg
        self.model = problem.grid.model
        self.T = problem.period
        self.r = min(r, self.spg.n)
        self.cap_work = self.T * self.model.s_max
        self.cap_bytes = self.model.link_capacity(self.T)
        self.lat = IdealLattice(self.spg, budget=ideal_budget)
        self._cut: dict[int, float] = {}
        self._ecal: dict[int, tuple[float, float] | None] = {}
        # best[ideal][k] = optimal energy of ideal on exactly k+... index k
        # covers 0..r clusters (index 0 only finite for the empty ideal).
        self.best: dict[int, np.ndarray] = {}

    def cut(self, prefix: int) -> float:
        c = self._cut.get(prefix)
        if c is None:
            c = _cut_bytes(self.spg, prefix)
            self._cut[prefix] = c
        return c

    def ecal(self, cluster: int, work: float) -> tuple[float, float] | None:
        """(energy, speed) of one cluster on one core, or None if infeasible.

        ``work`` is the cluster's total weight, threaded through from the
        enumeration so it is never recomputed from the bitmask.
        """
        hit = self._ecal.get(cluster, 0)
        if hit != 0:
            return hit
        s = self.model.best_feasible(work, self.T)
        val = None if s is None else (self.model.comp_energy(work, s, self.T), s)
        self._ecal[cluster] = val
        return val

    def transition_cost(self, prefix: int, cluster: int, work: float) -> float:
        """Cost of appending ``cluster`` after ``prefix`` (inf if infeasible)."""
        ec = self.ecal(cluster, work)
        if ec is None:
            return INF
        cost = ec[0]
        if prefix:
            cb = self.cut(prefix)
            if cb > self.cap_bytes:
                return INF
            cost += self.model.comm_energy(cb)
        return cost

    def solve(self, transition_budget: int) -> tuple[float, int]:
        """Forward pass; returns (optimal energy, optimal cluster count)."""
        r = self.r
        ideals = self.lat.ideals()  # may raise BudgetExceeded
        empty = np.full(r + 1, INF)
        empty[0] = 0.0
        self.best[0] = empty
        transitions = 0
        for ideal in ideals:
            if ideal == 0:
                continue
            row = np.full(r + 1, INF)
            for cluster, work in self.lat.suffix_clusters_weighted(
                ideal, self.cap_work
            ):
                transitions += 1
                if transitions > transition_budget:
                    raise BudgetExceeded(
                        f"DPA1D exceeded {transition_budget} DP transitions"
                    )
                prev = self.best.get(ideal & ~cluster)
                if prev is None:
                    continue
                cost = self.transition_cost(ideal & ~cluster, cluster, work)
                if cost == INF:
                    continue
                np.minimum(row[1:], prev[:-1] + cost, out=row[1:])
            if np.isfinite(row).any():
                self.best[ideal] = row
        final = self.best.get(self.lat.full)
        if final is None or not np.isfinite(final[1:]).any():
            raise HeuristicFailure("DPA1D: no feasible clustering")
        k_best = int(np.argmin(final[1:])) + 1
        return float(final[k_best]), k_best

    def reconstruct(self, k_best: int) -> tuple[list[list[int]], list[float]]:
        """Walk back through the DP by re-evaluating local transitions."""
        clusters_rev: list[list[int]] = []
        speeds_rev: list[float] = []
        ideal, k = self.lat.full, k_best
        while ideal:
            target = self.best[ideal][k]
            found = False
            for cluster, work in self.lat.suffix_clusters_weighted(
                ideal, self.cap_work
            ):
                prefix = ideal & ~cluster
                prev = self.best.get(prefix)
                if prev is None or not np.isfinite(prev[k - 1]):
                    continue
                cost = self.transition_cost(prefix, cluster, work)
                if cost == INF:
                    continue
                if prev[k - 1] + cost <= target * (1 + 1e-12) + 1e-30:
                    clusters_rev.append(bits_of(cluster))
                    speeds_rev.append(self.ecal(cluster, work)[1])
                    ideal, k = prefix, k - 1
                    found = True
                    break
            if not found:  # pragma: no cover - numerical safety net
                raise HeuristicFailure("DPA1D: reconstruction failed")
        return clusters_rev[::-1], speeds_rev[::-1]


def solve_uniline(
    problem: ProblemInstance,
    r: int,
    ideal_budget: int = 120_000,
    transition_budget: int = 1_000_000,
) -> tuple[float, list[list[int]], list[float]]:
    """Optimal clustering of ``problem.spg`` on a 1 x ``r`` uni-directional line.

    Returns ``(energy, clusters, speeds)`` with clusters in line order.
    Raises :class:`HeuristicFailure` (or its subclass
    :class:`BudgetExceeded`) when the ideal lattice or the transition count
    exceeds its budget, or when no feasible clustering exists.
    """
    dp = _UnilineDP(problem, r, ideal_budget)
    e, k_best = dp.solve(transition_budget)
    clusters, speeds = dp.reconstruct(k_best)
    return e, clusters, speeds


@register("DPA1D")
def dpa1d_mapping(
    problem: ProblemInstance,
    rng=None,
    ideal_budget: int = 120_000,
    transition_budget: int = 1_000_000,
) -> Mapping:
    """Optimal 1D clustering mapped along the snake of the 2D grid."""
    grid = problem.grid
    _, clusters, speeds = solve_uniline(
        problem, grid.n_cores, ideal_budget, transition_budget
    )
    order = snake_order(grid.p, grid.q)
    alloc: dict[int, tuple[int, int]] = {}
    speed_map: dict[tuple[int, int], float] = {}
    position: dict[int, int] = {}
    for t, cluster in enumerate(clusters):
        core = order[t]
        speed_map[core] = speeds[t]
        for stage in cluster:
            alloc[stage] = core
            position[stage] = t
    paths = {}
    for (i, j) in problem.spg.edges:
        a, b = position[i], position[j]
        if a != b:
            paths[(i, j)] = order[a : b + 1]
    return Mapping(problem.spg, grid, alloc, speed_map, paths)
