"""DPA1D (Sections 4.1 and 5.4): optimal 1D dynamic program on the snake.

The grid is configured as a uni-directional uni-line CMP with ``r = p*q``
cores by embedding the line into the grid as a snake.  Theorem 1's DP then
computes the *optimal* energy for this restricted platform:

``E(G, k) = min over admissible G' of  E(G', k-1) (+) Ecal(G \\ G')``

where admissible subgraphs are the order ideals of the SPG, ``Ecal`` maps a
cluster to one core at the slowest feasible speed, the prefix cut must fit
the link bandwidth, and ``(+)`` charges ``E_bit`` for every byte crossing
the link (each physical snake link carries the cut of the prefix before it,
so an edge spanning several positions pays once per hop, consistently with
Section 3.5).

The number of ideals is bounded by ``n^ymax``; like the paper we let the
heuristic *fail* when the state space explodes (budget caps), which is
exactly its reported behaviour on high-elevation workflows.  For linear
chains (and for any SPG when communications are free) DPA1D is optimal
among all mappings.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import BudgetExceeded, HeuristicFailure
from repro.core.mapping import Mapping
from repro.core.partition import IdealLattice
from repro.core.problem import ProblemInstance
from repro.heuristics.base import register
from repro.util.bitset import bits_of

__all__ = ["dpa1d_mapping", "solve_uniline"]

INF = float("inf")


class _UnilineDP:
    """State shared between the forward DP pass and the reconstruction."""

    def __init__(
        self,
        problem: ProblemInstance,
        r: int,
        ideal_budget: int,
        kernel=None,
    ):
        self.spg = problem.spg
        self.model = problem.grid.model
        self.T = problem.period
        self.r = min(r, self.spg.n)
        self.cap_work = self.T * self.model.s_max
        self.cap_bytes = self.model.link_capacity(self.T)
        # The lattice (ideal enumeration + cut volumes) only depends on the
        # SPG, so it is shared across the several periods choose_period
        # probes on the same graph — and, through the worker lattice
        # cache, across sweep cells with the same graph content.
        self.lat = IdealLattice.for_spg(
            self.spg, budget=ideal_budget, kernel=kernel
        )
        self._ecal: dict[int, tuple[float, float] | None] = {}
        # best[ideal][k] = optimal energy of ideal on exactly k+... index k
        # covers 0..r clusters (index 0 only finite for the empty ideal).
        # The scalar path stores rows in this dict; the vectorised path
        # (n <= 62) stores them as the matrix ``B`` indexed by the
        # value-sorted ideal array ``vals`` (all-inf row == not stored).
        self.best: dict[int, np.ndarray] = {}
        self.B: np.ndarray | None = None
        self.vals: np.ndarray | None = None

    def _row(self, ideal: int) -> np.ndarray | None:
        """The DP row of ``ideal`` (None when unreachable)."""
        if self.B is None:
            return self.best.get(ideal)
        pos = int(np.searchsorted(self.vals, ideal))
        row = self.B[pos]
        return row if np.isfinite(row).any() else None

    def cut(self, prefix: int) -> float:
        return self.lat.cut_volume(prefix)

    def ecal(self, cluster: int, work: float) -> tuple[float, float] | None:
        """(energy, speed) of one cluster on one core, or None if infeasible.

        ``work`` is the cluster's total weight, threaded through from the
        enumeration so it is never recomputed from the bitmask.
        """
        hit = self._ecal.get(cluster, 0)
        if hit != 0:
            return hit
        s = self.model.best_feasible(work, self.T)
        val = None if s is None else (self.model.comp_energy(work, s, self.T), s)
        self._ecal[cluster] = val
        return val

    def transition_cost(self, prefix: int, cluster: int, work: float) -> float:
        """Cost of appending ``cluster`` after ``prefix`` (inf if infeasible)."""
        ec = self.ecal(cluster, work)
        if ec is None:
            return INF
        cost = ec[0]
        if prefix:
            cb = self.cut(prefix)
            if cb > self.cap_bytes:
                return INF
            cost += self.model.comm_energy(cb)
        return cost

    def solve(self, transition_budget: int) -> tuple[float, int]:
        """Forward pass; returns (optimal energy, optimal cluster count).

        The transition loop is the hot path of the whole experiment
        harness.  For word-sized graphs (n <= 62) the DP runs layer by
        layer over popcount classes with every per-transition quantity —
        prefix lookup, cluster energy, boundary cost, ``k``-vector min —
        batched into numpy array operations; the element-wise operations
        reproduce the scalar arithmetic IEEE-exactly, so the results are
        bit-identical to the per-transition formulation (which remains as
        the fallback for larger graphs).
        """
        ideals = self.lat.ideals()  # may raise BudgetExceeded
        if self.lat.cut_table() is not None:
            return self._solve_vector(ideals, transition_budget)
        return self._solve_scalar(ideals, transition_budget)

    def _finish(self, final: np.ndarray | None) -> tuple[float, int]:
        if final is None or not np.isfinite(final[1:]).any():
            raise HeuristicFailure("DPA1D: no feasible clustering")
        k_best = int(np.argmin(final[1:])) + 1
        return float(final[k_best]), k_best

    def _solve_vector(
        self, ideals: list[int], transition_budget: int
    ) -> tuple[float, int]:
        r = self.r
        lat = self.lat
        model = self.model
        T = self.T
        cap_work = self.cap_work
        cap_bytes = self.cap_bytes
        full = lat.full
        vals, cuts = lat.cut_table()
        n_ideals = len(ideals)
        B = np.full((n_ideals, r + 1), INF)
        self.B, self.vals = B, vals
        B[int(np.searchsorted(vals, 0)), 0] = 0.0  # the empty ideal
        # Speed selection, vectorised: the scalar rule picks the first
        # feasible speed of strictly minimal energy-per-cycle, which is
        # exactly argmin over (epc if feasible else inf).
        speeds_arr = np.array(model.speeds)
        pw_arr = np.array(model.dyn_power)
        caps_arr = np.array([s * T * (1.0 + 1e-12) for s in model.speeds])
        epc_arr = np.array([pw / s for s, pw in zip(model.speeds, model.dyn_power)])
        leak = model.comp_leak * T
        e8 = 8.0  # comm energy is (8.0 * cut) * e_bit, kept in this order
        e_bit = model.e_bit

        # The flat transition table: per-ideal suffix arrays concatenated
        # in DP ideal order, built (and cached, with tighter caps served
        # as filtered views) by the lattice.  A run destined to blow its
        # transition budget raises in there — at the exact same
        # cumulative count as a fused loop — without paying for any DP
        # work; a surviving run slices the flat buffer below with no
        # per-ideal Python at all when the table is warm.
        M, W, counts, offsets, pidx, _total = lat.suffix_table(
            cap_work, transition_budget
        )
        if M.size == 0:
            return self._finish(self._row(full))
        ideal_vals, epos = lat.ideal_positions()
        # Per-transition costs, computed once for the whole lattice: the
        # cluster's one-core energy plus the dynamic cost of the prefix cut.
        feasible = W[:, None] <= caps_arr[None, :]
        epc = np.where(feasible, epc_arr[None, :], INF)
        k_sel = epc.argmin(axis=1)
        energy = leak + (W / speeds_arr[k_sel]) * pw_arr[k_sel]
        costs = energy + e8 * cuts[pidx] * e_bit
        # Dead-end pruning: an ideal whose cut exceeds the link capacity
        # can never be extended, so its row stays inf unless it is the
        # final state.  (Its enumeration still counted towards the budget
        # above, as in the unpruned DP.)
        alive = (counts > 0) & (
            (cuts[epos] <= cap_bytes) | (ideal_vals == np.uint64(full))
        )

        # Ideals are sorted by popcount: every prefix of a layer-c ideal
        # lies in a strictly earlier layer, so one batch per layer sees
        # finalised predecessor rows only.
        pos = 0
        while pos < n_ideals:
            c = ideals[pos].bit_count()
            end = pos
            while end < n_ideals and ideals[end].bit_count() == c:
                end += 1
            if c == 0:
                pos = end
                continue
            sel = alive[pos:end]
            if not sel.any():
                pos = end
                continue
            seg_counts = counts[pos:end][sel]
            keep = np.repeat(sel, counts[pos:end])
            t0, t1 = offsets[pos], offsets[end]
            pidx_l = pidx[t0:t1][keep]
            costs_l = costs[t0:t1][keep]
            cand = B[pidx_l, :r] + costs_l[:, None]
            starts = np.zeros(len(seg_counts), dtype=np.intp)
            np.cumsum(seg_counts[:-1], out=starts[1:])
            mins = np.minimum.reduceat(cand, starts, axis=0)
            B[epos[pos:end][sel], 1:] = mins
            pos = end
        final = self._row(full)
        return self._finish(final)

    def _solve_scalar(
        self, ideals: list[int], transition_budget: int
    ) -> tuple[float, int]:
        r = self.r
        lat = self.lat
        empty = np.full(r + 1, INF)
        empty[0] = 0.0
        self.best[0] = empty
        cap_work = self.cap_work
        cap_bytes = self.cap_bytes
        full = lat.full
        model = self.model
        T = self.T
        e_bit = model.e_bit
        best_get = self.best.get
        suffix_clusters = lat.suffix_clusters_weighted
        ecal = self.ecal
        lat.cut_volume(0)  # the empty prefix (cut 0)
        cut_volume = lat.cut_volume
        cut_get = lat._cut.get
        transitions = 0
        for ideal in ideals:
            if ideal == 0:
                continue
            clusters = suffix_clusters(ideal, cap_work)
            transitions += len(clusters)
            if transitions > transition_budget:
                raise BudgetExceeded(
                    f"DPA1D exceeded {transition_budget} DP transitions"
                )
            # Dead-end pruning, as in the vector path.
            cutv = cut_get(ideal)
            if cutv is None:
                cutv = cut_volume(ideal)
            if ideal != full and cutv > cap_bytes:
                continue
            prev_rows: list[np.ndarray] = []
            costs: list[float] = []
            for cluster, work in clusters:
                prefix = ideal ^ cluster  # cluster is an up-set of ideal
                prev = best_get(prefix)
                if prev is None:
                    continue
                # A stored prefix passed the dead-end check, so its cut fits
                # the link and the boundary cost is plain dynamic energy.
                ec = ecal(cluster, work)
                if ec is None:
                    continue
                prev_rows.append(prev)
                costs.append(ec[0] + 8.0 * cut_get(prefix) * e_bit)
            if not prev_rows:
                continue
            stacked = np.array(prev_rows)
            tail = (
                stacked[:, :-1] + np.asarray(costs)[:, None]
            ).min(axis=0)
            if not np.isfinite(tail).any():
                continue
            row = np.empty(r + 1)
            row[0] = INF
            row[1:] = tail
            self.best[ideal] = row
        return self._finish(self.best.get(full))

    def reconstruct(self, k_best: int) -> tuple[list[list[int]], list[float]]:
        """Walk back through the DP by re-evaluating local transitions."""
        clusters_rev: list[list[int]] = []
        speeds_rev: list[float] = []
        ideal, k = self.lat.full, k_best
        while ideal:
            target = self._row(ideal)[k]
            found = False
            for cluster, work in self.lat.suffix_clusters_weighted(
                ideal, self.cap_work
            ):
                prefix = ideal & ~cluster
                prev = self._row(prefix)
                if prev is None or not np.isfinite(prev[k - 1]):
                    continue
                cost = self.transition_cost(prefix, cluster, work)
                if cost == INF:
                    continue
                if prev[k - 1] + cost <= target * (1 + 1e-12) + 1e-30:
                    clusters_rev.append(bits_of(cluster))
                    speeds_rev.append(self.ecal(cluster, work)[1])
                    ideal, k = prefix, k - 1
                    found = True
                    break
            if not found:  # pragma: no cover - numerical safety net
                raise HeuristicFailure("DPA1D: reconstruction failed")
        return clusters_rev[::-1], speeds_rev[::-1]


def solve_uniline(
    problem: ProblemInstance,
    r: int,
    ideal_budget: int = 120_000,
    transition_budget: int = 1_000_000,
    kernel=None,
) -> tuple[float, list[list[int]], list[float]]:
    """Optimal clustering of ``problem.spg`` on a 1 x ``r`` uni-directional line.

    Returns ``(energy, clusters, speeds)`` with clusters in line order.
    Raises :class:`HeuristicFailure` (or its subclass
    :class:`BudgetExceeded`) when the ideal lattice or the transition count
    exceeds its budget, or when no feasible clustering exists.
    ``kernel`` picks the enumeration kernel (byte-identical results; see
    :mod:`repro.core.kernels`); ``None`` uses the ambient default.
    """
    dp = _UnilineDP(problem, r, ideal_budget, kernel=kernel)
    e, k_best = dp.solve(transition_budget)
    clusters, speeds = dp.reconstruct(k_best)
    return e, clusters, speeds


@register("DPA1D")
def dpa1d_mapping(
    problem: ProblemInstance,
    rng=None,
    ideal_budget: int = 120_000,
    transition_budget: int = 1_000_000,
    kernel=None,
) -> Mapping:
    """Optimal 1D clustering mapped along the topology's line embedding.

    On the mesh this is the snake of Section 5.4 (and the DP is optimal
    for the uni-line platform); on other fabrics the clusters are laid
    along :meth:`Topology.line_order` and routed with
    :meth:`Topology.line_path`.  On heterogeneous platforms the DP runs
    on the base speed set and each cluster's speed is refitted to its
    actual core afterwards (failing if the core is too slow).
    """
    grid = problem.grid
    spg = problem.spg
    _, clusters, speeds = solve_uniline(
        problem, grid.n_cores, ideal_budget, transition_budget, kernel
    )
    order = grid.line_order()
    het = grid.heterogeneous
    alloc: dict[int, tuple[int, int]] = {}
    speed_map: dict[tuple[int, int], float] = {}
    position: dict[int, int] = {}
    for t, cluster in enumerate(clusters):
        core = order[t]
        if het:
            work = sum(spg.weights[i] for i in cluster)
            s = grid.core_model(core).best_feasible(work, problem.period)
            if s is None:
                raise HeuristicFailure(
                    f"DPA1D: cluster {t} misses the period on scaled "
                    f"core {core}"
                )
            speed_map[core] = s
        else:
            speed_map[core] = speeds[t]
        for stage in cluster:
            alloc[stage] = core
            position[stage] = t
    paths = {}
    for (i, j) in spg.edges:
        a, b = position[i], position[j]
        if a != b:
            paths[(i, j)] = grid.line_path(a, b)
    return Mapping(spg, grid, alloc, speed_map, paths)
