"""The Greedy heuristic (Section 5.2).

For each speed ``s`` of the DVFS set, ``greedy(s)`` assigns the SPG over the
grid with all cores clocked at ``s``:

* a FIFO of *ready cores* starts with ``C(0,0)`` holding the source stage;
* each ready core carries a list of *offered* stages (successors forwarded
  to it); processing the core, it absorbs offered stages and successors of
  its own stages — in non-increasing order of incoming communication
  volume — while the computation fits ``T`` and the partial clustering
  stays a DAG-partition;
* whatever it does not absorb is forwarded onward to the right and down
  neighbours ("the stages that can either be assigned to this core, or
  forwarded to the neighbouring cores"), each communication going to the
  neighbour with the smaller incoming communication load, preferring a
  neighbour with computation room left;
* when every stage is assigned, communications are routed with XY routing
  and the full mapping is validated; each core is then *downgraded* to the
  cheapest feasible speed for its load, and unused cores are off.

The heuristic returns the lowest-energy mapping over all speeds and fails
when no speed yields a valid mapping.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import HeuristicFailure, MappingError
from repro.core.evaluate import energy, is_period_feasible
from repro.core.mapping import Mapping
from repro.core.partition import is_acyclic_quotient
from repro.core.problem import ProblemInstance
from repro.heuristics.base import register
from repro.platform.cmp import Core

__all__ = ["greedy_mapping"]


def _greedy_at_speed(problem: ProblemInstance, k: int) -> Mapping | None:
    """One Greedy pass with every core clocked at its speed number ``k``.

    On homogeneous platforms every core's speed ``k`` is the same value
    and this reduces exactly to the paper's single-speed pass; on
    heterogeneous platforms each core's computation capacity uses its own
    (scaled) speed.
    """
    spg, grid, T = problem.spg, problem.grid, problem.period

    def cap_work(core: Core) -> float:
        return T * grid.core_speed(core, k)

    cap_bytes = grid.model.link_capacity(T)

    start = grid.start_core()
    assigned: dict[int, Core] = {}
    # offers[core]: stages forwarded toward that core (not yet assigned).
    offers: dict[Core, list[int]] = {start: [spg.source]}
    offered_at: dict[int, Core] = {spg.source: start}
    incoming_load: dict[Core, float] = {}
    processed: set[Core] = set()
    queue: deque[Core] = deque([start])

    def partial_quotient_ok() -> bool:
        # Unassigned stages act as singleton clusters: cycles can only come
        # from the clusters formed so far.
        cluster_of = {i: assigned.get(i, ("stage", i)) for i in range(spg.n)}
        return is_acyclic_quotient(spg, cluster_of)

    def incoming_volume(j: int, core: Core) -> float:
        """Communication volume into unassigned ``j`` from stages on ``core``."""
        return sum(
            d
            for i, d in spg.in_edges(j)
            if assigned.get(i) == core
        )

    while queue:
        core = queue.popleft()
        if core in processed:
            continue
        processed.add(core)
        pool: list[int] = list(offers.pop(core, []))
        load = 0.0
        core_cap = cap_work(core)

        # Absorb as much as possible: offered stages plus successors of the
        # stages already absorbed here, largest incoming volume first.
        while True:
            candidates = [j for j in pool if j not in assigned]
            for i, c in list(assigned.items()):
                if c != core:
                    continue
                for j in spg.succs(i):
                    if j not in assigned and j not in candidates:
                        owner = offered_at.get(j)
                        if owner is None or owner == core:
                            candidates.append(j)
            candidates.sort(key=lambda j: (-incoming_volume(j, core), j))
            grew = False
            for j in candidates:
                if load + spg.weights[j] > core_cap:
                    continue
                assigned[j] = core
                if partial_quotient_ok():
                    load += spg.weights[j]
                    if j in pool:
                        pool.remove(j)
                    offered_at.pop(j, None)
                    grew = True
                    break
                del assigned[j]
            if not grew:
                break

        # Whatever remains — unabsorbed offers plus fresh successors — is
        # forwarded to the right / down neighbours.
        outgoing: dict[int, float] = {}
        for j in pool:
            if j not in assigned:
                outgoing[j] = outgoing.get(j, 0.0) + incoming_volume(j, core)
        for i, c in assigned.items():
            if c != core:
                continue
            for j in spg.succs(i):
                if j not in assigned and offered_at.get(j) in (None, core):
                    outgoing.setdefault(j, incoming_volume(j, core))

        if outgoing:
            targets = [
                c
                for c in grid.forward_neighbors(core)
                if c not in processed
            ]
            if not targets:
                return None
            offer_work = {
                c: sum(spg.weights[i] for i in offers.get(c, []))
                for c in targets
            }
            for j in sorted(outgoing, key=lambda j: (-outgoing[j], j)):
                # Balance incoming communications (the paper's rule), but
                # prefer a neighbour that still has computation room.
                roomy = [
                    c
                    for c in targets
                    if offer_work[c] + spg.weights[j] <= cap_work(c)
                ]
                tgt = min(
                    roomy or targets,
                    key=lambda c: incoming_load.get(c, 0.0),
                )
                incoming_load[tgt] = incoming_load.get(tgt, 0.0) + outgoing[j]
                if incoming_load[tgt] > cap_bytes:
                    return None
                offer_work[tgt] += spg.weights[j]
                offers.setdefault(tgt, []).append(j)
                offered_at[j] = tgt
                if tgt not in queue:
                    queue.append(tgt)

    if len(assigned) != spg.n:
        return None
    speeds = {c: grid.core_speed(c, k) for c in set(assigned.values())}
    mapping = Mapping(spg, grid, assigned, speeds)
    try:
        mapping.check_structure()
    except MappingError:
        return None
    if not is_period_feasible(mapping, T):
        return None
    return _downgrade(problem, mapping)


def _downgrade(problem: ProblemInstance, mapping: Mapping) -> Mapping:
    """Give every core the cheapest feasible speed for its final load."""
    grid = problem.grid
    new_speeds = {}
    for core, work in mapping.core_work().items():
        s = grid.core_model(core).best_feasible(work, problem.period)
        assert s is not None  # the mapping was feasible at the trial speed
        new_speeds[core] = s
    return Mapping(
        mapping.spg, mapping.grid, dict(mapping.alloc), new_speeds,
        dict(mapping.paths),
    )


@register("Greedy")
def greedy_mapping(problem: ProblemInstance, rng=None) -> Mapping:
    """Try every DVFS speed level, return the lowest-energy valid mapping."""
    best: Mapping | None = None
    best_e = float("inf")
    for k in range(len(problem.grid.model.speeds)):
        mapping = _greedy_at_speed(problem, k)
        if mapping is None:
            continue
        e = energy(mapping, problem.period).total
        if e < best_e:
            best, best_e = mapping, e
    if best is None:
        raise HeuristicFailure("Greedy: no speed produced a valid mapping")
    return best
