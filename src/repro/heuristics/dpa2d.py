"""DPA2D (Section 5.3): double nested dynamic program on the label grid.

The SPG is first laid on the ``xmax x ymax`` grid given by its labels.  An
*outer* DP cuts the levels (``x`` values) into consecutive groups mapped to
columns of the CMP; an *inner* DP cuts each group's rows (``y`` values) into
consecutive ranges mapped to the cores of one column.

Communications follow XY routing: an edge leaving stage ``i`` exits its
column horizontally on ``i``'s physical row, passes through intermediate
columns on that same row, and moves vertically only inside the destination
column.  The outer DP threads a *distribution* ``D`` of outgoing
communications — triples ``(row, destination stage, bytes)`` — across column
boundaries; per the paper, only the best ``D`` per outer state is kept,
which is what makes DPA2D a heuristic.

Per-cluster DAG-partition convexity is enforced inside the inner DP
(``Ecal = +inf`` for non-convex clusters, as in the paper); the assembled
mapping is re-validated at the end and the heuristic fails on the rare
quotient cycle the local checks cannot see.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.errors import HeuristicFailure, MappingError
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.heuristics.base import register
from repro.spg.analysis import ancestor_masks, descendant_masks

__all__ = ["dpa2d_mapping", "dpa2d1d_mapping", "solve_dpa2d"]

INF = float("inf")

_MISS = object()  # column-memo sentinel (None is a valid cached result)

#: A distribution of outgoing communications: ((row, dest_stage, bytes), ...)
Distribution = tuple[tuple[int, int, float], ...]


class ColumnPlan(NamedTuple):
    """One column's assignment: ``cores[u] = (stages tuple, speed)`` or None."""

    cores: tuple  # length p; entries: (tuple[int, ...], float) | None


class _ColumnResult(NamedTuple):
    energy: float
    dout: Distribution
    plan: ColumnPlan


class _Block:
    """Static data of a level block ``m1 <= x <= m2`` (cached per block).

    Per-row aggregates (work prefix sums, stage-mask prefixes, reachability
    unions) make :meth:`cluster` O(rows) instead of O(stages): the stage
    set of a row range is a prefix-mask difference and its convexity check
    unions precomputed per-row ancestor/descendant masks.
    """

    def __init__(self, solver: "_Dpa2dSolver", m1: int, m2: int) -> None:
        spg = solver.spg
        labels = spg.labels
        self.m1, self.m2 = m1, m2
        self.stages = [
            i for i in range(spg.n) if m1 <= labels[i][0] <= m2
        ]
        ys = [labels[i][1] for i in self.stages]
        self.ymax = max(ys) if ys else 0
        self.rows: dict[int, list[int]] = {}
        for i in self.stages:
            self.rows.setdefault(labels[i][1], []).append(i)
        # Internal edges spanning distinct rows (vertical traffic) and
        # edges leaving the block to later levels, from the solver's
        # precomputed flat edge array (one pass, no per-block stage set).
        v_edges = []
        out_edges = []
        for i, j, d, xi, yi, xj, yj in solver.edges_info:
            if m1 <= xi <= m2:
                if xj > m2:
                    out_edges.append((i, j, d))
                elif xj >= m1 and yi != yj:
                    v_edges.append((yi, yj, d))
        self.v_edges = v_edges
        self.out_edges = out_edges
        # Row prefix aggregates, index g = rows 1..g (0 empty).
        gmax = self.ymax
        desc, anc, weights = solver.desc, solver.anc, spg.weights
        pmask = [0] * (gmax + 1)
        pwork = [0.0] * (gmax + 1)
        row_desc = [0] * (gmax + 1)
        row_anc = [0] * (gmax + 1)
        for g in range(1, gmax + 1):
            row = self.rows.get(g, ())
            rm = rd = ra = 0
            rw = 0.0
            for i in row:
                rm |= 1 << i
                rw += weights[i]
                rd |= desc[i]
                ra |= anc[i]
            pmask[g] = pmask[g - 1] | rm
            pwork[g] = pwork[g - 1] + rw
            row_desc[g] = rd
            row_anc[g] = ra
        self._pmask = pmask
        self._pwork = pwork
        self._row_desc = row_desc
        self._row_anc = row_anc
        # cluster cache: (g1, g2] -> (energy, speed, work) or None
        self._cluster: dict[tuple[int, int], tuple[float, float] | None] = {}
        self._solver = solver

    def stages_of(self, g1: int, g2: int) -> list[int]:
        """Stages of rows ``g1 < y <= g2`` in row-major order (as the
        original mapping assembly produced them)."""
        return [
            i for y in range(g1 + 1, g2 + 1) for i in self.rows.get(y, [])
        ]

    def cluster(self, g1: int, g2: int) -> tuple[float, float] | None:
        """(energy, speed) of rows ``g1 < y <= g2`` on one core, or None.

        None signals infeasibility: the work misses the period at top speed
        or the cluster is not convex in the full SPG.  An empty row range is
        free (core stays off).
        """
        key = (g1, g2)
        if key in self._cluster:
            return self._cluster[key]
        mask = self._pmask[g2] & ~self._pmask[g1]
        solver = self._solver
        if not mask:
            val: tuple[float, float] | None = (0.0, 0.0)
        else:
            work = self._pwork[g2] - self._pwork[g1]
            s = solver.model.best_feasible(work, solver.T)
            if s is None:
                val = None
            else:
                below = above = 0
                row_desc, row_anc = self._row_desc, self._row_anc
                for g in range(g1 + 1, g2 + 1):
                    below |= row_desc[g]
                    above |= row_anc[g]
                if (below & above) & ~mask:
                    val = None  # an outside stage sits on an inside path
                else:
                    val = (solver.model.comp_energy(work, s, solver.T), s)
        self._cluster[key] = val
        return val


class _Dpa2dSolver:
    """Solves the DPA2D placement on a virtual ``p x q`` grid."""

    def __init__(self, problem: ProblemInstance, p: int, q: int) -> None:
        self.spg = problem.spg
        self.model = problem.grid.model
        self.T = problem.period
        self.p, self.q = p, q
        self.cap_work = self.T * self.model.s_max
        self.cap_bytes = self.model.link_capacity(self.T)
        self.desc = descendant_masks(self.spg)
        self.anc = ancestor_masks(self.spg)
        self.xmax = self.spg.xmax
        self.ymax = self.spg.ymax
        # Flat edge array with both endpoint labels, hoisted out of the
        # per-block scans (same order as the edges dict).
        labels = self.spg.labels
        self.edges_info = tuple(
            (i, j, d, labels[i][0], labels[i][1], labels[j][0], labels[j][1])
            for i, j, d in self.spg.edge_list
        )
        # Level weights for feasibility pruning of outer transitions.
        self.level_work = [0.0] * (self.xmax + 1)
        for i in range(self.spg.n):
            self.level_work[self.spg.labels[i][0]] += self.spg.weights[i]
        self._blocks: dict[tuple[int, int], _Block] = {}
        # Inner-DP results are pure functions of (block, incoming
        # distribution); the outer DP re-probes the same block with the
        # same distribution from many predecessor states.
        self._columns: dict[tuple[int, int, Distribution], _ColumnResult | None] = {}

    # ------------------------------------------------------------------
    def block(self, m1: int, m2: int) -> _Block:
        key = (m1, m2)
        blk = self._blocks.get(key)
        if blk is None:
            blk = _Block(self, m1, m2)
            self._blocks[key] = blk
        return blk

    def h_cost(self, d: Distribution) -> float:
        """Cost of crossing one column boundary with distribution ``d``.

        Per-row traffic must fit the horizontal link bandwidth; the energy
        is one hop for every byte.
        """
        per_row: dict[int, float] = {}
        total = 0.0
        for row, _dest, b in d:
            per_row[row] = per_row.get(row, 0.0) + b
            total += b
        if any(v > self.cap_bytes for v in per_row.values()):
            return INF
        return self.model.comm_energy(total)

    # ------------------------------------------------------------------
    def column(self, m1: int, m2: int, din: Distribution) -> _ColumnResult | None:
        """Inner DP result for levels ``m1..m2`` and incoming ``din`` (memoised)."""
        key = (m1, m2, din)
        hit = self._columns.get(key, _MISS)
        if hit is _MISS:
            hit = self._columns[key] = self._column_impl(m1, m2, din)
        return hit

    def _column_impl(
        self, m1: int, m2: int, din: Distribution
    ) -> _ColumnResult | None:
        """Inner DP: map levels ``m1..m2`` onto the ``p`` cores of a column."""
        blk = self.block(m1, m2)
        if not blk.stages:
            return None
        spg, p = self.spg, self.p
        # Split the incoming distribution into deliveries (dest in block,
        # with its destination row) and pass-through entries.
        deliveries: list[tuple[int, int, float]] = []  # (entry_row, y_dest, b)
        passthrough: list[tuple[int, int, float]] = []
        for row, dest, b in din:
            x, y = spg.labels[dest]
            if m1 <= x <= m2:
                deliveries.append((row, y, b))
            else:
                passthrough.append((row, dest, b))

        gmax = blk.ymax

        def boundary_cost(w: int, gcut: int) -> float:
            """Vertical traffic crossing the link between cores w-1 and w.

            ``gcut`` is the label-row cut: rows <= gcut live on cores < w.
            Down-traffic and up-traffic are checked separately against the
            per-direction bandwidth.
            """
            down = up = 0.0
            for a, yd, b in deliveries:
                if a <= w - 1 and yd > gcut:
                    down += b
                elif a >= w and yd <= gcut:
                    up += b
            for ys, yd, dvol in blk.v_edges:
                if ys <= gcut < yd:
                    down += dvol
                elif yd <= gcut < ys:
                    up += dvol
            if down > self.cap_bytes or up > self.cap_bytes:
                return INF
            return self.model.comm_energy(down + up)

        bcost_cache: dict[tuple[int, int], float] = {}

        def bcost(w: int, gcut: int) -> float:
            key = (w, gcut)
            v = bcost_cache.get(key)
            if v is None:
                v = boundary_cost(w, gcut)
                bcost_cache[key] = v
            return v

        # E2[g][u]: rows 1..g on cores 0..u-1.  par[g][u] = previous g.
        E2 = [[INF] * (p + 1) for _ in range(gmax + 1)]
        par = [[-1] * (p + 1) for _ in range(gmax + 1)]
        E2[0][0] = 0.0
        for u in range(1, p + 1):
            for g in range(gmax + 1):
                best, arg = INF, -1
                for g2 in range(g + 1):
                    prev = E2[g2][u - 1]
                    if prev == INF:
                        continue
                    cl = blk.cluster(g2, g)
                    if cl is None:
                        continue
                    vcost = bcost(u - 1, g2) if u >= 2 else 0.0
                    if vcost == INF:
                        continue
                    tot = prev + cl[0] + vcost
                    if tot < best:
                        best, arg = tot, g2
                E2[g][u] = best
                par[g][u] = arg

        def tail_cost(u: int) -> float:
            """Vertical hops above the last used core (entry rows >= u)."""
            cost = 0.0
            for w in range(u, p):
                t = sum(b for a, _yd, b in deliveries if a >= w)
                if t > self.cap_bytes:
                    return INF
                cost += self.model.comm_energy(t)
            return cost

        best_u, best_e = -1, INF
        for u in range(1, p + 1):
            if E2[gmax][u] == INF:
                continue
            e = E2[gmax][u] + tail_cost(u)
            if e < best_e:
                best_u, best_e = u, e
        if best_u < 0:
            return None

        # Reconstruct the row cuts; core u covers rows (cuts[u], cuts[u+1]].
        cuts = [0] * (best_u + 1)
        g = gmax
        for u in range(best_u, 0, -1):
            cuts[u] = g
            g = par[g][u]
        assert g == 0
        cores: list[tuple[tuple[int, ...], float] | None] = [None] * p
        core_of_row: dict[int, int] = {}
        for u in range(best_u):
            lo = cuts[u] if u > 0 else 0
            hi = cuts[u + 1]
            stages = tuple(blk.stages_of(lo, hi))
            for y in range(lo + 1, hi + 1):
                core_of_row[y] = u
            if stages:
                cl = blk.cluster(lo, hi)
                assert cl is not None
                cores[u] = (stages, cl[1])

        # Outgoing distribution: pass-through plus the block's own exits.
        agg: dict[tuple[int, int], float] = {}
        for row, dest, b in passthrough:
            agg[(row, dest)] = agg.get((row, dest), 0.0) + b
        for i, j, d in blk.out_edges:
            row = core_of_row[spg.labels[i][1]]
            agg[(row, j)] = agg.get((row, j), 0.0) + d
        dout = tuple(
            (row, dest, b) for (row, dest), b in sorted(agg.items())
        )
        return _ColumnResult(best_e, dout, ColumnPlan(tuple(cores)))

    # ------------------------------------------------------------------
    def solve(self) -> tuple[float, list[ColumnPlan]]:
        """Outer DP over (level prefix, columns used)."""
        xmax, q = self.xmax, self.q
        prefix_work = [0.0] * (xmax + 1)
        for x in range(1, xmax + 1):
            prefix_work[x] = prefix_work[x - 1] + self.level_work[x]
        col_cap = self.p * self.cap_work

        # memo[(m, v)] = (energy, dout, (m', plan))
        memo: dict[tuple[int, int], tuple[float, Distribution, tuple]] = {}
        for v in range(1, q + 1):
            for m in range(v, xmax + 1):
                best: tuple[float, Distribution, tuple] | None = None
                lo = v - 1
                for m_prev in range(lo, m):
                    # Prune: the block's total work must fit the column.
                    if prefix_work[m] - prefix_work[m_prev] > col_cap:
                        continue
                    if v == 1:
                        if m_prev != 0:
                            continue
                        prev_e, din = 0.0, ()
                        h = 0.0
                    else:
                        prev = memo.get((m_prev, v - 1))
                        if prev is None:
                            continue
                        prev_e, din = prev[0], prev[1]
                        h = self.h_cost(din)
                        if h == INF:
                            continue
                    res = self.column(m_prev + 1, m, din)
                    if res is None:
                        continue
                    total = prev_e + h + res.energy
                    if best is None or total < best[0]:
                        best = (total, res.dout, (m_prev, res.plan))
                if best is not None:
                    memo[(m, v)] = best

        best_v, best_e = -1, INF
        for v in range(1, q + 1):
            entry = memo.get((xmax, v))
            if entry is not None and entry[0] < best_e:
                best_v, best_e = v, entry[0]
        if best_v < 0:
            raise HeuristicFailure("DPA2D: no feasible column decomposition")

        plans: list[ColumnPlan] = []
        m, v = xmax, best_v
        while v >= 1:
            _e, _d, (m_prev, plan) = memo[(m, v)]
            plans.append(plan)
            m, v = m_prev, v - 1
        plans.reverse()
        return best_e, plans


def _refit_speed(
    problem: ProblemInstance, core, stages, speed: float
) -> float:
    """The speed of ``stages`` on ``core``, refitted to the core's own
    (possibly scaled) model on heterogeneous platforms.

    The DP plans with the base model; a scaled core re-selects the
    energy-optimal feasible speed for the cluster's work and the refit
    fails (``HeuristicFailure``) when the core is too slow.
    """
    grid = problem.grid
    if not grid.heterogeneous:
        return speed
    work = sum(problem.spg.weights[i] for i in stages)
    s = grid.core_model(core).best_feasible(work, problem.period)
    if s is None:
        raise HeuristicFailure(
            f"cluster misses the period on scaled core {core}"
        )
    return s


def _plans_to_mapping(
    problem: ProblemInstance,
    plans: list[ColumnPlan],
    core_at,
) -> Mapping:
    """Materialise column plans into a Mapping; ``core_at(u, c)`` places cores."""
    alloc: dict[int, tuple[int, int]] = {}
    speeds: dict[tuple[int, int], float] = {}
    for c, plan in enumerate(plans):
        for u, entry in enumerate(plan.cores):
            if entry is None:
                continue
            stages, speed = entry
            core = core_at(u, c)
            speeds[core] = _refit_speed(problem, core, stages, speed)
            for i in stages:
                alloc[i] = core
    mapping = Mapping(problem.spg, problem.grid, alloc, speeds)
    try:
        mapping.check_structure()
    except MappingError as exc:
        raise HeuristicFailure(f"DPA2D produced an invalid mapping: {exc}")
    return mapping


@register("DPA2D")
def dpa2d_mapping(problem: ProblemInstance, rng=None) -> Mapping:
    """The 2D double-DP heuristic on the real grid (XY-routed)."""
    grid = problem.grid
    solver = _Dpa2dSolver(problem, grid.p, grid.q)
    _e, plans = solver.solve()
    return _plans_to_mapping(problem, plans, lambda u, c: (u, c))


def solve_dpa2d(
    problem: ProblemInstance, p: int, q: int
) -> tuple[float, list[ColumnPlan]]:
    """Run the DPA2D solver on a virtual ``p x q`` grid (same power model)."""
    return _Dpa2dSolver(problem, p, q).solve()


@register("DPA2D1D")
def dpa2d1d_mapping(problem: ProblemInstance, rng=None) -> Mapping:
    """DPA2D on a virtual 1 x (p*q) line, mapped along the topology's
    line embedding (the snake of Section 5.4 on the mesh)."""
    grid = problem.grid
    r = grid.n_cores
    solver = _Dpa2dSolver(problem, 1, r)
    _e, plans = solver.solve()
    order = grid.line_order()

    # Column c of the virtual line is line position c; route along it.
    alloc: dict[int, tuple[int, int]] = {}
    speeds: dict[tuple[int, int], float] = {}
    position: dict[int, int] = {}
    for c, plan in enumerate(plans):
        entry = plan.cores[0]
        if entry is None:
            continue
        stages, speed = entry
        core = order[c]
        speeds[core] = _refit_speed(problem, core, stages, speed)
        for i in stages:
            alloc[i] = core
            position[i] = c
    if len(alloc) != problem.spg.n:
        raise HeuristicFailure("DPA2D1D: incomplete assignment")
    paths = {}
    for (i, j) in problem.spg.edges:
        a, b = position[i], position[j]
        if a != b:
            paths[(i, j)] = grid.line_path(a, b)
    mapping = Mapping(problem.spg, grid, alloc, speeds, paths)
    try:
        mapping.check_structure()
    except MappingError as exc:
        raise HeuristicFailure(f"DPA2D1D produced an invalid mapping: {exc}")
    return mapping
