"""Persistent, content-addressed result stores.

A :class:`ResultStore` files JSON payloads (see
:mod:`repro.store.serialize`) under content-addressed fingerprints (see
:mod:`repro.store.fingerprint`).  Two backends:

* :class:`MemoryStore` — a process-local dict, for tests and the batch
  service's store-less mode;
* :class:`SQLiteStore` — one SQLite file in WAL mode, committing every
  ``put`` so an interrupted sweep loses at most the in-flight batch,
  and tolerating concurrent writers (independent shard invocations
  filling one store file).

Every row records the payload schema version and the library version
that wrote it, so ``repro store gc`` can purge entries an older (or
newer) payload layout left behind, and ``stats``/``export`` can audit a
store without deserialising results.
"""

from __future__ import annotations

import json
import sqlite3
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterable, Iterator

from repro.store.serialize import PAYLOAD_SCHEMA_VERSION
from repro.util.version import repro_version

__all__ = [
    "ResultStore",
    "MemoryStore",
    "SQLiteStore",
    "open_store",
]


class ResultStore(ABC):
    """Keyed payload storage with schema-version bookkeeping."""

    #: Human-readable location (``":memory:"`` or a file path).
    location: str = ":memory:"

    # -- required primitives -------------------------------------------
    @abstractmethod
    def get(self, key: str) -> dict | None:
        """The payload filed under ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: str, payload: dict, kind: str = "result") -> None:
        """File ``payload`` under ``key`` (replacing any previous entry).

        The row's schema version is read from ``payload["schema"]``
        (defaulting to the current :data:`PAYLOAD_SCHEMA_VERSION`).
        """

    @abstractmethod
    def delete(self, keys: Iterable[str]) -> int:
        """Remove the given keys; returns how many existed."""

    @abstractmethod
    def rows(self, with_payload: bool = True) -> Iterator[dict]:
        """All rows as ``{key, kind, schema, version, payload}`` dicts,
        in sorted key order (deterministic for export/diffing).

        ``with_payload=False`` yields ``payload`` as ``None`` without
        deserialising it — sweep-cell payloads are multi-KB, and the
        metadata-only consumers (stats, gc, keys) should not pay to
        parse every stored result just to count or select rows.
        """

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    # -- derived conveniences ------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        return [row["key"] for row in self.rows(with_payload=False)]

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> dict:
        """Entry counts by kind and schema version, plus staleness."""
        by_kind: dict[str, int] = {}
        by_schema: dict[str, int] = {}
        stale = 0
        total = 0
        for row in self.rows(with_payload=False):
            total += 1
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0) + 1
            s = str(row["schema"])
            by_schema[s] = by_schema.get(s, 0) + 1
            if row["schema"] != PAYLOAD_SCHEMA_VERSION:
                stale += 1
        return {
            "location": self.location,
            "entries": total,
            "by_kind": by_kind,
            "by_schema": by_schema,
            "stale": stale,
            "current_schema": PAYLOAD_SCHEMA_VERSION,
        }

    def gc(self, kind: str | None = None, drop_all: bool = False) -> int:
        """Purge entries; returns how many were removed.

        Default: entries whose payload schema version is not current
        (left behind by older/newer code).  ``kind`` restricts the purge
        to that kind *and* removes current-schema entries of it too
        (explicitly invalidating a class of results); ``drop_all``
        empties the store.
        """
        doomed = [
            row["key"]
            for row in self.rows(with_payload=False)
            if drop_all
            or (kind is not None and row["kind"] == kind)
            or (kind is None and row["schema"] != PAYLOAD_SCHEMA_VERSION)
        ]
        return self.delete(doomed)

    def export(self) -> dict:
        """A deterministic JSON snapshot of the whole store.

        Write timestamps are excluded so two stores holding the same
        results export byte-identically regardless of fill order (e.g.
        one filled serially vs. one merged from shards).
        """
        return {
            "meta": {
                "schema_version": PAYLOAD_SCHEMA_VERSION,
                "repro_version": repro_version(),
                "entries": len(self),
            },
            "entries": {
                row["key"]: {
                    "kind": row["kind"],
                    "schema": row["schema"],
                    "version": row["version"],
                    "payload": row["payload"],
                }
                for row in self.rows()
            },
        }


class MemoryStore(ResultStore):
    """An in-process store (payloads are deep-copied via JSON on both
    ends, so callers cannot mutate stored state by aliasing)."""

    def __init__(self) -> None:
        self._rows: dict[str, dict] = {}
        self.location = ":memory:"

    def get(self, key: str) -> dict | None:
        row = self._rows.get(key)
        return None if row is None else json.loads(row["payload"])

    def put(self, key: str, payload: dict, kind: str = "result") -> None:
        self._rows[key] = {
            "kind": kind,
            "schema": int(payload.get("schema", PAYLOAD_SCHEMA_VERSION)),
            "version": repro_version(),
            "payload": json.dumps(payload, sort_keys=True),
        }

    def delete(self, keys: Iterable[str]) -> int:
        n = 0
        for key in list(keys):
            if self._rows.pop(key, None) is not None:
                n += 1
        return n

    def rows(self, with_payload: bool = True) -> Iterator[dict]:
        for key in sorted(self._rows):
            row = self._rows[key]
            yield {
                "key": key,
                "kind": row["kind"],
                "schema": row["schema"],
                "version": row["version"],
                "payload": (
                    json.loads(row["payload"]) if with_payload else None
                ),
            }


class SQLiteStore(ResultStore):
    """One SQLite database file holding all results.

    WAL journalling plus a generous busy timeout let independent shard
    invocations write into the same file; each ``put`` commits, so a
    killed sweep keeps everything stored up to the last completed batch.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.location = str(self.path)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS results (
                key TEXT PRIMARY KEY,
                kind TEXT NOT NULL,
                schema INTEGER NOT NULL,
                version TEXT NOT NULL,
                created_at REAL NOT NULL,
                payload TEXT NOT NULL
            )
            """
        )
        self._conn.commit()

    def get(self, key: str) -> dict | None:
        cur = self._conn.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)
        )
        row = cur.fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, key: str, payload: dict, kind: str = "result") -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(key, kind, schema, version, created_at, payload) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                key,
                kind,
                int(payload.get("schema", PAYLOAD_SCHEMA_VERSION)),
                repro_version(),
                time.time(),
                json.dumps(payload, sort_keys=True),
            ),
        )
        self._conn.commit()

    def delete(self, keys: Iterable[str]) -> int:
        keys = list(keys)
        n = 0
        for key in keys:
            cur = self._conn.execute(
                "DELETE FROM results WHERE key = ?", (key,)
            )
            n += cur.rowcount
        self._conn.commit()
        return n

    def rows(self, with_payload: bool = True) -> Iterator[dict]:
        payload_col = "payload" if with_payload else "NULL"
        cur = self._conn.execute(
            f"SELECT key, kind, schema, version, {payload_col} "
            "FROM results ORDER BY key"
        )
        for key, kind, schema, version, payload in cur:
            yield {
                "key": key,
                "kind": kind,
                "schema": schema,
                "version": version,
                "payload": json.loads(payload) if with_payload else None,
            }

    def __len__(self) -> int:
        cur = self._conn.execute("SELECT COUNT(*) FROM results")
        return int(cur.fetchone()[0])

    def __contains__(self, key: str) -> bool:
        cur = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        )
        return cur.fetchone() is not None

    def close(self) -> None:
        self._conn.close()


def open_store(spec: "str | Path | ResultStore | None") -> ResultStore:
    """Coerce a CLI/API store argument into a :class:`ResultStore`.

    ``None`` and ``":memory:"`` build a fresh :class:`MemoryStore`;
    an existing store instance passes through; anything else is a
    SQLite file path (created on first use).
    """
    if isinstance(spec, ResultStore):
        return spec
    if spec is None or spec == ":memory:":
        return MemoryStore()
    return SQLiteStore(spec)
