"""Persistent, content-addressed result stores with integrity checks.

A :class:`ResultStore` files JSON payloads (see
:mod:`repro.store.serialize`) under content-addressed fingerprints (see
:mod:`repro.store.fingerprint`).  Two backends:

* :class:`MemoryStore` — a process-local dict, for tests and the batch
  service's store-less mode;
* :class:`SQLiteStore` — one SQLite file in WAL mode, committing every
  ``put`` so an interrupted sweep loses at most the in-flight batch,
  and tolerating concurrent writers (independent shard invocations
  filling one store file).

**Integrity.**  Every ``put`` records the sha256 checksum of the
serialised payload text; every ``get`` re-verifies it (and that the
text still parses).  A row that fails — torn write, disk fault,
tampering — is a typed :class:`~repro.core.errors.StoreCorruption`, and
the default recovery is to *quarantine* it: the row moves to a side
table (keeping the bytes for forensics) and the key reads as a miss, so
a resumed sweep recomputes the cell instead of crashing on a raw
``json.JSONDecodeError``.  ``repro store verify`` audits a whole store;
rows written before checksums existed verify as ``unchecksummed`` and
are never quarantined automatically.

**Boundedness.**  Stores stay serviceable under sustained traffic
through the pluggable eviction layer (:mod:`repro.store.eviction`):
:meth:`ResultStore.evict` removes rows in policy order (``lru``,
``fifo``, RRIP variants with set-dueling) until row-count/payload-byte
caps hold, and :meth:`ResultStore.configure_eviction` enforces the caps
on every ``put``.  Evicted keys simply read as misses — resumed sweeps
and the batch service recompute and re-file them, so consolidated
reports stay byte-identical to unbounded runs.  The cap check on the
``put`` path is O(1) (``COUNT(*)``/``SUM(LENGTH(...))`` aggregates);
row metadata is only fetched once a cap is actually exceeded.

Every row also records the payload schema version and the library
version that wrote it, so ``repro store gc`` can purge entries an older
(or newer) payload layout left behind, and ``stats``/``export`` can
audit a store without deserialising results.  All row timestamps
(``created_at``, ``last_hit_at``, quarantine times) come from one
injectable clock (``clock=``, default wall time) so recency-ordered
eviction is deterministic in tests and under ``REPRO_FAULT_PLAN``
replays — see :class:`LogicalClock`.

For deterministic chaos testing, a :class:`~repro.resilience.FaultPlan`
passed at construction (``faults=``) garbles matching rows *below* the
checksum at ``put`` time — exactly the class of corruption the
verification layer exists to catch.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.errors import StoreCorruption
from repro.obs.session import inc, trace_span
from repro.resilience.faults import FaultPlan
from repro.store.eviction import (
    EvictionConfig,
    EvictionPolicy,
    get_eviction_policy,
)
from repro.store.serialize import PAYLOAD_SCHEMA_VERSION
from repro.util.version import repro_version

__all__ = [
    "ResultStore",
    "MemoryStore",
    "SQLiteStore",
    "LogicalClock",
    "open_store",
    "payload_checksum",
]


def payload_checksum(text: str) -> str:
    """The sha256 hex digest of a serialised payload."""
    return hashlib.sha256(text.encode()).hexdigest()


class LogicalClock:
    """A deterministic logical clock: each call returns the next tick.

    Inject into a store (``clock=LogicalClock()``) wherever recency
    ordering must be reproducible — LRU eviction tests, fault-plan
    replays — instead of racing wall-clock timestamps.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._t = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        self._t += self._step
        return self._t


def _parse_verified(key: str, text: str, checksum: str | None) -> dict:
    """Parse a stored payload, verifying its checksum when present.

    Raises :class:`StoreCorruption` on a checksum mismatch or
    unparsable text; a ``None`` checksum (pre-checksum rows) skips
    verification — ``repro store verify`` reports those separately.
    """
    if checksum is not None:
        actual = payload_checksum(text)
        if actual != checksum:
            raise StoreCorruption(
                key, f"checksum mismatch (stored {checksum[:12]}..., "
                     f"payload hashes to {actual[:12]}...)"
            )
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreCorruption(key, f"payload is not valid JSON: {exc}")


class ResultStore(ABC):
    """Keyed payload storage with integrity and schema bookkeeping."""

    #: Human-readable location (``":memory:"`` or a file path).
    location: str = ":memory:"

    #: Keys this instance quarantined during its lifetime (operator
    #: reporting only — never part of canonical reports).
    session_quarantined: list[str]

    #: Put-path eviction config + its resolved policy (see
    #: :meth:`configure_eviction`); ``None`` = unbounded.
    _eviction: EvictionConfig | None = None
    _eviction_policy: EvictionPolicy | None = None

    # -- required primitives -------------------------------------------
    def put(self, key: str, payload: dict, kind: str = "result") -> None:
        """File ``payload`` under ``key`` (replacing any previous entry).

        The row's schema version is read from ``payload["schema"]``
        (defaulting to the current :data:`PAYLOAD_SCHEMA_VERSION`); the
        row records the sha256 checksum of the serialised text.  With an
        eviction config attached (:meth:`configure_eviction`), a put
        that leaves the store over its caps evicts in policy order —
        the just-written row itself is exempt.
        """
        with trace_span("store.put", kind=kind):
            self._put(key, payload, kind)
        inc("store.puts")
        cfg = self._eviction
        if cfg is not None:
            self.evict(
                policy=self._eviction_policy,
                max_rows=cfg.max_rows,
                max_bytes=cfg.max_bytes,
                protect=(key,),
            )

    @abstractmethod
    def _put(self, key: str, payload: dict, kind: str) -> None:
        """Backend write primitive behind :meth:`put`."""

    @abstractmethod
    def delete(self, keys: Iterable[str]) -> int:
        """Remove the given keys; returns how many existed."""

    @abstractmethod
    def rows(self, with_payload: bool = True) -> Iterator[dict]:
        """All rows as ``{key, kind, schema, version, payload}`` dicts,
        in sorted key order (deterministic for export/diffing).

        ``with_payload=False`` yields ``payload`` as ``None`` without
        deserialising it — sweep-cell payloads are multi-KB, and the
        metadata-only consumers (stats, gc, keys) should not pay to
        parse every stored result just to count or select rows.  With
        payloads, a corrupt row raises a typed :class:`StoreCorruption`
        (run ``repro store verify --quarantine`` to clear it) instead
        of a raw decode error.
        """

    @abstractmethod
    def quarantine(self, key: str, reason: str) -> bool:
        """Move ``key`` out of the live table into the quarantine area
        (payload bytes preserved for forensics); the key then reads as
        a miss so resume paths recompute it.  Returns whether the key
        existed."""

    @abstractmethod
    def quarantined(self) -> list[dict]:
        """Quarantined rows as ``{key, kind, reason}`` in key order."""

    @abstractmethod
    def _purge_quarantine(self) -> int:
        """Drop every quarantined row; returns how many there were."""

    @abstractmethod
    def _texts(self) -> Iterator[tuple[str, str, str | None]]:
        """Raw ``(key, payload_text, checksum)`` triples, in key order
        (the verification layer's view — no JSON parsing)."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default); safe to
        call twice and from error paths."""

    # -- access accounting (operator telemetry, never canonical) -------
    @abstractmethod
    def _record_hit(self, key: str) -> None:
        """Bump the per-row and aggregate hit counters for ``key`` and
        promote its re-reference prediction to MRU (``rrpv = 0``)."""

    @abstractmethod
    def _record_miss(self) -> None:
        """Bump the aggregate miss counter."""

    @abstractmethod
    def access_stats(self) -> dict:
        """Lifetime read accounting: ``{hits, misses, rows_never_hit,
        last_hit_at}`` (persistent for SQLite stores, per-instance for
        memory stores).  Excluded from :meth:`export` and :meth:`rows`
        so snapshots stay deterministic."""

    # -- accounting counters (eviction-policy state side-band) ---------
    @abstractmethod
    def _get_counter(self, name: str, default: int = 0) -> int:
        """A named accounting counter (PSEL, bimodal counter, eviction
        totals); persistent for SQLite stores."""

    @abstractmethod
    def _set_counter(self, name: str, value: int) -> None:
        """Set a named accounting counter."""

    @abstractmethod
    def _counters(self) -> dict:
        """All named accounting counters (a snapshot dict)."""

    def _add_counter(self, name: str, n: int = 1) -> None:
        self._set_counter(name, self._get_counter(name) + n)

    def _insert_rrpv(self, key: str) -> int:
        """The re-reference prediction stamped on a fresh row: the
        attached eviction policy's insertion prediction, else MRU."""
        pol = self._eviction_policy
        return 0 if pol is None else pol.insertion_rrpv(self, key)

    # -- integrity ------------------------------------------------------
    def get(self, key: str, on_corrupt: str = "quarantine") -> dict | None:
        """The payload filed under ``key``, or ``None``.

        Integrity is verified on every read.  ``on_corrupt`` selects
        the failure mode: ``"quarantine"`` (default) moves the bad row
        aside and returns ``None`` — the caller recomputes, exactly as
        for a miss; ``"raise"`` surfaces the typed
        :class:`StoreCorruption` instead.

        Every call is counted: hits bump the row's persistent ``hits``/
        ``last_hit_at`` accounting and the aggregate hit counter, misses
        (including quarantined corrupt rows) the aggregate miss counter
        — surfaced by ``repro store stats`` and the ``store.hits``/
        ``store.misses`` session metrics.  An attached eviction policy
        sees every hit too (set-dueling scores itself against exactly
        this accounting).
        """
        with trace_span("store.get") as sp:
            found = self._fetch_text(key)
            if found is None:
                result = None
            else:
                text, checksum = found
                try:
                    result = _parse_verified(key, text, checksum)
                except StoreCorruption as exc:
                    if on_corrupt == "raise":
                        raise
                    self.quarantine(key, exc.reason)
                    result = None
            if sp is not None:
                sp.attrs["hit"] = result is not None
        if result is not None:
            self._record_hit(key)
            if self._eviction_policy is not None:
                self._eviction_policy.on_hit(self, key)
            inc("store.hits")
        else:
            self._record_miss()
            inc("store.misses")
        return result

    @abstractmethod
    def _fetch_text(self, key: str) -> tuple[str, str | None] | None:
        """The raw ``(payload_text, checksum)`` for ``key``, if any."""

    def verify(self, quarantine: bool = False) -> dict:
        """Audit every row's checksum; optionally quarantine failures.

        Returns ``{location, checked, ok, unchecksummed, corrupt:
        [{key, kind?, error}], quarantined}``.  ``unchecksummed`` counts
        rows written before checksums existed (verified as far as JSON
        parsing only).
        """
        corrupt: list[dict] = []
        unchecksummed = 0
        checked = 0
        for key, text, checksum in self._texts():
            checked += 1
            if checksum is None:
                unchecksummed += 1
            try:
                _parse_verified(key, text, checksum)
            except StoreCorruption as exc:
                corrupt.append({"key": key, "error": exc.reason})
        if quarantine:
            for entry in corrupt:
                self.quarantine(entry["key"], entry["error"])
        return {
            "location": self.location,
            "checked": checked,
            "ok": checked - len(corrupt),
            "unchecksummed": unchecksummed,
            "corrupt": corrupt,
            "quarantined": len(corrupt) if quarantine else 0,
        }

    # -- bounded-store eviction ----------------------------------------
    def configure_eviction(
        self,
        policy: "str | EvictionConfig | None" = "lru",
        max_rows: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        """Attach (or detach) put-path cap enforcement.

        ``policy`` is a registered eviction-policy name or a prebuilt
        :class:`~repro.store.eviction.EvictionConfig`; at least one of
        ``max_rows``/``max_bytes`` must be given.  ``policy=None``
        detaches the config (the store becomes unbounded again).  The
        attached policy also maintains its prediction state (insertion
        RRPVs, PSEL scoring) on every subsequent ``put``/``get``.
        """
        if policy is None:
            self._eviction = None
            self._eviction_policy = None
            return
        if isinstance(policy, EvictionConfig):
            cfg = policy
        else:
            cfg = EvictionConfig(
                policy=policy, max_rows=max_rows, max_bytes=max_bytes
            )
        self._eviction = cfg
        self._eviction_policy = get_eviction_policy(cfg.policy)

    def evict(
        self,
        policy: "str | EvictionPolicy" = "lru",
        max_rows: int | None = None,
        max_bytes: int | None = None,
        protect: Iterable[str] = (),
    ) -> dict:
        """Evict rows in policy order until both caps hold.

        Returns ``{policy, evicted, freed_bytes, rows, bytes, max_rows,
        max_bytes}`` (``rows``/``bytes`` are the post-eviction store
        size).  The overage check costs two aggregate queries; row
        metadata is fetched only when a cap is actually exceeded.
        ``protect`` exempts keys (the put path protects the row it just
        wrote).  Evictions are counted per policy (``repro store
        stats``) and in the ``store.evictions`` session metric, under a
        ``store.evict`` trace span.
        """
        if max_rows is None and max_bytes is None:
            raise ValueError("evict needs max_rows and/or max_bytes")
        policy = get_eviction_policy(policy)
        victims: list[str] = []
        freed = 0
        with trace_span("store.evict", policy=policy.name) as sp:
            n_rows = len(self)
            n_bytes = self.total_bytes()
            need_rows = (
                max(0, n_rows - max_rows) if max_rows is not None else 0
            )
            need_bytes = (
                max(0, n_bytes - max_bytes) if max_bytes is not None else 0
            )
            if need_rows or need_bytes:
                exempt = frozenset(protect)
                for row in policy.order(list(self._eviction_rows())):
                    if len(victims) >= need_rows and freed >= need_bytes:
                        break
                    if row["key"] in exempt:
                        continue
                    victims.append(row["key"])
                    freed += row["bytes"]
                self.delete(victims)
                self._add_counter(f"evicted:{policy.name}", len(victims))
            if sp is not None:
                sp.attrs["evicted"] = len(victims)
        if victims:
            inc("store.evictions", len(victims))
        return {
            "policy": policy.name,
            "evicted": len(victims),
            "freed_bytes": freed,
            "rows": n_rows - len(victims),
            "bytes": n_bytes - freed,
            "max_rows": max_rows,
            "max_bytes": max_bytes,
        }

    @abstractmethod
    def total_bytes(self) -> int:
        """Total serialised payload bytes across all live rows (an
        aggregate query — never deserialises payloads)."""

    @abstractmethod
    def _eviction_rows(self) -> Iterator[dict]:
        """Row metadata for the eviction policies, in key order:
        ``{key, kind, created_at, hits, last_hit_at, rrpv, bytes}``."""

    def eviction_stats(self) -> dict:
        """Lifetime eviction accounting: per-policy victim counts."""
        by_policy = {
            name.split(":", 1)[1]: int(value)
            for name, value in self._counters().items()
            if name.startswith("evicted:")
        }
        return {
            "evicted": dict(sorted(by_policy.items())),
            "total": sum(by_policy.values()),
        }

    # -- derived conveniences ------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._fetch_text(key) is not None

    def keys(self) -> list[str]:
        return [row["key"] for row in self.rows(with_payload=False)]

    def __len__(self) -> int:
        return len(self.keys())

    def _count_aggregates(self) -> tuple[int, dict, dict, int]:
        """``(total, by_kind, by_schema, stale)`` entry counts.

        The generic implementation walks row metadata; SQLite overrides
        it with ``COUNT(*)``/GROUP-BY aggregates so cap checks and
        ``repro store stats`` stay cheap on large stores.
        """
        by_kind: dict[str, int] = {}
        by_schema: dict[str, int] = {}
        stale = 0
        total = 0
        for row in self.rows(with_payload=False):
            total += 1
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0) + 1
            s = str(row["schema"])
            by_schema[s] = by_schema.get(s, 0) + 1
            if row["schema"] != PAYLOAD_SCHEMA_VERSION:
                stale += 1
        return total, by_kind, by_schema, stale

    def stats(self) -> dict:
        """Entry counts by kind and schema version, plus staleness,
        payload bytes, access and eviction accounting."""
        total, by_kind, by_schema, stale = self._count_aggregates()
        return {
            "location": self.location,
            "entries": total,
            "bytes": self.total_bytes(),
            "by_kind": by_kind,
            "by_schema": by_schema,
            "stale": stale,
            "quarantined": len(self.quarantined()),
            "current_schema": PAYLOAD_SCHEMA_VERSION,
            "access": self.access_stats(),
            "eviction": self.eviction_stats(),
        }

    def gc(self, kind: str | None = None, drop_all: bool = False) -> int:
        """Purge entries; returns how many were removed.

        Default: entries whose payload schema version is not current
        (left behind by older/newer code).  ``kind`` restricts the purge
        to that kind *and* removes current-schema entries of it too
        (explicitly invalidating a class of results); ``drop_all``
        empties the store — quarantined rows included, so a full purge
        really reclaims every byte (the count covers them too).
        """
        doomed = [
            row["key"]
            for row in self.rows(with_payload=False)
            if drop_all
            or (kind is not None and row["kind"] == kind)
            or (kind is None and row["schema"] != PAYLOAD_SCHEMA_VERSION)
        ]
        removed = self.delete(doomed)
        if drop_all:
            removed += self._purge_quarantine()
        return removed

    def export(self) -> dict:
        """A deterministic JSON snapshot of the whole store.

        Write timestamps are excluded so two stores holding the same
        results export byte-identically regardless of fill order (e.g.
        one filled serially vs. one merged from shards).  A corrupt row
        aborts the export with a typed :class:`StoreCorruption` —
        quarantine it first (``repro store verify --quarantine``) to
        snapshot the surviving rows.
        """
        return {
            "meta": {
                "schema_version": PAYLOAD_SCHEMA_VERSION,
                "repro_version": repro_version(),
                "entries": len(self),
            },
            "entries": {
                row["key"]: {
                    "kind": row["kind"],
                    "schema": row["schema"],
                    "version": row["version"],
                    "payload": row["payload"],
                }
                for row in self.rows()
            },
        }


class MemoryStore(ResultStore):
    """An in-process store (payloads are deep-copied via JSON on both
    ends, so callers cannot mutate stored state by aliasing)."""

    def __init__(
        self,
        faults: FaultPlan | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._rows: dict[str, dict] = {}
        self._quarantine: dict[str, dict] = {}
        self._faults = faults
        self._clock = time.time if clock is None else clock
        self._access: dict[str, int] = {"hits": 0, "misses": 0}
        self.location = ":memory:"
        self.session_quarantined = []

    def _put(self, key: str, payload: dict, kind: str) -> None:
        text = json.dumps(payload, sort_keys=True)
        checksum = payload_checksum(text)
        rrpv = self._insert_rrpv(key)
        if self._faults is not None and self._faults.corrupt_put(key):
            text = text[: max(1, len(text) // 2)]  # torn write
        self._rows[key] = {
            "kind": kind,
            "schema": int(payload.get("schema", PAYLOAD_SCHEMA_VERSION)),
            "version": repro_version(),
            "created_at": self._clock(),
            "payload": text,
            "checksum": checksum,
            "hits": 0,
            "last_hit_at": None,
            "rrpv": rrpv,
        }

    def _record_hit(self, key: str) -> None:
        row = self._rows.get(key)
        if row is not None:
            row["hits"] += 1
            row["last_hit_at"] = self._clock()
            row["rrpv"] = 0
        self._access["hits"] += 1

    def _record_miss(self) -> None:
        self._access["misses"] += 1

    def access_stats(self) -> dict:
        last = [
            row["last_hit_at"]
            for row in self._rows.values()
            if row["last_hit_at"] is not None
        ]
        return {
            "hits": self._access["hits"],
            "misses": self._access["misses"],
            "rows_never_hit": sum(
                1 for row in self._rows.values() if row["hits"] == 0
            ),
            "last_hit_at": max(last) if last else None,
        }

    def _get_counter(self, name: str, default: int = 0) -> int:
        return int(self._access.get(name, default))

    def _set_counter(self, name: str, value: int) -> None:
        self._access[name] = int(value)

    def _counters(self) -> dict:
        return dict(self._access)

    def total_bytes(self) -> int:
        return sum(len(row["payload"]) for row in self._rows.values())

    def _eviction_rows(self) -> Iterator[dict]:
        for key in sorted(self._rows):
            row = self._rows[key]
            yield {
                "key": key,
                "kind": row["kind"],
                "created_at": row["created_at"],
                "hits": row["hits"],
                "last_hit_at": row["last_hit_at"],
                "rrpv": row["rrpv"],
                "bytes": len(row["payload"]),
            }

    def _fetch_text(self, key: str) -> tuple[str, str | None] | None:
        row = self._rows.get(key)
        if row is None:
            return None
        return row["payload"], row["checksum"]

    def _texts(self) -> Iterator[tuple[str, str, str | None]]:
        for key in sorted(self._rows):
            row = self._rows[key]
            yield key, row["payload"], row["checksum"]

    def quarantine(self, key: str, reason: str) -> bool:
        row = self._rows.pop(key, None)
        if row is None:
            return False
        self._quarantine[key] = {**row, "reason": reason}
        self.session_quarantined.append(key)
        return True

    def quarantined(self) -> list[dict]:
        return [
            {"key": key, "kind": row["kind"], "reason": row["reason"]}
            for key, row in sorted(self._quarantine.items())
        ]

    def _purge_quarantine(self) -> int:
        n = len(self._quarantine)
        self._quarantine.clear()
        return n

    def delete(self, keys: Iterable[str]) -> int:
        n = 0
        for key in list(keys):
            if self._rows.pop(key, None) is not None:
                n += 1
        return n

    def rows(self, with_payload: bool = True) -> Iterator[dict]:
        for key in sorted(self._rows):
            row = self._rows[key]
            yield {
                "key": key,
                "kind": row["kind"],
                "schema": row["schema"],
                "version": row["version"],
                "payload": (
                    _parse_verified(key, row["payload"], row["checksum"])
                    if with_payload else None
                ),
            }

    def __len__(self) -> int:
        return len(self._rows)


class SQLiteStore(ResultStore):
    """One SQLite database file holding all results.

    WAL journalling plus a generous busy timeout let independent shard
    invocations write into the same file; each ``put`` commits, so a
    killed sweep keeps everything stored up to the last completed batch.
    Multi-row operations (``delete``, gc, quarantine moves) run inside
    explicit transactions, so an interruption can never leave them half
    applied.  Stores created before checksums existed are migrated in
    place (the new columns/table are added; old rows verify as
    ``unchecksummed``).
    """

    def __init__(
        self,
        path: "str | Path",
        faults: FaultPlan | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.path = Path(path)
        self.location = str(self.path)
        self._faults = faults
        self._clock = time.time if clock is None else clock
        self.session_quarantined = []
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            with self._conn:
                self._conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS results (
                        key TEXT PRIMARY KEY,
                        kind TEXT NOT NULL,
                        schema INTEGER NOT NULL,
                        version TEXT NOT NULL,
                        created_at REAL NOT NULL,
                        payload TEXT NOT NULL,
                        checksum TEXT,
                        hits INTEGER NOT NULL DEFAULT 0,
                        last_hit_at REAL,
                        rrpv INTEGER NOT NULL DEFAULT 0
                    )
                    """
                )
                cols = {
                    row[1] for row in self._conn.execute(
                        "PRAGMA table_info(results)"
                    )
                }
                if "checksum" not in cols:
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN checksum TEXT"
                    )
                # Pre-observability stores gain the read-accounting
                # columns in place; legacy rows start at zero hits.
                if "hits" not in cols:
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN "
                        "hits INTEGER NOT NULL DEFAULT 0"
                    )
                if "last_hit_at" not in cols:
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN last_hit_at REAL"
                    )
                # Pre-eviction stores gain the re-reference prediction
                # column; legacy rows read as MRU (never-evict-first).
                if "rrpv" not in cols:
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN "
                        "rrpv INTEGER NOT NULL DEFAULT 0"
                    )
                self._conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS access_stats (
                        name TEXT PRIMARY KEY,
                        value INTEGER NOT NULL
                    )
                    """
                )
                self._conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS quarantine (
                        key TEXT PRIMARY KEY,
                        kind TEXT NOT NULL,
                        schema INTEGER NOT NULL,
                        version TEXT NOT NULL,
                        created_at REAL NOT NULL,
                        payload TEXT NOT NULL,
                        checksum TEXT,
                        reason TEXT NOT NULL,
                        quarantined_at REAL NOT NULL
                    )
                    """
                )
        except BaseException:
            # Never leak a half-initialised connection (e.g. the path
            # exists but is not a database).
            self._conn.close()
            self._conn = None
            raise

    def _db(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError(f"store {self.location} is closed")
        return self._conn

    def _put(self, key: str, payload: dict, kind: str) -> None:
        text = json.dumps(payload, sort_keys=True)
        checksum = payload_checksum(text)
        # Resolve the insertion prediction before the write transaction:
        # bimodal policies bump their counter through _set_counter,
        # which commits on its own.
        rrpv = self._insert_rrpv(key)
        if self._faults is not None and self._faults.corrupt_put(key):
            text = text[: max(1, len(text) // 2)]  # torn write
        with self._db() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, kind, schema, version, created_at, payload, "
                "checksum, rrpv) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    kind,
                    int(payload.get("schema", PAYLOAD_SCHEMA_VERSION)),
                    repro_version(),
                    self._clock(),
                    text,
                    checksum,
                    rrpv,
                ),
            )

    def _fetch_text(self, key: str) -> tuple[str, str | None] | None:
        cur = self._db().execute(
            "SELECT payload, checksum FROM results WHERE key = ?", (key,)
        )
        row = cur.fetchone()
        return None if row is None else (row[0], row[1])

    def _bump_access(self, conn, name: str) -> None:
        conn.execute(
            "INSERT INTO access_stats (name, value) VALUES (?, 1) "
            "ON CONFLICT(name) DO UPDATE SET value = value + 1",
            (name,),
        )

    def _record_hit(self, key: str) -> None:
        with self._db() as conn:
            conn.execute(
                "UPDATE results SET hits = hits + 1, last_hit_at = ?, "
                "rrpv = 0 WHERE key = ?",
                (self._clock(), key),
            )
            self._bump_access(conn, "hits")

    def _record_miss(self) -> None:
        with self._db() as conn:
            self._bump_access(conn, "misses")

    def access_stats(self) -> dict:
        conn = self._db()
        agg = dict(conn.execute("SELECT name, value FROM access_stats"))
        never = conn.execute(
            "SELECT COUNT(*) FROM results WHERE hits = 0"
        ).fetchone()[0]
        last = conn.execute(
            "SELECT MAX(last_hit_at) FROM results"
        ).fetchone()[0]
        return {
            "hits": int(agg.get("hits", 0)),
            "misses": int(agg.get("misses", 0)),
            "rows_never_hit": int(never),
            "last_hit_at": last,
        }

    def _get_counter(self, name: str, default: int = 0) -> int:
        row = self._db().execute(
            "SELECT value FROM access_stats WHERE name = ?", (name,)
        ).fetchone()
        return default if row is None else int(row[0])

    def _set_counter(self, name: str, value: int) -> None:
        with self._db() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO access_stats (name, value) "
                "VALUES (?, ?)",
                (name, int(value)),
            )

    def _counters(self) -> dict:
        return dict(
            self._db().execute("SELECT name, value FROM access_stats")
        )

    def total_bytes(self) -> int:
        total = self._db().execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM results"
        ).fetchone()[0]
        return int(total)

    def _eviction_rows(self) -> Iterator[dict]:
        cur = self._db().execute(
            "SELECT key, kind, created_at, hits, last_hit_at, rrpv, "
            "LENGTH(payload) FROM results ORDER BY key"
        )
        for key, kind, created, hits, last, rrpv, nbytes in cur:
            yield {
                "key": key,
                "kind": kind,
                "created_at": created,
                "hits": hits,
                "last_hit_at": last,
                "rrpv": rrpv,
                "bytes": nbytes,
            }

    def _texts(self) -> Iterator[tuple[str, str, str | None]]:
        cur = self._db().execute(
            "SELECT key, payload, checksum FROM results ORDER BY key"
        )
        yield from cur

    def quarantine(self, key: str, reason: str) -> bool:
        with self._db() as conn:
            cur = conn.execute(
                "INSERT OR REPLACE INTO quarantine "
                "SELECT key, kind, schema, version, created_at, payload, "
                "checksum, ?, ? FROM results WHERE key = ?",
                (reason, self._clock(), key),
            )
            moved = cur.rowcount > 0
            conn.execute("DELETE FROM results WHERE key = ?", (key,))
        if moved:
            self.session_quarantined.append(key)
        return moved

    def quarantined(self) -> list[dict]:
        cur = self._db().execute(
            "SELECT key, kind, reason FROM quarantine ORDER BY key"
        )
        return [
            {"key": key, "kind": kind, "reason": reason}
            for key, kind, reason in cur
        ]

    def _purge_quarantine(self) -> int:
        with self._db() as conn:
            cur = conn.execute("DELETE FROM quarantine")
            return cur.rowcount

    def delete(self, keys: Iterable[str]) -> int:
        keys = list(keys)
        n = 0
        with self._db() as conn:
            for key in keys:
                cur = conn.execute(
                    "DELETE FROM results WHERE key = ?", (key,)
                )
                n += cur.rowcount
        return n

    def rows(self, with_payload: bool = True) -> Iterator[dict]:
        payload_cols = "payload, checksum" if with_payload else "NULL, NULL"
        cur = self._db().execute(
            f"SELECT key, kind, schema, version, {payload_cols} "
            "FROM results ORDER BY key"
        )
        for key, kind, schema, version, payload, checksum in cur:
            yield {
                "key": key,
                "kind": kind,
                "schema": schema,
                "version": version,
                "payload": (
                    _parse_verified(key, payload, checksum)
                    if with_payload else None
                ),
            }

    def _count_aggregates(self) -> tuple[int, dict, dict, int]:
        conn = self._db()
        total = int(
            conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )
        by_kind = {
            kind: int(n)
            for kind, n in conn.execute(
                "SELECT kind, COUNT(*) FROM results GROUP BY kind"
            )
        }
        by_schema = {
            str(schema): int(n)
            for schema, n in conn.execute(
                "SELECT schema, COUNT(*) FROM results GROUP BY schema"
            )
        }
        stale = int(
            conn.execute(
                "SELECT COUNT(*) FROM results WHERE schema != ?",
                (PAYLOAD_SCHEMA_VERSION,),
            ).fetchone()[0]
        )
        return total, by_kind, by_schema, stale

    def __len__(self) -> int:
        cur = self._db().execute("SELECT COUNT(*) FROM results")
        return int(cur.fetchone()[0])

    def __contains__(self, key: str) -> bool:
        cur = self._db().execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        )
        return cur.fetchone() is not None

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close-time races
                pass


def open_store(
    spec: "str | Path | ResultStore | None",
    faults: FaultPlan | None = None,
    clock: Callable[[], float] | None = None,
) -> ResultStore:
    """Coerce a CLI/API store argument into a :class:`ResultStore`.

    ``None`` and ``":memory:"`` build a fresh :class:`MemoryStore`;
    an existing store instance passes through (``faults``/``clock`` are
    ignored — the instance's own configuration stands); anything else
    is a SQLite file path (created on first use).
    """
    if isinstance(spec, ResultStore):
        return spec
    if spec is None or spec == ":memory:":
        return MemoryStore(faults=faults, clock=clock)
    return SQLiteStore(spec, faults=faults, clock=clock)
