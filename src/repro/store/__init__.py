"""Content-addressed result store, resumable sweeps and batch service.

The experimental campaign is a huge cross-product of {application,
platform, CCR, solver spec} cells; this package makes it *incremental*:

* :mod:`repro.store.fingerprint` — canonical, process-stable sha256
  fingerprints for SPG instances, platform specs, solver specs with
  options, and seeds (sorted-key JSON, never Python ``hash()``);
* :mod:`repro.store.serialize` — lossless JSON payload round-trips for
  solver results and whole sweep cells;
* :mod:`repro.store.backend` — the :class:`ResultStore` interface with
  SQLite and in-memory backends (``repro store stats/gc/export``),
  sha256 payload checksums verified on every read, and quarantine for
  corrupt rows (``repro store verify [--quarantine]``; quarantined
  keys read as misses, so resumed sweeps recompute them);
* :mod:`repro.store.eviction` — pluggable cache-replacement policies
  (``lru``/``fifo``/``rrip``/``brrip``/``drrip`` with PSEL
  set-dueling) behind row-count/payload-byte caps: ``repro store
  evict`` and put-path enforcement via
  :meth:`ResultStore.configure_eviction`; evicted keys read as misses,
  so bounded sweeps/services stay byte-identical to unbounded runs;
* :mod:`repro.store.service` — the batch mapping service behind
  ``repro serve --batch`` (hit -> stored result, miss ->
  compute-through-the-parallel-engine-and-store).

The scenario sweep engine plugs in through
``run_scenario_sweep(store=..., resume=True, shard="i/N")``: completed
cells are skipped, independent invocations deterministically partition
the cell grid into one shared store, and a final resumed run emits a
consolidated report bit-identical to a cold single-process sweep.
"""

from repro.store.backend import (
    LogicalClock,
    MemoryStore,
    ResultStore,
    SQLiteStore,
    open_store,
    payload_checksum,
)
from repro.store.eviction import (
    EVICTION_POLICIES,
    EvictionConfig,
    EvictionPolicy,
    eviction_policy_names,
    get_eviction_policy,
    register_eviction_policy,
)
from repro.store.fingerprint import (
    canonical_json,
    cell_fingerprint,
    fingerprint,
    platform_payload,
    request_fingerprint,
    solver_payload,
    spg_payload,
)
from repro.store.serialize import (
    PAYLOAD_SCHEMA_VERSION,
    choice_from_payload,
    choice_to_payload,
    heuristic_result_from_payload,
    mapping_from_payload,
    mapping_to_payload,
    result_to_payload,
    solver_result_from_payload,
)
from repro.store.service import (
    BatchRequest,
    load_requests,
    serve_batch,
    serve_summary,
)

__all__ = [
    "ResultStore",
    "MemoryStore",
    "SQLiteStore",
    "open_store",
    "payload_checksum",
    "LogicalClock",
    "EvictionPolicy",
    "EvictionConfig",
    "EVICTION_POLICIES",
    "register_eviction_policy",
    "get_eviction_policy",
    "eviction_policy_names",
    "fingerprint",
    "canonical_json",
    "spg_payload",
    "platform_payload",
    "solver_payload",
    "cell_fingerprint",
    "request_fingerprint",
    "PAYLOAD_SCHEMA_VERSION",
    "mapping_to_payload",
    "mapping_from_payload",
    "result_to_payload",
    "solver_result_from_payload",
    "heuristic_result_from_payload",
    "choice_to_payload",
    "choice_from_payload",
    "BatchRequest",
    "load_requests",
    "serve_batch",
    "serve_summary",
]
