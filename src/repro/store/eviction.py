"""Pluggable cache-replacement policies for the result store.

The north star needs a store that stays *bounded* under sustained
traffic; ``repro store gc`` only drops stale-schema rows, so without a
replacement policy the store grows forever.  This module supplies the
missing half, built on the PR-7 accounting (per-row ``hits``/
``last_hit_at``, aggregate hit/miss counters): a string-keyed
:class:`EvictionPolicy` registry — mirroring the topology and solver
registries — whose policies rank rows for eviction once a store crosses
its row-count or payload-byte cap.

Registered policies
-------------------

``lru``
    Evict the least recently *used* row first: order by ``last_hit_at``,
    falling back to ``created_at`` for rows that were filed but never
    read back.
``fifo``
    Evict the oldest row first (insertion order; access-oblivious).
``rrip``
    Static Re-Reference Interval Prediction (SRRIP, Jaleel et al. /
    ChampSim idiom): every row carries a small saturating re-reference
    prediction value (RRPV, 2 bits).  Insertion predicts a *long*
    re-reference interval (``RRPV_MAX - 1``); a hit promotes the row to
    MRU (``0``).  Victims are the rows with the highest RRPV — aging is
    virtual: incrementing every RRPV until one saturates never changes
    the relative order, so ranking by descending RRPV (LRU-tiebroken)
    selects exactly the rows the classic scan-and-age loop would.
``brrip``
    Bimodal RRIP: like ``rrip`` but insertion predicts a *distant*
    re-reference (``RRPV_MAX``) except every ``BIP_MAX``-th insertion
    (a persistent deterministic counter, not a coin flip), which gets
    the long prediction.  Scanning workloads flush through without
    displacing the rows that do re-reference.
``drrip``
    Dynamic RRIP: *set-dueling* between the two static candidates.  A
    deterministic hash of each key assigns it to one of
    :data:`DUEL_REGIONS` regions; one sampled region is an ``rrip``
    leader, one a ``brrip`` leader, the rest follow a persistent PSEL
    counter scored against the PR-7 hit accounting — a hit on an
    ``rrip``-leader key bumps PSEL up, a hit on a ``brrip``-leader key
    bumps it down, and followers insert with whichever candidate is
    winning.  The duelled policy tracks the better static policy on any
    workload mix without an operator having to pick one.

Row-count and payload-byte caps are orthogonal to the policy choice:
:meth:`ResultStore.evict(policy=..., max_rows=..., max_bytes=...)
<repro.store.backend.ResultStore.evict>` evicts in policy order until
both caps hold, and :meth:`configure_eviction
<repro.store.backend.ResultStore.configure_eviction>` enforces them on
every ``put``.  Policy state (RRPVs, PSEL, the bimodal counter) lives in
the store's accounting side-band — persistent for SQLite stores, never
part of deterministic exports — so an eviction pass in one process and
a resume in another see the same state.

Everything here is deterministic: ties break on the key, region
assignment hashes the key (sha256-derived fingerprints are already
uniform), and the bimodal insertion uses a modular counter.  Evicted
keys simply read as misses, so sweeps and the batch service recompute
and re-store them — consolidated reports stay byte-identical to
unbounded runs (the cache-correctness contract).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.backend import ResultStore

__all__ = [
    "EvictionPolicy",
    "EvictionConfig",
    "EVICTION_POLICIES",
    "register_eviction_policy",
    "get_eviction_policy",
    "eviction_policy_names",
    "RRPV_MAX",
    "RRPV_LONG",
    "BIP_MAX",
    "PSEL_MAX",
    "PSEL_INIT",
    "DUEL_REGIONS",
]

#: 2-bit saturating re-reference prediction values (ChampSim idiom).
RRPV_MAX = 3
#: "Long re-reference interval" insertion prediction (SRRIP).
RRPV_LONG = RRPV_MAX - 1
#: Every BIP_MAX-th bimodal insertion gets the long prediction.
BIP_MAX = 32
#: 10-bit policy-selection counter for set-dueling.
PSEL_MAX = (1 << 10) - 1
#: PSEL starts neutral, mid-scale.
PSEL_INIT = PSEL_MAX // 2
#: Key-hash regions; region 0 leads for rrip, region 1 for brrip.
DUEL_REGIONS = 64


def _recency(row: dict) -> float:
    """A row's last-touch time: last hit, else creation."""
    last = row.get("last_hit_at")
    return row["created_at"] if last is None else last


class EvictionPolicy(ABC):
    """Ranks store rows for eviction; optionally maintains per-row and
    aggregate prediction state through the store's accounting side-band.

    Policies are stateless objects — everything they need to remember
    across calls (and processes) goes through the store's counter
    primitives, so the same policy instance can serve many stores.
    """

    #: Registry key of the concrete policy (class attribute).
    name: str = "abstract"

    @abstractmethod
    def order(self, rows: list[dict]) -> list[dict]:
        """``rows`` (metadata dicts: ``key``, ``kind``, ``created_at``,
        ``hits``, ``last_hit_at``, ``rrpv``, ``bytes``) in eviction
        order — first element is the first victim.  Must be a total,
        deterministic order (tie-break on ``key``)."""

    def insertion_rrpv(self, store: "ResultStore", key: str) -> int:
        """The re-reference prediction stamped on a fresh row (RRIP
        family; recency policies ignore it and return MRU)."""
        return 0

    def on_hit(self, store: "ResultStore", key: str) -> None:
        """Accounting hook run on every store hit (e.g. PSEL scoring).

        The store itself already promotes the row to MRU (``rrpv = 0``)
        and bumps the hit counters before calling this.
        """


@dataclass(frozen=True)
class EvictionSpec:
    """Registry record: the policy name, a summary, and its builder."""

    name: str
    summary: str
    builder: Callable[[], EvictionPolicy]


EVICTION_POLICIES: dict[str, EvictionSpec] = {}


def register_eviction_policy(name: str, summary: str):
    """Decorator adding a policy class to :data:`EVICTION_POLICIES`."""

    def wrap(cls):
        if name in EVICTION_POLICIES:
            raise ValueError(f"eviction policy {name!r} already registered")
        cls.name = name
        EVICTION_POLICIES[name] = EvictionSpec(name, summary, cls)
        return cls

    return wrap


def eviction_policy_names() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(EVICTION_POLICIES)


def get_eviction_policy(name: "str | EvictionPolicy") -> EvictionPolicy:
    """Build the registered policy ``name`` (instances pass through)."""
    if isinstance(name, EvictionPolicy):
        return name
    spec = EVICTION_POLICIES.get(name)
    if spec is None:
        raise KeyError(
            f"unknown eviction policy {name!r}; registered: "
            f"{', '.join(eviction_policy_names())}"
        )
    return spec.builder()


@dataclass(frozen=True)
class EvictionConfig:
    """A bounded-store configuration: the policy plus its caps.

    ``max_rows``/``max_bytes`` are *caps*, not targets: the store
    evicts (in policy order) only while it exceeds one of them.  At
    least one cap must be set.
    """

    policy: str = "lru"
    max_rows: int | None = None
    max_bytes: int | None = None

    def __post_init__(self):
        if self.max_rows is None and self.max_bytes is None:
            raise ValueError(
                "an eviction config needs max_rows and/or max_bytes"
            )
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("max_rows must be non-negative")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        get_eviction_policy(self.policy)  # fail fast on unknown names

    @staticmethod
    def from_spec(
        spec: "EvictionConfig | dict | None",
    ) -> "EvictionConfig | None":
        """Coerce an API/CLI eviction argument (``None`` passes through,
        dicts supply :class:`EvictionConfig` fields)."""
        if spec is None or isinstance(spec, EvictionConfig):
            return spec
        return EvictionConfig(**spec)


@register_eviction_policy(
    "lru", "least recently used (last_hit_at, falling back to created_at)"
)
class LRUPolicy(EvictionPolicy):
    def order(self, rows: list[dict]) -> list[dict]:
        return sorted(rows, key=lambda r: (_recency(r), r["key"]))


@register_eviction_policy("fifo", "oldest insertion first (created_at)")
class FIFOPolicy(EvictionPolicy):
    def order(self, rows: list[dict]) -> list[dict]:
        return sorted(rows, key=lambda r: (r["created_at"], r["key"]))


@register_eviction_policy(
    "rrip", "static RRIP: long-interval insertion, hit promotes to MRU"
)
class SRRIPPolicy(EvictionPolicy):
    def order(self, rows: list[dict]) -> list[dict]:
        # Highest RRPV first; virtual aging preserves relative order, so
        # within an RRPV class the LRU row goes first (key tie-break).
        return sorted(
            rows, key=lambda r: (-r["rrpv"], _recency(r), r["key"])
        )

    def insertion_rrpv(self, store: "ResultStore", key: str) -> int:
        return RRPV_LONG


@register_eviction_policy(
    "brrip",
    "bimodal RRIP: distant-interval insertion, every 32nd long "
    "(deterministic counter)",
)
class BRRIPPolicy(SRRIPPolicy):
    def insertion_rrpv(self, store: "ResultStore", key: str) -> int:
        count = store._get_counter("bip_counter", 0)
        store._set_counter("bip_counter", (count + 1) % BIP_MAX)
        return RRPV_LONG if count == 0 else RRPV_MAX


def duel_region(key: str) -> int:
    """The set-dueling region of ``key`` (deterministic key hash).

    Store keys are sha256 hex fingerprints, so the leading nibbles are
    already uniform; non-hex keys (tests, ad-hoc payloads) fall back to
    a character-sum hash.  Python's randomised ``hash()`` is never used.
    """
    try:
        return int(key[:8], 16) % DUEL_REGIONS
    except ValueError:
        return sum(key.encode()) % DUEL_REGIONS


@register_eviction_policy(
    "drrip",
    "dynamic RRIP: PSEL set-dueling between rrip and brrip on sampled "
    "key regions",
)
class DRRIPPolicy(SRRIPPolicy):
    """DRRIP with PSEL set-dueling (ChampSim-style, hit-scored).

    Leader keys always insert with their candidate policy; a hit on a
    leader key is evidence its candidate retains useful rows, and moves
    the saturating PSEL counter toward that candidate.  Follower keys
    (the vast majority) insert with whichever candidate currently
    leads: PSEL at or above neutral follows ``rrip``, below follows
    ``brrip``.
    """

    def __init__(self) -> None:
        self._rrip = SRRIPPolicy()
        self._brrip = BRRIPPolicy()

    def insertion_rrpv(self, store: "ResultStore", key: str) -> int:
        region = duel_region(key)
        if region == 0:  # rrip leader
            return self._rrip.insertion_rrpv(store, key)
        if region == 1:  # brrip leader
            return self._brrip.insertion_rrpv(store, key)
        psel = store._get_counter("psel", PSEL_INIT)
        winner = self._rrip if psel >= PSEL_INIT else self._brrip
        return winner.insertion_rrpv(store, key)

    def on_hit(self, store: "ResultStore", key: str) -> None:
        region = duel_region(key)
        if region == 0:
            psel = store._get_counter("psel", PSEL_INIT)
            store._set_counter("psel", min(PSEL_MAX, psel + 1))
        elif region == 1:
            psel = store._get_counter("psel", PSEL_INIT)
            store._set_counter("psel", max(0, psel - 1))
