"""Lossless payload round-trips for solver results.

The store persists results as plain-JSON payloads, so everything a
result carries must survive ``object -> payload -> JSON text -> payload
-> object`` bit for bit.  That holds because

* finite floats round-trip exactly through Python's JSON encoder
  (shortest-repr formatting, exact parsing), and
* a :class:`~repro.core.mapping.Mapping` is fully determined by its
  allocation, speeds and paths once the SPG and platform are known —
  and the store key already pins those (see
  :mod:`repro.store.fingerprint`), so payloads do not repeat them and
  deserialisation takes the live ``spg``/``grid`` objects as context.

``stats`` dicts (wall-clock timings, portfolio member tables) are
stored verbatim: they round-trip losslessly, but two *computes* of the
same cell legitimately differ there, so the cache-correctness contract
(tests/test_store_roundtrip.py) covers mapping, energy and failure —
everything that feeds reports — and never timings.
"""

from __future__ import annotations

from repro.core.evaluate import EnergyBreakdown
from repro.core.mapping import Mapping
from repro.experiments.period import PeriodChoice
from repro.heuristics.base import HeuristicResult
from repro.platform.topology import Topology
from repro.solvers.base import SolverResult
from repro.spg.graph import SPG

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "energy_to_payload",
    "energy_from_payload",
    "mapping_to_payload",
    "mapping_from_payload",
    "result_to_payload",
    "solver_result_from_payload",
    "heuristic_result_from_payload",
    "choice_to_payload",
    "choice_from_payload",
]

#: Version of the stored-value format; bumped on any payload layout
#: change so ``repro store gc`` can purge stale entries.
PAYLOAD_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Energy
# ----------------------------------------------------------------------
def energy_to_payload(b: EnergyBreakdown) -> dict:
    return {
        "comp_leak": b.comp_leak,
        "comp_dyn": b.comp_dyn,
        "comm_leak": b.comm_leak,
        "comm_dyn": b.comm_dyn,
    }


def energy_from_payload(payload: dict) -> EnergyBreakdown:
    return EnergyBreakdown(
        comp_leak=payload["comp_leak"],
        comp_dyn=payload["comp_dyn"],
        comm_leak=payload["comm_leak"],
        comm_dyn=payload["comm_dyn"],
    )


# ----------------------------------------------------------------------
# Mapping
# ----------------------------------------------------------------------
def mapping_to_payload(m: Mapping) -> dict:
    """Allocation, speeds and every routed path, in sorted order."""
    return {
        "alloc": [
            [i, list(m.alloc[i])] for i in sorted(m.alloc)
        ],
        "speeds": [
            [list(c), s] for c, s in sorted(m.speeds.items())
        ],
        "paths": [
            [list(e), [list(c) for c in path]]
            for e, path in sorted(m.paths.items())
        ],
    }


def mapping_from_payload(payload: dict, spg: SPG, grid: Topology) -> Mapping:
    """Rebuild a mapping against the live ``spg``/``grid`` context.

    Paths are stored exhaustively, so ``Mapping.__post_init__`` has
    nothing to re-route and the rebuilt object carries exactly the
    routes the original solver chose (which matters for 1D heuristics
    whose line paths differ from the topology's default routing).
    """
    return Mapping(
        spg,
        grid,
        alloc={int(i): (int(u), int(v)) for i, (u, v) in payload["alloc"]},
        speeds={
            (int(u), int(v)): float(s) for (u, v), s in payload["speeds"]
        },
        paths={
            (int(i), int(j)): [(int(u), int(v)) for u, v in path]
            for (i, j), path in payload["paths"]
        },
    )


# ----------------------------------------------------------------------
# Solver results
# ----------------------------------------------------------------------
def result_to_payload(res: "SolverResult | HeuristicResult") -> dict:
    """One payload shape for both result flavours.

    ``SolverResult`` names its strategy ``solver``; the legacy-stable
    ``HeuristicResult`` calls it ``name`` — the payload always uses
    ``"solver"``.
    """
    name = res.solver if isinstance(res, SolverResult) else res.name
    out: dict = {
        "schema": PAYLOAD_SCHEMA_VERSION,
        "solver": name,
        "ok": res.ok,
        "failure": res.failure,
        "stats": res.stats,
    }
    if res.ok:
        out["mapping"] = mapping_to_payload(res.mapping)
        out["energy"] = energy_to_payload(res.energy)
    else:
        out["mapping"] = None
        out["energy"] = None
    return out


def _result_parts(payload: dict, spg: SPG, grid: Topology):
    mapping = energy = None
    if payload["mapping"] is not None:
        mapping = mapping_from_payload(payload["mapping"], spg, grid)
        energy = energy_from_payload(payload["energy"])
    return mapping, energy


def solver_result_from_payload(
    payload: dict, spg: SPG, grid: Topology
) -> SolverResult:
    mapping, energy = _result_parts(payload, spg, grid)
    return SolverResult(
        solver=payload["solver"],
        mapping=mapping,
        energy=energy,
        failure=payload["failure"],
        stats=payload["stats"],
    )


def heuristic_result_from_payload(
    payload: dict, spg: SPG, grid: Topology
) -> HeuristicResult:
    mapping, energy = _result_parts(payload, spg, grid)
    return HeuristicResult(
        name=payload["solver"],
        mapping=mapping,
        energy=energy,
        failure=payload["failure"],
        stats=payload["stats"],
    )


# ----------------------------------------------------------------------
# Sweep cells (full choose_period panels)
# ----------------------------------------------------------------------
def choice_to_payload(choice: PeriodChoice) -> dict:
    """One sweep cell: the chosen period plus every column's result."""
    return {
        "schema": PAYLOAD_SCHEMA_VERSION,
        "period": choice.period,
        "results": {
            name: result_to_payload(res)
            for name, res in choice.results.items()
        },
    }


def choice_from_payload(
    payload: dict, spg: SPG, grid: Topology, order=None
) -> PeriodChoice:
    """Rebuild a :class:`PeriodChoice`; ``order`` fixes the column order
    (fresh computes insert results in solver-column order, so resumed
    sweeps do too)."""
    results = payload["results"]
    names = list(order) if order is not None else list(results)
    return PeriodChoice(
        period=payload["period"],
        results={
            name: heuristic_result_from_payload(results[name], spg, grid)
            for name in names
        },
    )
