"""The batch mapping service: answer solver requests through the store.

``repro serve --batch requests.json`` reads a list of mapping requests
(application, platform, solver spec, seed, optional explicit period),
answers every request whose fingerprint is already in the store from the
stored result, fans the misses over the process-parallel experiment
engine, files the fresh results, and emits one deterministic JSON
response document.

Request documents are either a bare JSON list or ``{"requests": [...]}``;
each entry supports::

    {
      "solver":   "dpa2d1d+refine",      # any registry name or spec
      "app":      "FMRadio" | "random-20",
      "topology": "mesh",                # any registered topology
      "size":     "4x4",
      "ccr":      10.0,                  # null = the app's original CCR
      "period":   null,                  # null = Section-6.1.3 procedure
      "seed":     0,
      "options":  {},                    # producer options / refine kwargs
      "deadline_s": null                 # per-request wall-clock budget
    }

Responses are order-aligned with requests and identical for any
``jobs`` value; whether an answer came from the store is reported in a
per-response ``cached`` flag and the meta hit/miss counters, never in
the result fields themselves.

The service degrades per request rather than failing the batch: a
request whose worker crashes or blows its ``deadline_s`` (after the
:class:`~repro.resilience.RetryPolicy`'s retries) comes back as an
*error response* — ``ok: false`` with a structured ``error`` field —
while every other request is answered normally; errored requests are
never filed in the store, so a later batch retries them.  The
``deadline_s`` field never enters the request fingerprint: the same
mapping problem is the same cache entry whatever budget it ran under.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.problem import ProblemInstance
from repro.experiments.parallel import run_tasks
from repro.experiments.period import choose_period
from repro.obs.session import inc, trace_span
from repro.resilience import (
    ExecutionStats,
    RetryPolicy,
    TaskFailure,
    resolve_fault_plan,
)
from repro.solvers.options import solver_for_run
from repro.spg.graph import SPG
from repro.spg.random_gen import random_spg
from repro.store.backend import ResultStore, open_store
from repro.store.fingerprint import request_fingerprint
from repro.store.serialize import (
    PAYLOAD_SCHEMA_VERSION,
    result_to_payload,
    solver_result_from_payload,
)
from repro.platform.topology import Topology, get_topology
from repro.util.rng import as_rng
from repro.util.version import repro_version

__all__ = [
    "BatchRequest",
    "load_requests",
    "serve_batch",
    "serve_summary",
]


@dataclass(frozen=True)
class BatchRequest:
    """One mapping request (see the module docstring for the fields)."""

    solver: str = "greedy"
    app: str = "FMRadio"
    topology: str = "mesh"
    size: str = "4x4"
    ccr: float | None = None
    period: float | None = None
    seed: int = 0
    options: dict = field(default_factory=dict)
    deadline_s: float | None = None

    @staticmethod
    def from_payload(payload: dict) -> "BatchRequest":
        known = {
            "solver", "app", "topology", "size", "ccr", "period", "seed",
            "options", "deadline_s",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown request fields: {', '.join(sorted(unknown))}"
            )
        return BatchRequest(**payload)

    def to_payload(self) -> dict:
        return {
            "solver": self.solver,
            "app": self.app,
            "topology": self.topology,
            "size": self.size,
            "ccr": self.ccr,
            "period": self.period,
            "seed": self.seed,
            "options": self.options,
            "deadline_s": self.deadline_s,
        }

    def build_app(self) -> SPG:
        """Synthesise the application (deterministic in the request).

        ``ccr`` passes through untouched — ``None`` means the app's
        natural CCR, exactly as in the sweep's
        :meth:`~repro.experiments.scenarios.ScenarioSpec.build_app`.
        """
        if self.app.startswith("random-"):
            n = int(self.app.split("-", 1)[1])
            return random_spg(n, rng=self.seed, ccr=self.ccr)
        from repro.spg.streamit import streamit_workflow

        which: "int | str" = self.app
        if isinstance(which, str) and which.isdigit():
            which = int(which)
        return streamit_workflow(which, ccr=self.ccr, seed=self.seed)

    def build_platform(self) -> Topology:
        from repro.experiments.scenarios import parse_size

        return get_topology(self.topology, *parse_size(self.size))


def load_requests(source: "str | dict | list") -> list[BatchRequest]:
    """Parse a requests document (a path, or already-loaded JSON)."""
    if isinstance(source, str):
        with open(source) as fh:
            source = json.load(fh)
    if isinstance(source, dict):
        if "requests" not in source:
            raise ValueError(
                'requests document must be a list or {"requests": [...]}'
            )
        source = source["requests"]
    if not isinstance(source, list):
        raise ValueError("requests document must be a list or {requests: []}")
    return [BatchRequest.from_payload(dict(r)) for r in source]


def _solve_task(task):
    """Worker for one cache miss: derive the period if needed, solve."""
    spg, platform, spec, options, period, seed = task
    with trace_span("serve.request", solver=spec):
        if period is None:
            period = choose_period(spg, platform, rng=as_rng(seed)).period
        solver = solver_for_run(spec, options or None)
        res = solver.solve(
            ProblemInstance(spg, platform, period), rng=as_rng(seed)
        )
        return period, result_to_payload(res)


def serve_batch(
    requests: "list[BatchRequest]",
    store: "ResultStore | str | None" = None,
    jobs: int | None = 1,
    policy: "RetryPolicy | None" = None,
    faults=None,
    stats: "ExecutionStats | None" = None,
    eviction=None,
) -> dict:
    """Answer every request through ``store`` and return the response doc.

    Hits are answered from stored payloads; misses are computed over the
    parallel engine (``jobs`` workers, order-preserving — responses are
    identical for any value) and filed before answering.

    ``policy`` governs crash/hang recovery for the computed misses (CLI
    ``--retries`` / ``--deadline-s``); each request's own ``deadline_s``
    overrides the policy default.  A request that still fails becomes an
    error response (``ok: false`` with ``error: {reason, attempts}``)
    instead of aborting the batch; ``faults`` injects deterministic
    chaos exactly as in the sweep engine.

    ``eviction`` (an :class:`~repro.store.EvictionConfig` or its dict of
    fields) bounds the store with put-path cap enforcement; evicted keys
    read as misses and are recomputed, so response documents stay
    byte-identical to an unbounded service.
    """
    # Close only connections opened here; a live ResultStore passed in
    # stays under the caller's lifecycle.
    plan = resolve_fault_plan(faults)
    own_store = not isinstance(store, ResultStore)
    store = open_store(store, faults=plan)
    if eviction is not None:
        from repro.store.eviction import EvictionConfig

        store.configure_eviction(EvictionConfig.from_spec(eviction))
    try:
        return _serve_batch(store, requests, jobs, policy, plan, stats)
    finally:
        if own_store:
            store.close()


def _serve_batch(store: ResultStore, requests, jobs, policy, plan,
                 stats) -> dict:
    with trace_span("serve.batch", requests=len(requests)):
        return _serve_batch_inner(store, requests, jobs, policy, plan,
                                  stats)


def _serve_batch_inner(store, requests, jobs, policy, plan, stats) -> dict:
    keyed = []
    for req in requests:
        spg = req.build_app()
        platform = req.build_platform()
        key = request_fingerprint(
            spg, platform, req.solver, req.options or None, req.seed,
            req.period,
        )
        keyed.append((req, spg, platform, key))

    payloads: dict[int, dict] = {}
    misses: list[int] = []
    for idx, (req, spg, platform, key) in enumerate(keyed):
        stored = store.get(key)
        if stored is not None:
            payloads[idx] = stored
        else:
            misses.append(idx)
    tasks = [
        (
            keyed[i][1], keyed[i][2], keyed[i][0].solver,
            keyed[i][0].options, keyed[i][0].period, keyed[i][0].seed,
        )
        for i in misses
    ]
    errors: dict[int, TaskFailure] = {}
    outcomes = run_tasks(
        _solve_task, tasks, jobs=jobs, policy=policy,
        failures="record", faults=plan,
        tokens=[keyed[i][0].seed for i in misses],
        deadlines=[keyed[i][0].deadline_s for i in misses],
        stats=stats,
    )
    for idx, outcome in zip(misses, outcomes):
        if isinstance(outcome, TaskFailure):
            # Not filed: the failure is this run's, not the problem's —
            # a later batch (or a longer deadline) retries the request.
            inc("serve.errors")
            errors[idx] = outcome
            continue
        period, result = outcome
        payload = {
            "schema": PAYLOAD_SCHEMA_VERSION,
            "period": period,
            "result": result,
        }
        store.put(keyed[idx][3], payload, kind="solve")
        payloads[idx] = payload

    inc("serve.requests", len(requests))
    inc("serve.hits", len(requests) - len(misses))
    inc("serve.misses", len(misses))
    miss_set = set(misses)
    responses = []
    for idx, (req, spg, platform, key) in enumerate(keyed):
        entry = {
            "index": idx,
            "request": req.to_payload(),
            "key": key,
            "cached": idx not in miss_set,
            "period": None,
            "solver": req.solver,
            "ok": False,
            "failure": None,
            "energy": None,
            "total_energy": None,
            "active_cores": None,
            "error": None,
        }
        if idx in errors:
            tf = errors[idx]
            entry["failure"] = tf.describe()
            entry["error"] = {
                "reason": tf.reason,
                "attempts": tf.attempts,
                "message": tf.message,
            }
            responses.append(entry)
            continue
        payload = payloads[idx]
        res = solver_result_from_payload(payload["result"], spg, platform)
        entry["period"] = payload["period"]
        entry["solver"] = res.solver
        entry["ok"] = res.ok
        entry["failure"] = res.failure
        if res.ok:
            res.mapping.check_structure()
            entry["energy"] = {
                "comp_leak": res.energy.comp_leak,
                "comp_dyn": res.energy.comp_dyn,
                "comm_leak": res.energy.comm_leak,
                "comm_dyn": res.energy.comm_dyn,
            }
            entry["total_energy"] = res.energy.total
            entry["active_cores"] = len(res.mapping.active_cores())
        responses.append(entry)
    return {
        "meta": {
            "schema_version": PAYLOAD_SCHEMA_VERSION,
            "repro_version": repro_version(),
            "requests": len(requests),
            "hits": len(requests) - len(misses),
            "misses": len(misses),
            "errors": len(errors),
            "store": store.location,
        },
        "responses": responses,
    }


def serve_summary(report: dict) -> str:
    """A terse per-request summary for the CLI."""
    meta = report["meta"]
    errors = meta.get("errors", 0)
    err_note = f", {errors} errors" if errors else ""
    lines = [
        f"batch service: {meta['requests']} requests, "
        f"{meta['hits']} hits, {meta['misses']} misses{err_note} "
        f"(store: {meta['store']})"
    ]
    for r in report["responses"]:
        req = r["request"]
        what = (
            f"{req['solver']} on {req['app']} / {req['topology']} "
            f"{req['size']}"
        )
        src = "hit " if r["cached"] else "miss"
        if r["ok"]:
            lines.append(
                f"  [{r['index']}] {src} {what}: "
                f"{r['total_energy']:.4f} J/period, "
                f"{r['active_cores']} cores, T={r['period']:g}"
            )
        elif r.get("error"):
            lines.append(
                f"  [{r['index']}] {src} {what}: ERROR "
                f"({r['error']['reason']} after "
                f"{r['error']['attempts']} attempt(s))"
            )
        else:
            lines.append(
                f"  [{r['index']}] {src} {what}: FAILED ({r['failure']})"
            )
    return "\n".join(lines)
