"""Canonical, process-stable fingerprints for everything a solver run
depends on.

A result store is only sound if the key under which a result is filed
captures *every* input that influenced it — the SPG instance, the
platform spec, the solver spec with its options, and the seed — and
nothing else.  This module builds those keys:

* every object is first reduced to a **canonical payload**: plain JSON
  types only, ``dict`` keys all strings, tuples flattened to lists,
  numpy scalars unboxed;
* the payload is serialised with :func:`canonical_json` — sorted keys,
  no whitespace, ``repr``-exact floats (CPython's shortest-round-trip
  float formatting, stable across processes and platforms);
* the fingerprint is the sha256 hex digest of that string.

Python's builtin ``hash()`` is **never** used: it is salted per process
(``PYTHONHASHSEED``) and would make keys irreproducible, which is the
exact failure mode a content-addressed store must avoid.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.platform.speeds import PowerModel
from repro.platform.topology import Topology
from repro.spg.graph import SPG

__all__ = [
    "canonical_json",
    "fingerprint",
    "spg_payload",
    "model_payload",
    "platform_payload",
    "solver_payload",
    "cell_fingerprint",
    "request_fingerprint",
]


def _canon(obj):
    """Reduce ``obj`` to plain JSON types (raising on anything exotic)."""
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        obj = obj.item()
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise ValueError("non-finite floats cannot be fingerprinted")
        return obj
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"fingerprint payload keys must be strings, got {k!r}"
                )
            out[k] = _canon(v)
        return out
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def canonical_json(obj) -> str:
    """The canonical serialisation: sorted keys, compact, exact floats."""
    return json.dumps(
        _canon(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(obj) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Component payloads
# ----------------------------------------------------------------------
def spg_payload(spg: SPG) -> dict:
    """The full structural identity of an SPG instance.

    Weights, labels and the edge set (sorted endpoint pairs with their
    communication volumes) determine every evaluation result; derived
    caches are identity-irrelevant and excluded by construction.
    """
    return {
        "weights": list(spg.weights),
        "labels": [[x, y] for x, y in spg.labels],
        "edges": [
            [i, j, d] for (i, j), d in sorted(spg.edges.items())
        ],
    }


def model_payload(model: PowerModel) -> dict:
    """The power/DVFS model constants (``_sorted`` is derived, skipped)."""
    return {
        "speeds": list(model.speeds),
        "dyn_power": list(model.dyn_power),
        "comp_leak": model.comp_leak,
        "comm_leak": model.comm_leak,
        "e_bit": model.e_bit,
        "bandwidth": model.bandwidth,
    }


def platform_payload(topo: Topology) -> dict:
    """The constructor-equivalent identity of a platform instance.

    All registered fabrics are frozen dataclasses; their public fields
    (minus the comparison-excluded ``_cache`` and the ``model``, which
    gets its own payload) are exactly the construction parameters, so two
    topologies compare equal iff their payloads match.  ``type`` guards
    against two fabric classes sharing a registry ``name`` and field
    values (e.g. mesh vs torus of the same size).
    """
    out: dict = {"name": type(topo).name, "type": type(topo).__name__}
    if dataclasses.is_dataclass(topo):
        for f in dataclasses.fields(topo):
            if f.name.startswith("_") or f.name == "model":
                continue
            v = getattr(topo, f.name)
            if f.name == "speed_scales" and v is not None:
                v = sorted([[list(core), factor] for core, factor in v])
            out[f.name] = v
    else:  # non-dataclass third-party topology: best-effort identity
        out.update(
            p=topo.p, q=topo.q,
            speed_scales=(
                None if topo.speed_scales is None
                else sorted(
                    [[list(c), s] for c, s in topo.speed_scales]
                )
            ),
        )
    out["model"] = model_payload(topo.model)
    return out


def solver_payload(spec: str, options: dict | None = None) -> dict:
    """A solver column's identity: its spec string plus run options.

    The spec string is taken verbatim (modulo surrounding whitespace):
    it is both the registry lookup key and the column name results are
    filed under in reports, so ``"Greedy"`` and ``"greedy"`` are
    distinct columns and hash distinctly on purpose.
    """
    return {"spec": str(spec).strip(), "options": options or {}}


# ----------------------------------------------------------------------
# Composite request keys
# ----------------------------------------------------------------------
#: Bumped whenever the *meaning* of a key changes (e.g. a new input starts
#: influencing results); distinct from the payload schema version, which
#: tracks the stored value format.
KEY_SCHEMA_VERSION = 1


def cell_fingerprint(
    spg: SPG,
    platform: Topology,
    solvers,
    seed: int,
    options: dict | None = None,
) -> str:
    """The key of one sweep cell: a full ``choose_period`` panel run.

    ``solvers`` is the ordered tuple of solver columns and ``seed`` the
    pre-drawn heuristic seed — together with the instance and platform
    they determine the cell's :class:`PeriodChoice` bit for bit.
    """
    return fingerprint({
        "kind": "sweep-cell",
        "key_schema": KEY_SCHEMA_VERSION,
        "spg": spg_payload(spg),
        "platform": platform_payload(platform),
        "solvers": [
            solver_payload(s, (options or {}).get(s)) for s in solvers
        ],
        "seed": int(seed),
    })


def request_fingerprint(
    spg: SPG,
    platform: Topology,
    solver: str,
    options: dict | None,
    seed: int,
    period: float | None,
) -> str:
    """The key of one batch-service request (a single solver run).

    ``period=None`` means "derive the Section-6.1.3 period from the
    seed"; since that derivation is a deterministic function of the other
    key components, ``"auto"`` is a sound stand-in.
    """
    return fingerprint({
        "kind": "solve",
        "key_schema": KEY_SCHEMA_VERSION,
        "spg": spg_payload(spg),
        "platform": platform_payload(platform),
        "solver": solver_payload(solver, options),
        "seed": int(seed),
        "period": "auto" if period is None else float(period),
    })
