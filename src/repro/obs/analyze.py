"""Trace analytics: self-time attribution, critical path, trace diff.

PR 7's tracer answers "what happened"; this module answers the three
operator questions a 50k-span sweep recording actually poses:

* **Where did the time go?**  :func:`hotspots` attributes every span's
  duration to *self* time (duration minus the time spent inside child
  spans) and aggregates per kind — a span kind whose total is large but
  whose self time is small is just a container, not a cost centre.
* **What was the longest dependency chain?**  :func:`critical_path`
  walks the span tree from the slowest root, descending into the
  slowest child at every level — the chain an optimisation has to
  shorten before wall-clock time can move.
* **What changed between two runs?**  :func:`diff_traces` compares two
  recordings per span kind (count, total, p50, p99, and the new/
  vanished kinds), and :func:`diff_regressions` turns the comparison
  into a machine-checkable gate: kinds whose total grew more than a
  budget fraction.  ``repro trace diff A B --budget-pct 20`` exits 1 on
  violations, 0 otherwise — a trace diffed against itself always
  reports zero deltas.

Everything here is pure post-processing over :func:`~repro.obs.trace.
load_trace` output; nothing feeds back into recording or any canonical
result path.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.summarize import percentile
from repro.obs.trace import Span, load_trace
from repro.util.fmt import format_table

__all__ = [
    "span_tree",
    "self_times",
    "hotspots",
    "critical_path",
    "diff_traces",
    "diff_regressions",
    "render_hotspots",
    "render_critical_path",
    "render_diff",
]


def span_tree(
    spans: list[Span],
) -> tuple[dict[int, Span], dict[int | None, list[Span]]]:
    """Index a flat span list into ``(by_id, children)``.

    ``children[None]`` holds the roots.  Children keep buffer order
    (close order), which is deterministic for deterministic control
    flow; a dangling ``parent_id`` (a truncated trace) is treated as a
    root rather than an error.
    """
    by_id = {s.span_id: s for s in spans}
    children: dict[int | None, list[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    return by_id, children


def self_times(spans: list[Span]) -> dict[int, float]:
    """Per-span self time: duration minus the sum of direct children's
    durations, clamped at zero (clock noise can make children sum past
    their parent)."""
    _, children = span_tree(spans)
    out: dict[int, float] = {}
    for s in spans:
        child_total = sum(
            c.duration_s for c in children.get(s.span_id, ())
        )
        out[s.span_id] = max(0.0, s.duration_s - child_total)
    return out


def hotspots(spans: list[Span]) -> list[dict]:
    """Per-kind cost attribution, sorted by total *self* time.

    One dict per kind: span count, total duration, self total (the
    actual cost centre signal), child total, self share of the whole
    trace, p50/p99 of per-span self times.
    """
    selfs = self_times(spans)
    by_kind: dict[str, list[Span]] = {}
    for s in spans:
        by_kind.setdefault(s.kind, []).append(s)
    grand_self = sum(selfs.values()) or 1.0
    out = []
    for kind, group in by_kind.items():
        self_vals = sorted(selfs[s.span_id] for s in group)
        self_total = sum(self_vals)
        total = sum(s.duration_s for s in group)
        out.append({
            "kind": kind,
            "count": len(group),
            "total_s": total,
            "self_s": self_total,
            "child_s": max(0.0, total - self_total),
            "self_share": self_total / grand_self,
            "self_p50_s": percentile(self_vals, 0.50),
            "self_p99_s": percentile(self_vals, 0.99),
        })
    out.sort(key=lambda row: (-row["self_s"], row["kind"]))
    return out


def critical_path(spans: list[Span]) -> list[dict]:
    """The slowest root-to-leaf chain through the span tree.

    At every level the walk descends into the child with the largest
    duration (ties broken by buffer order).  Each step reports the
    span's kind, duration, self time, and its share of the chain root's
    duration — the classic critical-path view of where an end-to-end
    latency is actually pinned.
    """
    if not spans:
        return []
    selfs = self_times(spans)
    _, children = span_tree(spans)
    roots = children.get(None, [])
    if not roots:  # pragma: no cover - span_tree always roots something
        return []
    node = max(roots, key=lambda s: s.duration_s)
    root_duration = node.duration_s or 1.0
    path = []
    depth = 0
    while node is not None:
        path.append({
            "depth": depth,
            "kind": node.kind,
            "span": node.span_id,
            "duration_s": node.duration_s,
            "self_s": selfs[node.span_id],
            "share_of_root": node.duration_s / root_duration,
            "attrs": dict(node.attrs),
        })
        kids = children.get(node.span_id, [])
        node = max(kids, key=lambda s: s.duration_s) if kids else None
        depth += 1
    return path


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------
def _kind_stats(spans: list[Span]) -> dict[str, dict]:
    out: dict[str, dict] = {}
    by_kind: dict[str, list[float]] = {}
    for s in spans:
        by_kind.setdefault(s.kind, []).append(s.duration_s)
    for kind, durations in by_kind.items():
        durations.sort()
        out[kind] = {
            "count": len(durations),
            "total_s": sum(durations),
            "p50_s": percentile(durations, 0.50),
            "p99_s": percentile(durations, 0.99),
        }
    return out


def diff_traces(
    a: "str | Path | list[Span]", b: "str | Path | list[Span]"
) -> dict:
    """Compare two recordings per span kind: ``b`` relative to ``a``.

    Accepts trace paths or already-loaded span lists.  The result holds
    one row per kind present in either trace (count/total/p50/p99 for
    both sides plus absolute and fractional total deltas) and the
    ``new`` / ``vanished`` kind lists.  Identical traces produce all-zero
    deltas.
    """
    spans_a = a if isinstance(a, list) else load_trace(a)[1]
    spans_b = b if isinstance(b, list) else load_trace(b)[1]
    stats_a = _kind_stats(spans_a)
    stats_b = _kind_stats(spans_b)
    kinds = sorted(set(stats_a) | set(stats_b))
    rows = []
    for kind in kinds:
        sa = stats_a.get(kind)
        sb = stats_b.get(kind)
        total_a = sa["total_s"] if sa else 0.0
        total_b = sb["total_s"] if sb else 0.0
        delta = total_b - total_a
        rows.append({
            "kind": kind,
            "count_a": sa["count"] if sa else 0,
            "count_b": sb["count"] if sb else 0,
            "count_delta": (sb["count"] if sb else 0)
            - (sa["count"] if sa else 0),
            "total_a_s": total_a,
            "total_b_s": total_b,
            "total_delta_s": delta,
            # A kind absent from A has no baseline to grow from; its
            # fractional delta is +inf unless B is also zero.
            "total_delta_frac": (
                0.0 if delta == 0.0
                else delta / total_a if total_a > 0.0
                else float("inf")
            ),
            "p50_a_s": sa["p50_s"] if sa else 0.0,
            "p50_b_s": sb["p50_s"] if sb else 0.0,
            "p99_a_s": sa["p99_s"] if sa else 0.0,
            "p99_b_s": sb["p99_s"] if sb else 0.0,
        })
    return {
        "kinds": rows,
        "new": sorted(set(stats_b) - set(stats_a)),
        "vanished": sorted(set(stats_a) - set(stats_b)),
        "total_a_s": sum(r["total_a_s"] for r in rows),
        "total_b_s": sum(r["total_b_s"] for r in rows),
    }


def diff_regressions(diff: dict, budget_pct: float) -> list[dict]:
    """The rows of a :func:`diff_traces` result that blow the budget.

    A kind regresses when its total duration grew by more than
    ``budget_pct`` percent over side A (new kinds count as infinite
    growth).  Timing jitter on tiny kinds is ignored below an absolute
    1 ms floor so the gate measures regressions, not clock noise.
    """
    if budget_pct < 0:
        raise ValueError("budget_pct must be >= 0")
    out = []
    for row in diff["kinds"]:
        if row["total_delta_s"] <= 0.001:
            continue
        if row["total_delta_frac"] * 100.0 > budget_pct:
            out.append(row)
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_hotspots(source: "str | Path", top: int = 15) -> str:
    """Load a trace and render the hotspot table plus critical path."""
    meta, spans = load_trace(source)
    if not spans:
        return f"{source}: empty trace (no spans)"
    rows = [
        [
            r["kind"],
            r["count"],
            f"{r['self_s']:.4f}",
            f"{100.0 * r['self_share']:.1f}%",
            f"{r['total_s']:.4f}",
            f"{r['self_p50_s']:.6f}",
            f"{r['self_p99_s']:.6f}",
        ]
        for r in hotspots(spans)[:top]
    ]
    table = format_table(
        ["kind", "count", "self [s]", "self %", "total [s]",
         "self p50 [s]", "self p99 [s]"],
        rows,
        title=(
            f"Hotspots: {len(spans)} spans from {source} "
            f"(self time = duration minus child spans)"
        ),
    )
    return table + "\n\n" + render_critical_path(spans)


def render_critical_path(spans: list[Span]) -> str:
    path = critical_path(spans)
    if not path:
        return "critical path: (no spans)"
    lines = ["Critical path (slowest child at every level):"]
    for step in path:
        indent = "  " * step["depth"]
        lines.append(
            f"{indent}{step['kind']}  "
            f"{step['duration_s']:.4f}s total, "
            f"{step['self_s']:.4f}s self "
            f"({100.0 * step['share_of_root']:.1f}% of root)"
        )
    return "\n".join(lines)


def render_diff(diff: dict, regressions: list[dict] | None = None) -> str:
    """One table for a :func:`diff_traces` result."""

    def frac(row):
        f = row["total_delta_frac"]
        if f == float("inf"):
            return "new"
        return f"{100.0 * f:+.1f}%"

    rows = [
        [
            r["kind"],
            f"{r['count_a']} -> {r['count_b']}",
            f"{r['total_a_s']:.4f}",
            f"{r['total_b_s']:.4f}",
            f"{r['total_delta_s']:+.4f}",
            frac(r),
            f"{r['p50_b_s'] - r['p50_a_s']:+.6f}",
            f"{r['p99_b_s'] - r['p99_a_s']:+.6f}",
        ]
        for r in diff["kinds"]
    ]
    table = format_table(
        ["kind", "count", "A total [s]", "B total [s]", "delta [s]",
         "delta %", "p50 delta", "p99 delta"],
        rows,
        title=(
            f"Trace diff (B vs A): "
            f"{diff['total_a_s']:.4f}s -> {diff['total_b_s']:.4f}s"
        ),
    )
    notes = []
    if diff["new"]:
        notes.append(f"new kinds in B: {', '.join(diff['new'])}")
    if diff["vanished"]:
        notes.append(f"vanished from B: {', '.join(diff['vanished'])}")
    if regressions is not None:
        if regressions:
            notes.append(
                f"REGRESSION: {len(regressions)} kind(s) over budget: "
                + ", ".join(r["kind"] for r in regressions)
            )
        else:
            notes.append("within budget: no kind regressed")
    return table + ("\n" + "\n".join(notes) if notes else "")
